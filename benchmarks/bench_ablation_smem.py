"""abl-smem — the paper's global-memory design choice, quantified.

Section 5: "the program uses global memory and is not restricted by
shared memory size, which is what makes it compatible on the old and new
architecture."  The tiled shared-memory alternative never wins under the
device models and costs occupancy precisely where the paper needs
portability — on the CC 1.x card.
"""

from repro.harness.figures import ablation_smem


def test_smem_tiling_ablation(bench_once, benchmark):
    table = bench_once(ablation_smem, ns=(480, 960, 1920))
    print("\n" + table.render())

    benchmark.extra_info["rows"] = [list(r) for r in table.rows]
    for device, n, _, _, ratio, occ_global, occ_tiled in table.rows:
        ratio = float(ratio.rstrip("x"))
        # Tiling never beats the global-memory kernel.
        assert ratio >= 1.0, (device, n)
        # Shared memory never buys occupancy.
        assert occ_tiled <= occ_global, (device, n)
        if device == "cuda:geforce-9800-gt":
            # The 16 KiB CC 1.x SM loses half its resident blocks.
            assert occ_tiled <= occ_global // 2
