"""fig6 — Tasks 2+3 timings across all six platforms (paper Fig. 6)."""

from repro.core import constants as C
from repro.harness.figures import fig6

from .conftest import ALL_PLATFORM_NS, PERIODS, record_series

NVIDIA = ("cuda:geforce-9800-gt", "cuda:gtx-880m", "cuda:titan-x-pascal")


def test_fig6_task23_all_platforms(bench_once, benchmark):
    data = bench_once(fig6, ns=ALL_PLATFORM_NS, periods=PERIODS)
    record_series(benchmark, data)
    print("\n" + data.render())

    # Paper shape 1: NVIDIA wins against every other platform.
    others = [p for p in data.series if p not in NVIDIA]
    for i, n in enumerate(data.ns):
        if n < 480:
            continue
        for gpu in NVIDIA:
            for other in others:
                assert data.series[gpu][i] < data.series[other][i], (gpu, other, n)

    # Paper shape 2: NVIDIA curves at worst small-coefficient quadratic.
    for gpu in NVIDIA:
        assert data.verdicts[gpu].is_simd_like, gpu

    # Paper shape 3: only the multi-core platform bursts the half-second
    # budget inside this sweep's upper range (projected at the edge).
    for platform, ys in data.series.items():
        at_edge = ys[-1]
        if platform == "mimd:xeon-16":
            assert at_edge > C.PERIOD_SECONDS
        else:
            assert at_edge < C.PERIOD_SECONDS, platform
