"""tbl-determinism — §6.2: "we would get the exact same timings again
and again" on the NVIDIA devices; the asynchronous multi-core cannot."""

from repro.harness.figures import determinism_table


def test_determinism_table(bench_once, benchmark):
    table = bench_once(determinism_table, n=960, repeats=3)
    print("\n" + table.render())

    status = {row[0]: row[3] for row in table.rows}
    benchmark.extra_info["deterministic"] = status

    for platform, verdict in status.items():
        if platform.startswith("mimd:"):
            assert verdict == "NO", platform
        else:
            assert verdict == "yes", platform
