"""abl-fused — fused CheckCollisionPath vs split Task-2/Task-3 kernels.

Section 4's design argument: one fused kernel avoids copying state back
to the host between detection and resolution.  The ablation quantifies
what the rejected split design would cost.
"""

from repro.harness.figures import ablation_fused


def test_fused_kernel_ablation(bench_once, benchmark):
    table = bench_once(ablation_fused, ns=(480, 960, 1920))
    print("\n" + table.render())

    ratios = [float(row[3].rstrip("x")) for row in table.rows]
    benchmark.extra_info["split_over_fused"] = ratios

    # The split design is never faster, and the penalty is largest at
    # small fleets where the fixed transfer overheads dominate.
    assert all(r >= 1.0 for r in ratios)
    assert ratios[0] >= ratios[-1]
