"""fig5 — Task 1 timings on the three NVIDIA cards (paper Fig. 5)."""

from repro.harness.figures import fig5

from .conftest import NVIDIA_NS, PERIODS, record_series


def test_fig5_task1_nvidia(bench_once, benchmark):
    data = bench_once(fig5, ns=NVIDIA_NS, periods=PERIODS)
    record_series(benchmark, data)
    print("\n" + data.render())

    old = data.series["cuda:geforce-9800-gt"]
    mid = data.series["cuda:gtx-880m"]
    new = data.series["cuda:titan-x-pascal"]

    # Card generations order correctly at every fleet size.
    for i in range(len(data.ns)):
        assert new[i] < mid[i] < old[i], data.ns[i]

    # All three cards stay SIMD-like on Task 1 (paper: linear or near-
    # linear fits on every card).
    for platform, verdict in data.verdicts.items():
        assert verdict.is_simd_like, (platform, verdict.verdict)

    # Even the 2008-era card is orders of magnitude under the deadline.
    from repro.core import constants as C

    assert max(old) < C.PERIOD_SECONDS / 50
