"""ext-vector — §7.2's wide-vector hypothesis, measured.

The paper wants the ATM tasks re-implemented on "commodity processors
and accelerators (such as Intel's Xeon Phi)" with wide vector units.
This benchmark compares the two wide-vector models against the GPUs and
the AP on the collision tasks, asserting the hypothesis holds: vector
machines behave SIMD-like (deterministic, near-linear, deadline-clean).
"""

from repro.core import constants as C
from repro.harness.figures import ext_vector

from .conftest import record_series


def test_wide_vector_hypothesis(bench_once, benchmark):
    data = bench_once(ext_vector, ns=(96, 480, 960, 1920, 2880))
    record_series(benchmark, data)
    print("\n" + data.render())

    for platform in ("vector:xeon-phi-7250", "vector:avx512-16c"):
        # SIMD-like curve class...
        assert data.verdicts[platform].is_simd_like, platform
        # ...and comfortably inside every deadline across the sweep.
        assert max(data.series[platform]) < C.PERIOD_SECONDS / 10

    # The many-core vector part plays in the GPUs' league: within an
    # order of magnitude of the Titan X everywhere, and ahead of the
    # laptop Kepler at scale.
    phi = data.series["vector:xeon-phi-7250"]
    titan = data.series["cuda:titan-x-pascal"]
    kepler = data.series["cuda:gtx-880m"]
    for i in range(len(data.ns)):
        assert phi[i] < 10 * titan[i]
    assert phi[-1] < kepler[-1]
