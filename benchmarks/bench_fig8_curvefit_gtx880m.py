"""fig8 — curve fit for Task 1 on the GTX 880M (paper Fig. 8).

The paper: "The GTX 880M has a linear curve for its tracking and
correlation timings (Fig 8) as shown by its goodness of fit values."
"""

from repro.harness.figures import fig8

from .conftest import NVIDIA_NS, PERIODS


def test_fig8_gtx880m_task1_near_linear(bench_once, benchmark):
    fig = bench_once(fig8, ns=NVIDIA_NS, periods=PERIODS)
    print("\n" + fig.render())

    v = fig.verdict
    benchmark.extra_info["verdict"] = v.verdict
    benchmark.extra_info["growth_exponent"] = v.growth_exponent
    benchmark.extra_info["linear_adj_r2"] = v.linear.adj_r_squared
    benchmark.extra_info["quadratic_coeff"] = v.quadratic.leading_coefficient

    # The paper's Fig. 8 claim: linear (or near-linear) fit.
    assert v.verdict in ("linear", "near-linear"), v.describe()

    # Goodness of fit: the linear model explains the curve well.
    assert v.linear.r_squared > 0.9

    # The quadratic term, if any, has a tiny coefficient: its
    # contribution at the domain edge stays modest.
    edge = max(fig.ns)
    quad_term = abs(v.quadratic.leading_coefficient) * edge**2
    assert quad_term < max(fig.seconds)
