"""abl-throughput — §7.2's proposed throughput-normalized comparison.

The paper's future work: normalize each platform's curve by its peak
throughput capacity so the comparison measures architectural
*efficiency* rather than transistor budget.
"""

from repro.harness.figures import ablation_throughput


def test_throughput_normalization(bench_once, benchmark):
    table = bench_once(ablation_throughput, ns=(480, 960, 1920))
    print("\n" + table.render())

    ranking_note = [n for n in table.notes if n.startswith("efficiency ranking")][0]
    benchmark.extra_info["ranking"] = ranking_note

    # The associative processor tops the efficiency ranking: its raw
    # times are mid-pack but it achieves them with orders of magnitude
    # less peak capability — exactly the argument [12, 13] make for APs.
    best = ranking_note.split(": ", 1)[1].split(", ")[0]
    assert best == "ap:staran", ranking_note

    # Raw winners (NVIDIA) drop in the normalized ranking.
    order = ranking_note.split(": ", 1)[1].split(", ")
    assert order.index("cuda:titan-x-pascal") > 0
