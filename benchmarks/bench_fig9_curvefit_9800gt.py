"""fig9 — curve fit for Tasks 2+3 on the GeForce 9800 GT (paper Fig. 9).

The paper's caption: "Quadratic (low coefficient) curve for Tasks 2 and 3
timings on GT9800" — a quadratic best fit whose quadratic coefficient is
small compared to the linear term, i.e. still SIMD-like.
"""

from repro.harness.figures import fig9

from .conftest import NVIDIA_NS, PERIODS


def test_fig9_9800gt_task23_quadratic_small_coeff(bench_once, benchmark):
    fig = bench_once(fig9, ns=NVIDIA_NS, periods=PERIODS)
    print("\n" + fig.render())

    v = fig.verdict
    benchmark.extra_info["verdict"] = v.verdict
    benchmark.extra_info["growth_exponent"] = v.growth_exponent
    benchmark.extra_info["quadratic_adj_r2"] = v.quadratic.adj_r_squared

    # The quadratic model fits essentially perfectly...
    assert v.quadratic.adj_r_squared > 0.98
    # ...and improves on the linear fit (this is the one curve the paper
    # itself calls quadratic rather than linear).
    assert v.quadratic.adj_r_squared > v.linear.adj_r_squared
    # Growth stays at-most-quadratic: SIMD-like per the paper's argument.
    assert v.is_simd_like, v.describe()
    assert v.growth_exponent < 2.1

    # "Low coefficient": the quadratic coefficient is small in absolute
    # terms — microseconds at the scale of thousands of aircraft.
    a2 = abs(v.quadratic.leading_coefficient)
    assert a2 * max(fig.ns) ** 2 < 0.25  # seconds at the domain edge
