"""Shared configuration for the benchmark harness.

Every benchmark regenerates one evaluation artifact of the paper (see
DESIGN.md's per-experiment index) with ``pytest-benchmark`` measuring the
end-to-end harness cost, and then asserts the *shape* properties the
paper reports — who wins, curve linearity verdicts, deadline behaviour.
Absolute milliseconds are modelled (our substrate is a simulator), so
shapes, orderings and crossovers are the reproduction target.

Run with::

    pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

import pytest

#: Fleet-size sweep for the six-platform figures (Figs. 4 and 6).
ALL_PLATFORM_NS = (96, 480, 960, 1440, 1920)

#: Fleet-size sweep for the NVIDIA-only figures (Figs. 5 and 7-9).
NVIDIA_NS = (96, 480, 960, 1920, 2880)

#: Tracking periods averaged per measurement (paper: mean of iterations).
PERIODS = 2


@pytest.fixture(autouse=True)
def _tracing_disabled():
    """Benchmarks publish timing numbers; a collector leaked from other
    code would skew them, so force the obs layer into no-op mode."""
    from repro.obs import deactivate

    deactivate()
    yield


@pytest.fixture
def bench_once(benchmark):
    """Run a harness callable exactly once under the benchmark timer.

    Figure regeneration is seconds-scale and deterministic; repeated
    rounds would only re-measure identical work.
    """

    def _run(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)

    return _run


def record_series(benchmark, figure) -> None:
    """Attach a figure's series and verdicts to the benchmark record."""
    benchmark.extra_info["ns"] = list(figure.ns)
    for platform, ys in figure.series.items():
        benchmark.extra_info[f"series:{platform}"] = [float(y) for y in ys]
    for platform, verdict in getattr(figure, "verdicts", {}).items():
        benchmark.extra_info[f"verdict:{platform}"] = verdict.verdict
