"""Trace engine — functional re-execution vs shared-trace replay.

Unlike the figure benchmarks, the artifact here is not a paper figure
but the harness itself: ``run_bench`` times the same multi-platform
sweep with the trace engine off, cold and warm, proving the replay is
byte-identical before reporting the speedup.  The shape assertion is
the PR's acceptance bar — replay must be a real win, not a wash.
"""

from repro.harness.bench import SMOKE_BENCH_NS, run_bench


def test_trace_engine_speedup(bench_once, benchmark):
    result = bench_once(run_bench, ns=SMOKE_BENCH_NS)

    benchmark.extra_info["ns"] = list(result["config"]["ns"])
    benchmark.extra_info["platforms"] = result["config"]["platforms"]
    for stage in result["stages"]:
        benchmark.extra_info[f"wall:{stage['name']}"] = stage["wall_s"]
    benchmark.extra_info["speedup:cold"] = result["speedup"]["cold"]
    benchmark.extra_info["speedup:warm"] = result["speedup"]["warm"]

    # Correctness first: replay that changes bytes is a bug, not a win.
    assert result["equivalent"]

    # The acceptance bar: sharing one functional pass across every
    # backend must beat per-backend re-execution by 3x or better, and a
    # warm memo must beat a cold one (it skips the functional pass too).
    assert result["speedup"]["cold"] >= 3.0, result["speedup"]
    assert result["speedup"]["warm"] >= result["speedup"]["cold"], result["speedup"]
