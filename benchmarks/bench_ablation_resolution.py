"""abl-resolution — the safety value of Task 3.

The paper evaluates collision resolution by its execution time; this
ablation evaluates it by its *outcome*: losses of separation (pairs
below 3 nm / 1000 ft) over an evolving airfield, with and without the
resolution manoeuvres.
"""

from repro.harness.figures import ablation_resolution


def test_resolution_safety_ablation(bench_once, benchmark):
    table = bench_once(ablation_resolution, n=768, major_cycles=8)
    print("\n" + table.render())

    by_config = {r[0]: r for r in table.rows}
    on = by_config["resolution ON"]
    off = by_config["resolution OFF"]
    benchmark.extra_info["los_on"] = on[3]
    benchmark.extra_info["los_off"] = off[3]

    # Task 3 strictly reduces loss-of-separation exposure...
    assert on[3] < off[3]
    # ...and never worsens the closest encounter.
    assert float(on[5]) >= float(off[5])
