"""fig4 — Task 1 timings across all six platforms (paper Fig. 4)."""

import numpy as np

from repro.harness.figures import fig4

from .conftest import ALL_PLATFORM_NS, PERIODS, record_series

NVIDIA = ("cuda:geforce-9800-gt", "cuda:gtx-880m", "cuda:titan-x-pascal")


def test_fig4_task1_all_platforms(bench_once, benchmark):
    data = bench_once(fig4, ns=ALL_PLATFORM_NS, periods=PERIODS)
    record_series(benchmark, data)
    print("\n" + data.render())

    # Paper shape 1: every NVIDIA card beats AP, ClearSpeed and Xeon at
    # every fleet size beyond the launch-overhead regime.
    others = [p for p in data.series if p not in NVIDIA]
    for i, n in enumerate(data.ns):
        if n < 480:
            continue
        for gpu in NVIDIA:
            for other in others:
                assert data.series[gpu][i] < data.series[other][i], (gpu, other, n)

    # Paper shape 2: NVIDIA and AP Task-1 curves are SIMD-like.
    for gpu in NVIDIA:
        assert data.verdicts[gpu].is_simd_like, gpu
    assert data.verdicts["ap:staran"].verdict in ("linear", "near-linear")

    # Paper shape 3: the multi-core curve grows fastest of all.
    xeon_exp = data.verdicts["mimd:xeon-16"].growth_exponent
    for p, v in data.verdicts.items():
        if p != "mimd:xeon-16":
            assert xeon_exp > v.growth_exponent, p

    # All timings positive and finite.
    for ys in data.series.values():
        assert np.all(np.isfinite(ys)) and np.all(np.asarray(ys) > 0)
