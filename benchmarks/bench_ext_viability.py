"""ext-viability — the complete ATM task set under hard deadlines.

The paper's §7.1 future work asks whether a complete ATM system (all
basic tasks, not just the three compute-intensive ones) stays viable on
NVIDIA devices.  This benchmark runs the extended schedule — tracking,
collision detection/resolution, terrain avoidance, final approach and
the voice-advisory channel — and asserts it does.
"""

from repro.harness.figures import ext_viability


def test_extended_system_viability(bench_once, benchmark):
    table = bench_once(ext_viability, ns=(480, 960, 1920), major_cycles=2)
    print("\n" + table.render())

    missed = {(r[0], r[1]): r[2] for r in table.rows}
    benchmark.extra_info["missed"] = {f"{k[0]}@{k[1]}": v for k, v in missed.items()}

    # NVIDIA, the AP and the SIMD stay clean with the full task set.
    for (platform, n), misses in missed.items():
        if platform.startswith(("cuda:", "ap:", "simd:")):
            assert misses == 0, (platform, n)

    # The multi-core still breaks inside the sweep (the extra tasks only
    # make its collision-period overruns worse).
    assert any(
        misses > 0 for (p, _), misses in missed.items() if p.startswith("mimd:")
    )

    # No task was ever skipped on an NVIDIA card (column 3).
    for row in table.rows:
        if row[0].startswith("cuda:"):
            assert row[3] == 0
