"""Continental-scale driver: the five-platform deadline table at n=10⁶.

Unlike the ``bench_*`` pytest-benchmark modules, this is a plain
script — the full profile runs for minutes and emits a committed
artifact, so it is driven explicitly rather than on every benchmark
run::

    PYTHONPATH=src python benchmarks/bench_large_n.py --out BENCH_large_n.json

``--table-out`` additionally writes the deterministic, wall-free
projection (:func:`repro.harness.bench.large_bench_table`); the CI
smoke job runs the profile twice at n=10⁵ and ``cmp``'s the two tables
byte for byte.  Equivalent CLI: ``atm-repro bench --large``.

See docs/performance.md ("Large-n regime") for what the profile
measures and why its table is reproducible to the byte.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.core.collision import DetectionMode
from repro.harness.bench import (
    LARGE_BENCH_N,
    large_bench_table,
    render_bench_large,
    run_bench_large,
    write_bench,
)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Large-n pruned bench: deadline table at continental scale."
    )
    parser.add_argument(
        "--n", type=int, default=LARGE_BENCH_N,
        help=f"fleet size (default {LARGE_BENCH_N:,})",
    )
    parser.add_argument(
        "--calibration-n", type=int, default=7680,
        help="fleet size for the brute-vs-pruned calibration stage",
    )
    parser.add_argument("--seed", type=int, default=2018)
    parser.add_argument("--periods", type=int, default=3)
    parser.add_argument(
        "--mode", choices=[m.value for m in DetectionMode], default="signed",
    )
    parser.add_argument(
        "--out", default="BENCH_large_n.json",
        help="output path for the full record (default BENCH_large_n.json)",
    )
    parser.add_argument(
        "--table-out", default=None,
        help="also write the deterministic wall-free table here (CI cmp)",
    )
    args = parser.parse_args(argv)

    result = run_bench_large(
        n=args.n,
        calibration_n=args.calibration_n,
        seed=args.seed,
        periods=args.periods,
        mode=DetectionMode(args.mode),
    )
    print(render_bench_large(result))
    write_bench(args.out, result)
    print(f"wrote {args.out}")
    if args.table_out:
        with open(args.table_out, "w", encoding="utf-8") as fh:
            json.dump(large_bench_table(result), fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote {args.table_out}")
    return 0 if result["equivalent"] else 1


if __name__ == "__main__":
    sys.exit(main())
