"""tbl-deadline — the §6.2 deadline comparison across full schedules."""

from repro.harness.figures import deadline_table


def test_deadline_table(bench_once, benchmark):
    table = bench_once(
        deadline_table,
        ns=(480, 960, 1920, 2880),
        major_cycles=2,
    )
    print("\n" + table.render())
    report = table.report

    never = set(report.platforms_never_missing())
    missing = set(report.platforms_missing())
    benchmark.extra_info["never_miss"] = sorted(never)
    benchmark.extra_info["miss"] = sorted(missing)

    # Paper §6.2: the NVIDIA devices never miss a deadline, "nor do they
    # come close to it"; the AP and the ClearSpeed SIMD hold theirs too.
    for platform in (
        "cuda:geforce-9800-gt",
        "cuda:gtx-880m",
        "cuda:titan-x-pascal",
        "ap:staran",
        "simd:clearspeed-csx600",
    ):
        assert platform in never, platform

    # NVIDIA headroom: worst period at most a few percent of the budget.
    for platform in ("cuda:geforce-9800-gt", "cuda:gtx-880m", "cuda:titan-x-pascal"):
        assert report.headroom(platform) > 400.0  # >=400 of 500 ms spare

    # The multi-core platform regularly misses deadlines in this range.
    assert "mimd:xeon-16" in missing
    first_miss = report.first_miss_n("mimd:xeon-16")
    assert first_miss is not None and first_miss <= 2880
