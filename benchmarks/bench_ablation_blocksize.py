"""abl-blocksize — the paper's fixed 96-threads-per-block choice.

Section 6.1 pins 96 threads/block (one block per 96 aircraft, the
ClearSpeed chip's PE count).  This ablation sweeps the block size to
show the choice is benign on every card — block sizes that are a
multiple of the warp size differ only via occupancy packing.
"""

from repro.cuda.backend import CudaBackend
from repro.harness.sweep import measure_platform


def test_blocksize_ablation(bench_once, benchmark):
    n = 1920
    sizes = (32, 64, 96, 128, 256)

    def run():
        out = {}
        for device in ("geforce-9800-gt", "gtx-880m", "titan-x-pascal"):
            for bs in sizes:
                m = measure_platform(
                    CudaBackend(device, block_size=bs), n, periods=1
                )
                out[(device, bs)] = (m.task1_mean_s, m.task23_s)
        return out

    results = bench_once(run)
    benchmark.extra_info["results"] = {
        f"{d}@{bs}": list(v) for (d, bs), v in results.items()
    }

    for device in ("geforce-9800-gt", "gtx-880m", "titan-x-pascal"):
        times = [results[(device, bs)][1] for bs in sizes]
        paper_choice = results[(device, 96)][1]
        # The paper's choice is within 2x of the best block size tested
        # and never the worst by a large margin.
        assert paper_choice <= 2.0 * min(times), device
        print(
            f"\n{device}: task2+3 by block size "
            + ", ".join(f"{bs}->{t * 1e3:.3f}ms" for bs, t in zip(sizes, times))
        )
