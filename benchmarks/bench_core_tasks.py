"""Micro-benchmarks of the core ATM algorithms themselves.

These measure the *host* wall-clock of this library's reference
implementations (not modelled architecture time) — the numbers a
downstream user cares about when driving large simulations.
"""

import pytest

from repro.core.collision import detect
from repro.core.radar import generate_radar_frame
from repro.core.resolution import detect_and_resolve
from repro.core.setup import setup_flight
from repro.core.tracking import correlate


@pytest.mark.parametrize("n", [96, 960])
def test_setup_flight_host_cost(benchmark, n):
    benchmark(setup_flight, n, 2018)


@pytest.mark.parametrize("n", [96, 960])
def test_radar_generation_host_cost(benchmark, n):
    fleet = setup_flight(n, 2018)
    benchmark(generate_radar_frame, fleet, 2018, 0)


@pytest.mark.parametrize("n", [96, 960])
def test_tracking_host_cost(benchmark, n):
    fleet = setup_flight(n, 2018)

    def run():
        frame = generate_radar_frame(fleet, 2018, 0)
        return correlate(fleet, frame)

    stats = benchmark(run)
    assert stats.committed > 0


@pytest.mark.parametrize("n", [96, 960])
def test_detection_host_cost(benchmark, n):
    fleet = setup_flight(n, 2018)
    benchmark(detect, fleet)


def test_full_collision_pass_host_cost(benchmark):
    fleet = setup_flight(480, 2018)
    benchmark.pedantic(
        detect_and_resolve, args=(fleet,), rounds=3, iterations=1
    )
