"""fig7 — Tasks 2+3 timings on the three NVIDIA cards (paper Fig. 7)."""

from repro.core import constants as C
from repro.harness.figures import fig7

from .conftest import NVIDIA_NS, PERIODS, record_series


def test_fig7_task23_nvidia(bench_once, benchmark):
    data = bench_once(fig7, ns=NVIDIA_NS, periods=PERIODS)
    record_series(benchmark, data)
    print("\n" + data.render())

    old = data.series["cuda:geforce-9800-gt"]
    mid = data.series["cuda:gtx-880m"]
    new = data.series["cuda:titan-x-pascal"]

    # Generational ordering holds across the sweep.
    for i in range(len(data.ns)):
        assert new[i] < mid[i] < old[i], data.ns[i]

    # Every card remains SIMD-like (at worst a small-coefficient
    # quadratic — the paper's own description of the 9800 GT's curve).
    for platform, verdict in data.verdicts.items():
        assert verdict.is_simd_like, (platform, verdict.verdict)

    # The modern card's curve grows no faster than the 2008 card's.
    assert (
        data.verdicts["cuda:titan-x-pascal"].growth_exponent
        <= data.verdicts["cuda:geforce-9800-gt"].growth_exponent + 0.05
    )

    # No card approaches the deadline anywhere in the sweep.
    for ys in (old, mid, new):
        assert max(ys) < C.PERIOD_SECONDS / 3
