#!/usr/bin/env python3
"""Curve-fitting study: the paper's MATLAB analysis, reproduced end to end.

Sweeps the fleet size on every platform, fits degree-1 and degree-2
polynomials to each timing curve, prints MATLAB's four goodness-of-fit
numbers (SSE, R^2, adjusted R^2, RMSE), and issues the paper's verdicts:
which curves are linear, near-linear, quadratic-with-a-small-coefficient
(all "SIMD-like") and which blow up.

Run:  python examples/curve_fitting_study.py
"""

from repro import all_platform_names
from repro.analysis.curvefit import assess_linearity
from repro.analysis.tables import format_seconds
from repro.harness.sweep import sweep

NS = (96, 480, 960, 1440, 1920, 2880)


def main() -> None:
    print(f"sweeping {len(all_platform_names())} platforms over "
          f"fleet sizes {NS} ...\n")
    data = sweep(all_platform_names(), NS, periods=2)

    for task, label in (("task1", "Task 1 (tracking & correlation)"),
                        ("task23", "Tasks 2+3 (collision detection & resolution)")):
        print("=" * 72)
        print(label)
        print("=" * 72)
        for platform in data.platforms():
            ys = (
                data.task1_series(platform)
                if task == "task1"
                else data.task23_series(platform)
            )
            verdict = assess_linearity(data.ns, ys)
            edge = format_seconds(ys[-1])
            print(f"\n{platform}  ({NS[0]} -> {NS[-1]} aircraft, "
                  f"{format_seconds(ys[0])} -> {edge})")
            print(f"  linear    {verdict.linear.describe()}")
            print(f"  quadratic {verdict.quadratic.describe()}")
            print(f"  {verdict.describe()}")
            simd_like = "yes" if verdict.is_simd_like else "NO"
            print(f"  SIMD-like: {simd_like}")
        print()

    print("paper's headline: every NVIDIA curve should be SIMD-like "
          "(linear, near-linear, or quadratic with a small coefficient), "
          "the AP linear, and the multi-core curve the steepest of all.")


if __name__ == "__main__":
    main()
