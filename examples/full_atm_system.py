#!/usr/bin/env python3
"""The complete ATM system — the paper's §7.1 future work, running.

One command centre, everything at once: tracking every half second,
collision detection/resolution, terrain avoidance over a synthetic
landscape, final-approach sequencing onto a runway, display processing
for the controllers and the automatic voice advisory channel — on the
Titan X model, against a composite terminal-area workload.

Run:  python examples/full_atm_system.py
"""

from repro.analysis.tables import format_seconds, render_table
from repro.extended import FullAtmSimulation, Runway
from repro.harness.workloads import terminal_area

def main() -> None:
    runway = Runway()
    fleet = terminal_area(900, 10, runway)
    sim = FullAtmSimulation(
        fleet.n,
        backend="cuda:titan-x-pascal",
        runway=runway,
        fleet=fleet,
        radar_clutter=24,  # a realistically dirty radar picture
    )

    print(f"fleet: {sim.n_aircraft} aircraft "
          f"(900 overflights + 10 on final), 24 clutter echoes per sweep")
    print(f"terrain: peaks to {sim.terrain.stats()['max_ft']:.0f} ft; "
          f"lowest current clearance "
          f"{sim.terrain_clearance_ft().min():.0f} ft")
    print()

    result = sim.run(major_cycles=4)
    summary = result.summary()

    rows = []
    for task in ("task1", "task23", "terrain", "approach", "display", "advisory"):
        rows.append(
            (
                task,
                format_seconds(summary[f"{task}_mean_s"]),
                format_seconds(summary[f"{task}_max_s"]),
            )
        )
    print(render_table(("task", "mean", "max"), rows))
    print()
    print(f"periods: {summary['periods']}, "
          f"missed deadlines: {summary['missed_deadlines']}, "
          f"skipped tasks: {summary['skipped_tasks']}")
    print(f"worst period: {format_seconds(summary['worst_period_s'])} "
          f"of the 500 ms budget")
    print(f"advisory backlog after 32 s: {sim.advisory_backlog()}")
    print("\nthe paper asked whether a complete ATM system stays viable "
          "on NVIDIA hardware — every deadline above says yes.")

if __name__ == "__main__":
    main()
