#!/usr/bin/env python3
"""Crossing streams: the collision tasks' worst case, platform by platform.

Two perpendicular streams of airliners meet over the field's centre at
the same flight level — every crossing pair is a genuine conflict.  The
example runs the scenario on one platform from each architecture family
and shows (a) the resolution machinery untangling the crossing and
(b) how differently the machines pay for the surge of trial headings.

Run:  python examples/crossing_streams.py
"""

from repro.analysis.tables import format_seconds, render_table
from repro.backends.registry import resolve_backend
from repro.core.collision import detect
from repro.core.scheduler import run_schedule
from repro.harness.workloads import crossing_streams

PLATFORMS = (
    "cuda:titan-x-pascal",
    "vector:xeon-phi-7250",
    "ap:staran",
    "simd:clearspeed-csx600",
    "mimd:xeon-16",
)


def main() -> None:
    probe = crossing_streams(32)
    stats = detect(probe)
    print(f"scenario: 2 x 32 aircraft crossing at FL310")
    print(f"initial critical conflicts: {stats.critical_conflicts} "
          f"({stats.flagged_aircraft} aircraft flagged)\n")

    rows = []
    for name in PLATFORMS:
        fleet = crossing_streams(32)
        backend = resolve_backend(name)
        result = run_schedule(backend, fleet, major_cycles=2)
        t23 = result.task23_times()
        last = [p for p in result.periods if p.task23 is not None][-1]
        rows.append(
            (
                name,
                format_seconds(float(result.task1_times().mean())),
                format_seconds(float(t23.max())),
                last.task23.stats.get("trials", "-"),
                last.task23.stats.get("unresolved", "-"),
                result.missed_deadlines,
            )
        )

    print(render_table(
        ("platform", "task1 mean", "task2+3 worst", "trials", "unresolved", "missed"),
        rows,
    ))
    print("\nthe same crossing is untangled identically everywhere "
          "(bit-identical flight states); what differs is the bill.")


if __name__ == "__main__":
    main()
