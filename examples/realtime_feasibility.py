#!/usr/bin/env python3
"""Real-time feasibility study: how many aircraft can each platform hold?

For every platform in the paper's comparison, binary-search the largest
fleet (in 96-aircraft blocks, the paper's scheduling unit) for which a
full major cycle completes without a single missed deadline.  This is
the capacity-planning question an ATM operator would actually ask, and
it reproduces the paper's qualitative ranking: NVIDIA >> AP/SIMD >>
multi-core.

Run:  python examples/realtime_feasibility.py [--fast]
"""

import argparse

from repro import all_platform_names, resolve_backend, setup_flight
from repro.core.scheduler import run_schedule

BLOCK = 96


def holds_deadlines(backend_name: str, n: int, seed: int = 2018) -> bool:
    backend = resolve_backend(backend_name)
    fleet = setup_flight(n, seed)
    result = run_schedule(backend, fleet, major_cycles=1, seed=seed)
    return result.missed_deadlines == 0


def max_supported_fleet(backend_name: str, ceiling_blocks: int) -> int:
    """Largest multiple of 96 (up to the ceiling) with zero misses."""
    lo, hi = 0, ceiling_blocks  # in blocks; lo is known-good
    if holds_deadlines(backend_name, hi * BLOCK):
        return hi * BLOCK
    while hi - lo > 1:
        mid = (lo + hi) // 2
        if holds_deadlines(backend_name, mid * BLOCK):
            lo = mid
        else:
            hi = mid
    return lo * BLOCK


def main() -> None:
    parser = argparse.ArgumentParser()
    parser.add_argument(
        "--fast", action="store_true",
        help="lower the search ceiling (quicker, coarser answers)",
    )
    args = parser.parse_args()
    ceiling = 20 if args.fast else 45  # blocks of 96

    print(f"searching fleet capacity up to {ceiling * BLOCK} aircraft "
          f"(one full major cycle, zero misses required)\n")

    results = {}
    for name in all_platform_names():
        capacity = max_supported_fleet(name, ceiling)
        results[name] = capacity
        at_ceiling = " (search ceiling — true capacity is higher)" if capacity == ceiling * BLOCK else ""
        print(f"  {name:26s} {capacity:6d} aircraft{at_ceiling}")

    print("\nranking (most capable first):")
    for name in sorted(results, key=results.get, reverse=True):
        print(f"  {results[name]:6d}  {name}")


if __name__ == "__main__":
    main()
