#!/usr/bin/env python3
"""Quickstart: simulate an airfield and run the ATM tasks on a GPU model.

Creates 960 aircraft in the paper's 256 nm x 256 nm airfield, runs two
8-second major cycles (16 half-second periods each: tracking every
period, collision detection + resolution in the 16th) on the simulated
Titan X (Pascal), and prints the schedule summary.

Run:  python examples/quickstart.py
"""

from repro import Simulation


def main() -> None:
    sim = Simulation(n_aircraft=960, backend="cuda:titan-x-pascal", seed=2018)

    print(f"airfield: 256 nm x 256 nm, {sim.n_aircraft} aircraft "
          f"({sim.density_per_1000nm2():.1f} per 1000 nm^2)")
    print(f"platform: {sim.backend.describe()['device']}")
    print()

    result = sim.run(major_cycles=2)

    summary = result.summary()
    print("after 2 major cycles (32 half-second periods):")
    print(f"  deadlines missed ....... {summary['missed_deadlines']}")
    print(f"  mean Task 1 time ....... {summary['task1_mean_s'] * 1e6:.1f} us")
    print(f"  mean Tasks 2+3 time .... {summary['task23_mean_s'] * 1e6:.1f} us")
    print(f"  worst period ........... {summary['worst_period_s'] * 1e3:.3f} ms "
          f"(budget 500 ms)")
    print(f"  period utilization ..... {summary['mean_utilization']:.4%}")
    print(f"  unresolved conflicts ... {sim.conflicts_now()}")


if __name__ == "__main__":
    main()
