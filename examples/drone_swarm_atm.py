#!/usr/bin/env python3
"""Mobile ATM for a drone swarm — the paper's §7.2 future-work scenario.

"A longer term future research focus is ... to provide a mobile ATM
center in remote areas where sufficient number of UASs or drones were
being used."  This example builds that scenario on the library: a dense,
low-altitude swarm (UAS traffic is compressed into a thin altitude band,
so the 1000 ft vertical separation barely helps and the collision tasks
work much harder than with en-route airliners) managed by the laptop-
class GTX 880M — the card a field-deployed ground station would carry.

Run:  python examples/drone_swarm_atm.py
"""

import numpy as np

from repro import Simulation
from repro.core import constants as C


def compress_to_swarm(sim: Simulation, alt_floor=300.0, alt_ceiling=1200.0) -> None:
    """Squash the fleet into a low-altitude UAS band and slow it down."""
    fleet = sim.fleet
    n = fleet.n
    span = alt_ceiling - alt_floor
    fleet.alt[:] = alt_floor + (fleet.alt - C.ALTITUDE_MIN_FT) * span / (
        C.ALTITUDE_MAX_FT - C.ALTITUDE_MIN_FT
    )
    # Drones cruise far slower than airliners: rescale to 20-60 knots.
    speed = fleet.speeds_knots()
    target = 20.0 + (speed - C.SPEED_MIN_KNOTS) * 40.0 / (
        C.SPEED_MAX_KNOTS - C.SPEED_MIN_KNOTS
    )
    factor = target / speed
    fleet.dx *= factor
    fleet.dy *= factor
    fleet.batdx[:] = fleet.dx
    fleet.batdy[:] = fleet.dy


def main() -> None:
    sim = Simulation(n_aircraft=768, backend="cuda:gtx-880m", seed=7)
    compress_to_swarm(sim)

    print("mobile ATM station: GTX 880M laptop GPU")
    print(f"swarm: {sim.n_aircraft} drones, "
          f"altitudes {sim.fleet.alt.min():.0f}-{sim.fleet.alt.max():.0f} ft, "
          f"speeds {sim.fleet.speeds_knots().min():.0f}-"
          f"{sim.fleet.speeds_knots().max():.0f} kn")

    total_resolved = 0
    total_unresolved = 0
    for cycle in range(4):
        result = sim.step_major_cycle()
        last = result.periods[-1]
        stats = last.task23.stats
        total_resolved += stats["resolved"]
        total_unresolved = stats["unresolved"]
        print(f"cycle {cycle + 1}: "
              f"critical pairs {stats['critical_conflicts']:4d}, "
              f"turns committed {stats['resolved']:3d}, "
              f"still conflicted {stats['unresolved']:3d}, "
              f"worst period {result.worst_period_seconds * 1e3:7.3f} ms, "
              f"misses {result.missed_deadlines}")

    print(f"\nacross 32 seconds the station committed {total_resolved} "
          f"avoidance turns and never missed a half-second deadline.")
    print(f"{total_unresolved} drones remain in conflict — in a dense "
          "swarm the +-30-degree horizontal manoeuvre cannot always "
          "separate traffic; the paper notes altitude changes handle the "
          "remainder in practice.")


if __name__ == "__main__":
    main()
