#!/usr/bin/env python3
"""Dulles demo: the STARAN associative processor working a live airfield.

Goodyear Aerospace demonstrated STARAN performing ATM at the Dulles
airfield to the FAA in 1972 (paper Section 3).  This example restages
that demonstration on the AP model: a radar "scope" view of the moving
traffic, the per-period tracking correlations, and the collision board
after each major cycle — all while the AP holds every half-second
deadline.

Run:  python examples/dulles_demo.py
"""

import numpy as np

from repro import Simulation
from repro.core import constants as C

SCOPE = 24  # characters per scope axis


def radar_scope(sim: Simulation) -> str:
    """ASCII radar scope: '.' empty sky, 'A' aircraft, '!' conflict."""
    grid = [["." for _ in range(SCOPE)] for _ in range(SCOPE)]
    scale = C.AIRFIELD_SIZE_NM / SCOPE
    for i in range(sim.n_aircraft):
        col = int((sim.fleet.x[i] + C.GRID_HALF_NM) / scale)
        row = int((C.GRID_HALF_NM - sim.fleet.y[i]) / scale)
        col = min(max(col, 0), SCOPE - 1)
        row = min(max(row, 0), SCOPE - 1)
        grid[row][col] = "!" if sim.fleet.col[i] else "A"
    return "\n".join(" ".join(row) for row in grid)


def main() -> None:
    sim = Simulation(n_aircraft=192, backend="ap:staran", seed=1972)
    print("STARAN AP at Dulles — 192 aircraft under control")
    print(sim.backend.describe()["machine"])
    print()
    print(radar_scope(sim))

    for cycle in range(3):
        result = sim.step_major_cycle()
        s = result.summary()
        t23 = result.task23_times()
        print(f"\nmajor cycle {cycle + 1}: "
              f"16 tracking runs (mean {s['task1_mean_s'] * 1e3:.2f} ms), "
              f"collision pass {t23[0] * 1e3:.2f} ms, "
              f"missed deadlines: {s['missed_deadlines']}")
        last = result.periods[-1]
        print(f"  conflicts resolved this cycle: "
              f"{last.task23.stats['resolved']} "
              f"(critical pairs found: {last.task23.stats['critical_conflicts']})")

    print("\nscope after 24 seconds of flight:")
    print(radar_scope(sim))
    print("\nevery deadline met — the synchronous AP never wavers.")


if __name__ == "__main__":
    main()
