"""Backend name registry: strings like ``"cuda:titan-x-pascal"``.

Factories are registered lazily so importing :mod:`repro` does not drag
in every machine model; each architecture package registers itself on
first use via :func:`resolve_backend`.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Union

from .base import Backend
from .reference import ReferenceBackend

__all__ = ["register_backend", "resolve_backend", "available_backends", "all_platform_names"]

_FACTORIES: Dict[str, Callable[[], Backend]] = {}
_BOOTSTRAPPED = False


def register_backend(name: str, factory: Callable[[], Backend]) -> None:
    """Register a backend factory under a unique registry name."""
    if name in _FACTORIES:
        raise ValueError(f"backend {name!r} already registered")
    _FACTORIES[name] = factory


def _bootstrap() -> None:
    """Import every architecture package once so they self-register."""
    global _BOOTSTRAPPED
    if _BOOTSTRAPPED:
        return
    _BOOTSTRAPPED = True
    register_backend("reference", ReferenceBackend)
    # Architecture packages register their configurations on import.
    from .. import ap as _ap  # noqa: F401
    from .. import cuda as _cuda  # noqa: F401
    from .. import mimd as _mimd  # noqa: F401
    from .. import simd as _simd  # noqa: F401
    from .. import vector as _vector  # noqa: F401


def available_backends() -> List[str]:
    """Sorted registry names of every known platform."""
    _bootstrap()
    return sorted(_FACTORIES)


def all_platform_names() -> List[str]:
    """The six platforms of the paper's comparison, in plotting order."""
    _bootstrap()
    return [
        "cuda:geforce-9800-gt",
        "cuda:gtx-880m",
        "cuda:titan-x-pascal",
        "ap:staran",
        "simd:clearspeed-csx600",
        "mimd:xeon-16",
    ]


def resolve_backend(spec: Union[str, Backend, None]) -> Backend:
    """Turn a registry name / instance / None into a backend instance."""
    if spec is None:
        return ReferenceBackend()
    if isinstance(spec, Backend):
        return spec
    if isinstance(spec, str):
        if spec.startswith("search:"):
            # Design-space candidate specs (see repro.search.space) are
            # self-describing strings, so pool workers can resolve a
            # fresh instance per cell exactly like registry names.
            from ..search.space import backend_from_spec

            return backend_from_spec(spec)
        _bootstrap()
        factory = _FACTORIES.get(spec)
        if factory is None:
            known = ", ".join(available_backends())
            raise KeyError(f"unknown backend {spec!r}; known backends: {known}")
        return factory()
    raise TypeError(f"cannot resolve backend from {type(spec).__name__}")
