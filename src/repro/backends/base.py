"""The backend protocol every simulated architecture implements.

A *backend* is one platform from the paper's comparison: a specific
NVIDIA card, the ClearSpeed SIMD, the STARAN associative processor, the
16-core Xeon, or the plain NumPy reference.  All of them:

* mutate the :class:`~repro.core.types.FleetState` with **bit-identical
  results** (the algorithms are the same; only the machine differs), and
* return a :class:`~repro.core.types.TaskTiming` whose ``seconds`` field
  is the *modelled* execution time on that architecture.

The functional-equivalence requirement is what lets the repository test
all four machine models against the reference oracle.
"""

from __future__ import annotations

import abc
from typing import TYPE_CHECKING, Any, Dict

from ..core.collision import DetectionMode
from ..core.types import FleetState, RadarFrame, TaskTiming

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.trace import CollisionRecord, TracePeriod

__all__ = ["Backend"]


class Backend(abc.ABC):
    """Abstract architecture backend for the three ATM tasks."""

    #: registry identifier, e.g. ``"cuda:titan-x-pascal"``.
    name: str = "abstract"

    #: True when repeated runs on identical input produce identical
    #: modelled times (the paper's determinism property; False for MIMD).
    deterministic_timing: bool = True

    #: True when the backend can charge its cost ledgers from a recorded
    #: :class:`~repro.core.trace.FunctionalTrace` without re-running the
    #: :mod:`repro.core` algorithms (see docs/performance.md).
    supports_trace_replay: bool = False

    @abc.abstractmethod
    def track_and_correlate(self, fleet: FleetState, frame: RadarFrame) -> TaskTiming:
        """Run Task 1 in place; return the platform's modelled timing."""

    @abc.abstractmethod
    def detect_and_resolve(
        self,
        fleet: FleetState,
        mode: DetectionMode = DetectionMode.SIGNED,
    ) -> TaskTiming:
        """Run fused Task 2+3 in place; return modelled timing."""

    # ------------------------------------------------------------------
    # trace replay (cost-only re-execution)
    # ------------------------------------------------------------------

    def track_timing_from_trace(self, period: "TracePeriod") -> TaskTiming:
        """Charge the Task-1 ledger from one recorded trace period.

        Must return a :class:`TaskTiming` byte-identical (after canonical
        JSON serialization) to what :meth:`track_and_correlate` returns
        on the fleet/frame state the period was recorded from.
        """
        raise NotImplementedError(f"{self.name} does not support trace replay")

    def collision_timing_from_trace(self, collision: "CollisionRecord") -> TaskTiming:
        """Charge the Task-2+3 ledger from the recorded collision pass."""
        raise NotImplementedError(f"{self.name} does not support trace replay")

    # ------------------------------------------------------------------
    # shared helpers
    # ------------------------------------------------------------------

    def _task_span(self, task: str, n_aircraft: int):
        """Open the mandatory per-invocation tracing span (see repro.obs).

        Every backend wraps its task body in ``with self._task_span(...)``
        so a profile of *any* platform shows the same top-level tree:
        one ``task1``/``task23`` span per invocation, category ``task``,
        with wall time recorded automatically and modelled time
        attributed by the backend.  A no-op when no collector is active.
        """
        from ..obs import span

        return span(task, cat="task", platform=self.name, n_aircraft=n_aircraft)

    def describe(self) -> Dict[str, Any]:
        """Human-readable platform description (overridden per machine).

        Always includes ``peak_throughput_ops_per_s``; the reference
        backend's 0.0 sentinel ("not a machine model") is reported as
        the number it is — consumers must not divide by it blindly.
        """
        return {
            "name": self.name,
            "deterministic_timing": self.deterministic_timing,
            "peak_throughput_ops_per_s": self.peak_throughput_ops_per_s(),
        }

    def peak_throughput_ops_per_s(self) -> float:
        """Peak useful-operation throughput, for §7.2-style normalization.

        Subclasses return their architecture's peak rate (e.g. CUDA
        cores x clock, PEs x clock).  The reference backend reports 0.0
        meaning "not a machine model".
        """
        return 0.0

    # ------------------------------------------------------------------
    # cost-model fingerprint (see docs/parallel-and-caching.md)
    # ------------------------------------------------------------------

    def fingerprint_payload(self) -> Dict[str, Any]:
        """The data the cost-model fingerprint is computed over.

        ``describe()`` is the contract surface here: every constant that
        feeds a backend's timing model must appear in its description
        (clocks, core/PE counts, per-op costs, block size, ...), because
        the result cache treats two backends with equal payloads as
        interchangeable.  The package version is included so a release
        that recalibrates models invalidates all prior cache entries.
        """
        from .. import __version__
        from ..core.canonical import canonicalize

        return {
            "describe": canonicalize(self.describe()),
            "library_version": __version__,
        }

    def fingerprint(self) -> str:
        """Stable hex digest of :meth:`fingerprint_payload`.

        Equal across processes and dict key orderings; changed by any
        edit to the values ``describe()`` reports (and nothing else).
        """
        from ..core.canonical import fingerprint_of

        return fingerprint_of(self.fingerprint_payload())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} {self.name!r}>"
