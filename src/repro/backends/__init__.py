"""Architecture backend abstraction and registry."""

from .base import Backend
from .reference import ReferenceBackend
from .registry import (
    all_platform_names,
    available_backends,
    register_backend,
    resolve_backend,
)

__all__ = [
    "Backend",
    "ReferenceBackend",
    "all_platform_names",
    "available_backends",
    "register_backend",
    "resolve_backend",
]
