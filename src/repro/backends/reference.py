"""The NumPy reference backend — the functional oracle.

This backend simply calls the :mod:`repro.core` algorithms.  Its timing
model is a deliberately simple sequential-machine estimate (useful-op
count over a nominal scalar rate); it exists so the reference can be
scheduled and plotted next to the real machine models, not to model any
paper platform.
"""

from __future__ import annotations

from typing import Any, Dict

from ..core import constants as C
from ..core.collision import DetectionMode
from ..core.resolution import detect_and_resolve as core_detect_and_resolve
from ..core.tracking import correlate as core_correlate
from ..core.types import FleetState, RadarFrame, TaskTiming, TimingBreakdown
from ..obs import span as obs_span
from .base import Backend

__all__ = ["ReferenceBackend"]

#: Nominal sequential machine: one useful operation per nanosecond.
_SECONDS_PER_OP = 1e-9

#: Rough useful operations per radar-aircraft gate test.
_OPS_PER_GATE_TEST = 8.0

#: Rough useful operations per Batcher pair check (Eqs. 1-6 + gates).
_OPS_PER_PAIR_CHECK = 30.0


class ReferenceBackend(Backend):
    """Sequential NumPy oracle used by tests and as a comparison point."""

    name = "reference"
    deterministic_timing = True
    supports_trace_replay = True

    def _charge_task1(self, task, n: int, frame_n: int, stats) -> TaskTiming:
        # A sequential machine scans every (radar, aircraft) pair each
        # executed round, plus per-aircraft setup and commit work.
        scan_ops = _OPS_PER_GATE_TEST * frame_n * n * stats.rounds_executed
        linear_ops = 12.0 * n
        seconds = (scan_ops + linear_ops) * _SECONDS_PER_OP
        detail = {
            "reference.scan": scan_ops * _SECONDS_PER_OP,
            "reference.linear": linear_ops * _SECONDS_PER_OP,
        }
        with obs_span("reference.scan", cat="reference", ops=scan_ops) as sp:
            sp.add_modelled(detail["reference.scan"])
        with obs_span("reference.linear", cat="reference", ops=linear_ops) as sp:
            sp.add_modelled(detail["reference.linear"])
        task.add_modelled(seconds)
        return TaskTiming(
            task="task1",
            platform=self.name,
            n_aircraft=n,
            seconds=seconds,
            breakdown=TimingBreakdown(compute=seconds),
            stats={
                "rounds": stats.rounds_executed,
                "candidate_pairs": stats.total_candidate_pairs,
                "committed": stats.committed,
                "discarded_radars": stats.discarded_radars,
                "dropped_aircraft": stats.dropped_aircraft,
            },
            detail=detail,
        )

    def _charge_task23(self, task, n: int, det, res) -> TaskTiming:
        pair_ops = _OPS_PER_PAIR_CHECK * det.pairs_checked
        trial_ops = _OPS_PER_PAIR_CHECK * res.trials_evaluated * n
        seconds = (pair_ops + trial_ops) * _SECONDS_PER_OP
        detail = {
            "reference.pairs": pair_ops * _SECONDS_PER_OP,
            "reference.trials": trial_ops * _SECONDS_PER_OP,
        }
        with obs_span("reference.pairs", cat="reference", ops=pair_ops) as sp:
            sp.add_modelled(detail["reference.pairs"])
        with obs_span("reference.trials", cat="reference", ops=trial_ops) as sp:
            sp.add_modelled(detail["reference.trials"])
        task.add_modelled(seconds)
        return TaskTiming(
            task="task23",
            platform=self.name,
            n_aircraft=n,
            seconds=seconds,
            breakdown=TimingBreakdown(compute=seconds),
            stats={
                "conflicts": det.conflicts,
                "critical_conflicts": det.critical_conflicts,
                "flagged": det.flagged_aircraft,
                "resolved": res.resolved,
                "unresolved": res.unresolved,
                "trials": res.trials_evaluated,
            },
            detail=detail,
        )

    def track_and_correlate(self, fleet: FleetState, frame: RadarFrame) -> TaskTiming:
        with self._task_span("task1", fleet.n) as task:
            with obs_span("core.correlate", cat="core"):
                stats = core_correlate(fleet, frame)
            return self._charge_task1(task, fleet.n, frame.n, stats)

    def detect_and_resolve(
        self,
        fleet: FleetState,
        mode: DetectionMode = DetectionMode.SIGNED,
    ) -> TaskTiming:
        with self._task_span("task23", fleet.n) as task:
            with obs_span("core.detect_and_resolve", cat="core"):
                det, res = core_detect_and_resolve(fleet, mode)
            return self._charge_task23(task, fleet.n, det, res)

    def track_timing_from_trace(self, period) -> TaskTiming:
        with self._task_span("task1", period.n_aircraft) as task:
            return self._charge_task1(
                task, period.n_aircraft, period.frame_n, period.stats
            )

    def collision_timing_from_trace(self, collision) -> TaskTiming:
        with self._task_span("task23", collision.n_aircraft) as task:
            return self._charge_task23(
                task, collision.n_aircraft, collision.det, collision.res
            )

    def describe(self) -> Dict[str, Any]:
        info = super().describe()
        info.update(
            kind="sequential reference",
            seconds_per_op=_SECONDS_PER_OP,
            ops_per_gate_test=_OPS_PER_GATE_TEST,
            ops_per_pair_check=_OPS_PER_PAIR_CHECK,
        )
        return info
