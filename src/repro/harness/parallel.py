"""Sharded execution of the measurement matrix, with deterministic merge.

The paper's sweep figures time every platform at every fleet size.  The
cells of that (backend, n) matrix are independent — each one builds its
own fleet from the master seed and its own backend instance from the
registry — so they can run anywhere in any order.  This module is the
engine behind ``sweep(..., jobs=N)``:

* every cell is a **shard**: ``(registry name, fleet size)`` plus the
  shared task parameters;
* shards whose key is in the :class:`~repro.harness.cache.ResultCache`
  are served in the parent process without touching a cost model;
* remaining shards run on a ``ProcessPoolExecutor`` when ``jobs > 1``
  (registry-name specs only — live :class:`~repro.backends.base.Backend`
  *instances* may carry state, so they always run in the parent, in
  submission order);
* results are merged **by matrix position, never by completion order**,
  so the assembled :class:`~repro.harness.sweep.SweepData` is
  byte-identical for any worker count — the parallel-determinism tests
  assert exactly that.

Every shard emits one ``harness.shard`` span (category ``harness``) on
the parent's :mod:`repro.obs` collector, carrying the platform, fleet
size, result source (``cache`` / ``pool`` / ``inline``) and the shard's
modelled seconds.  See docs/parallel-and-caching.md.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

from ..obs import count as obs_count
from ..obs import span as obs_span
from .cache import ResultCache, TraceStore

__all__ = [
    "SweepOptions",
    "current_options",
    "sweep_options",
    "measure_cells",
]


# ---------------------------------------------------------------------------
# ambient options: how the harness should execute sweeps
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SweepOptions:
    """Ambient execution policy consulted by ``sweep``/``measure_platform``.

    Installed with :func:`sweep_options`; the report runner uses this to
    thread ``--jobs``/``--cache-dir`` through every experiment without
    widening each generator's signature.
    """

    #: worker processes for sweep shards (1 = serial, in-process).
    jobs: int = 1
    #: result cache, or None to measure everything.
    cache: Optional[ResultCache] = None
    #: run the functional simulation once per cell and replay every
    #: backend's cost model from the shared trace (byte-identical output;
    #: see docs/performance.md).  Off = re-execute repro.core per backend.
    trace: bool = True
    #: on-disk tier for functional traces, or None for in-process only.
    traces: Optional[TraceStore] = None


_OPTIONS: ContextVar[SweepOptions] = ContextVar(
    "repro_sweep_options", default=SweepOptions()
)

#: sentinel distinguishing "not passed" from an explicit None/False.
_KEEP = object()


def current_options() -> SweepOptions:
    """The ambient :class:`SweepOptions` (defaults: serial, no cache)."""
    return _OPTIONS.get()


@contextmanager
def sweep_options(
    *,
    jobs: Optional[int] = None,
    cache: Any = _KEEP,
    trace: Optional[bool] = None,
    traces: Any = _KEEP,
) -> Iterator[SweepOptions]:
    """Scope different sweep-execution options over a ``with`` block."""
    base = _OPTIONS.get()
    new = SweepOptions(
        jobs=base.jobs if jobs is None else max(1, int(jobs)),
        cache=base.cache if cache is _KEEP else (cache or None),
        trace=base.trace if trace is None else bool(trace),
        traces=base.traces if traces is _KEEP else (traces or None),
    )
    token = _OPTIONS.set(new)
    try:
        yield new
    finally:
        _OPTIONS.reset(token)


# ---------------------------------------------------------------------------
# the shard worker (runs in pool processes; must stay module-level picklable)
# ---------------------------------------------------------------------------


def _measure_shard(
    spec: str,
    n: int,
    seed: int,
    periods: int,
    mode_value: str,
    trace_payload: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """Measure one (registry name, fleet size) cell; return its dict form.

    Runs in a worker process: resolves a *fresh* backend from the
    registry, so the cell is a pure function of its arguments, and
    returns plain JSON-able data (never pickled numpy state).  The
    worker never touches the cache — the parent owns all cache traffic
    so hit/miss counters and writes stay in one process.

    ``trace_payload`` is the dict form of the cell's
    :class:`~repro.core.trace.FunctionalTrace` (the parent computes each
    distinct fleet size once, possibly on this same pool); when given the
    worker replays cost models from it instead of re-running the
    functional simulation.  ``None`` forces direct execution — workers
    never consult ambient policy, so shard results are pure functions of
    the argument tuple.
    """
    from ..core.collision import DetectionMode
    from ..core.trace import FunctionalTrace
    from .sweep import measure_platform

    trace: Any = False
    if trace_payload is not None:
        trace = FunctionalTrace.from_dict(trace_payload)
    m = measure_platform(
        spec,
        n,
        seed=seed,
        periods=periods,
        mode=DetectionMode(mode_value),
        cache=False,
        trace=trace,
    )
    return m.to_dict()


def _compute_trace_shard(
    n: int, seed: int, periods: int, mode_value: str
) -> Dict[str, Any]:
    """Run the functional simulation for one fleet size in a worker."""
    from ..core.collision import DetectionMode
    from ..core.trace import compute_trace

    return compute_trace(
        n, seed=seed, periods=periods, mode=DetectionMode(mode_value)
    ).to_dict()


# ---------------------------------------------------------------------------
# the engine
# ---------------------------------------------------------------------------


def _modelled_seconds(measurement) -> float:
    return float(sum(measurement.task1_seconds)) + float(measurement.task23.seconds)


def _emit_shard(platform: str, n: int, source: str, jobs: int, measurement) -> None:
    """One ``harness.shard`` span + counters on the parent collector."""
    with obs_span(
        "harness.shard",
        cat="harness",
        platform=platform,
        n_aircraft=n,
        source=source,
        jobs=jobs,
    ) as sp:
        sp.add_modelled(_modelled_seconds(measurement))
    obs_count("harness.shards")
    if source == "cache":
        obs_count("harness.shards_cached")
    else:
        obs_count("harness.shards_measured")


def measure_cells(
    specs: Sequence[Any],
    ns: Sequence[int],
    *,
    seed: int,
    periods: int,
    mode: Any,
    jobs: int = 1,
    cache: Optional[ResultCache] = None,
) -> Tuple[List[str], List[List[Any]]]:
    """Measure every (spec, n) cell of the sweep matrix.

    Returns ``(names, rows)`` where ``names[i]`` is the resolved
    platform name of ``specs[i]`` and ``rows[i][j]`` the measurement of
    ``specs[i]`` at ``ns[j]`` — positional, regardless of how and where
    each shard actually ran.
    """
    from ..backends.registry import resolve_backend
    from .sweep import PlatformMeasurement, measure_platform

    jobs = max(1, int(jobs))
    resolved = [resolve_backend(spec) for spec in specs]
    names = [b.name for b in resolved]
    mode_value = str(getattr(mode, "value", mode))

    rows: List[List[Optional[PlatformMeasurement]]] = [
        [None] * len(ns) for _ in specs
    ]
    #: shards still to measure: (i, j, spec, cache key or None)
    pending: List[Tuple[int, int, Any, Optional[str]]] = []

    for i, spec in enumerate(specs):
        for j, n in enumerate(ns):
            key = None
            if cache is not None and (
                isinstance(spec, str) or resolved[i].deterministic_timing
            ):
                key = cache.key_for(
                    resolved[i], n=n, seed=seed, periods=periods, mode=mode
                )
                hit = cache.get(key)
                if hit is not None:
                    rows[i][j] = hit
                    _emit_shard(names[i], n, "cache", jobs, hit)
                    continue
            pending.append((i, j, spec, key))

    # Registry-name shards may cross the process boundary; instances run
    # in the parent (they can carry state the fork would then discard).
    poolable = [p for p in pending if isinstance(p[2], str)]
    inline = [p for p in pending if not isinstance(p[2], str)]

    if jobs > 1 and len(poolable) > 1:
        opts = current_options()
        with ProcessPoolExecutor(max_workers=min(jobs, len(poolable))) as pool:
            # Functional traces first: each distinct fleet size runs its
            # simulation once (sharded across the same pool), and every
            # measure shard below replays cost models from the payload.
            payload_by_n: Dict[int, Dict[str, Any]] = {}
            if opts.trace:
                from ..core.trace import FunctionalTrace
                from .sweep import _lookup_trace, _remember_trace

                missing: List[int] = []
                for n_val in sorted({ns[j] for (_, j, _, _) in poolable}):
                    t = _lookup_trace(
                        n_val, seed=seed, periods=periods, mode=mode, traces=opts.traces
                    )
                    if t is not None:
                        payload_by_n[n_val] = t.to_dict()
                    else:
                        missing.append(n_val)
                trace_futures = [
                    (n_val, pool.submit(_compute_trace_shard, n_val, seed, periods, mode_value))
                    for n_val in missing
                ]
                for n_val, future in trace_futures:
                    with obs_span(
                        "harness.trace",
                        cat="harness",
                        n_aircraft=n_val,
                        source="pool",
                        jobs=jobs,
                    ):
                        payload = future.result()
                    obs_count("harness.trace.computed")
                    payload_by_n[n_val] = payload
                    _remember_trace(FunctionalTrace.from_dict(payload), opts.traces)
            futures = [
                pool.submit(
                    _measure_shard,
                    spec,
                    ns[j],
                    seed,
                    periods,
                    mode_value,
                    payload_by_n.get(ns[j]),
                )
                for (_, j, spec, _) in poolable
            ]
            for (i, j, _, key), future in zip(poolable, futures):
                with obs_span(
                    "harness.shard",
                    cat="harness",
                    platform=names[i],
                    n_aircraft=ns[j],
                    source="pool",
                    jobs=jobs,
                ) as sp:
                    m = PlatformMeasurement.from_dict(future.result())
                    sp.add_modelled(_modelled_seconds(m))
                obs_count("harness.shards")
                obs_count("harness.shards_measured")
                rows[i][j] = m
                if cache is not None and key is not None:
                    cache.put(key, m)
    else:
        inline = poolable + inline  # preserve matrix order below

    for i, j, spec, key in sorted(inline, key=lambda p: (p[0], p[1])):
        with obs_span(
            "harness.shard",
            cat="harness",
            platform=names[i],
            n_aircraft=ns[j],
            source="inline",
            jobs=jobs,
        ) as sp:
            m = measure_platform(
                spec, ns[j], seed=seed, periods=periods, mode=mode, cache=False
            )
            sp.add_modelled(_modelled_seconds(m))
        obs_count("harness.shards")
        obs_count("harness.shards_measured")
        rows[i][j] = m
        if cache is not None and key is not None:
            cache.put(key, m)

    return names, rows
