"""Sharded execution of the measurement matrix, with deterministic merge.

The paper's sweep figures time every platform at every fleet size.  The
cells of that (backend, n) matrix are independent — each one builds its
own fleet from the master seed and its own backend instance from the
registry — so they can run anywhere in any order.  This module is the
engine behind ``sweep(..., jobs=N)``:

* every cell is a **shard**: ``(registry name, fleet size)`` plus the
  shared task parameters;
* shards whose key is in the :class:`~repro.harness.cache.ResultCache`
  (or in a resumed :class:`~repro.harness.faults.SweepJournal`) are
  served in the parent process without touching a cost model;
* remaining shards run on a ``ProcessPoolExecutor`` when ``jobs > 1``
  (registry-name specs only — live :class:`~repro.backends.base.Backend`
  *instances* may carry state, so they always run in the parent, in
  submission order);
* results are merged **by matrix position, never by completion order**,
  so the assembled :class:`~repro.harness.sweep.SweepData` is
  byte-identical for any worker count — the parallel-determinism tests
  assert exactly that.

**Fault tolerance.**  The executor survives dying workers, hung shards
and transient I/O errors (docs/robustness.md): a failed shard retries
under the ambient :class:`~repro.harness.faults.RetryPolicy` with
deterministic backoff; a crashed worker breaks the whole
``ProcessPoolExecutor``, so the pool is rebuilt (bounded times) and the
uncollected shards resubmitted; when the rebuild budget is exhausted —
a worker that dies repeatedly — the remaining shards degrade to inline
execution in the parent.  Because every cell is a pure function of its
arguments, **any path that eventually completes produces the same
bytes**, so the determinism contract extends across the fault paths.
Faults can be injected deterministically for tests and chaos runs via
``sweep_options(faults=FaultPlan(...))`` or
``atm-repro report --inject-faults SPEC``.

Every shard emits one ``harness.shard`` span (category ``harness``) on
the parent's :mod:`repro.obs` collector, carrying the platform, fleet
size, result source (``cache`` / ``journal`` / ``pool`` / ``inline``)
and the shard's modelled seconds; every failure emits a
``harness.fault`` span plus ``harness.fault.*`` counters.  See
docs/parallel-and-caching.md.
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as FuturesTimeout
from concurrent.futures.process import BrokenProcessPool
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

from ..analysis.deadlines import record_cell_metrics
from ..obs import SpanRecord
from ..obs import count as obs_count
from ..obs import get_collector as obs_get_collector
from ..obs import is_active as obs_is_active
from ..obs import span as obs_span
from ..obs.metrics import metric_inc
from .cache import ResultCache, TraceStore
from .faults import FaultPlan, RetryPolicy, SweepJournal, fault_count, fault_span

__all__ = [
    "SweepOptions",
    "current_options",
    "sweep_options",
    "measure_cells",
]


# ---------------------------------------------------------------------------
# ambient options: how the harness should execute sweeps
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SweepOptions:
    """Ambient execution policy consulted by ``sweep``/``measure_platform``.

    Installed with :func:`sweep_options`; the report runner uses this to
    thread ``--jobs``/``--cache-dir``/``--inject-faults``/``--resume``
    through every experiment without widening each generator's
    signature.
    """

    #: worker processes for sweep shards (1 = serial, in-process).
    jobs: int = 1
    #: result cache, or None to measure everything.
    cache: Optional[ResultCache] = None
    #: run the functional simulation once per cell and replay every
    #: backend's cost model from the shared trace (byte-identical output;
    #: see docs/performance.md).  Off = re-execute repro.core per backend.
    trace: bool = True
    #: on-disk tier for functional traces, or None for in-process only.
    traces: Optional[TraceStore] = None
    #: candidate-pruning policy for functional passes ("auto"/"on"/"off";
    #: see repro.core.sweepline).  Outputs are bit-identical either way.
    pruning: str = "auto"
    #: memory envelope for trace materialization/shipping, or None for
    #: the default (repro.core.trace.DEFAULT_TRACE_BUDGET).
    trace_budget: Optional[Any] = None
    #: working-set budget for the detection pass's chunking (bytes), or
    #: None for the collision module's default; results are invariant.
    detect_chunk_bytes: Optional[int] = None
    #: retry/backoff/timeout policy for failed shards.
    retry: RetryPolicy = RetryPolicy()
    #: deterministic fault injector (chaos tests, --inject-faults).
    faults: Optional[FaultPlan] = None
    #: checkpoint journal of completed cells (--resume), or None.
    journal: Optional[SweepJournal] = None


_OPTIONS: ContextVar[SweepOptions] = ContextVar(
    "repro_sweep_options", default=SweepOptions()
)

#: sentinel distinguishing "not passed" from an explicit None/False.
_KEEP = object()


def _resolve(value: Any, base: Any) -> Any:
    """Option resolution: _KEEP inherits, None/False disable, else use.

    Identity checks on purpose — a perfectly valid store or journal may
    be *empty* (``len() == 0``), and emptiness must not read as "off".
    """
    if value is _KEEP:
        return base
    if value is None or value is False:
        return None
    return value


def current_options() -> SweepOptions:
    """The ambient :class:`SweepOptions` (defaults: serial, no cache)."""
    return _OPTIONS.get()


@contextmanager
def sweep_options(
    *,
    jobs: Optional[int] = None,
    cache: Any = _KEEP,
    trace: Optional[bool] = None,
    traces: Any = _KEEP,
    pruning: Optional[str] = None,
    trace_budget: Any = _KEEP,
    detect_chunk_bytes: Any = _KEEP,
    retry: Optional[RetryPolicy] = None,
    faults: Any = _KEEP,
    journal: Any = _KEEP,
) -> Iterator[SweepOptions]:
    """Scope different sweep-execution options over a ``with`` block."""
    base = _OPTIONS.get()
    new = SweepOptions(
        jobs=base.jobs if jobs is None else max(1, int(jobs)),
        cache=_resolve(cache, base.cache),
        trace=base.trace if trace is None else bool(trace),
        traces=_resolve(traces, base.traces),
        pruning=base.pruning if pruning is None else str(
            getattr(pruning, "value", pruning)
        ),
        trace_budget=_resolve(trace_budget, base.trace_budget),
        detect_chunk_bytes=_resolve(detect_chunk_bytes, base.detect_chunk_bytes),
        retry=base.retry if retry is None else retry,
        faults=_resolve(faults, base.faults),
        journal=_resolve(journal, base.journal),
    )
    token = _OPTIONS.set(new)
    try:
        yield new
    finally:
        _OPTIONS.reset(token)


# ---------------------------------------------------------------------------
# the shard worker (runs in pool processes; must stay module-level picklable)
# ---------------------------------------------------------------------------


def _obey_fault_directive(inject: Optional[Tuple[str, float]]) -> None:
    """Realise a parent-issued fault directive inside a worker process.

    The parent's FaultPlan makes every decision; the worker just obeys,
    so shard results stay pure functions of the argument tuple.
    """
    if inject is None:
        return
    kind, param = inject
    if kind == "crash":
        import os as _os

        _os._exit(3)
    elif kind == "timeout":
        time.sleep(param)
    elif kind == "oserror":
        raise OSError("injected transient fault")


def _measure_shard(
    spec: str,
    n: int,
    seed: int,
    periods: int,
    mode_value: str,
    trace_payload: Optional[Any] = None,
    inject: Optional[Tuple[str, float]] = None,
    collect: bool = False,
    pruning: str = "auto",
    detect_chunk_bytes: Optional[int] = None,
) -> Dict[str, Any]:
    """Measure one (registry name, fleet size) cell; return its dict form.

    Runs in a worker process: resolves a *fresh* backend from the
    registry, so the cell is a pure function of its arguments, and
    returns plain JSON-able data (never pickled numpy state).  The
    worker never touches the cache — the parent owns all cache traffic
    so hit/miss counters and writes stay in one process.

    ``trace_payload`` is the dict form of the cell's
    :class:`~repro.core.trace.FunctionalTrace` (the parent computes each
    distinct fleet size once, possibly on this same pool); when given the
    worker replays cost models from it instead of re-running the
    functional simulation.  The sentinel string ``"self"`` tells the
    worker to compute its own trace in-process (under ``pruning`` /
    ``detect_chunk_bytes``) — used when the payload would exceed the
    trace budget's shipping bound, since traces are pure functions of
    the cell parameters.  ``None`` forces direct execution — workers
    never consult ambient policy, so shard results are pure functions of
    the argument tuple.

    ``inject`` is a parent-issued chaos directive ``(kind, param)``
    realised before any work happens: ``crash`` kills this process,
    ``timeout`` sleeps ``param`` seconds (then proceeds normally),
    ``oserror`` raises a transient ``OSError``.

    ``collect=True`` runs the cell under a private in-worker collector
    and returns ``{"measurement": ..., "obs": {spans, events, counters}}``
    instead of the bare measurement dict, so the parent can adopt the
    worker's task/kernel spans under its shard span
    (:meth:`~repro.obs.Collector.adopt`) and the merged trace looks the
    same as a serial run's.
    """
    _obey_fault_directive(inject)
    from ..core.collision import DetectionMode
    from ..core.trace import FunctionalTrace, compute_trace
    from ..obs import Collector, collecting
    from .sweep import measure_platform

    trace: Any = False
    if trace_payload == "self":
        trace = compute_trace(
            n,
            seed=seed,
            periods=periods,
            mode=DetectionMode(mode_value),
            pruning=pruning,
            detect_chunk_bytes=detect_chunk_bytes,
        )
    elif trace_payload is not None:
        trace = FunctionalTrace.from_dict(trace_payload)

    def run():
        return measure_platform(
            spec,
            n,
            seed=seed,
            periods=periods,
            mode=DetectionMode(mode_value),
            cache=False,
            trace=trace,
            journal=False,
        )

    if not collect:
        return run().to_dict()
    with collecting(Collector()) as c:
        m = run()
    return {
        "measurement": m.to_dict(),
        "obs": {
            "spans": [s.to_event() for s in c.spans],
            "events": c.events,
            "counters": dict(c.counters),
        },
    }


def _compute_trace_shard(
    n: int,
    seed: int,
    periods: int,
    mode_value: str,
    pruning: str = "auto",
    detect_chunk_bytes: Optional[int] = None,
) -> Dict[str, Any]:
    """Run the functional simulation for one fleet size in a worker."""
    from ..core.collision import DetectionMode
    from ..core.trace import compute_trace

    return compute_trace(
        n,
        seed=seed,
        periods=periods,
        mode=DetectionMode(mode_value),
        pruning=pruning,
        detect_chunk_bytes=detect_chunk_bytes,
    ).to_dict()


# ---------------------------------------------------------------------------
# the engine
# ---------------------------------------------------------------------------


def _modelled_seconds(measurement) -> float:
    return float(sum(measurement.task1_seconds)) + float(measurement.task23.seconds)


def _emit_shard(
    platform: str,
    n: int,
    source: str,
    jobs: int,
    measurement,
    worker_obs: Optional[Dict[str, Any]] = None,
) -> None:
    """One ``harness.shard`` span + counters + SLO metrics per shard.

    ``worker_obs`` is the observability payload a pool worker collected
    under ``_measure_shard(collect=True)``; its spans/events/counters
    are adopted under this shard span, so the parent trace carries the
    worker's task/kernel subtree exactly as a serial run would.  The
    deadline metrics are labeled only by (platform, n, logical source),
    never by the shard source, so the deterministic snapshot is
    byte-identical whichever path served the cell.
    """
    collector = obs_get_collector()
    with obs_span(
        "harness.shard",
        cat="harness",
        platform=platform,
        n_aircraft=n,
        source=source,
        jobs=jobs,
    ) as sp:
        sp.add_modelled(_modelled_seconds(measurement))
    if worker_obs is not None and collector is not None:
        collector.adopt(
            [SpanRecord.from_event(e) for e in worker_obs["spans"]],
            worker_obs["events"],
            worker_obs["counters"],
            parent_id=sp.span_id,
            wall_offset_s=sp._t0 - collector.epoch,
        )
    obs_count("harness.shards")
    metric_inc("atm_shards", source=source)
    if source == "cache":
        obs_count("harness.shards_cached")
    elif source == "journal":
        obs_count("harness.fault.resumed_cells")
    else:
        obs_count("harness.shards_measured")
    # Cells served without running measure_platform in this process
    # (cache / journal / pool) record their deadline metrics here —
    # exactly once per returned cell.  Freshly-computed cells record
    # inside measure_platform instead.  Worker-collected traces already
    # carry the deadline.miss events, so suppress re-emission then.
    record_cell_metrics(
        platform,
        n,
        measurement.task1_seconds,
        measurement.task23.seconds,
        events=worker_obs is None,
    )


def _shard_id(platform: str, n: int) -> str:
    """Stable identity of one cell for fault-plan decisions."""
    return f"{platform}@{n}"


class _PoolBox:
    """A ProcessPoolExecutor plus its bounded rebuild budget.

    A crashed worker breaks the *whole* pool (``BrokenProcessPool``
    fails every outstanding future), so recovery means building a fresh
    pool and resubmitting the uncollected shards.  The budget bounds
    how often that is worth doing before the executor gives up on pool
    execution entirely and degrades to inline.
    """

    def __init__(self, jobs: int, rebuild_budget: int) -> None:
        self.jobs = jobs
        self.rebuild_budget = max(1, int(rebuild_budget))
        self.rebuilds = 0
        self.pool = ProcessPoolExecutor(max_workers=jobs)

    def rebuild(self) -> bool:
        """Replace a broken pool; False when the budget is exhausted."""
        self.pool.shutdown(wait=False, cancel_futures=True)
        self.rebuilds += 1
        if self.rebuilds >= self.rebuild_budget:
            return False
        self.pool = ProcessPoolExecutor(max_workers=self.jobs)
        return True

    def shutdown(self) -> None:
        self.pool.shutdown(wait=True)


def _pool_trace_payloads(
    box: _PoolBox,
    wanted_ns: List[int],
    *,
    seed: int,
    periods: int,
    mode: Any,
    mode_value: str,
    jobs: int,
    opts: SweepOptions,
) -> Dict[int, Dict[str, Any]]:
    """Each distinct fleet size's functional trace, computed once.

    Sharded across the pool; a pool failure here falls back to an
    inline functional pass (counted), never aborts the sweep.  Cells
    whose trace would exceed the budget's shipping bound get the
    ``"self"`` sentinel instead of a payload — each worker recomputes
    its own (pruned) trace rather than receive a multi-GB dict.
    """
    from ..core.trace import (
        DEFAULT_TRACE_BUDGET,
        FunctionalTrace,
        compute_trace,
        estimate_trace_bytes,
    )
    from .sweep import _lookup_trace, _remember_trace

    budget = opts.trace_budget or DEFAULT_TRACE_BUDGET
    payload_by_n: Dict[int, Any] = {}
    missing: List[int] = []
    for n_val in wanted_ns:
        if not budget.allows_payload(estimate_trace_bytes(n_val, periods)):
            payload_by_n[n_val] = "self"
            continue
        t = _lookup_trace(
            n_val,
            seed=seed,
            periods=periods,
            mode=mode,
            traces=opts.traces,
            pruning=opts.pruning,
        )
        if t is not None:
            payload_by_n[n_val] = t.to_dict()
        else:
            missing.append(n_val)
    trace_futures = [
        (
            n_val,
            box.pool.submit(
                _compute_trace_shard,
                n_val,
                seed,
                periods,
                mode_value,
                opts.pruning,
                opts.detect_chunk_bytes,
            ),
        )
        for n_val in missing
    ]
    broken = False
    for n_val, future in trace_futures:
        source = "pool"
        if broken:
            payload = None
        else:
            try:
                payload = future.result()
            except (BrokenProcessPool, OSError):
                fault_span(
                    "worker-crash", "worker_crashes", stage="trace", n_aircraft=n_val
                )
                broken = True
                payload = None
        if payload is None:
            fault_span(
                "degraded-to-inline", "degraded_to_inline", stage="trace",
                n_aircraft=n_val,
            )
            source = "compute"
            payload = compute_trace(
                n_val,
                seed=seed,
                periods=periods,
                mode=mode,
                pruning=opts.pruning,
                detect_chunk_bytes=opts.detect_chunk_bytes,
            ).to_dict()
        with obs_span(
            "harness.trace",
            cat="harness",
            n_aircraft=n_val,
            source=source,
            jobs=jobs,
        ):
            pass
        obs_count("harness.trace.computed")
        metric_inc("atm_trace_requests", source=source)
        payload_by_n[n_val] = payload
        _remember_trace(
            FunctionalTrace.from_dict(payload), opts.traces, budget=budget
        )
    if broken and not box.rebuild():
        raise _PoolGone
    return payload_by_n


class _PoolGone(Exception):
    """Internal: the pool rebuild budget is exhausted; degrade to inline."""


def _execute_pool_shards(
    poolable: List[Tuple[int, int, Any, Optional[str]]],
    names: List[str],
    ns: Sequence[int],
    rows: List[List[Any]],
    *,
    seed: int,
    periods: int,
    mode: Any,
    mode_value: str,
    jobs: int,
    cache: Optional[ResultCache],
    journal: Optional[SweepJournal],
    opts: SweepOptions,
) -> List[Tuple[int, int, Any, Optional[str]]]:
    """Run the poolable shards; return the ones degraded to inline.

    Results are collected **in submission order** (never completion
    order) and written straight into ``rows`` by matrix position.  A
    shard that exhausts its retry budget — or outlives the pool rebuild
    budget — is handed back for inline execution instead of aborting
    the sweep.
    """
    from .sweep import PlatformMeasurement

    retry = opts.retry
    plan = opts.faults
    box = _PoolBox(min(jobs, len(poolable)), rebuild_budget=retry.max_attempts)
    degraded: List[Tuple[int, int, Any, Optional[str]]] = []
    try:
        payload_by_n: Dict[int, Dict[str, Any]] = {}
        if opts.trace:
            try:
                payload_by_n = _pool_trace_payloads(
                    box,
                    sorted({ns[j] for (_, j, _, _) in poolable}),
                    seed=seed,
                    periods=periods,
                    mode=mode,
                    mode_value=mode_value,
                    jobs=jobs,
                    opts=opts,
                )
            except _PoolGone:
                for shard in poolable:
                    fault_span(
                        "degraded-to-inline", "degraded_to_inline",
                        platform=names[shard[0]], n_aircraft=ns[shard[1]],
                    )
                return poolable

        attempts = [0] * len(poolable)
        # Ship worker traces home only when someone is listening.
        collect = obs_is_active()

        def submit(idx: int):
            i, j, spec, _ = poolable[idx]
            inject = None
            if plan is not None:
                kind = plan.worker_fault(_shard_id(names[i], ns[j]), attempts[idx])
                if kind is not None:
                    fault_count("injected")
                    inject = (kind, plan.hang_s)
            return box.pool.submit(
                _measure_shard,
                spec,
                ns[j],
                seed,
                periods,
                mode_value,
                payload_by_n.get(ns[j]),
                inject,
                collect,
                opts.pruning,
                opts.detect_chunk_bytes,
            )

        futures = [submit(idx) for idx in range(len(poolable))]

        for idx in range(len(poolable)):
            i, j, spec, key = poolable[idx]
            shard_attrs = dict(platform=names[i], n_aircraft=ns[j])
            result: Optional[Dict[str, Any]] = None
            while result is None:
                try:
                    result = futures[idx].result(timeout=retry.timeout_s)
                except FuturesTimeout:
                    fault_span(
                        "timeout", "timeouts", attempt=attempts[idx], **shard_attrs
                    )
                except BrokenProcessPool:
                    fault_span(
                        "worker-crash", "worker_crashes",
                        attempt=attempts[idx], **shard_attrs,
                    )
                    if not box.rebuild():
                        # The pool keeps dying: run everything still
                        # uncollected in the parent instead.
                        remaining = poolable[idx:]
                        for shard in remaining:
                            fault_span(
                                "degraded-to-inline", "degraded_to_inline",
                                platform=names[shard[0]],
                                n_aircraft=ns[shard[1]],
                            )
                        degraded.extend(remaining)
                        return degraded
                    # Fresh pool: resubmit every uncollected shard (their
                    # futures died with the old pool).
                    attempts[idx] += 1
                    fault_count("retries")
                    time.sleep(retry.backoff_for(attempts[idx] - 1))
                    for k in range(idx, len(poolable)):
                        futures[k] = submit(k)
                    continue
                except OSError as exc:
                    fault_span(
                        "os-error", "oserrors",
                        attempt=attempts[idx], error=str(exc), **shard_attrs,
                    )
                else:
                    continue
                # timeout or transient OSError: retry this shard alone.
                attempts[idx] += 1
                if attempts[idx] >= retry.max_attempts:
                    fault_span(
                        "degraded-to-inline", "degraded_to_inline", **shard_attrs
                    )
                    degraded.append(poolable[idx])
                    break
                fault_count("retries")
                time.sleep(retry.backoff_for(attempts[idx] - 1))
                futures[idx] = submit(idx)
            if result is None:
                continue  # degraded; the inline loop finishes it
            worker_obs = result.get("obs") if collect else None
            m = PlatformMeasurement.from_dict(
                result["measurement"] if collect else result
            )
            _emit_shard(names[i], ns[j], "pool", jobs, m, worker_obs=worker_obs)
            rows[i][j] = m
            if cache is not None and key is not None:
                cache.put(key, m)
            if journal is not None and key is not None:
                journal.record(key, m)
    finally:
        box.shutdown()
    return degraded


def measure_cells(
    specs: Sequence[Any],
    ns: Sequence[int],
    *,
    seed: int,
    periods: int,
    mode: Any,
    jobs: int = 1,
    cache: Optional[ResultCache] = None,
) -> Tuple[List[str], List[List[Any]]]:
    """Measure every (spec, n) cell of the sweep matrix.

    Returns ``(names, rows)`` where ``names[i]`` is the resolved
    platform name of ``specs[i]`` and ``rows[i][j]`` the measurement of
    ``specs[i]`` at ``ns[j]`` — positional, regardless of how and where
    each shard actually ran (cache, journal, pool, inline, or any of
    the fault-recovery paths in between).
    """
    from ..backends.registry import resolve_backend
    from .sweep import PlatformMeasurement, measure_platform

    opts = current_options()
    retry = opts.retry
    plan = opts.faults
    journal = opts.journal
    jobs = max(1, int(jobs))
    resolved = [resolve_backend(spec) for spec in specs]
    names = [b.name for b in resolved]
    mode_value = str(getattr(mode, "value", mode))

    rows: List[List[Optional[PlatformMeasurement]]] = [
        [None] * len(ns) for _ in specs
    ]
    #: shards still to measure: (i, j, spec, cell key or None)
    pending: List[Tuple[int, int, Any, Optional[str]]] = []

    from ..core.sweepline import resolve_pruning

    for i, spec in enumerate(specs):
        for j, n in enumerate(ns):
            key = None
            if (cache is not None or journal is not None) and (
                isinstance(spec, str) or resolved[i].deterministic_timing
            ):
                key = ResultCache.key_for(
                    resolved[i],
                    n=n,
                    seed=seed,
                    periods=periods,
                    mode=mode,
                    pruning="on" if resolve_pruning(opts.pruning, n) else "off",
                )
                if cache is not None:
                    hit = cache.get(key)
                    if hit is not None:
                        rows[i][j] = hit
                        _emit_shard(names[i], n, "cache", jobs, hit)
                        if journal is not None:
                            journal.record(key, hit)
                        continue
                if journal is not None:
                    checkpointed = journal.lookup(key)
                    if checkpointed is not None:
                        rows[i][j] = checkpointed
                        _emit_shard(names[i], n, "journal", jobs, checkpointed)
                        if cache is not None:
                            cache.put(key, checkpointed)
                        continue
            pending.append((i, j, spec, key))

    # Registry-name shards may cross the process boundary; instances run
    # in the parent (they can carry state the fork would then discard).
    poolable = [p for p in pending if isinstance(p[2], str)]
    inline = [p for p in pending if not isinstance(p[2], str)]

    if jobs > 1 and len(poolable) > 1:
        degraded = _execute_pool_shards(
            poolable,
            names,
            ns,
            rows,
            seed=seed,
            periods=periods,
            mode=mode,
            mode_value=mode_value,
            jobs=jobs,
            cache=cache,
            journal=journal,
            opts=opts,
        )
        inline = degraded + inline
    else:
        inline = poolable + inline  # preserve matrix order below

    for i, j, spec, key in sorted(inline, key=lambda p: (p[0], p[1])):
        sid = _shard_id(names[i], ns[j])
        attempt = 0
        while True:
            try:
                # Inline chaos is limited to transient OSErrors — a
                # "crash" here would kill the parent itself, and hangs
                # cannot be preempted in-process.
                if plan is not None and plan.should_inject("oserror", sid, attempt):
                    fault_count("injected")
                    raise OSError("injected transient fault")
                with obs_span(
                    "harness.shard",
                    cat="harness",
                    platform=names[i],
                    n_aircraft=ns[j],
                    source="inline",
                    jobs=jobs,
                ) as sp:
                    m = measure_platform(
                        spec, ns[j], seed=seed, periods=periods, mode=mode,
                        cache=False, journal=False,
                    )
                    sp.add_modelled(_modelled_seconds(m))
                break
            except OSError as exc:
                fault_span(
                    "os-error", "oserrors",
                    platform=names[i], n_aircraft=ns[j],
                    attempt=attempt, error=str(exc),
                )
                attempt += 1
                if attempt >= retry.max_attempts:
                    raise
                fault_count("retries")
                time.sleep(retry.backoff_for(attempt - 1))
        obs_count("harness.shards")
        metric_inc("atm_shards", source="inline")
        obs_count("harness.shards_measured")
        rows[i][j] = m
        if cache is not None and key is not None:
            cache.put(key, m)
        if journal is not None and key is not None:
            journal.record(key, m)

    return names, rows
