"""Generators for every evaluation artifact of the paper (Figs. 4-9 + §6.2).

Each ``figN()`` function regenerates the data behind the corresponding
figure and returns a structured object with a ``render()`` method; the
CLI (``python -m repro.harness.cli figN``) prints it.  The experiment
ids match DESIGN.md's per-experiment index.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..analysis.ascii_plot import ascii_chart
from ..analysis.curvefit import LinearityVerdict, assess_linearity
from ..analysis.deadlines import DeadlineReport, DeadlineRow, record_schedule_metrics
from ..analysis.normalize import NormalizedSeries, efficiency_ranking, normalize_times
from ..analysis.tables import format_seconds, render_series, render_table
from ..backends.registry import all_platform_names, resolve_backend
from ..core.radar import generate_radar_frame
from ..core.scheduler import run_schedule
from ..core.setup import setup_flight
from ..cuda.backend import CudaBackend
from ..cuda.device import DEVICES
from .sweep import (
    DEFAULT_NS_ALL_PLATFORMS,
    DEFAULT_NS_NVIDIA,
    SweepData,
    measure_platform,
    sweep,
)

__all__ = [
    "FigureData",
    "FitFigure",
    "fig4",
    "fig5",
    "fig6",
    "fig7",
    "fig8",
    "fig9",
    "deadline_table",
    "determinism_table",
    "ablation_blocksize",
    "ablation_fused",
    "ablation_throughput",
    "ablation_resolution",
    "ablation_smem",
    "ext_viability",
    "ext_vector",
    "EXPERIMENTS",
    "run_experiment",
]

NVIDIA_PLATFORMS = tuple(f"cuda:{key}" for key in DEVICES)


@dataclass
class FigureData:
    """A timing-curve figure: one series per platform."""

    figure_id: str
    title: str
    task: str
    ns: tuple
    series: Dict[str, List[float]]
    #: linearity verdict per platform (the paper's curve-shape claim).
    verdicts: Dict[str, LinearityVerdict] = field(default_factory=dict)
    #: platform -> raw per-cell measurements aligned with ``ns``.  These
    #: are the byte-identity anchor for the sweep service: a cell served
    #: by ``atm-repro serve`` re-encoded with the report serializer is
    #: byte-equal to the same entry here (docs/service.md).
    measurements: Dict[str, list] = field(default_factory=dict)

    def render(self, plot: bool = False) -> str:
        out = [render_series(f"{self.figure_id}: {self.title}", self.ns, self.series)]
        if plot:
            from ..core import constants as C

            out.append("")
            out.append(
                ascii_chart(
                    list(self.ns),
                    self.series,
                    title=f"{self.figure_id} ({self.task})",
                    hline=C.PERIOD_SECONDS,
                    hline_label="half-second period budget",
                )
            )
        if self.verdicts:
            out.append("")
            for platform, verdict in self.verdicts.items():
                out.append(f"  {platform}: {verdict.describe()}")
        return "\n".join(out)

    def crossovers(self):
        """Where the platform curves trade places (see
        :mod:`repro.analysis.crossover`)."""
        from ..analysis.crossover import pairwise_crossovers

        return pairwise_crossovers(self.ns, self.series)

    def to_dict(self) -> dict:
        return {
            "experiment": self.figure_id,
            "title": self.title,
            "task": self.task,
            "ns": list(self.ns),
            "series": {k: [float(y) for y in v] for k, v in self.series.items()},
            "measurements": {
                platform: [m.to_dict() for m in rows]
                for platform, rows in self.measurements.items()
            },
            "verdicts": {
                k: {
                    "verdict": v.verdict,
                    "growth_exponent": v.growth_exponent,
                    "linear_adj_r2": v.linear.adj_r_squared,
                    "quadratic_adj_r2": v.quadratic.adj_r_squared,
                    "quadratic_coefficient": v.quadratic.leading_coefficient,
                }
                for k, v in self.verdicts.items()
            },
            "crossovers": [
                {
                    "n_aircraft": c.n_aircraft,
                    "faster_after": c.faster_after,
                    "seconds": c.seconds,
                }
                for c in self.crossovers()
            ],
        }


def _figure_from_sweep(
    figure_id: str,
    title: str,
    task: str,
    data: SweepData,
    *,
    fit: bool = True,
) -> FigureData:
    series = {}
    verdicts = {}
    for platform in data.platforms():
        ys = (
            data.task1_series(platform)
            if task == "task1"
            else data.task23_series(platform)
        )
        series[platform] = ys
        if fit and len(data.ns) >= 4:
            verdicts[platform] = assess_linearity(data.ns, ys)
    return FigureData(
        figure_id=figure_id,
        title=title,
        task=task,
        ns=data.ns,
        series=series,
        verdicts=verdicts,
        measurements={p: list(rows) for p, rows in data.measurements.items()},
    )


def fig4(
    ns: Sequence[int] = DEFAULT_NS_ALL_PLATFORMS, *, seed: int = 2018, periods: int = 3
) -> FigureData:
    """Fig. 4: Task 1 timings on all six platforms."""
    data = sweep(all_platform_names(), ns, seed=seed, periods=periods)
    return _figure_from_sweep(
        "fig4", "Task 1 (tracking & correlation) on all platforms", "task1", data
    )


def fig5(
    ns: Sequence[int] = DEFAULT_NS_NVIDIA, *, seed: int = 2018, periods: int = 3
) -> FigureData:
    """Fig. 5: Task 1 timings on the three NVIDIA cards."""
    data = sweep(NVIDIA_PLATFORMS, ns, seed=seed, periods=periods)
    return _figure_from_sweep(
        "fig5", "Task 1 (tracking & correlation) on the NVIDIA cards", "task1", data
    )


def fig6(
    ns: Sequence[int] = DEFAULT_NS_ALL_PLATFORMS, *, seed: int = 2018, periods: int = 3
) -> FigureData:
    """Fig. 6: Tasks 2+3 timings on all six platforms."""
    data = sweep(all_platform_names(), ns, seed=seed, periods=periods)
    return _figure_from_sweep(
        "fig6", "Tasks 2+3 (collision detection & resolution) on all platforms",
        "task23", data,
    )


def fig7(
    ns: Sequence[int] = DEFAULT_NS_NVIDIA, *, seed: int = 2018, periods: int = 3
) -> FigureData:
    """Fig. 7: Tasks 2+3 timings on the three NVIDIA cards."""
    data = sweep(NVIDIA_PLATFORMS, ns, seed=seed, periods=periods)
    return _figure_from_sweep(
        "fig7", "Tasks 2+3 (collision detection & resolution) on the NVIDIA cards",
        "task23", data,
    )


@dataclass
class FitFigure:
    """A single-platform curve-fit figure (Figs. 8 and 9)."""

    figure_id: str
    title: str
    platform: str
    ns: tuple
    seconds: tuple
    verdict: LinearityVerdict

    def render(self) -> str:
        rows = [
            (
                n,
                format_seconds(s),
                format_seconds(max(float(self.verdict.linear.predict(n)), 0.0)),
                format_seconds(max(float(self.verdict.quadratic.predict(n)), 0.0)),
            )
            for n, s in zip(self.ns, self.seconds)
        ]
        table = render_table(
            ["aircraft", "measured", "linear fit", "quadratic fit"], rows
        )
        return "\n".join(
            [
                f"{self.figure_id}: {self.title}",
                table,
                "",
                f"  linear    {self.verdict.linear.describe()}",
                f"  quadratic {self.verdict.quadratic.describe()}",
                f"  {self.verdict.describe()}",
            ]
        )

    def to_dict(self) -> dict:
        v = self.verdict
        return {
            "experiment": self.figure_id,
            "title": self.title,
            "platform": self.platform,
            "ns": list(self.ns),
            "seconds": [float(y) for y in self.seconds],
            "verdict": v.verdict,
            "growth_exponent": v.growth_exponent,
            "linear": {
                "coefficients": list(v.linear.coefficients),
                "sse": v.linear.sse,
                "r2": v.linear.r_squared,
                "adj_r2": v.linear.adj_r_squared,
                "rmse": v.linear.rmse,
            },
            "quadratic": {
                "coefficients": list(v.quadratic.coefficients),
                "sse": v.quadratic.sse,
                "r2": v.quadratic.r_squared,
                "adj_r2": v.quadratic.adj_r_squared,
                "rmse": v.quadratic.rmse,
            },
        }


def fig8(
    ns: Sequence[int] = DEFAULT_NS_NVIDIA, *, seed: int = 2018, periods: int = 3
) -> FitFigure:
    """Fig. 8: near-linear curve fit for Task 1 on the GTX 880M."""
    rows = [
        measure_platform("cuda:gtx-880m", n, seed=seed, periods=periods) for n in ns
    ]
    ys = tuple(m.task1_mean_s for m in rows)
    return FitFigure(
        figure_id="fig8",
        title="Task 1 timings on the GTX 880M with curve fits",
        platform="cuda:gtx-880m",
        ns=tuple(ns),
        seconds=ys,
        verdict=assess_linearity(ns, ys),
    )


def fig9(
    ns: Sequence[int] = DEFAULT_NS_NVIDIA, *, seed: int = 2018, periods: int = 3
) -> FitFigure:
    """Fig. 9: quadratic (small-coefficient) fit for Tasks 2+3 on the 9800 GT."""
    rows = [
        measure_platform("cuda:geforce-9800-gt", n, seed=seed, periods=periods)
        for n in ns
    ]
    ys = tuple(m.task23_s for m in rows)
    return FitFigure(
        figure_id="fig9",
        title="Tasks 2+3 timings on the GeForce 9800 GT with curve fits",
        platform="cuda:geforce-9800-gt",
        ns=tuple(ns),
        seconds=ys,
        verdict=assess_linearity(ns, ys),
    )


# ---------------------------------------------------------------------------
# §6.2 tables
# ---------------------------------------------------------------------------


@dataclass
class DeadlineTable:
    """tbl-deadline: the §6.2 deadline-miss comparison."""

    report: DeadlineReport

    def render(self) -> str:
        rows = [
            (
                r.platform,
                r.n_aircraft,
                r.periods,
                r.missed,
                r.skipped,
                f"{r.miss_rate:.1%}",
                f"{r.worst_period_ms:.2f}",
                f"{r.mean_utilization:.1%}",
            )
            for r in self.report.rows
        ]
        table = render_table(
            [
                "platform",
                "aircraft",
                "periods",
                "missed",
                "skipped",
                "miss rate",
                "worst period (ms)",
                "utilization",
            ],
            rows,
        )
        lines = ["tbl-deadline: hard-deadline behaviour over full major cycles", table, ""]
        lines.extend("  " + s for s in self.report.summary_lines())
        never = self.report.platforms_never_missing()
        missing = self.report.platforms_missing()
        lines.append(f"  never miss: {', '.join(never) if never else '(none)'}")
        lines.append(f"  miss: {', '.join(missing) if missing else '(none)'}")
        return "\n".join(lines)

    def to_dict(self) -> dict:
        return {
            "experiment": "tbl-deadline",
            "rows": [
                {
                    "platform": r.platform,
                    "n_aircraft": r.n_aircraft,
                    "periods": r.periods,
                    "missed": r.missed,
                    "skipped": r.skipped,
                    "worst_period_ms": r.worst_period_ms,
                }
                for r in self.report.rows
            ],
            "never_miss": self.report.platforms_never_missing(),
            "miss": self.report.platforms_missing(),
        }


def deadline_table(
    ns: Sequence[int] = (960, 1920, 2880, 3840),
    *,
    platforms: Optional[Sequence[str]] = None,
    major_cycles: int = 2,
    seed: int = 2018,
) -> DeadlineTable:
    """Run full hard-deadline schedules and tabulate misses per platform."""
    platforms = list(platforms) if platforms is not None else all_platform_names()
    rows: List[DeadlineRow] = []
    for name in platforms:
        backend = resolve_backend(name)
        for n in ns:
            fleet = setup_flight(n, seed)
            result = run_schedule(
                backend, fleet, major_cycles=major_cycles, seed=seed
            )
            record_schedule_metrics(result)
            rows.append(DeadlineRow.from_schedule(result))
    return DeadlineTable(DeadlineReport(rows))


@dataclass
class DeterminismTable:
    """tbl-determinism: repeated identical runs, identical timings?"""

    repeats: int
    rows: List[tuple]

    def render(self) -> str:
        table = render_table(
            ["platform", "task1 spread", "task23 spread", "deterministic"],
            self.rows,
        )
        return (
            f"tbl-determinism: timing spread over {self.repeats} identical runs\n"
            + table
        )

    def to_dict(self) -> dict:
        return {
            "experiment": "tbl-determinism",
            "repeats": self.repeats,
            "rows": [list(r) for r in self.rows],
        }


def determinism_table(
    n: int = 960,
    *,
    repeats: int = 3,
    platforms: Optional[Sequence[str]] = None,
    seed: int = 2018,
) -> DeterminismTable:
    """Re-run identical inputs and compare the modelled timings.

    The paper: "we would get the exact same timings again and again for
    each machine" (NVIDIA); the MIMD machine cannot offer that.
    """
    platforms = list(platforms) if platforms is not None else all_platform_names()
    rows = []
    for name in platforms:
        backend = resolve_backend(name)
        t1s, t23s = [], []
        for _ in range(repeats):
            fleet = setup_flight(n, seed)
            frame = generate_radar_frame(fleet, seed, 0)
            t1s.append(backend.track_and_correlate(fleet, frame).seconds)
            t23s.append(backend.detect_and_resolve(fleet).seconds)
        spread1 = max(t1s) - min(t1s)
        spread23 = max(t23s) - min(t23s)
        deterministic = spread1 == 0.0 and spread23 == 0.0
        rows.append(
            (
                name,
                format_seconds(spread1),
                format_seconds(spread23),
                "yes" if deterministic else "NO",
            )
        )
    return DeterminismTable(repeats=repeats, rows=rows)


# ---------------------------------------------------------------------------
# ablations
# ---------------------------------------------------------------------------


@dataclass
class AblationTable:
    experiment_id: str
    title: str
    headers: tuple
    rows: List[tuple]
    notes: List[str] = field(default_factory=list)

    def render(self) -> str:
        out = [f"{self.experiment_id}: {self.title}", render_table(self.headers, self.rows)]
        if self.notes:
            out.append("")
            out.extend("  " + n for n in self.notes)
        return "\n".join(out)

    def to_dict(self) -> dict:
        return {
            "experiment": self.experiment_id,
            "title": self.title,
            "headers": list(self.headers),
            "rows": [list(r) for r in self.rows],
            "notes": list(self.notes),
        }


def ablation_blocksize(
    n: int = 1920,
    *,
    block_sizes: Sequence[int] = (32, 64, 96, 128, 256),
    device: str = "titan-x-pascal",
    seed: int = 2018,
) -> AblationTable:
    """abl-blocksize: the paper's 96-threads-per-block choice."""
    rows = []
    for bs in block_sizes:
        backend = CudaBackend(device, block_size=bs)
        m = measure_platform(backend, n, seed=seed, periods=2)
        rows.append(
            (
                bs,
                format_seconds(m.task1_mean_s),
                format_seconds(m.task23_s),
            )
        )
    return AblationTable(
        experiment_id="abl-blocksize",
        title=f"threads-per-block sweep on {device} at n={n}",
        headers=("block size", "task1", "task2+3"),
        rows=rows,
        notes=[
            "the paper fixes 96 threads/block (matching the ClearSpeed chip's"
            " 96 PEs); this sweep shows how sensitive the cards actually are",
        ],
    )


def ablation_fused(
    ns: Sequence[int] = (480, 960, 1920, 3840),
    *,
    device: str = "titan-x-pascal",
    seed: int = 2018,
) -> AblationTable:
    """abl-fused: fused CheckCollisionPath vs split Task-2/Task-3 kernels."""
    rows = []
    for n in ns:
        fused = measure_platform(
            CudaBackend(device), n, seed=seed, periods=1
        ).task23_s
        split = measure_platform(
            CudaBackend(device, fused_collision_kernel=False), n, seed=seed, periods=1
        ).task23_s
        rows.append(
            (
                n,
                format_seconds(fused),
                format_seconds(split),
                f"{split / fused:.2f}x",
            )
        )
    return AblationTable(
        experiment_id="abl-fused",
        title=f"fused vs split collision kernels on {device}",
        headers=("aircraft", "fused", "split (+transfers)", "split/fused"),
        rows=rows,
        notes=[
            "Section 4: fusing Tasks 2+3 into one kernel 'cuts overhead for"
            " memory and data transfer' — the split design pays a host round"
            " trip of the drone table plus an extra launch",
        ],
    )


def ablation_throughput(
    ns: Sequence[int] = (480, 960, 1920),
    *,
    task: str = "task23",
    seed: int = 2018,
) -> AblationTable:
    """abl-throughput: §7.2's throughput-normalized comparison."""
    platforms = all_platform_names()
    data = sweep(platforms, ns, seed=seed, periods=2)
    reference = resolve_backend("ap:staran").peak_throughput_ops_per_s()
    normalized: List[NormalizedSeries] = []
    for name in platforms:
        backend = resolve_backend(name)
        ys = (
            data.task23_series(name) if task == "task23" else data.task1_series(name)
        )
        normalized.append(
            normalize_times(
                name, ns, ys, backend.peak_throughput_ops_per_s(), reference
            )
        )
    rows = []
    for s in normalized:
        for n, raw, norm in zip(s.ns, s.raw_seconds, s.normalized_seconds):
            rows.append(
                (
                    s.platform,
                    n,
                    format_seconds(raw),
                    format_seconds(norm),
                    f"{s.peak_ops_per_s:.3g}",
                )
            )
    ranking = efficiency_ranking(normalized)
    return AblationTable(
        experiment_id="abl-throughput",
        title=f"throughput-normalized {task} times (reference: ap:staran)",
        headers=("platform", "aircraft", "raw", "normalized", "peak ops/s"),
        rows=rows,
        notes=[
            "normalized = raw x peak(platform) / peak(reference): time the"
            " platform would need at the reference's peak throughput",
            "efficiency ranking (best first): " + ", ".join(ranking),
        ],
    )


def ext_viability(
    ns: Sequence[int] = (480, 960, 1920),
    *,
    platforms: Optional[Sequence[str]] = None,
    major_cycles: int = 2,
    seed: int = 2018,
) -> AblationTable:
    """ext-viability: the paper's §7.1 question — does the *complete*
    ATM task set (collision + terrain + approach + advisories) still
    hold every deadline, and does it bend the curves?"""
    from ..extended import TerrainGrid, run_extended_schedule

    platforms = list(platforms) if platforms is not None else all_platform_names()
    grid = TerrainGrid.generate(seed)
    rows = []
    for name in platforms:
        backend = resolve_backend(name)
        for n in ns:
            fleet = setup_flight(n, seed)
            res = run_extended_schedule(
                backend, fleet, terrain=grid, major_cycles=major_cycles, seed=seed
            )
            record_schedule_metrics(res)
            s = res.summary()
            rows.append(
                (
                    name,
                    n,
                    res.missed_deadlines,
                    res.skipped_tasks,
                    format_seconds(s.get("terrain_mean_s", 0.0)),
                    format_seconds(s.get("approach_mean_s", 0.0)),
                    format_seconds(s.get("advisory_mean_s", 0.0)),
                    format_seconds(res.worst_period_seconds),
                )
            )
    return AblationTable(
        experiment_id="ext-viability",
        title="complete ATM task set: deadline viability per platform",
        headers=(
            "platform", "aircraft", "missed", "skipped",
            "terrain", "approach", "advisory", "worst period",
        ),
        rows=rows,
        notes=[
            "the paper's §7.1 future work: add the remaining STARAN ATC"
            " tasks and check the system 'is still viable and will not"
            " miss deadlines'",
        ],
    )


def ablation_resolution(
    n: int = 768,
    *,
    major_cycles: int = 8,
    seed: int = 2018,
    ns=None,  # accepted for CLI uniformity; single-n experiment
) -> AblationTable:
    """abl-resolution: does Task 3 actually improve safety outcomes?

    Runs the same evolving airfield with collision resolution enabled
    and disabled and scores both with the separation-minima safety log
    (losses of separation are what the system exists to prevent)."""
    from ..analysis.safety import SafetyLog
    from ..backends.reference import ReferenceBackend
    from ..core.collision import detect as core_detect
    from ..core.scheduler import run_schedule
    from ..core.types import TaskTiming

    if ns:
        n = ns[0]

    class DetectionOnlyBackend(ReferenceBackend):
        """Task 2 runs, Task 3 is disabled: conflicts are found but
        nobody turns."""

        name = "reference+no-resolution"

        def detect_and_resolve(self, fleet, mode=None):
            stats = core_detect(fleet)
            return TaskTiming(
                task="task23",
                platform=self.name,
                n_aircraft=fleet.n,
                seconds=1e-6,
                stats={"flagged": stats.flagged_aircraft},
            )

    rows = []
    logs = {}
    for label, backend in (
        ("resolution ON", ReferenceBackend()),
        ("resolution OFF", DetectionOnlyBackend()),
    ):
        fleet = setup_flight(n, seed)
        log = SafetyLog()
        log.record(fleet)
        for _ in range(major_cycles):
            run_schedule(backend, fleet, major_cycles=1, seed=seed)
            log.record(fleet)
        logs[label] = log
        s_ = log.summary()
        rows.append(
            (
                label,
                n,
                major_cycles,
                s_["total_loss_events"],
                s_["peak_losses"],
                f"{s_['worst_min_horizontal_nm']:.2f}",
            )
        )
    return AblationTable(
        experiment_id="abl-resolution",
        title=f"safety outcomes with and without Task 3 (n={n}, {major_cycles} cycles)",
        headers=(
            "configuration", "aircraft", "cycles",
            "LoS pair-periods", "peak simultaneous LoS", "worst separation (nm)",
        ),
        rows=rows,
        notes=[
            "LoS = pair below 3 nm horizontally and 1000 ft vertically;",
            "Task 3's +-30-degree turns cannot clear every conflict in"
            " dense synthetic traffic, but they must strictly reduce the"
            " loss-of-separation exposure",
        ],
    )


def ablation_smem(
    ns: Sequence[int] = (480, 960, 1920, 2880),
    *,
    seed: int = 2018,
) -> AblationTable:
    """abl-smem: the paper's global-memory design vs shared-memory tiling.

    Section 5: "the program uses global memory and is not restricted by
    shared memory size, which is what makes it compatible on the old and
    new architecture."  This ablation models the textbook alternative —
    a shared-memory tiled collision kernel — and shows what the paper's
    choice avoids."""
    from ..core.resolution import detect_and_resolve as core_dnr
    from ..cuda.device import DEVICES
    from ..cuda.kernels.check_collision import (
        charge_check_collision,
        charge_check_collision_tiled,
    )

    rows = []
    for n in ns:
        fleet = setup_flight(n, seed)
        det, res = core_dnr(fleet)
        for key, device in DEVICES.items():
            g = charge_check_collision(device, fleet, det, res)
            t = charge_check_collision_tiled(device, fleet, det, res)
            rows.append(
                (
                    f"cuda:{key}",
                    n,
                    format_seconds(g.seconds),
                    format_seconds(t.seconds),
                    f"{t.seconds / g.seconds:.3f}x",
                    g.occupancy.blocks_per_sm,
                    t.occupancy.blocks_per_sm,
                )
            )
    return AblationTable(
        experiment_id="abl-smem",
        title="global-memory kernel vs shared-memory tiled variant (Tasks 2+3)",
        headers=(
            "device", "aircraft", "global", "tiled", "tiled/global",
            "blocks/SM global", "blocks/SM tiled",
        ),
        rows=rows,
        notes=[
            "tiling forces every block to stream the whole flight table"
            " itself and spends shared memory that costs occupancy —"
            " hardest on the CC 1.x card's 16 KiB — while the broadcast"
            " reads it replaces were already cache-served: the paper's"
            " global-memory design wins on every card",
        ],
    )


def ext_vector(
    ns: Sequence[int] = (96, 480, 960, 1920, 3840),
    *,
    seed: int = 2018,
    periods: int = 2,
) -> FigureData:
    """ext-vector: §7.2's wide-vector hypothesis, measured.

    Compares the AVX-512/Xeon Phi models against the best GPU and the
    AP on the fused collision tasks: do commodity vector units deliver
    SIMD-like curves and deadlines?"""
    platforms = (
        "vector:xeon-phi-7250",
        "vector:avx512-16c",
        "cuda:titan-x-pascal",
        "cuda:gtx-880m",
        "ap:staran",
    )
    data = sweep(platforms, ns, seed=seed, periods=periods)
    return _figure_from_sweep(
        "ext-vector",
        "Tasks 2+3 on wide-vector processors vs GPU and AP (paper 7.2)",
        "task23",
        data,
    )


# ---------------------------------------------------------------------------
# experiment registry (per-experiment index of DESIGN.md)
# ---------------------------------------------------------------------------

EXPERIMENTS = {
    "fig4": fig4,
    "fig5": fig5,
    "fig6": fig6,
    "fig7": fig7,
    "fig8": fig8,
    "fig9": fig9,
    "tbl-deadline": deadline_table,
    "tbl-determinism": determinism_table,
    "abl-blocksize": ablation_blocksize,
    "abl-fused": ablation_fused,
    "abl-throughput": ablation_throughput,
    "abl-resolution": ablation_resolution,
    "abl-smem": ablation_smem,
    "ext-viability": ext_viability,
    "ext-vector": ext_vector,
}


def run_experiment(experiment_id: str, **kwargs):
    """Run one experiment from the DESIGN.md index by id."""
    try:
        fn = EXPERIMENTS[experiment_id]
    except KeyError:
        # Name the missing key on the obs collector too, so a traced
        # harness run shows *which* lookup failed, not just that one did.
        from .faults import fault_span

        fault_span(
            "unknown-experiment", "unknown_experiment", experiment=experiment_id
        )
        known = ", ".join(sorted(EXPERIMENTS))
        raise KeyError(
            f"unknown experiment {experiment_id!r}; known: {known}"
        ) from None
    return fn(**kwargs)
