"""Deterministic fault injection, retry policy and sweep checkpointing.

The paper's headline claim is about *dependability*: the AP and the
GPUs never miss an ATM deadline while the Xeon MIMD regularly does
(Section 6.2).  A harness that silently aborts — or silently recomputes
— when a pool worker dies or a cache file rots cannot credibly measure
that.  This module gives the sweep engine the same first-class fault
story the modelled machines get:

* :class:`FaultPlan` — a seeded, **deterministic** injector.  Given the
  same seed and rates it makes the same inject/skip decision for every
  ``(kind, shard, attempt)`` triple, in every process, so chaos tests
  are exactly reproducible and ``atm-repro report --inject-faults SPEC``
  can be replayed bit for bit.  Kinds: ``crash`` (the worker process
  dies), ``timeout`` (the worker hangs past the shard deadline),
  ``oserror`` (a transient ``OSError``), ``corrupt-result`` /
  ``corrupt-trace`` (a stored cache / trace entry is bit-flipped on
  disk after the write).  The service layer adds ``reset`` / ``stall``
  / ``corrupt-journal`` (:data:`SERVICE_FAULT_KINDS`), realised by
  ``atm-repro serve --inject-faults`` instead of the sweep engine.
* :class:`RetryPolicy` — bounded retries with a deterministic
  exponential backoff and an optional per-shard timeout, consulted by
  :func:`repro.harness.parallel.measure_cells`.
* :class:`SweepJournal` — an atomic, append-only, fsynced journal of
  completed measurement cells under the cache dir.  After a crash or
  SIGKILL, ``atm-repro report --resume`` replays the journal and
  recomputes only the unfinished cells.

Because every measurement cell is a pure function of its arguments,
**a retried shard produces the same bytes as an untroubled one** — the
chaos suite (``tests/harness/test_faults.py``) asserts that a sweep
run under injected crashes, hangs and corruption stays byte-identical
to a fault-free serial run.  Every failure path emits a
``harness.fault`` span plus a ``harness.fault.*`` counter on the
:mod:`repro.obs` collector.  See ``docs/robustness.md``.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Any, Dict, Mapping, Optional, Union

from ..core.canonical import fingerprint_of
from ..obs import count as obs_count
from ..obs import span as obs_span
from ..obs.metrics import metric_inc

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .sweep import PlatformMeasurement

__all__ = [
    "FAULT_KINDS",
    "SERVICE_FAULT_KINDS",
    "FaultPlan",
    "RetryPolicy",
    "SweepJournal",
    "decode_journal_line",
    "encode_journal_line",
    "fault_count",
    "fault_span",
    "parse_fault_spec",
]

#: Every injectable fault kind, in the order the executor probes them.
#: The first five are realised by the batch sweep engine; the service
#: layer adds connection resets, stalled handlers and journal bit-flips
#: (``atm-repro serve --inject-faults``, docs/service.md).
FAULT_KINDS = (
    "crash",
    "timeout",
    "oserror",
    "corrupt-result",
    "corrupt-trace",
    "reset",
    "stall",
    "corrupt-journal",
)

#: Fault kinds realised by the service front-end rather than the sweep
#: engine: ``reset`` (the connection is dropped before the response is
#: written), ``stall`` (the handler sleeps ``hang_s`` before answering)
#: and ``corrupt-journal`` (one bit of the request journal is flipped
#: after an append — the torn line must be detected and dropped on
#: resume, never half-read).
SERVICE_FAULT_KINDS = ("reset", "stall", "corrupt-journal")

#: Fault kinds that are realised *inside* a pool worker process (the
#: parent decides, the worker obeys — workers stay pure functions of
#: their argument tuple, exactly like the trace payloads).
WORKER_FAULT_KINDS = ("crash", "timeout", "oserror")


def fault_span(kind: str, counter: str, **attrs: Any) -> None:
    """Emit one ``harness.fault`` span plus its ``harness.fault.*`` counter.

    Every failure path in the harness funnels through here, so a single
    ``report --trace`` shows exactly which shard faulted, how, and on
    which attempt.
    """
    with obs_span("harness.fault", cat="harness", kind=kind, **attrs):
        pass
    obs_count(f"harness.fault.{counter}")
    metric_inc("atm_faults", kind=kind)


def fault_count(counter: str, *, kind: Optional[str] = None) -> None:
    """Bump a ``harness.fault.*`` counter and its labeled metric twin.

    For fault bookkeeping that has no span of its own (injections,
    retries); ``kind`` defaults to the counter name.
    """
    obs_count(f"harness.fault.{counter}")
    metric_inc("atm_faults", kind=kind or counter)


# ---------------------------------------------------------------------------
# retry / backoff policy
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class RetryPolicy:
    """How the executor reacts when a shard fails.

    Backoff is deterministic on purpose — ``backoff_s * 2**attempt``
    with no jitter — so two runs of the same chaos plan retry on the
    same schedule and the determinism contract extends to the fault
    path.
    """

    #: total tries per shard (1 = no retries).
    max_attempts: int = 3
    #: base of the exponential backoff slept before each retry.
    backoff_s: float = 0.05
    #: per-shard deadline when collecting pool results; None waits
    #: forever (timeouts then only arise from injected hangs in tests).
    timeout_s: Optional[float] = None

    def backoff_for(self, attempt: int) -> float:
        """Seconds to sleep before retry number ``attempt`` (0-based)."""
        return self.backoff_s * (2.0 ** max(0, int(attempt)))

    def jittered_backoff_for(
        self,
        attempt: int,
        *,
        seed: int,
        key: str,
        cap_s: Optional[float] = None,
    ) -> float:
        """Capped exponential backoff with **deterministic** jitter.

        The service load generator spreads retry storms with jitter but
        must stay replayable, so the jitter factor is the same SHA-256
        draw the fault injector uses — a pure function of ``(seed, key,
        attempt)``, never a live RNG.  The returned delay is uniform in
        ``[base/2, base)`` where ``base`` is :meth:`backoff_for` capped
        at ``cap_s``.
        """
        base = self.backoff_for(attempt)
        if cap_s is not None:
            base = min(base, float(cap_s))
        return base * (0.5 + 0.5 * _draw(seed, "backoff-jitter", key, attempt))


# ---------------------------------------------------------------------------
# the deterministic injector
# ---------------------------------------------------------------------------


def _draw(seed: int, kind: str, key: str, attempt: int) -> float:
    """Uniform [0, 1) draw, a pure function of its arguments."""
    digest = hashlib.sha256(
        f"{seed}|{kind}|{key}|{attempt}".encode("utf-8")
    ).digest()
    return int.from_bytes(digest[:8], "big") / 2.0**64


@dataclass(frozen=True)
class FaultPlan:
    """Seeded decision table: which shard faults, how, on which attempt.

    ``rates`` maps a fault kind (see :data:`FAULT_KINDS`) to an
    injection probability.  A decision is the SHA-256 hash of
    ``(seed, kind, shard key, attempt)`` mapped onto [0, 1) and compared
    against the rate — no hidden state, no RNG object, so the same plan
    gives the same answers in any process and in any order of queries
    (the property tests pin this).

    By default only attempt 0 of a shard can fault
    (``faulted_attempts=1``): the first retry always succeeds, which is
    what makes "byte-identical to a fault-free run" testable end to
    end.  Raise ``faulted_attempts`` (``attempts=N`` in the spec) to
    exercise retry exhaustion and pool→inline degradation.
    """

    rates: Mapping[str, float] = field(default_factory=dict)
    seed: int = 0
    #: attempts 0..faulted_attempts-1 may fault; later retries run clean.
    faulted_attempts: int = 1
    #: how long an injected hang sleeps in the worker (must exceed the
    #: executor's ``timeout_s`` to register as a timeout).
    hang_s: float = 2.0

    def __post_init__(self) -> None:
        unknown = sorted(set(self.rates) - set(FAULT_KINDS))
        if unknown:
            raise ValueError(
                f"unknown fault kinds {unknown}; known: {list(FAULT_KINDS)}"
            )
        bad = {k: r for k, r in self.rates.items() if not 0.0 <= float(r) <= 1.0}
        if bad:
            raise ValueError(f"fault rates must be within [0, 1]: {bad}")

    # -- decisions ------------------------------------------------------

    def should_inject(self, kind: str, key: str, attempt: int = 0) -> bool:
        """Deterministically decide one ``(kind, shard, attempt)`` triple."""
        if attempt >= self.faulted_attempts:
            return False
        rate = float(self.rates.get(kind, 0.0))
        if rate <= 0.0:
            return False
        if rate >= 1.0:
            return True
        return _draw(self.seed, kind, key, attempt) < rate

    def worker_fault(self, key: str, attempt: int) -> Optional[str]:
        """The fault directive to ship to a pool worker, or None.

        Probed in :data:`WORKER_FAULT_KINDS` order so at most one fault
        fires per attempt.
        """
        for kind in WORKER_FAULT_KINDS:
            if self.should_inject(kind, key, attempt):
                return kind
        return None

    # -- corruption -----------------------------------------------------

    def corrupt(self, path: Union[str, Path]) -> None:
        """Flip one deterministic bit of the file at ``path``.

        The flipped position is a pure function of the plan seed and
        the file name, so repeated runs corrupt the same byte — and the
        store's SHA-256 verification must catch it either way.
        """
        path = Path(path)
        data = bytearray(path.read_bytes())
        if not data:
            data = bytearray(b"\x00")
        pos = int(_draw(self.seed, "corrupt-position", path.name, 0) * len(data))
        pos = min(pos, len(data) - 1)
        data[pos] ^= 0x01
        path.write_bytes(bytes(data))
        fault_count("injected", kind="corrupt")

    # -- serialization --------------------------------------------------

    def to_spec(self) -> str:
        """The ``--inject-faults`` spec string reproducing this plan."""
        parts = [f"{k}={self.rates[k]:g}" for k in FAULT_KINDS if k in self.rates]
        parts.append(f"seed={self.seed}")
        if self.faulted_attempts != 1:
            parts.append(f"attempts={self.faulted_attempts}")
        if self.hang_s != 2.0:
            parts.append(f"hang={self.hang_s:g}")
        return ",".join(parts)


def parse_fault_spec(spec: str) -> FaultPlan:
    """Parse an ``--inject-faults`` spec into a :class:`FaultPlan`.

    Grammar: comma-separated ``kind=rate`` entries (kinds from
    :data:`FAULT_KINDS`, rates in [0, 1]) plus the optional knobs
    ``seed=N``, ``attempts=N`` (how many attempts may fault) and
    ``hang=SECONDS`` (injected hang duration)::

        crash=0.5,timeout=0.25,corrupt-result=1,seed=7
    """
    rates: Dict[str, float] = {}
    seed = 0
    faulted_attempts = 1
    hang_s = 2.0
    for raw in spec.split(","):
        entry = raw.strip()
        if not entry:
            continue
        name, sep, value = entry.partition("=")
        name = name.strip()
        if not sep:
            raise ValueError(f"bad fault spec entry {entry!r}: expected kind=rate")
        try:
            if name == "seed":
                seed = int(value)
            elif name == "attempts":
                faulted_attempts = int(value)
            elif name == "hang":
                hang_s = float(value)
            elif name in FAULT_KINDS:
                rates[name] = float(value)
            else:
                raise ValueError(
                    f"unknown fault kind {name!r}; known: {list(FAULT_KINDS)}"
                    " plus seed=/attempts=/hang="
                )
        except ValueError as exc:
            if "unknown fault kind" in str(exc) or "expected kind" in str(exc):
                raise
            raise ValueError(f"bad fault spec entry {entry!r}: {exc}") from None
    return FaultPlan(
        rates=rates, seed=seed, faulted_attempts=faulted_attempts, hang_s=hang_s
    )


# ---------------------------------------------------------------------------
# the checkpoint journal
# ---------------------------------------------------------------------------


def encode_journal_line(
    record: Mapping[str, Any], *, payload_field: Optional[str] = None
) -> str:
    """One self-verifying journal line (no trailing newline).

    The line carries its own ``sha256`` content digest so a line torn
    by SIGKILL mid-write — or rotted on disk — is detected and dropped
    by :func:`decode_journal_line`, never half-read.  With
    ``payload_field`` the digest covers only that sub-object (the
    :class:`SweepJournal` wire format); without it the digest covers
    the whole record sans the digest itself (the service
    :class:`~repro.service.journal.RequestJournal` format, whose lines
    have more than one shape).
    """
    body = {k: v for k, v in record.items() if k != "sha256"}
    digest_over = body[payload_field] if payload_field else body
    body["sha256"] = fingerprint_of(digest_over)
    return json.dumps(body, sort_keys=True)


def decode_journal_line(
    line: str, *, payload_field: Optional[str] = None
) -> Optional[Dict[str, Any]]:
    """Parse and verify one journal line; None when torn or tampered."""
    try:
        record = json.loads(line)
        if not isinstance(record, dict):
            raise ValueError("journal line is not an object")
        digest = record["sha256"]
        body = {k: v for k, v in record.items() if k != "sha256"}
        digest_over = body[payload_field] if payload_field else body
        if digest != fingerprint_of(digest_over):
            raise ValueError("journal line digest mismatch")
    except (ValueError, KeyError, TypeError):
        return None
    return record


def append_journal_line(path: Union[str, Path], line: str) -> None:
    """Append one line, flushed **and fsynced** before returning.

    Only after the fsync may the caller treat the record as durable —
    both journals call this before acknowledging anything.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "a", encoding="utf-8") as fh:
        fh.write(line + "\n")
        fh.flush()
        os.fsync(fh.fileno())


class SweepJournal:
    """Atomic append-only journal of completed measurement cells.

    One JSON line per completed (backend, fleet-size) cell::

        {"key": <cell fingerprint>, "sha256": <payload digest>,
         "measurement": {...}}

    ``key`` is the same fingerprint the :class:`~repro.harness.cache.ResultCache`
    uses (backend ``describe()`` + task parameters + library version),
    so a journal line can never resurrect a cell whose cost model has
    changed since the crash.  Every line is flushed and fsynced before
    the cell is considered checkpointed, and each line carries its own
    content digest, so a line torn by SIGKILL mid-write is detected and
    dropped on resume — never half-read.

    ``resume=False`` (a fresh run) discards any previous journal;
    ``resume=True`` loads it and serves completed cells via
    :meth:`lookup`, counted on ``harness.fault.resumed_cells``.
    """

    def __init__(self, path: Union[str, Path], *, resume: bool = False) -> None:
        self.path = Path(path)
        self.resume = bool(resume)
        #: cells served from the journal this run.
        self.resumed_cells = 0
        #: torn / corrupt lines dropped while loading.
        self.dropped_lines = 0
        #: cells appended this run.
        self.recorded = 0
        self._entries: Dict[str, Dict[str, Any]] = {}
        self._seen: set = set()
        if self.resume:
            self._load()
        elif self.path.exists():
            self.path.unlink()

    def _load(self) -> None:
        try:
            text = self.path.read_text(encoding="utf-8")
        except FileNotFoundError:
            return
        except OSError:
            fault_span("io-error", "io_errors", path=str(self.path))
            return
        for line in text.splitlines():
            if not line.strip():
                continue
            record = decode_journal_line(line, payload_field="measurement")
            if record is None or "key" not in record:
                # A torn tail from SIGKILL mid-append, or on-disk rot:
                # drop the line, keep the rest — and say so.
                self.dropped_lines += 1
                fault_span("journal-torn-line", "journal_dropped", path=str(self.path))
                continue
            self._entries[record["key"]] = record["measurement"]
            self._seen.add(record["key"])

    def __len__(self) -> int:
        return len(self._entries)

    def lookup(self, key: str) -> Optional["PlatformMeasurement"]:
        """The checkpointed measurement under ``key``, or None (counted)."""
        payload = self._entries.get(key)
        if payload is None:
            return None
        from .sweep import PlatformMeasurement

        self.resumed_cells += 1
        return PlatformMeasurement.from_dict(payload)

    def record(self, key: str, measurement: "PlatformMeasurement") -> None:
        """Append one completed cell (flushed + fsynced before returning)."""
        if key in self._seen:
            return
        payload = measurement.to_dict()
        line = encode_journal_line(
            {"key": key, "measurement": payload}, payload_field="measurement"
        )
        append_journal_line(self.path, line)
        self._seen.add(key)
        self._entries[key] = payload
        self.recorded += 1

    def stats(self) -> Dict[str, Any]:
        return {
            "path": str(self.path),
            "entries": len(self._entries),
            "resumed_cells": self.resumed_cells,
            "recorded": self.recorded,
            "dropped_lines": self.dropped_lines,
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<SweepJournal {str(self.path)!r} entries={len(self._entries)} "
            f"resumed={self.resumed_cells}>"
        )
