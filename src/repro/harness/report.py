"""One-shot reproduction report: run every experiment, save the record.

``build_report`` executes the whole DESIGN.md experiment index —
figures, tables, ablations and the two future-work extensions — and
collects each result's structured data and rendered text into one
document.  ``atm-repro report --out report.json`` is the single command
a reviewer runs to regenerate the paper's evaluation end to end.

A ``quick`` profile (smaller sweeps) finishes in a couple of minutes;
the ``full`` profile uses each experiment's defaults.
"""

from __future__ import annotations

import json
import platform as _platform
import sys
from typing import Any, Dict, Optional

from .. import __version__
from ..backends.registry import available_backends, resolve_backend
from ..core.canonical import canonicalize
from ..obs.metrics import MetricsRegistry, recording
from .figures import EXPERIMENTS
from .parallel import sweep_options

__all__ = ["QUICK_OVERRIDES", "build_report", "render_report", "write_report"]

#: Reduced parameters for the quick profile, per experiment id.
QUICK_OVERRIDES: Dict[str, dict] = {
    "fig4": {"ns": (96, 480, 960, 1440, 1920), "periods": 2},
    "fig5": {"ns": (96, 480, 960, 1920), "periods": 2},
    "fig6": {"ns": (96, 480, 960, 1440, 1920), "periods": 2},
    "fig7": {"ns": (96, 480, 960, 1920), "periods": 2},
    "fig8": {"ns": (96, 480, 960, 1920), "periods": 2},
    "fig9": {"ns": (96, 480, 960, 1920), "periods": 2},
    "tbl-deadline": {"ns": (480, 960, 1920), "major_cycles": 1},
    "tbl-determinism": {"n": 480, "repeats": 2},
    "abl-blocksize": {"n": 960},
    "abl-fused": {"ns": (480, 960)},
    "abl-throughput": {"ns": (480, 960)},
    "abl-resolution": {"n": 480, "major_cycles": 4},
    "abl-smem": {"ns": (480, 960)},
    "ext-viability": {"ns": (480, 960), "major_cycles": 1},
    "ext-vector": {"ns": (96, 480, 960, 1920), "periods": 2},
}


def build_report(
    *,
    quick: bool = True,
    seed: int = 2018,
    only: Optional[list] = None,
    jobs: int = 1,
    cache: Any = None,
    trace: Optional[bool] = None,
    traces: Any = None,
    retry: Any = None,
    faults: Any = None,
    journal: Any = None,
    pruning: Optional[str] = None,
    metrics_registry: Optional[MetricsRegistry] = None,
) -> dict:
    """Run the experiment suite and return the structured report.

    Parameters
    ----------
    quick:
        Use the reduced sweep profile (default) or each experiment's
        full defaults.
    seed:
        Master airfield seed passed to every experiment.
    only:
        Optional subset of experiment ids to run.
    jobs:
        Worker processes for sweep shards (see
        :mod:`repro.harness.parallel`).  The report content is
        byte-identical for every value — only wall time changes.
    cache:
        A :class:`~repro.harness.cache.ResultCache` to serve unchanged
        measurement cells from; None runs everything fresh.  Like
        ``jobs``, caching never changes the report's bytes, so neither
        parameter is recorded in the document.
    trace:
        ``False`` disables the shared functional-trace engine (each
        backend re-runs the simulation); ``None``/``True`` keep it on.
        Like ``jobs``, the report bytes are identical either way — see
        docs/performance.md.
    traces:
        A :class:`~repro.harness.cache.TraceStore` for the on-disk
        functional-trace tier; None keeps traces in-process only.
    retry:
        A :class:`~repro.harness.faults.RetryPolicy` governing shard
        retries, backoff and per-shard timeouts; None keeps the
        defaults.  Whenever retries (or pool→inline degradation)
        succeed, the report bytes match a fault-free run — the chaos
        suite asserts that.
    faults:
        A :class:`~repro.harness.faults.FaultPlan` injecting
        deterministic chaos (``--inject-faults``); None runs clean.
    journal:
        A :class:`~repro.harness.faults.SweepJournal` checkpointing
        completed sweep cells (``--resume``); None disables
        checkpointing.  See docs/robustness.md.
    pruning:
        Candidate-pruning policy for the functional passes
        (``"auto"``/``"on"``/``"off"``, ``--pruning``); None keeps the
        ambient default (``auto``).  Like ``jobs`` and ``trace``, the
        report bytes are identical for every setting — the sweepline
        pruner is proven bit-identical to the brute-force pass (see
        docs/performance.md, "Large-n regime").
    metrics_registry:
        A :class:`~repro.obs.metrics.MetricsRegistry` to record into
        while the experiments run (``--metrics-out`` passes one so the
        CLI can export the *full* OpenMetrics view afterwards); None
        uses a private registry.  Either way the report embeds the
        registry's **deterministic** snapshot under ``"metrics"`` — only
        families that are pure functions of the measured cells (the
        deadline SLO families), so the report's byte-for-byte
        reproducibility contract (any ``jobs``, cache state, fault
        plan) extends to the embedded metrics.
    """
    chosen = sorted(EXPERIMENTS) if only is None else list(only)
    unknown = [e for e in chosen if e not in EXPERIMENTS]
    if unknown:
        raise KeyError(f"unknown experiment ids: {unknown}")

    registry = metrics_registry if metrics_registry is not None else MetricsRegistry()
    results = {}
    with recording(registry), sweep_options(
        jobs=jobs, cache=cache, trace=trace, traces=traces,
        pruning=pruning, retry=retry, faults=faults, journal=journal,
    ):
        for exp_id in chosen:
            kwargs = dict(QUICK_OVERRIDES.get(exp_id, {})) if quick else {}
            kwargs["seed"] = seed
            outcome = EXPERIMENTS[exp_id](**kwargs)
            results[exp_id] = {
                "parameters": {k: list(v) if isinstance(v, tuple) else v for k, v in kwargs.items()},
                "data": outcome.to_dict(),
                "rendered": outcome.render(),
            }

    # Platform descriptions go through the same canonicalizer as the
    # cache fingerprints, so numpy scalars or tuples in a backend's
    # describe() can never produce unserializable (or unstable) JSON.
    platforms = {
        name: canonicalize(resolve_backend(name).describe())
        for name in available_backends()
    }

    return {
        "paper": (
            "Performance Comparison of NVIDIA accelerators with SIMD, "
            "Associative, and Multi-core Processors for Air Traffic "
            "Management (ICPP 2018 Companion)"
        ),
        "library_version": __version__,
        "profile": "quick" if quick else "full",
        "seed": seed,
        "python": sys.version.split()[0],
        "host": _platform.platform(),
        "platforms": platforms,
        "experiments": results,
        "metrics": registry.snapshot(deterministic_only=True),
    }


def render_report(report: dict) -> str:
    """Human-readable rendering of a report document."""
    lines = [
        f"reproduction report — {report['paper']}",
        f"library {report['library_version']}, profile {report['profile']}, "
        f"seed {report['seed']}",
        "",
    ]
    for exp_id, entry in report["experiments"].items():
        lines.append("=" * 72)
        lines.append(entry["rendered"])
        lines.append("")
    return "\n".join(lines)


def write_report(path: str, report: dict) -> None:
    """Write the structured report as JSON."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
