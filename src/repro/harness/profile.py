"""``atm-repro profile``: run an experiment under the obs collector.

Profiling answers two questions the report pipeline does not:

* **wall clock** — where does the *simulator* spend its time?
* **modelled time** — which cost-model component produced each second
  the figures attribute to an architecture?

With ``--backend`` the profiler runs the experiment's measurement
protocol (``periods`` tracking periods plus one collision pass, exactly
:func:`~repro.harness.sweep.measure_platform`) on that single platform,
so the span tree shows one machine's cost structure at one fleet size.
Without ``--backend`` it runs the whole experiment function under the
collector — every platform the figure sweeps.

The result renders as an indented span tree (docs/observability.md
explains how to read it) and can be exported with ``--trace`` (Chrome
trace JSON, load in ``chrome://tracing`` / Perfetto) or ``--jsonl``
(one JSON object per span).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Optional

from ..obs import (
    Collector,
    chrome_trace,
    collecting,
    json_lines,
    modelled_coverage,
    render_counters,
    render_span_tree,
)
from .figures import EXPERIMENTS
from .report import QUICK_OVERRIDES
from .sweep import measure_platform

__all__ = ["ProfileResult", "profile_experiment"]


@dataclass
class ProfileResult:
    """A profiling run: the collector plus enough context to render it."""

    experiment: str
    backend: Optional[str]
    n_aircraft: Optional[int]
    wall_s: float
    collector: Collector

    @property
    def coverage(self) -> float:
        """Fraction of task-span modelled time attributed to children."""
        return modelled_coverage(self.collector)

    def render(self) -> str:
        c = self.collector
        target = self.backend if self.backend else "all platforms"
        lines = [
            f"profile {self.experiment} — {target}"
            + (f", n={self.n_aircraft}" if self.n_aircraft else ""),
            f"  wall clock     {self.wall_s:.3f} s "
            f"(simulator time, host machine)",
            f"  modelled time  {c.total_modelled():.6f} s "
            f"(architecture time, cost models)",
            f"  attribution    {self.coverage:.1%} of task time covered by"
            " child spans",
            "",
            render_span_tree(c),
        ]
        counters = render_counters(c)
        if counters:
            lines += ["", counters]
        return "\n".join(lines)

    def to_chrome_trace(self) -> dict:
        return chrome_trace(self.collector)

    def to_json_lines(self) -> str:
        return json_lines(self.collector)


def profile_experiment(
    experiment: str,
    *,
    backend: Optional[str] = None,
    n: int = 960,
    periods: int = 3,
    seed: int = 2018,
    quick: bool = True,
) -> ProfileResult:
    """Run ``experiment`` under a fresh collector and return the profile.

    Parameters
    ----------
    experiment:
        An id from the DESIGN.md experiment index (``fig4`` ...).
    backend:
        Registry name; when given, profile only that platform via the
        standard measurement protocol instead of the full experiment.
    n, periods:
        Fleet size and tracking periods for the single-backend path.
    quick:
        Use the report's reduced sweep profile for the full-experiment
        path (full defaults otherwise).
    """
    if experiment not in EXPERIMENTS:
        known = ", ".join(sorted(EXPERIMENTS))
        raise KeyError(f"unknown experiment {experiment!r}; known: {known}")

    t0 = time.perf_counter()
    with collecting() as collector:
        if backend is not None:
            measure_platform(backend, n, seed=seed, periods=periods)
        else:
            kwargs = dict(QUICK_OVERRIDES.get(experiment, {})) if quick else {}
            kwargs["seed"] = seed
            EXPERIMENTS[experiment](**kwargs)
    wall = time.perf_counter() - t0
    return ProfileResult(
        experiment=experiment,
        backend=backend,
        n_aircraft=n if backend is not None else None,
        wall_s=wall,
        collector=collector,
    )
