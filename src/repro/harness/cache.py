"""On-disk memoization of sweep measurements, keyed by cost-model fingerprints.

Every cell of the paper's measurement matrix — one backend at one fleet
size — is a pure function of ``(backend configuration, n, seed,
periods, mode)``: the algorithms are deterministic and the machine
models are closed-form.  The cache exploits that by storing each
:class:`~repro.harness.sweep.PlatformMeasurement` under a SHA-256 key
derived from the backend's :meth:`~repro.backends.base.Backend.fingerprint_payload`
(its canonicalized ``describe()`` output plus the package version) and
the task parameters.

Consequences, by construction:

* a warm re-run of a sweep touches no cost model at all — every cell is
  served from disk;
* editing any cost-model constant changes that backend's ``describe()``
  output, hence its fingerprint, hence every affected key — only that
  backend's cells re-measure, everything else stays warm;
* a version bump invalidates the whole cache (models may have been
  recalibrated between releases).

Layout (all JSON, human-inspectable)::

    <root>/v1/<key[:2]>/<key>.json

Corrupt or unreadable entries are treated as misses and overwritten.
See ``docs/parallel-and-caching.md`` for the full scheme.
"""

from __future__ import annotations

import json
import os
import shutil
from pathlib import Path
from typing import TYPE_CHECKING, Any, Dict, Optional, Union

from ..core.canonical import fingerprint_of

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (sweep imports us)
    from ..backends.base import Backend
    from ..core.trace import FunctionalTrace
    from .sweep import PlatformMeasurement

__all__ = [
    "CACHE_SCHEMA_VERSION",
    "DEFAULT_CACHE_DIR",
    "ResultCache",
    "TraceStore",
]

#: Bump when the on-disk entry format changes; lives in the path, so a
#: schema change simply starts a fresh subtree instead of misreading.
CACHE_SCHEMA_VERSION = 1

#: Where the CLI keeps its cache unless told otherwise.
DEFAULT_CACHE_DIR = ".atm-repro-cache"


class ResultCache:
    """Fingerprint-keyed store of per-cell sweep measurements.

    Instances also count their traffic (``hits`` / ``misses`` /
    ``stores``) so tests and the CLI can verify cache behaviour instead
    of inferring it from wall time alone.
    """

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root)
        self.hits = 0
        self.misses = 0
        self.stores = 0

    # ------------------------------------------------------------------
    # keys
    # ------------------------------------------------------------------

    @staticmethod
    def key_for(
        backend: "Backend",
        *,
        n: int,
        seed: int,
        periods: int,
        mode: Any,
    ) -> str:
        """The cache key of one (backend, fleet-size) measurement cell."""
        mode_value = getattr(mode, "value", mode)
        return fingerprint_of(
            {
                "schema": CACHE_SCHEMA_VERSION,
                "backend": backend.fingerprint_payload(),
                "task": {
                    "n": int(n),
                    "seed": int(seed),
                    "periods": int(periods),
                    "mode": str(mode_value),
                },
            }
        )

    def _path(self, key: str) -> Path:
        return self.root / f"v{CACHE_SCHEMA_VERSION}" / key[:2] / f"{key}.json"

    # ------------------------------------------------------------------
    # get / put
    # ------------------------------------------------------------------

    def get(self, key: str) -> Optional["PlatformMeasurement"]:
        """The cached measurement under ``key``, or None (counted)."""
        from .sweep import PlatformMeasurement

        path = self._path(key)
        try:
            with open(path, "r", encoding="utf-8") as fh:
                entry = json.load(fh)
            measurement = PlatformMeasurement.from_dict(entry["measurement"])
        except (OSError, ValueError, KeyError, TypeError):
            self.misses += 1
            return None
        self.hits += 1
        return measurement

    def put(self, key: str, measurement: "PlatformMeasurement") -> None:
        """Store ``measurement`` under ``key`` (atomic rename write)."""
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        entry = {
            "key": key,
            "schema": CACHE_SCHEMA_VERSION,
            "measurement": measurement.to_dict(),
        }
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(entry, fh, sort_keys=True)
        os.replace(tmp, path)
        self.stores += 1

    # ------------------------------------------------------------------
    # maintenance / introspection
    # ------------------------------------------------------------------

    def _entry_paths(self):
        if not self.root.exists():
            return
        yield from sorted(self.root.glob("v*/??/*.json"))

    def stats(self) -> Dict[str, Any]:
        """Traffic counters plus what is on disk right now."""
        entries = list(self._entry_paths())
        return {
            "root": str(self.root),
            "entries": len(entries),
            "bytes": sum(p.stat().st_size for p in entries),
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
        }

    def clear(self) -> int:
        """Delete every entry; returns how many were removed."""
        removed = len(list(self._entry_paths()))
        if self.root.exists():
            shutil.rmtree(self.root)
        return removed

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<ResultCache {str(self.root)!r} hits={self.hits} misses={self.misses}>"


class TraceStore:
    """On-disk tier for :class:`~repro.core.trace.FunctionalTrace` records.

    Keyed by :func:`repro.core.trace.trace_key` — the canonical
    fingerprint of one functional cell ``(n, seed, periods, mode,
    dropout, clutter)`` plus schema and library version, so a release
    that changes the functional algorithms starts fresh.  Backend
    fingerprints deliberately do **not** participate: the whole point of
    the trace tier is that one functional pass serves every backend.

    Same layout and failure semantics as :class:`ResultCache`::

        <root>/v1/<key[:2]>/<key>.json

    Corrupt or unreadable entries count as misses and are overwritten.
    """

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root)
        self.hits = 0
        self.misses = 0
        self.stores = 0

    def _path(self, key: str) -> Path:
        from ..core.trace import TRACE_SCHEMA_VERSION

        return self.root / f"v{TRACE_SCHEMA_VERSION}" / key[:2] / f"{key}.json"

    def get(self, key: str) -> Optional["FunctionalTrace"]:
        """The stored trace under ``key``, or None (counted)."""
        from ..core.trace import FunctionalTrace

        path = self._path(key)
        try:
            with open(path, "r", encoding="utf-8") as fh:
                entry = json.load(fh)
            trace = FunctionalTrace.from_dict(entry["trace"])
        except (OSError, ValueError, KeyError, TypeError):
            self.misses += 1
            return None
        self.hits += 1
        return trace

    def put(self, key: str, trace: "FunctionalTrace") -> None:
        """Store ``trace`` under ``key`` (atomic rename write)."""
        from ..core.trace import TRACE_SCHEMA_VERSION

        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        entry = {
            "key": key,
            "schema": TRACE_SCHEMA_VERSION,
            "trace": trace.to_dict(),
        }
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(entry, fh, sort_keys=True)
        os.replace(tmp, path)
        self.stores += 1

    def _entry_paths(self):
        if not self.root.exists():
            return
        yield from sorted(self.root.glob("v*/??/*.json"))

    def stats(self) -> Dict[str, Any]:
        """Traffic counters plus what is on disk right now."""
        entries = list(self._entry_paths())
        return {
            "root": str(self.root),
            "entries": len(entries),
            "bytes": sum(p.stat().st_size for p in entries),
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
        }

    def clear(self) -> int:
        """Delete every entry; returns how many were removed."""
        removed = len(list(self._entry_paths()))
        if self.root.exists():
            shutil.rmtree(self.root)
        return removed

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<TraceStore {str(self.root)!r} hits={self.hits} misses={self.misses}>"
