"""On-disk memoization of sweep measurements, keyed by cost-model fingerprints.

Every cell of the paper's measurement matrix — one backend at one fleet
size — is a pure function of ``(backend configuration, n, seed,
periods, mode)``: the algorithms are deterministic and the machine
models are closed-form.  The cache exploits that by storing each
:class:`~repro.harness.sweep.PlatformMeasurement` under a SHA-256 key
derived from the backend's :meth:`~repro.backends.base.Backend.fingerprint_payload`
(its canonicalized ``describe()`` output plus the package version) and
the task parameters.

Consequences, by construction:

* a warm re-run of a sweep touches no cost model at all — every cell is
  served from disk;
* editing any cost-model constant changes that backend's ``describe()``
  output, hence its fingerprint, hence every affected key — only that
  backend's cells re-measure, everything else stays warm;
* a version bump invalidates the whole cache (models may have been
  recalibrated between releases).

Layout (all JSON, human-inspectable)::

    <root>/v2/<key[:2]>/<key>.json

**Integrity.** Every entry carries a SHA-256 digest of its payload.  A
file that fails to parse, fails its digest, or decodes to the wrong
shape is *never* silently discarded: it is moved to
``<root>/quarantine/`` for post-mortem, counted on the store
(``quarantined``) and on the :mod:`repro.obs` collector
(``harness.fault.quarantined``), and the read reports a miss so the
cell recomputes.  A missing file is an ordinary miss; any other
``OSError`` is counted (``io_errors`` / ``harness.fault.io_errors``)
and reported as a miss.  See ``docs/robustness.md`` for the fault
model and ``docs/parallel-and-caching.md`` for the key scheme.
"""

from __future__ import annotations

import json
import os
import shutil
from pathlib import Path
from typing import TYPE_CHECKING, Any, Dict, Optional, Union

from ..core.canonical import fingerprint_of
from ..obs.metrics import metric_inc
from .faults import fault_span

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (sweep imports us)
    from ..backends.base import Backend
    from ..core.trace import FunctionalTrace
    from .sweep import PlatformMeasurement

__all__ = [
    "CACHE_SCHEMA_VERSION",
    "DEFAULT_CACHE_DIR",
    "QUARANTINE_DIR",
    "ResultCache",
    "TraceStore",
]

#: Bump when the on-disk entry format changes; lives in the path, so a
#: schema change simply starts a fresh subtree instead of misreading.
#: v2: entries carry a SHA-256 content digest (``"sha256"``).
CACHE_SCHEMA_VERSION = 2

#: On-disk layout version of the trace tier (the *content* schema is
#: :data:`repro.core.trace.TRACE_SCHEMA_VERSION`, which also keys the
#: trace fingerprints).  v2: checksummed entries.
TRACE_STORE_VERSION = 2

#: Where the CLI keeps its cache unless told otherwise.
DEFAULT_CACHE_DIR = ".atm-repro-cache"

#: Subdirectory (under a store's root) receiving corrupt entries.
QUARANTINE_DIR = "quarantine"


class _CorruptEntry(Exception):
    """Internal: an on-disk entry failed verification or decoding."""


def _ambient_faults():
    """The ambient FaultPlan, if a sweep_options scope installed one."""
    from .parallel import current_options  # lazy: parallel imports us

    return current_options().faults


class _ChecksumStore:
    """Shared machinery of the two content-addressed JSON stores.

    Subclasses say what the payload is (``_payload_field``), how to
    decode it (``_decode``), which schema tag entries carry
    (``_entry_schema``) and which path subtree they live in
    (``_subtree``).  This base class owns the integrity contract:
    checksummed atomic writes, digest-verified reads, quarantine of
    anything corrupt, and traffic counters (``hits`` / ``misses`` /
    ``stores`` / ``quarantined`` / ``io_errors``).
    """

    _payload_field: str = ""
    #: fault kind a FaultPlan uses to corrupt entries of this store.
    _corrupt_kind: str = ""
    #: ``store`` label on the ``atm_store_requests`` metric family.
    _store_label: str = ""

    def _count(self, outcome: str) -> None:
        metric_inc("atm_store_requests", store=self._store_label, outcome=outcome)

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root)
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.quarantined = 0
        self.io_errors = 0

    # -- layout ---------------------------------------------------------

    def _subtree(self) -> str:
        raise NotImplementedError

    def _entry_schema(self) -> int:
        raise NotImplementedError

    def _decode(self, payload: Dict[str, Any]) -> Any:
        raise NotImplementedError

    def _path(self, key: str) -> Path:
        return self.root / self._subtree() / key[:2] / f"{key}.json"

    # -- get / put ------------------------------------------------------

    def _read_verified(self, path: Path) -> Any:
        """Decode the entry at ``path``; raise :class:`_CorruptEntry`.

        The caller handles ``FileNotFoundError`` (an ordinary miss) and
        other ``OSError`` (an I/O problem, not corruption) separately —
        corruption means the *bytes* are there but wrong.
        """
        raw = path.read_text(encoding="utf-8")
        try:
            entry = json.loads(raw)
        except ValueError as exc:
            raise _CorruptEntry(f"not valid JSON: {exc}") from None
        if not isinstance(entry, dict):
            raise _CorruptEntry("entry is not a JSON object")
        if entry.get("key") != path.stem:
            # The key and schema fields sit outside the payload digest;
            # a bit flip there must still read as corruption, not as a
            # valid entry under a different identity.
            raise _CorruptEntry("entry key does not match its path")
        if entry.get("schema") != self._entry_schema():
            raise _CorruptEntry(f"unexpected entry schema {entry.get('schema')!r}")
        payload = entry.get(self._payload_field)
        digest = entry.get("sha256")
        if payload is None or digest is None:
            raise _CorruptEntry(
                f"entry lacks {self._payload_field!r}/'sha256' fields"
            )
        if digest != fingerprint_of(payload):
            raise _CorruptEntry("payload digest mismatch")
        try:
            return self._decode(payload)
        except (ValueError, KeyError, TypeError) as exc:
            raise _CorruptEntry(f"payload does not decode: {exc!r}") from None

    def _quarantine(self, path: Path, reason: str) -> None:
        """Move a corrupt entry aside — visible, counted, never deleted."""
        qdir = self.root / QUARANTINE_DIR
        try:
            qdir.mkdir(parents=True, exist_ok=True)
            os.replace(path, qdir / path.name)
        except OSError:
            self.io_errors += 1
            self._count("io_error")
            fault_span("io-error", "io_errors", path=str(path))
            return
        self.quarantined += 1
        self._count("quarantined")
        fault_span(
            "corrupt-entry",
            "quarantined",
            store=type(self).__name__,
            path=str(path),
            reason=reason,
        )

    def get(self, key: str) -> Optional[Any]:
        """The stored object under ``key``, or None (counted).

        Failure handling is deliberately narrow: a missing file is a
        plain miss; corrupt bytes are quarantined and counted; an I/O
        error is counted.  Nothing is silently swallowed or deleted.
        """
        path = self._path(key)
        try:
            value = self._read_verified(path)
        except FileNotFoundError:
            self.misses += 1
            self._count("miss")
            return None
        except OSError:
            self.io_errors += 1
            self._count("io_error")
            fault_span("io-error", "io_errors", path=str(path))
            self.misses += 1
            self._count("miss")
            return None
        except _CorruptEntry as exc:
            self._quarantine(path, str(exc))
            self.misses += 1
            self._count("miss")
            return None
        self.hits += 1
        self._count("hit")
        return value

    def put(self, key: str, payload: Dict[str, Any]) -> None:
        """Store ``payload`` under ``key`` (atomic, checksummed write)."""
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        entry = {
            "key": key,
            "schema": self._entry_schema(),
            "sha256": fingerprint_of(payload),
            self._payload_field: payload,
        }
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(entry, fh, sort_keys=True)
        os.replace(tmp, path)
        self.stores += 1
        self._count("store")
        plan = _ambient_faults()
        if plan is not None and plan.should_inject(self._corrupt_kind, key, 0):
            plan.corrupt(path)

    # -- maintenance / introspection ------------------------------------

    def _entry_paths(self):
        if not self.root.exists():
            return
        yield from sorted(self.root.glob("v*/??/*.json"))

    def _quarantine_paths(self):
        qdir = self.root / QUARANTINE_DIR
        if not qdir.exists():
            return
        yield from sorted(qdir.glob("*.json"))

    def stats(self) -> Dict[str, Any]:
        """Traffic counters plus what is on disk right now."""
        entries = list(self._entry_paths())
        return {
            "root": str(self.root),
            "entries": len(entries),
            "bytes": sum(p.stat().st_size for p in entries),
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "quarantined": self.quarantined,
            "quarantine_files": len(list(self._quarantine_paths())),
            "io_errors": self.io_errors,
        }

    def clear(self) -> int:
        """Delete every entry (quarantine included); returns the count."""
        removed = len(list(self._entry_paths()))
        if self.root.exists():
            shutil.rmtree(self.root)
        return removed

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<{type(self).__name__} {str(self.root)!r} hits={self.hits} "
            f"misses={self.misses} quarantined={self.quarantined}>"
        )


class ResultCache(_ChecksumStore):
    """Fingerprint-keyed store of per-cell sweep measurements.

    Instances also count their traffic (``hits`` / ``misses`` /
    ``stores`` / ``quarantined`` / ``io_errors``) so tests and the CLI
    can verify cache behaviour instead of inferring it from wall time
    alone.
    """

    _payload_field = "measurement"
    _corrupt_kind = "corrupt-result"
    _store_label = "result"

    # ------------------------------------------------------------------
    # keys
    # ------------------------------------------------------------------

    @staticmethod
    def key_for(
        backend: "Backend",
        *,
        n: int,
        seed: int,
        periods: int,
        mode: Any,
        pruning: str = "off",
    ) -> str:
        """The cache key of one (backend, fleet-size) measurement cell.

        ``pruning`` is the *effective* candidate-pruning setting
        ("on"/"off", never "auto") the functional pass runs under — an
        ``auto`` policy below its threshold keys identically to an
        explicit ``off``, so paper-scale cells share entries.
        """
        mode_value = getattr(mode, "value", mode)
        return fingerprint_of(
            {
                "schema": CACHE_SCHEMA_VERSION,
                "backend": backend.fingerprint_payload(),
                "task": {
                    "n": int(n),
                    "seed": int(seed),
                    "periods": int(periods),
                    "mode": str(mode_value),
                    "pruning": str(pruning),
                },
            }
        )

    def _subtree(self) -> str:
        return f"v{CACHE_SCHEMA_VERSION}"

    def _entry_schema(self) -> int:
        return CACHE_SCHEMA_VERSION

    def _decode(self, payload: Dict[str, Any]) -> "PlatformMeasurement":
        from .sweep import PlatformMeasurement

        return PlatformMeasurement.from_dict(payload)

    def get(self, key: str) -> Optional["PlatformMeasurement"]:
        """The cached measurement under ``key``, or None (counted)."""
        return super().get(key)

    def put(self, key: str, measurement: "PlatformMeasurement") -> None:
        """Store ``measurement`` under ``key`` (atomic checksummed write)."""
        super().put(key, measurement.to_dict())


class TraceStore(_ChecksumStore):
    """On-disk tier for :class:`~repro.core.trace.FunctionalTrace` records.

    Keyed by :func:`repro.core.trace.trace_key` — the canonical
    fingerprint of one functional cell ``(n, seed, periods, mode,
    dropout, clutter)`` plus schema and library version, so a release
    that changes the functional algorithms starts fresh.  Backend
    fingerprints deliberately do **not** participate: the whole point of
    the trace tier is that one functional pass serves every backend.

    Same layout and failure semantics as :class:`ResultCache`::

        <root>/v2/<key[:2]>/<key>.json

    Corrupt entries are quarantined and report as misses; see the
    module docstring for the full integrity contract.
    """

    _payload_field = "trace"
    _corrupt_kind = "corrupt-trace"
    _store_label = "trace"

    def _subtree(self) -> str:
        return f"v{TRACE_STORE_VERSION}"

    def _entry_schema(self) -> int:
        from ..core.trace import TRACE_SCHEMA_VERSION

        return TRACE_SCHEMA_VERSION

    def _decode(self, payload: Dict[str, Any]) -> "FunctionalTrace":
        from ..core.trace import FunctionalTrace

        return FunctionalTrace.from_dict(payload)

    def get(self, key: str) -> Optional["FunctionalTrace"]:
        """The stored trace under ``key``, or None (counted)."""
        return super().get(key)

    def put(self, key: str, trace: "FunctionalTrace") -> None:
        """Store ``trace`` under ``key`` (atomic checksummed write)."""
        super().put(key, trace.to_dict())
