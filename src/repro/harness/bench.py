"""Benchmark harness for the shared functional-trace engine.

``run_bench`` times the five-backend sweep three ways on identical
parameters:

* ``reexec`` — trace engine off: every backend re-runs the functional
  :mod:`repro.core` simulation (the pre-trace-engine behaviour);
* ``trace_cold`` — trace engine on, empty memo: the simulation runs once
  per fleet size and all backends replay their cost ledgers from it;
* ``trace_warm`` — trace engine on, warm in-process memo: pure replay.

All three sweeps must serialize to byte-identical canonical JSON — the
bench *fails* equivalence otherwise, because a speedup that changes
results is a bug, not an optimisation.  The headline metric is the
``cold`` speedup (``reexec`` wall / ``trace_cold`` wall): it is a ratio
of two measurements from the same process on the same machine, so it is
machine-independent enough for CI regression tracking, unlike absolute
wall seconds.

``compare_to_baseline`` enforces the CI gate: the current cold speedup
must not fall more than ``max_regression`` (default 25%) below the
committed baseline's.  See docs/performance.md and ``make bench-smoke``.

``run_bench_large`` is the continental-scale profile: a calibration
stage times the brute-force O(n²) functional pass against the sweepline
pruner on the same fleet (and checks the two traces are functionally
identical), then a single pruned pass at ``n`` (default 10⁶) drives the
paper's five-platform deadline table.  ``large_bench_table`` projects
the record onto its deterministic, wall-free subset — modelled task
times and deadline margins only — so CI can run the profile twice and
``cmp`` the tables byte for byte.  See docs/performance.md ("Large-n
regime") and ``make bench-large-smoke``.
"""

from __future__ import annotations

import json
import platform as _platform
import sys
import time
from typing import Any, Dict, List, Optional, Sequence

from .. import __version__
from ..core.collision import DetectionMode
from ..obs.metrics import metric_set

__all__ = [
    "BENCH_SCHEMA_VERSION",
    "BENCH_PLATFORMS",
    "DEFAULT_BENCH_NS",
    "SMOKE_BENCH_NS",
    "LARGE_BENCH_PLATFORMS",
    "LARGE_BENCH_N",
    "run_bench",
    "run_bench_large",
    "large_bench_table",
    "compare_to_baseline",
    "write_bench",
    "render_bench",
    "render_bench_large",
]

BENCH_SCHEMA_VERSION = 1

#: Fleet sizes of the full bench profile (the paper's all-platform axis).
DEFAULT_BENCH_NS = (96, 480, 960, 1440, 1920, 2880, 3840)

#: Reduced profile for the CI smoke job — seconds, not minutes.
SMOKE_BENCH_NS = (96, 480, 960, 1920)

#: Bench default: the paper's platform axis plus one of each remaining
#: backend family, so every family's trace-replay path gets timed.
BENCH_PLATFORMS = (
    "cuda:titan-x-pascal",
    "cuda:gtx-880m",
    "cuda:geforce-9800-gt",
    "ap:staran",
    "simd:clearspeed-csx600",
    "mimd:xeon-16",
    "vector:avx512-16c",
)

#: Fleet size of the continental-scale profile (``--large``).
LARGE_BENCH_N = 1_000_000

#: One representative per backend family for the large-n deadline
#: table: the paper's flagship GPU plus the associative, SIMD,
#: multi-core and vector models it is compared against.
LARGE_BENCH_PLATFORMS = (
    "cuda:titan-x-pascal",
    "ap:staran",
    "simd:clearspeed-csx600",
    "mimd:xeon-16",
    "vector:avx512-16c",
)


def run_bench(
    *,
    ns: Sequence[int] = SMOKE_BENCH_NS,
    platforms: Optional[Sequence[str]] = None,
    seed: int = 2018,
    periods: int = 2,
    mode: DetectionMode = DetectionMode.SIGNED,
) -> Dict[str, Any]:
    """Time the sweep with and without the trace engine; return the record.

    The three stages run back to back in this process with no result
    cache and no on-disk trace store, so the comparison isolates exactly
    one variable: functional re-execution versus trace replay.
    """
    from .sweep import _TRACE_MEMO, sweep

    platforms = list(platforms) if platforms is not None else list(BENCH_PLATFORMS)
    ns = tuple(int(n) for n in ns)

    def _timed(trace: bool):
        t0 = time.perf_counter()
        data = sweep(
            platforms, ns, seed=seed, periods=periods, mode=mode,
            cache=False, trace=trace,
        )
        return data.to_canonical_json(), time.perf_counter() - t0

    _TRACE_MEMO.clear()
    reexec_json, reexec_s = _timed(False)
    _TRACE_MEMO.clear()
    cold_json, cold_s = _timed(True)
    warm_json, warm_s = _timed(True)  # memo warm from the cold stage

    stages: List[Dict[str, Any]] = [
        {"name": "reexec", "trace": False, "wall_s": reexec_s},
        {"name": "trace_cold", "trace": True, "wall_s": cold_s},
        {"name": "trace_warm", "trace": True, "wall_s": warm_s},
    ]
    for stage in stages:
        metric_set("atm_bench_stage_seconds", stage["wall_s"], stage=stage["name"])
    return {
        "schema": BENCH_SCHEMA_VERSION,
        "library_version": __version__,
        "config": {
            "ns": list(ns),
            "platforms": platforms,
            "seed": int(seed),
            "periods": int(periods),
            "mode": str(getattr(mode, "value", mode)),
        },
        "stages": stages,
        "speedup": {
            "cold": reexec_s / cold_s if cold_s > 0 else float("inf"),
            "warm": reexec_s / warm_s if warm_s > 0 else float("inf"),
        },
        "equivalent": reexec_json == cold_json == warm_json,
        "python": sys.version.split()[0],
        "host": _platform.platform(),
        "timestamp": time.time(),
    }


def compare_to_baseline(
    current: Dict[str, Any],
    baseline: Dict[str, Any],
    *,
    max_regression: float = 0.25,
) -> List[str]:
    """CI gate: the list of failures (empty = pass).

    Checks, in order:

    * the current run's three stages produced byte-identical sweeps;
    * the cold speedup has not regressed more than ``max_regression``
      relative to the baseline's (speedups are wall-time *ratios*, so
      the check transfers across machines).
    """
    failures: List[str] = []
    if not current.get("equivalent", False):
        failures.append(
            "trace replay is not byte-identical to functional re-execution"
        )
    base = float(baseline["speedup"]["cold"])
    cur = float(current["speedup"]["cold"])
    floor = base * (1.0 - max_regression)
    if cur < floor:
        failures.append(
            f"cold trace-engine speedup regressed: {cur:.2f}x < floor "
            f"{floor:.2f}x (baseline {base:.2f}x, allowed regression "
            f"{max_regression:.0%})"
        )
    return failures


def write_bench(path: str, result: Dict[str, Any]) -> None:
    """Write one bench record as indented JSON (``BENCH_*.json``)."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(result, fh, indent=2, sort_keys=True)
        fh.write("\n")


def render_bench(result: Dict[str, Any]) -> str:
    """Terminal summary of one bench record."""
    cfg = result["config"]
    lines = [
        f"trace-engine bench — {len(cfg['platforms'])} platforms, "
        f"ns={cfg['ns']}, periods={cfg['periods']}, seed={cfg['seed']}",
    ]
    for stage in result["stages"]:
        lines.append(f"  {stage['name']:<12s} {stage['wall_s']:8.2f} s")
    lines.append(
        f"  speedup      cold {result['speedup']['cold']:.2f}x, "
        f"warm {result['speedup']['warm']:.2f}x"
    )
    lines.append(
        "  equivalence  "
        + ("byte-identical across all stages" if result["equivalent"] else "FAILED")
    )
    return "\n".join(lines)


def _functional_payload(trace: Any) -> Dict[str, Any]:
    """A trace's payload with the execution-policy params stripped.

    The sweepline pruner must change *how* the functional pass runs,
    never *what* it computes — so two traces of the same cell are
    functionally identical iff their payloads match once ``pruning``
    (an execution policy, not a result) is removed.
    """
    payload = trace.to_dict()
    payload.get("params", {}).pop("pruning", None)
    return payload


def _peak_trace_bytes(snapshot: Dict[str, Any]) -> Dict[str, float]:
    """``atm_trace_peak_bytes`` series from a metrics snapshot, by path."""
    family = snapshot.get("families", {}).get("atm_trace_peak_bytes", {})
    peaks: Dict[str, float] = {}
    for series in family.get("series", []):
        path = str(series.get("labels", {}).get("path", "unknown"))
        peaks[path] = max(peaks.get(path, 0.0), float(series.get("value", 0.0)))
    return peaks


def run_bench_large(
    *,
    n: int = LARGE_BENCH_N,
    calibration_n: int = 7680,
    seed: int = 2018,
    periods: int = 3,
    mode: DetectionMode = DetectionMode.SIGNED,
    platforms: Optional[Sequence[str]] = None,
) -> Dict[str, Any]:
    """Continental-scale bench: pruning speedup plus the n=10⁶ table.

    Two stages:

    * **calibration** — the brute-force O(n²) functional pass and the
      sweepline-pruned pass both run once at ``calibration_n`` (large
      enough for the asymptotics to show, small enough for brute force
      to finish).  Their wall times give the pruning speedup, and their
      traces must be functionally identical (``equivalent``).
    * **large** — one pruned five-platform sweep at ``n`` produces the
      paper's deadline table at continental scale: per-period tracking
      margins and the collision-period margin against the half-second
      deadline, straight from the same modelled timings
      :func:`repro.analysis.deadlines.record_cell_metrics` budgets.

    Peak memory is reported two ways: the process high-water mark
    (``ru_maxrss``) and the trace engine's own ``atm_trace_peak_bytes``
    gauge, labelled by path (materialized vs streamed).
    """
    import resource

    from ..core import constants as C
    from ..core.trace import compute_trace, estimate_trace_bytes
    from ..obs.metrics import MetricsRegistry, recording
    from .parallel import sweep_options
    from .sweep import _TRACE_MEMO, sweep

    platforms = list(platforms) if platforms is not None else list(LARGE_BENCH_PLATFORMS)
    n = int(n)
    calibration_n = int(calibration_n)

    # --- calibration: brute O(n²) vs sweepline-pruned, same fleet ----
    t0 = time.perf_counter()
    brute = compute_trace(
        calibration_n, seed=seed, periods=periods, mode=mode, pruning="off"
    )
    brute_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    pruned = compute_trace(
        calibration_n, seed=seed, periods=periods, mode=mode, pruning="on"
    )
    pruned_s = time.perf_counter() - t0
    equivalent = _functional_payload(brute) == _functional_payload(pruned)

    # --- the large run: one pruned sweep at n under a private registry
    registry = MetricsRegistry()
    _TRACE_MEMO.clear()
    t0 = time.perf_counter()
    with recording(registry), sweep_options(pruning="on"):
        data = sweep(
            platforms, [n], seed=seed, periods=periods, mode=mode,
            cache=False, trace=True,
        )
    large_s = time.perf_counter() - t0
    _TRACE_MEMO.clear()

    deadline_s = float(C.PERIOD_SECONDS)
    table: List[Dict[str, Any]] = []
    for platform in platforms:
        cell = data.measurements[platform][0]
        task1 = [float(s) for s in cell.task1_seconds]
        tracking_margins = [deadline_s - t1 for t1 in task1[:-1]]
        collision_margin = deadline_s - (task1[-1] + float(cell.task23_s))
        margins = tracking_margins + [collision_margin]
        table.append(
            {
                "platform": platform,
                "n_aircraft": n,
                "task1_seconds": task1,
                "task23_seconds": float(cell.task23_s),
                "tracking_margins_s": tracking_margins,
                "collision_margin_s": collision_margin,
                "deadline_met": bool(min(margins) >= 0.0),
            }
        )

    metric_set("atm_bench_stage_seconds", brute_s, stage="large_calibration_brute")
    metric_set("atm_bench_stage_seconds", pruned_s, stage="large_calibration_pruned")
    metric_set("atm_bench_stage_seconds", large_s, stage="large_sweep")

    return {
        "schema": BENCH_SCHEMA_VERSION,
        "profile": "large",
        "library_version": __version__,
        "config": {
            "n": n,
            "calibration_n": calibration_n,
            "platforms": platforms,
            "seed": int(seed),
            "periods": int(periods),
            "mode": str(getattr(mode, "value", mode)),
            "pruning": "on",
        },
        "calibration": {
            "brute_wall_s": brute_s,
            "pruned_wall_s": pruned_s,
            "speedup": brute_s / pruned_s if pruned_s > 0 else float("inf"),
            "equivalent": equivalent,
        },
        "large": {
            "wall_s": large_s,
            "deadline_seconds": deadline_s,
            "table": table,
        },
        "memory": {
            "estimated_trace_bytes": int(estimate_trace_bytes(n, periods)),
            "peak_rss_bytes": int(
                resource.getrusage(resource.RUSAGE_SELF).ru_maxrss * 1024
            ),
            "trace_peak_bytes": _peak_trace_bytes(registry.snapshot()),
        },
        "equivalent": equivalent,
        "python": sys.version.split()[0],
        "host": _platform.platform(),
        "timestamp": time.time(),
    }


def large_bench_table(result: Dict[str, Any]) -> Dict[str, Any]:
    """Deterministic, wall-free projection of a large-bench record.

    Everything here is a pure function of the modelled cost ledgers —
    no wall times, timestamps, host strings or RSS — so two runs of the
    same profile on any machines produce byte-identical tables.  The CI
    job runs the profile twice and ``cmp``'s this projection.
    """
    return {
        "schema": result["schema"],
        "library_version": result["library_version"],
        "config": result["config"],
        "deadline_seconds": result["large"]["deadline_seconds"],
        "table": result["large"]["table"],
        "estimated_trace_bytes": result["memory"]["estimated_trace_bytes"],
        "equivalent": result["equivalent"],
    }


def render_bench_large(result: Dict[str, Any]) -> str:
    """Terminal summary of a large-bench record."""
    cfg = result["config"]
    cal = result["calibration"]
    mem = result["memory"]
    lines = [
        f"large-n bench — n={cfg['n']:,}, {len(cfg['platforms'])} platforms, "
        f"periods={cfg['periods']}, seed={cfg['seed']}, pruning={cfg['pruning']}",
        f"  calibration (n={cfg['calibration_n']:,})  "
        f"brute {cal['brute_wall_s']:.2f} s, pruned {cal['pruned_wall_s']:.2f} s "
        f"-> {cal['speedup']:.2f}x",
        f"  large sweep               {result['large']['wall_s']:.2f} s wall",
        f"  {'platform':<24s} {'task1 max':>10s} {'task2+3':>10s} "
        f"{'min margin':>11s}  deadline",
    ]
    for row in result["large"]["table"]:
        margins = row["tracking_margins_s"] + [row["collision_margin_s"]]
        lines.append(
            f"  {row['platform']:<24s} {max(row['task1_seconds']):>9.4f}s "
            f"{row['task23_seconds']:>9.4f}s {min(margins):>10.4f}s  "
            + ("met" if row["deadline_met"] else "MISSED")
        )
    peaks = ", ".join(
        f"{path} {bytes_ / 1e6:.1f} MB"
        for path, bytes_ in sorted(mem["trace_peak_bytes"].items())
    ) or "none recorded"
    lines.append(
        f"  memory  est. trace {mem['estimated_trace_bytes'] / 1e6:.1f} MB, "
        f"peak RSS {mem['peak_rss_bytes'] / 1e6:.1f} MB, gauge: {peaks}"
    )
    lines.append(
        "  equivalence  "
        + ("pruned trace functionally identical to brute force"
           if result["equivalent"] else "FAILED")
    )
    return "\n".join(lines)
