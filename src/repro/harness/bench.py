"""Benchmark harness for the shared functional-trace engine.

``run_bench`` times the five-backend sweep three ways on identical
parameters:

* ``reexec`` — trace engine off: every backend re-runs the functional
  :mod:`repro.core` simulation (the pre-trace-engine behaviour);
* ``trace_cold`` — trace engine on, empty memo: the simulation runs once
  per fleet size and all backends replay their cost ledgers from it;
* ``trace_warm`` — trace engine on, warm in-process memo: pure replay.

All three sweeps must serialize to byte-identical canonical JSON — the
bench *fails* equivalence otherwise, because a speedup that changes
results is a bug, not an optimisation.  The headline metric is the
``cold`` speedup (``reexec`` wall / ``trace_cold`` wall): it is a ratio
of two measurements from the same process on the same machine, so it is
machine-independent enough for CI regression tracking, unlike absolute
wall seconds.

``compare_to_baseline`` enforces the CI gate: the current cold speedup
must not fall more than ``max_regression`` (default 25%) below the
committed baseline's.  See docs/performance.md and ``make bench-smoke``.
"""

from __future__ import annotations

import json
import platform as _platform
import sys
import time
from typing import Any, Dict, List, Optional, Sequence

from .. import __version__
from ..core.collision import DetectionMode
from ..obs.metrics import metric_set

__all__ = [
    "BENCH_SCHEMA_VERSION",
    "BENCH_PLATFORMS",
    "DEFAULT_BENCH_NS",
    "SMOKE_BENCH_NS",
    "run_bench",
    "compare_to_baseline",
    "write_bench",
    "render_bench",
]

BENCH_SCHEMA_VERSION = 1

#: Fleet sizes of the full bench profile (the paper's all-platform axis).
DEFAULT_BENCH_NS = (96, 480, 960, 1440, 1920, 2880, 3840)

#: Reduced profile for the CI smoke job — seconds, not minutes.
SMOKE_BENCH_NS = (96, 480, 960, 1920)

#: Bench default: the paper's platform axis plus one of each remaining
#: backend family, so every family's trace-replay path gets timed.
BENCH_PLATFORMS = (
    "cuda:titan-x-pascal",
    "cuda:gtx-880m",
    "cuda:geforce-9800-gt",
    "ap:staran",
    "simd:clearspeed-csx600",
    "mimd:xeon-16",
    "vector:avx512-16c",
)


def run_bench(
    *,
    ns: Sequence[int] = SMOKE_BENCH_NS,
    platforms: Optional[Sequence[str]] = None,
    seed: int = 2018,
    periods: int = 2,
    mode: DetectionMode = DetectionMode.SIGNED,
) -> Dict[str, Any]:
    """Time the sweep with and without the trace engine; return the record.

    The three stages run back to back in this process with no result
    cache and no on-disk trace store, so the comparison isolates exactly
    one variable: functional re-execution versus trace replay.
    """
    from .sweep import _TRACE_MEMO, sweep

    platforms = list(platforms) if platforms is not None else list(BENCH_PLATFORMS)
    ns = tuple(int(n) for n in ns)

    def _timed(trace: bool):
        t0 = time.perf_counter()
        data = sweep(
            platforms, ns, seed=seed, periods=periods, mode=mode,
            cache=False, trace=trace,
        )
        return data.to_canonical_json(), time.perf_counter() - t0

    _TRACE_MEMO.clear()
    reexec_json, reexec_s = _timed(False)
    _TRACE_MEMO.clear()
    cold_json, cold_s = _timed(True)
    warm_json, warm_s = _timed(True)  # memo warm from the cold stage

    stages: List[Dict[str, Any]] = [
        {"name": "reexec", "trace": False, "wall_s": reexec_s},
        {"name": "trace_cold", "trace": True, "wall_s": cold_s},
        {"name": "trace_warm", "trace": True, "wall_s": warm_s},
    ]
    for stage in stages:
        metric_set("atm_bench_stage_seconds", stage["wall_s"], stage=stage["name"])
    return {
        "schema": BENCH_SCHEMA_VERSION,
        "library_version": __version__,
        "config": {
            "ns": list(ns),
            "platforms": platforms,
            "seed": int(seed),
            "periods": int(periods),
            "mode": str(getattr(mode, "value", mode)),
        },
        "stages": stages,
        "speedup": {
            "cold": reexec_s / cold_s if cold_s > 0 else float("inf"),
            "warm": reexec_s / warm_s if warm_s > 0 else float("inf"),
        },
        "equivalent": reexec_json == cold_json == warm_json,
        "python": sys.version.split()[0],
        "host": _platform.platform(),
        "timestamp": time.time(),
    }


def compare_to_baseline(
    current: Dict[str, Any],
    baseline: Dict[str, Any],
    *,
    max_regression: float = 0.25,
) -> List[str]:
    """CI gate: the list of failures (empty = pass).

    Checks, in order:

    * the current run's three stages produced byte-identical sweeps;
    * the cold speedup has not regressed more than ``max_regression``
      relative to the baseline's (speedups are wall-time *ratios*, so
      the check transfers across machines).
    """
    failures: List[str] = []
    if not current.get("equivalent", False):
        failures.append(
            "trace replay is not byte-identical to functional re-execution"
        )
    base = float(baseline["speedup"]["cold"])
    cur = float(current["speedup"]["cold"])
    floor = base * (1.0 - max_regression)
    if cur < floor:
        failures.append(
            f"cold trace-engine speedup regressed: {cur:.2f}x < floor "
            f"{floor:.2f}x (baseline {base:.2f}x, allowed regression "
            f"{max_regression:.0%})"
        )
    return failures


def write_bench(path: str, result: Dict[str, Any]) -> None:
    """Write one bench record as indented JSON (``BENCH_*.json``)."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(result, fh, indent=2, sort_keys=True)
        fh.write("\n")


def render_bench(result: Dict[str, Any]) -> str:
    """Terminal summary of one bench record."""
    cfg = result["config"]
    lines = [
        f"trace-engine bench — {len(cfg['platforms'])} platforms, "
        f"ns={cfg['ns']}, periods={cfg['periods']}, seed={cfg['seed']}",
    ]
    for stage in result["stages"]:
        lines.append(f"  {stage['name']:<12s} {stage['wall_s']:8.2f} s")
    lines.append(
        f"  speedup      cold {result['speedup']['cold']:.2f}x, "
        f"warm {result['speedup']['warm']:.2f}x"
    )
    lines.append(
        "  equivalence  "
        + ("byte-identical across all stages" if result["equivalent"] else "FAILED")
    )
    return "\n".join(lines)
