"""Command-line interface: regenerate any evaluation artifact.

Examples::

    atm-repro list
    atm-repro fig4
    atm-repro fig9 --ns 96 480 960 1920
    atm-repro tbl-deadline --ns 960 1920
    atm-repro describe cuda:titan-x-pascal
    atm-repro profile fig4 --backend cuda:titan-x-pascal
    atm-repro report --trace report-trace.json
    atm-repro report --jobs 4 --cache-dir .atm-repro-cache
    atm-repro report --metrics-out report.prom
    atm-repro metrics
    atm-repro dashboard --out dashboard.html
    atm-repro bench --out BENCH_trace_engine.json
    atm-repro cache stats
    atm-repro cache clear
    atm-repro serve --port 8018 --jobs 4 --cache-dir .atm-repro-cache
    atm-repro loadtest --requests 1000 --concurrency 100
    atm-repro search --family cuda --searcher genetic --out search.json
    atm-repro dashboard --search search.json
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from ..backends.registry import available_backends, resolve_backend
from .figures import EXPERIMENTS, run_experiment

__all__ = ["main", "build_parser"]

_EPILOG = """\
report flags:
  --only ID [ID ...]   run a subset of experiment ids (see 'atm-repro list')
  --full               full sweeps (each experiment's defaults); the default
                       quick profile uses reduced fleet-size sweeps and
                       finishes in a couple of minutes
  --seed N             master airfield seed passed to every experiment
                       (default 2018; the same seed reproduces the same
                       report bit for bit on deterministic platforms)
  --trace FILE         also write a Chrome-trace JSON of the whole run
                       (open in chrome://tracing or https://ui.perfetto.dev)
  --jobs N             shard sweep cells over N worker processes; the
                       report bytes are identical for every N (see
                       docs/parallel-and-caching.md)
  --cache-dir DIR      serve unchanged measurement cells from the result
                       cache at DIR (created on first use; default
                       .atm-repro-cache); functional traces get their own
                       tier at DIR/traces
  --no-cache           measure everything fresh, ignoring the cache
  --no-trace-replay    disable the shared functional-trace engine: every
                       backend re-runs the simulation instead of replaying
                       cost ledgers (bytes identical either way; see
                       docs/performance.md)

fault tolerance (docs/robustness.md):
  --resume             resume a crashed/killed run from the checkpoint
                       journal at <cache-dir>/journal.jsonl, recomputing
                       only unfinished sweep cells (requires --cache-dir)
  --inject-faults SPEC deterministic chaos: comma-separated kind=rate
                       entries (crash, timeout, oserror, corrupt-result,
                       corrupt-trace) plus seed=N / attempts=N / hang=S,
                       e.g. "crash=0.3,timeout=0.2,seed=7"; whenever
                       retries succeed the report bytes are identical to
                       a fault-free run
  --shard-timeout S    per-shard deadline (seconds) when collecting pool
                       results; timed-out shards retry, then degrade to
                       inline execution
  --max-retries N      attempts per shard and pool rebuilds tolerated
                       before degrading to inline execution (default 3)

benchmarking:
  atm-repro bench [--out FILE] [--full] [--baseline FILE]
  times the five-backend sweep with the trace engine off/cold/warm,
  checks byte-identical output, and writes a BENCH_*.json record; with
  --baseline it exits non-zero when the speedup regresses >25%%.

  atm-repro bench --large [--large-n N] [--table-out FILE]
  the continental-scale profile: times the brute-force O(n^2) functional
  pass against the sweepline pruner (and checks the traces are
  functionally identical), then runs one pruned five-platform sweep at
  N (default 1,000,000) and writes the deadline table plus peak-memory
  figures to BENCH_large_n.json.  --table-out writes the deterministic
  wall-free table CI byte-compares.  See docs/performance.md.

  The 'report' command accepts --pruning=auto|on|off; its bytes are
  identical for every setting (the pruner is proven bit-identical).

cache maintenance:
  atm-repro cache stats [--cache-dir DIR]   entries and size on disk
                                            (result and trace tiers)
  atm-repro cache clear [--cache-dir DIR]   delete every cached cell and
                                            stored trace

profiling:
  atm-repro profile <experiment> [--backend NAME] [--n N] [--trace FILE]
  runs an experiment under the repro.obs collector and prints the span
  tree: wall-clock vs modelled-time attribution per backend component.
  See docs/observability.md.

metrics & dashboard (docs/observability.md):
  atm-repro metrics [--only ID ...] [--out FILE]
  runs experiments (default tbl-deadline, quick) under the metrics
  registry and emits the full OpenMetrics exposition — deadline-margin
  histograms, miss counters, shard/cache/fault counters; also available
  as 'report --metrics-out FILE' alongside a full report run.

  atm-repro dashboard [--out FILE] [--only ID ...] [--jobs N]
  runs experiments (default fig4 fig6 tbl-deadline ext-vector — all five
  platform families) under the collector + registry and writes one
  self-contained HTML file: execution-time curves, the deadline-margin
  chart, a span flamegraph and counter panels.  No external resources.

design-space search (docs/search.md):
  atm-repro search [--spec FILE | --family F ...] [--out FILE]
  searches a parameterized device design space (per-parameter grids,
  lumos-style area/power budgets at a tech node) with a seeded searcher
  (random, genetic, halving) whose candidates are evaluated through the
  ordinary sweep harness — so --jobs, --cache-dir and --resume apply to
  candidate sweeps exactly as they do to reports.  The result JSON is
  canonical: the same spec reproduces it byte for byte.  --spec FILE
  takes a JSON SearchSpec; otherwise --family/--base/--searcher/
  --objective/--budget flags assemble one.  'dashboard --search FILE'
  charts the best-fitness trajectory.

service (docs/service.md):
  atm-repro serve [--port N] [--jobs N] [--cache-dir DIR] ...
  long-running asyncio HTTP server over the same sweep engine: POST
  /v1/cell and /v1/sweep measure cells on demand, coalescing identical
  in-flight requests, batching compatible cells into shared pool
  dispatches and running deadline admission control (429/503 carry a
  structured verdict).  Served payloads are byte-identical to the same
  cells in 'atm-repro report' output.  --port 0 binds an ephemeral
  port and prints it on stdout.  Admitted cells are journaled (fsynced)
  before they are queued; after a crash, --resume replays the journal
  so no admitted request is lost.  SIGTERM/SIGINT drain gracefully
  (healthz -> draining, new work -> 503 + Retry-After) under
  --drain-timeout, and --inject-faults adds service-layer chaos
  (reset/stall/crash/corrupt-journal).

  atm-repro loadtest [--requests N] [--concurrency N] [--deadline S]
  closed-loop load generator against a running server; records client
  wall-clock latencies into the metrics registry and prints p50/p95/p99
  (see EXPERIMENTS.md, "Service load-test disclosure").  Each request
  runs under --timeout with --max-attempts retries (capped exponential
  backoff, deterministic --jitter-seed jitter, shared half-open circuit
  breaker); terminal failures land in the summary's errors/rejections
  taxonomy.
"""


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="atm-repro",
        description=(
            "Reproduce the evaluation of 'Performance Comparison of NVIDIA "
            "accelerators with SIMD, Associative, and Multi-core Processors "
            "for Air Traffic Management' (ICPP 2018)"
        ),
        epilog=_EPILOG,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list experiment ids and platforms")

    describe = sub.add_parser("describe", help="describe one platform")
    describe.add_argument("platform", help="registry name, e.g. cuda:gtx-880m")

    report = sub.add_parser(
        "report", help="run the whole experiment suite and save a report"
    )
    report.add_argument("--out", default=None, help="write JSON here")
    report.add_argument(
        "--full", action="store_true", help="full sweeps (slow) instead of quick"
    )
    report.add_argument("--seed", type=int, default=2018)
    report.add_argument(
        "--only", nargs="+", default=None, help="subset of experiment ids"
    )
    report.add_argument(
        "--trace",
        default=None,
        metavar="FILE",
        help="write a Chrome-trace JSON of the whole run here",
    )
    report.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="worker processes for sweep shards (result bytes identical)",
    )
    report.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help="memoize measurement cells in the result cache at DIR",
    )
    report.add_argument(
        "--no-cache",
        action="store_true",
        help="ignore the result cache even when --cache-dir is set",
    )
    report.add_argument(
        "--no-trace-replay",
        action="store_true",
        help="re-run the functional simulation per backend instead of"
        " replaying cost ledgers from a shared trace (bytes identical)",
    )
    report.add_argument(
        "--resume",
        action="store_true",
        help="resume from the checkpoint journal at <cache-dir>/journal.jsonl,"
        " recomputing only unfinished sweep cells (requires --cache-dir)",
    )
    report.add_argument(
        "--inject-faults",
        default=None,
        metavar="SPEC",
        help="deterministic chaos plan, e.g. 'crash=0.3,timeout=0.2,seed=7'"
        " (see docs/robustness.md)",
    )
    report.add_argument(
        "--shard-timeout",
        type=float,
        default=None,
        metavar="S",
        help="per-shard deadline in seconds when collecting pool results",
    )
    report.add_argument(
        "--max-retries",
        type=int,
        default=3,
        metavar="N",
        help="attempts per shard before degrading to inline execution"
        " (default 3)",
    )
    report.add_argument(
        "--metrics-out",
        default=None,
        metavar="FILE",
        help="write the run's full OpenMetrics exposition here (the report"
        " JSON always embeds the deterministic snapshot)",
    )
    report.add_argument(
        "--pruning",
        choices=("auto", "on", "off"),
        default=None,
        help="candidate-pruning policy for the functional passes"
        " (default auto; report bytes identical for every setting)",
    )

    metrics = sub.add_parser(
        "metrics",
        help="run experiments under the metrics registry, emit OpenMetrics",
    )
    metrics.add_argument(
        "--only",
        nargs="+",
        default=["tbl-deadline"],
        metavar="ID",
        help="experiment ids to run (default: tbl-deadline)",
    )
    metrics.add_argument(
        "--out", default=None, metavar="FILE", help="write here instead of stdout"
    )
    metrics.add_argument("--seed", type=int, default=2018)
    metrics.add_argument(
        "--full", action="store_true", help="full sweeps instead of quick"
    )
    metrics.add_argument(
        "--jobs", type=int, default=1, metavar="N", help="worker processes"
    )

    dashboard = sub.add_parser(
        "dashboard",
        help="run experiments and write the self-contained HTML dashboard",
    )
    dashboard.add_argument(
        "--out",
        default="dashboard.html",
        metavar="FILE",
        help="output HTML path (default dashboard.html)",
    )
    dashboard.add_argument(
        "--only",
        nargs="+",
        default=["fig4", "fig6", "tbl-deadline", "ext-vector"],
        metavar="ID",
        help="experiment ids to run (default covers all five platform"
        " families: cuda, ap, simd, mimd, vector)",
    )
    dashboard.add_argument("--seed", type=int, default=2018)
    dashboard.add_argument(
        "--full", action="store_true", help="full sweeps instead of quick"
    )
    dashboard.add_argument(
        "--jobs", type=int, default=1, metavar="N", help="worker processes"
    )
    dashboard.add_argument(
        "--search",
        default=None,
        metavar="FILE",
        help="also chart the best-fitness trajectory of this"
        " 'atm-repro search --out' result JSON",
    )

    search = sub.add_parser(
        "search",
        help="design-space search over parameterized device models"
        " (docs/search.md)",
    )
    search.add_argument(
        "--spec",
        default=None,
        metavar="FILE",
        help="JSON SearchSpec file; replaces the flags below",
    )
    search.add_argument(
        "--family",
        default="cuda",
        choices=["cuda", "simd", "ap", "mimd", "vector"],
        help="architecture family to search (default cuda)",
    )
    search.add_argument(
        "--base",
        default=None,
        metavar="KEY",
        help="named base config whose unsearched fields are inherited"
        " (default: the family's paper config)",
    )
    search.add_argument(
        "--searcher",
        default="genetic",
        choices=["random", "genetic", "halving"],
        help="seeded search strategy (default genetic)",
    )
    search.add_argument(
        "--objective",
        default="modelled_time",
        choices=["worst_margin", "modelled_time", "time_area", "smallest_feasible"],
        help="scalar fitness to minimize (default modelled_time)",
    )
    search.add_argument("--seed", type=int, default=2018, help="searcher RNG seed")
    search.add_argument(
        "--max-evaluations",
        type=int,
        default=24,
        metavar="N",
        help="budget of new candidate evaluations (default 24)",
    )
    search.add_argument(
        "--ns",
        type=int,
        nargs="+",
        default=[96, 480, 960],
        metavar="N",
        help="fleet-size axis per candidate (default 96 480 960)",
    )
    search.add_argument(
        "--periods", type=int, default=3, help="tracking periods per cell"
    )
    search.add_argument(
        "--area-budget",
        type=float,
        default=None,
        metavar="MM2",
        help="reject candidates above this die area (mm^2)",
    )
    search.add_argument(
        "--power-budget",
        type=float,
        default=None,
        metavar="W",
        help="reject candidates above this power draw (watts)",
    )
    search.add_argument(
        "--tech-nm",
        type=float,
        default=16.0,
        metavar="NM",
        help="technology node scaling the area/power models (default 16)",
    )
    search.add_argument(
        "--no-compare-paper",
        action="store_true",
        help="skip evaluating the family's paper configs for comparison",
    )
    search.add_argument(
        "--out", default=None, metavar="FILE", help="write the canonical result JSON"
    )
    search.add_argument(
        "--json",
        action="store_true",
        help="print the result JSON instead of the summary table",
    )
    search.add_argument(
        "--metrics-out",
        default=None,
        metavar="FILE",
        help="write the run's OpenMetrics exposition (atm_search_* et al.)",
    )
    search.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="worker processes for candidate sweep cells",
    )
    search.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help="memoize candidate sweep cells in the result cache at DIR",
    )
    search.add_argument(
        "--no-cache",
        action="store_true",
        help="ignore the result cache even when --cache-dir is set",
    )
    search.add_argument(
        "--resume",
        action="store_true",
        help="resume candidate sweeps from the checkpoint journal at"
        " <cache-dir>/journal.jsonl (requires --cache-dir)",
    )

    bench = sub.add_parser(
        "bench",
        help="benchmark the trace engine against functional re-execution",
    )
    bench.add_argument(
        "--out",
        default="BENCH_trace_engine.json",
        metavar="FILE",
        help="write the bench record here (default BENCH_trace_engine.json)",
    )
    bench.add_argument(
        "--ns",
        type=int,
        nargs="+",
        default=None,
        metavar="N",
        help="fleet sizes to sweep (default: the smoke profile)",
    )
    bench.add_argument(
        "--platforms",
        nargs="+",
        default=None,
        metavar="NAME",
        help="registry names to bench (default: every backend family)",
    )
    bench.add_argument("--seed", type=int, default=2018)
    bench.add_argument(
        "--periods", type=int, default=2, help="tracking periods per cell"
    )
    bench.add_argument(
        "--full",
        action="store_true",
        help="use the full fleet-size profile instead of the smoke profile",
    )
    bench.add_argument(
        "--baseline",
        default=None,
        metavar="FILE",
        help="compare against this committed BENCH_*.json; exit 1 on"
        " regression",
    )
    bench.add_argument(
        "--max-regression",
        type=float,
        default=0.25,
        metavar="FRAC",
        help="allowed fractional speedup regression vs baseline (default 0.25)",
    )
    bench.add_argument(
        "--large",
        action="store_true",
        help="run the continental-scale profile instead: brute-vs-pruned"
        " calibration plus the five-platform deadline table at --large-n"
        " (writes BENCH_large_n.json unless --out is given)",
    )
    bench.add_argument(
        "--large-n",
        type=int,
        default=None,
        metavar="N",
        help="fleet size for --large (default 1,000,000)",
    )
    bench.add_argument(
        "--calibration-n",
        type=int,
        default=7680,
        metavar="N",
        help="fleet size for the brute-vs-pruned calibration stage of"
        " --large (default 7680)",
    )
    bench.add_argument(
        "--table-out",
        default=None,
        metavar="FILE",
        help="with --large, also write the deterministic wall-free table"
        " here (CI byte-compares two such tables)",
    )

    cache = sub.add_parser(
        "cache", help="inspect or clear the on-disk result cache"
    )
    cache_sub = cache.add_subparsers(dest="cache_command", required=True)
    for action, blurb in (
        ("stats", "entry count, size on disk and traffic counters"),
        ("clear", "delete every cached measurement cell"),
    ):
        p = cache_sub.add_parser(action, help=blurb)
        p.add_argument(
            "--cache-dir",
            default=None,
            metavar="DIR",
            help="cache location (default .atm-repro-cache)",
        )

    profile = sub.add_parser(
        "profile",
        help="run one experiment under the obs collector and print the span tree",
    )
    profile.add_argument("experiment", help="experiment id, e.g. fig4")
    profile.add_argument(
        "--backend",
        default=None,
        help="profile a single platform (registry name) instead of the"
        " whole experiment",
    )
    profile.add_argument(
        "--n", type=int, default=960, help="fleet size (with --backend)"
    )
    profile.add_argument(
        "--periods", type=int, default=3, help="tracking periods (with --backend)"
    )
    profile.add_argument("--seed", type=int, default=2018)
    profile.add_argument(
        "--full", action="store_true", help="full sweeps instead of quick"
    )
    profile.add_argument(
        "--trace", default=None, metavar="FILE", help="write Chrome-trace JSON here"
    )
    profile.add_argument(
        "--jsonl", default=None, metavar="FILE", help="write JSON-lines spans here"
    )

    serve = sub.add_parser(
        "serve",
        help="run the ATM-as-a-service sweep server (docs/service.md)",
    )
    serve.add_argument("--host", default="127.0.0.1", help="bind address")
    serve.add_argument(
        "--port",
        type=int,
        default=8018,
        help="TCP port; 0 binds an ephemeral port and prints it",
    )
    serve.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes per batched sweep dispatch",
    )
    serve.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help="share the on-disk result cache with batch runs"
        " (default: in-memory only)",
    )
    serve.add_argument(
        "--batch-window",
        type=float,
        default=0.05,
        metavar="S",
        help="seconds to hold the first queued cell while compatible"
        " cells accumulate into one dispatch (default 0.05)",
    )
    serve.add_argument(
        "--max-batch-cells",
        type=int,
        default=64,
        help="largest number of cells dispatched as one batch",
    )
    serve.add_argument(
        "--max-queue-cells",
        type=int,
        default=1024,
        help="admission control: queue depth beyond which requests are"
        " rejected with 503 (default 1024)",
    )
    serve.add_argument(
        "--default-deadline",
        type=float,
        default=30.0,
        metavar="S",
        help="admission deadline budget for requests that send none",
    )
    serve.add_argument(
        "--journal",
        default=None,
        metavar="FILE",
        help="request-journal path (default: <cache-dir>/"
        "service-journal.jsonl; no journal without a cache dir)",
    )
    serve.add_argument(
        "--resume",
        action="store_true",
        help="replay the request journal: restore served cells and"
        " re-enqueue admitted-but-unserved ones (docs/service.md)",
    )
    serve.add_argument(
        "--drain-timeout",
        type=float,
        default=10.0,
        metavar="S",
        help="graceful-shutdown budget: seconds SIGTERM/SIGINT waits"
        " for in-flight work to flush before exiting (default 10)",
    )
    serve.add_argument(
        "--inject-faults",
        default=None,
        metavar="SPEC",
        help="service-layer chaos: deterministic fault spec, e.g."
        " 'reset=0.1,stall=0.05,crash=0.2,corrupt-journal=0.1,seed=7'",
    )

    loadtest = sub.add_parser(
        "loadtest",
        help="closed-loop load generator against a running server",
    )
    loadtest.add_argument("--host", default="127.0.0.1")
    loadtest.add_argument("--port", type=int, default=8018)
    loadtest.add_argument(
        "--requests", type=int, default=1000, help="total requests to send"
    )
    loadtest.add_argument(
        "--concurrency",
        type=int,
        default=100,
        help="closed-loop workers == max in-flight requests",
    )
    loadtest.add_argument(
        "--deadline",
        type=float,
        default=None,
        metavar="S",
        help="per-request deadline forwarded to admission control",
    )
    loadtest.add_argument(
        "--seed", type=int, default=None, help="airfield seed override"
    )
    loadtest.add_argument(
        "--timeout",
        type=float,
        default=30.0,
        metavar="S",
        help="per-attempt wall-clock timeout (default 30)",
    )
    loadtest.add_argument(
        "--max-attempts",
        type=int,
        default=3,
        help="attempts per request, retrying timeouts/resets/503s"
        " with capped jittered backoff (default 3; 1 = no retries)",
    )
    loadtest.add_argument(
        "--backoff",
        type=float,
        default=0.05,
        metavar="S",
        help="base of the exponential retry backoff (default 0.05)",
    )
    loadtest.add_argument(
        "--jitter-seed",
        type=int,
        default=0,
        help="seed of the deterministic backoff jitter (default 0)",
    )
    loadtest.add_argument(
        "--metrics-out",
        default=None,
        metavar="FILE",
        help="write the client-side OpenMetrics exposition here",
    )
    loadtest.add_argument(
        "--json",
        action="store_true",
        help="print the structured summary as JSON instead of text",
    )

    for exp_id in sorted(EXPERIMENTS):
        p = sub.add_parser(exp_id, help=f"regenerate {exp_id}")
        p.add_argument(
            "--ns",
            type=int,
            nargs="+",
            default=None,
            help="fleet sizes to sweep (experiment defaults otherwise)",
        )
        p.add_argument("--seed", type=int, default=2018, help="airfield seed")
        p.add_argument(
            "--plot",
            action="store_true",
            help="append an ASCII log-scale chart (curve figures only)",
        )
        if exp_id == "tbl-determinism":
            p.add_argument("--n", type=int, default=960, help="fleet size")
            p.add_argument("--repeats", type=int, default=3)
        if exp_id == "abl-blocksize":
            p.add_argument("--n", type=int, default=1920, help="fleet size")
        if exp_id == "abl-resolution":
            p.add_argument("--n", type=int, default=768, help="fleet size")
            p.add_argument("--cycles", type=int, default=8)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)

    if args.command == "list":
        print("experiments:")
        for exp_id in sorted(EXPERIMENTS):
            print(f"  {exp_id}")
        print("platforms:")
        for name in available_backends():
            print(f"  {name}")
        return 0

    if args.command == "metrics":
        from ..obs.metrics import MetricsRegistry, to_openmetrics
        from .report import build_report

        registry = MetricsRegistry()
        build_report(
            quick=not args.full,
            seed=args.seed,
            only=args.only,
            jobs=args.jobs,
            metrics_registry=registry,
        )
        text = to_openmetrics(registry.snapshot())
        if args.out:
            with open(args.out, "w", encoding="utf-8") as fh:
                fh.write(text)
            print(f"wrote {args.out}")
        else:
            print(text, end="")
        return 0

    if args.command == "dashboard":
        from ..obs import collecting, write_dashboard
        from ..obs.metrics import MetricsRegistry
        from .report import build_report

        registry = MetricsRegistry()
        with collecting() as collector:
            report = build_report(
                quick=not args.full,
                seed=args.seed,
                only=args.only,
                jobs=args.jobs,
                metrics_registry=registry,
            )
        search_doc = None
        if args.search:
            import json

            with open(args.search, "r", encoding="utf-8") as fh:
                search_doc = json.load(fh)
        write_dashboard(
            args.out,
            report,
            snapshot=registry.snapshot(),
            collector=collector,
            search=search_doc,
        )
        print(f"wrote {args.out}")
        return 0

    if args.command == "search":
        from pathlib import Path

        from ..core.canonical import canonical_json
        from ..obs.metrics import MetricsRegistry, recording, to_openmetrics
        from ..search.runner import (
            SearchSpec,
            load_search_spec,
            render_search,
            run_search,
        )
        from ..search.space import Budget, space_for
        from .cache import ResultCache, TraceStore
        from .faults import SweepJournal

        if args.spec:
            spec = load_search_spec(args.spec)
        else:
            space = space_for(
                args.family,
                base=args.base,
                budget=Budget(
                    area_mm2=args.area_budget,
                    power_w=args.power_budget,
                    tech_nm=args.tech_nm,
                ),
            )
            spec = SearchSpec(
                space=space,
                searcher=args.searcher,
                objective=args.objective,
                seed=args.seed,
                max_evaluations=args.max_evaluations,
                ns=tuple(args.ns),
                periods=args.periods,
                compare_paper=not args.no_compare_paper,
            )
        cache = traces = journal = None
        if args.resume and (not args.cache_dir or args.no_cache):
            print(
                "--resume needs --cache-dir (the journal lives at"
                " <cache-dir>/journal.jsonl) and is incompatible with"
                " --no-cache",
                file=sys.stderr,
            )
            return 2
        if args.cache_dir and not args.no_cache:
            cache = ResultCache(args.cache_dir)
            traces = TraceStore(Path(args.cache_dir) / "traces")
            journal = SweepJournal(
                Path(args.cache_dir) / "journal.jsonl", resume=args.resume
            )
        registry = MetricsRegistry()
        with recording(registry):
            result = run_search(
                spec, jobs=args.jobs, cache=cache, traces=traces, journal=journal
            )
        text = canonical_json(result) + "\n"
        if args.out:
            with open(args.out, "w", encoding="utf-8") as fh:
                fh.write(text)
            print(f"wrote {args.out}")
        if args.metrics_out:
            with open(args.metrics_out, "w", encoding="utf-8") as fh:
                fh.write(to_openmetrics(registry.snapshot()))
            print(f"wrote {args.metrics_out}")
        if args.json:
            print(text, end="")
        else:
            print(render_search(result), end="")
        if journal is not None:
            js = journal.stats()
            print(
                f"journal {js['path']}: {js['resumed_cells']} cells resumed, "
                f"{js['recorded']} checkpointed, {js['dropped_lines']} torn"
                " lines dropped",
                file=sys.stderr,
            )
        return 0

    if args.command == "report":
        from pathlib import Path

        from ..obs.metrics import MetricsRegistry, to_openmetrics
        from .cache import ResultCache, TraceStore
        from .faults import RetryPolicy, SweepJournal, parse_fault_spec
        from .report import build_report, render_report, write_report

        cache = None
        traces = None
        journal = None
        if args.resume and (not args.cache_dir or args.no_cache):
            print(
                "--resume needs --cache-dir (the journal lives at"
                " <cache-dir>/journal.jsonl) and is incompatible with"
                " --no-cache",
                file=sys.stderr,
            )
            return 2
        if args.cache_dir and not args.no_cache:
            cache = ResultCache(args.cache_dir)
            traces = TraceStore(Path(args.cache_dir) / "traces")
            journal = SweepJournal(
                Path(args.cache_dir) / "journal.jsonl", resume=args.resume
            )
        faults = None
        if args.inject_faults:
            try:
                faults = parse_fault_spec(args.inject_faults)
            except ValueError as exc:
                print(f"bad --inject-faults spec: {exc}", file=sys.stderr)
                return 2
        retry = RetryPolicy(
            max_attempts=max(1, args.max_retries), timeout_s=args.shard_timeout
        )
        registry = MetricsRegistry()
        run_kwargs = dict(
            quick=not args.full,
            seed=args.seed,
            only=args.only,
            jobs=args.jobs,
            cache=cache,
            trace=False if args.no_trace_replay else None,
            traces=traces,
            retry=retry,
            faults=faults,
            journal=journal,
            pruning=args.pruning,
            metrics_registry=registry,
        )
        if args.trace:
            from ..obs import collecting, write_chrome_trace

            with collecting() as collector:
                report = build_report(**run_kwargs)
            write_chrome_trace(args.trace, collector)
            print(f"wrote {args.trace}")
        else:
            report = build_report(**run_kwargs)
        if args.out:
            write_report(args.out, report)
            print(f"wrote {args.out}")
        if args.metrics_out:
            with open(args.metrics_out, "w", encoding="utf-8") as fh:
                fh.write(to_openmetrics(registry.snapshot()))
            print(f"wrote {args.metrics_out}")
        print(render_report(report))
        if cache is not None:
            s = cache.stats()
            print(
                f"cache {s['root']}: {s['hits']} hits, {s['misses']} misses, "
                f"{s['stores']} stored, {s['entries']} entries on disk",
                file=sys.stderr,
            )
            quarantined = s["quarantined"] + (
                traces.stats()["quarantined"] if traces is not None else 0
            )
            if quarantined:
                print(
                    f"integrity: {quarantined} corrupt entries quarantined "
                    f"under {s['root']}/quarantine",
                    file=sys.stderr,
                )
        if journal is not None:
            js = journal.stats()
            print(
                f"journal {js['path']}: {js['resumed_cells']} cells resumed, "
                f"{js['recorded']} checkpointed, {js['dropped_lines']} torn"
                " lines dropped",
                file=sys.stderr,
            )
        return 0

    if args.command == "bench":
        from .bench import (
            DEFAULT_BENCH_NS,
            LARGE_BENCH_N,
            SMOKE_BENCH_NS,
            compare_to_baseline,
            large_bench_table,
            render_bench,
            render_bench_large,
            run_bench,
            run_bench_large,
            write_bench,
        )

        if args.large:
            import json as _json

            out = args.out
            if out == "BENCH_trace_engine.json":  # the non-large default
                out = "BENCH_large_n.json"
            result = run_bench_large(
                n=args.large_n if args.large_n is not None else LARGE_BENCH_N,
                calibration_n=args.calibration_n,
                seed=args.seed,
                periods=args.periods,
                platforms=args.platforms,
            )
            write_bench(out, result)
            print(f"wrote {out}")
            if args.table_out:
                with open(args.table_out, "w", encoding="utf-8") as fh:
                    _json.dump(
                        large_bench_table(result), fh, indent=2, sort_keys=True
                    )
                    fh.write("\n")
                print(f"wrote {args.table_out}")
            print(render_bench_large(result))
            if not result["equivalent"]:
                print(
                    "FAIL: pruned trace differs from brute force",
                    file=sys.stderr,
                )
                return 1
            return 0

        ns = args.ns or (DEFAULT_BENCH_NS if args.full else SMOKE_BENCH_NS)
        result = run_bench(
            ns=ns,
            platforms=args.platforms,
            seed=args.seed,
            periods=args.periods,
        )
        write_bench(args.out, result)
        print(f"wrote {args.out}")
        print(render_bench(result))
        if args.baseline:
            import json as _json

            with open(args.baseline, "r", encoding="utf-8") as fh:
                baseline = _json.load(fh)
            failures = compare_to_baseline(
                result, baseline, max_regression=args.max_regression
            )
            if failures:
                for failure in failures:
                    print(f"FAIL: {failure}", file=sys.stderr)
                return 1
            print(
                f"baseline {args.baseline}: speedup within "
                f"{args.max_regression:.0%} of {baseline['speedup']['cold']:.2f}x"
            )
        elif not result["equivalent"]:
            print("FAIL: stages are not byte-identical", file=sys.stderr)
            return 1
        return 0

    if args.command == "cache":
        from pathlib import Path

        from .cache import DEFAULT_CACHE_DIR, ResultCache, TraceStore

        root = args.cache_dir or DEFAULT_CACHE_DIR
        cache = ResultCache(root)
        traces = TraceStore(Path(root) / "traces")
        if args.cache_command == "stats":
            for key, value in cache.stats().items():
                print(f"{key:8s} {value}")
            print("trace tier:")
            for key, value in traces.stats().items():
                print(f"  {key:8s} {value}")
        else:
            removed_traces = traces.clear()
            removed = cache.clear()
            print(
                f"removed {removed} cached cells and {removed_traces} "
                f"stored traces from {cache.root}"
            )
        return 0

    if args.command == "profile":
        from ..obs import write_chrome_trace, write_json_lines
        from .profile import profile_experiment

        result = profile_experiment(
            args.experiment,
            backend=args.backend,
            n=args.n,
            periods=args.periods,
            seed=args.seed,
            quick=not args.full,
        )
        if args.trace:
            write_chrome_trace(args.trace, result.collector)
            print(f"wrote {args.trace}")
        if args.jsonl:
            write_json_lines(args.jsonl, result.collector)
            print(f"wrote {args.jsonl}")
        print(result.render())
        return 0

    if args.command == "serve":
        from ..service import ServiceConfig, run_server
        from .faults import parse_fault_spec

        if args.resume and not (args.cache_dir or args.journal):
            print(
                "serve: --resume needs a journal location; pass"
                " --cache-dir DIR or --journal FILE",
                file=sys.stderr,
            )
            return 2
        faults = None
        if args.inject_faults:
            try:
                faults = parse_fault_spec(args.inject_faults)
            except ValueError as exc:
                print(f"bad --inject-faults spec: {exc}", file=sys.stderr)
                return 2
        config = ServiceConfig(
            host=args.host,
            port=args.port,
            jobs=args.jobs,
            cache_dir=args.cache_dir,
            batch_window_s=args.batch_window,
            max_batch_cells=args.max_batch_cells,
            max_queue_cells=args.max_queue_cells,
            default_deadline_s=args.default_deadline,
            journal_path=args.journal,
            resume=args.resume,
            drain_timeout_s=args.drain_timeout,
            faults=faults,
        )
        return run_server(config)

    if args.command == "loadtest":
        import json as _json

        from ..service import LoadgenOptions, render_summary, run_loadgen

        options = LoadgenOptions(
            host=args.host,
            port=args.port,
            concurrency=args.concurrency,
            requests=args.requests,
            deadline_s=args.deadline,
            seed=args.seed,
            timeout_s=args.timeout,
            max_attempts=args.max_attempts,
            backoff_s=args.backoff,
            jitter_seed=args.jitter_seed,
        )
        try:
            summary = run_loadgen(options, metrics_out=args.metrics_out)
        except (ConnectionError, OSError) as exc:
            print(
                f"loadtest: cannot reach {args.host}:{args.port} ({exc});"
                " is 'atm-repro serve' running?",
                file=sys.stderr,
            )
            return 2
        if args.metrics_out:
            print(f"wrote {args.metrics_out}")
        if args.json:
            print(_json.dumps(summary, indent=2, sort_keys=True))
        else:
            print(render_summary(summary))
        return 0

    if args.command == "describe":
        info = resolve_backend(args.platform).describe()
        width = max(len(k) for k in info)
        for key, value in info.items():
            print(f"{key.ljust(width)}  {value}")
        return 0

    kwargs = {"seed": args.seed}
    if args.ns is not None:
        if args.command in ("tbl-determinism", "abl-blocksize"):
            print("--ns is not used by this experiment", file=sys.stderr)
        else:
            kwargs["ns"] = args.ns
    if args.command == "tbl-determinism":
        kwargs.update(n=args.n, repeats=args.repeats)
    if args.command == "abl-blocksize":
        kwargs["n"] = args.n
    if args.command == "abl-resolution":
        kwargs["n"] = args.n
        kwargs["major_cycles"] = args.cycles
        kwargs.pop("ns", None)

    result = run_experiment(args.command, **kwargs)
    if getattr(args, "plot", False) and hasattr(result, "series"):
        print(result.render(plot=True))
    else:
        print(result.render())
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
