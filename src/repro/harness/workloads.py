"""Scripted traffic scenarios beyond the paper's random airfield.

The paper evaluates on uniformly random traffic (SetupFlight).  Real
airspace has *structure* — crossing flows, holding stacks, arrival
streams — and those structures stress different parts of the ATM tasks:
crossing streams maximise genuine conflicts, holding stacks exercise the
altitude gate, arrival streams drive the final-approach sequencer.
Every generator is deterministic in its arguments and returns a
:class:`~repro.core.types.FleetState` ready for any backend.
"""

from __future__ import annotations

import math

import numpy as np

from ..core import constants as C
from ..core.rng import Stream, random_uniform
from ..core.setup import setup_flight
from ..core.types import FleetState
from ..extended.approach import Runway

__all__ = [
    "enroute",
    "crossing_streams",
    "holding_stack",
    "arrival_stream",
    "terminal_area",
]


def _finish(fleet: FleetState) -> FleetState:
    fleet.batdx[:] = fleet.dx
    fleet.batdy[:] = fleet.dy
    fleet.expected_x[:] = fleet.x
    fleet.expected_y[:] = fleet.y
    fleet.validate()
    return fleet


def enroute(n: int, seed: int = 2018) -> FleetState:
    """The paper's own workload: uniformly random en-route traffic."""
    return setup_flight(n, seed)


def crossing_streams(
    n_per_stream: int,
    *,
    speed_knots: float = 420.0,
    in_trail_nm: float = 6.0,
    altitude_ft: float = 31_000.0,
    seed: int = 2018,
) -> FleetState:
    """Two perpendicular streams meeting over the field's centre.

    An eastbound stream along y = 0 and a northbound stream along x = 0,
    all at the *same* flight level: every crossing pair is a genuine
    future conflict, so collision detection and resolution run at their
    densest.  Stream length is capped by the airfield.
    """
    if n_per_stream < 1:
        raise ValueError("need at least one aircraft per stream")
    max_fit = int(C.AIRFIELD_SIZE_NM // in_trail_nm)  # centred span must fit
    if n_per_stream > max_fit:
        raise ValueError(
            f"{n_per_stream} aircraft at {in_trail_nm} nm in trail do not "
            f"fit the airfield (max {max_fit})"
        )

    n = 2 * n_per_stream
    fleet = FleetState.empty(n)
    v = speed_knots / C.PERIODS_PER_HOUR
    # Streams centred on the crossing point: the leaders have just
    # passed it, the tail is inbound — so the collision tasks see
    # everything from imminent to far-future conflicts.
    offsets = in_trail_nm * (np.arange(n_per_stream) + 0.5 - n_per_stream / 2.0)

    # Eastbound stream.
    east = slice(0, n_per_stream)
    fleet.x[east] = offsets
    fleet.y[east] = 0.0
    fleet.dx[east] = v
    fleet.dy[east] = 0.0

    # Northbound stream.
    north = slice(n_per_stream, n)
    fleet.x[north] = 0.0
    fleet.y[north] = offsets
    fleet.dx[north] = 0.0
    fleet.dy[north] = v

    # Same level, +- a little turbulence-induced spread.
    jitter = random_uniform(seed, np.arange(n), Stream.SCENARIO, -50.0, 50.0)
    fleet.alt[:] = altitude_ft + jitter
    return _finish(fleet)


def holding_stack(
    n: int,
    *,
    centre=(40.0, 40.0),
    radius_nm: float = 6.0,
    speed_knots: float = 230.0,
    level_spacing_ft: float = 1000.0,
    base_altitude_ft: float = 7_000.0,
) -> FleetState:
    """A holding stack: rings of aircraft at 1000 ft level spacing.

    Aircraft fly tangentially around the fix.  Vertically adjacent
    levels sit exactly at the altitude gate's threshold, so the stack
    probes the 1000 ft separation test: correctly implemented, a clean
    stack produces *zero* critical conflicts.
    """
    if n < 1:
        raise ValueError("need at least one aircraft")
    fleet = FleetState.empty(n)
    v = speed_knots / C.PERIODS_PER_HOUR
    angles = 2.0 * np.pi * np.arange(n) / max(n, 1) * 7 % (2 * np.pi)
    # One aircraft per flight level: vertical separation does all the
    # work (dead-reckoned circular traffic cannot rely on lateral
    # separation — projected paths are straight lines).
    levels = np.arange(n)

    fleet.x[:] = centre[0] + radius_nm * np.cos(angles)
    fleet.y[:] = centre[1] + radius_nm * np.sin(angles)
    # Tangential velocity (counter-clockwise).
    fleet.dx[:] = -v * np.sin(angles)
    fleet.dy[:] = v * np.cos(angles)
    fleet.alt[:] = base_altitude_ft + levels * level_spacing_ft
    return _finish(fleet)


def arrival_stream(
    n: int,
    runway: Runway | None = None,
    *,
    in_trail_nm: float = 3.5,
    speed_knots: float = 150.0,
    glide_altitude_ft: float = 3_000.0,
) -> FleetState:
    """A line of arrivals established on final, nearest first.

    With ``in_trail_nm`` just above the 3 nm requirement the stream is
    initially legal; compression (leaders slowing) then triggers the
    approach sequencer's advisories.
    """
    runway = runway if runway is not None else Runway()
    if n < 1:
        raise ValueError("need at least one aircraft")
    span_needed = n * in_trail_nm
    if span_needed > runway.length_nm:
        raise ValueError(
            f"{n} arrivals at {in_trail_nm} nm need {span_needed:.0f} nm "
            f"of corridor; runway has {runway.length_nm}"
        )
    fleet = FleetState.empty(n)
    theta = math.radians(runway.course_deg)
    v = speed_knots / C.PERIODS_PER_HOUR
    dist = in_trail_nm * (np.arange(n) + 1.0)
    fleet.x[:] = runway.x - dist * math.cos(theta)
    fleet.y[:] = runway.y - dist * math.sin(theta)
    fleet.dx[:] = v * math.cos(theta)
    fleet.dy[:] = v * math.sin(theta)
    fleet.alt[:] = glide_altitude_ft + 100.0 * np.arange(n)
    return _finish(fleet)


def terminal_area(
    n_overflights: int,
    n_arrivals: int,
    runway: Runway | None = None,
    *,
    seed: int = 2018,
) -> FleetState:
    """A terminal area: random overflights plus an established stream.

    The composite exercises every task at once — tracking over the whole
    mix, collision work among the overflights, approach sequencing on
    the stream.
    """
    runway = runway if runway is not None else Runway()
    over = enroute(n_overflights, seed)
    arr = arrival_stream(n_arrivals, runway)
    n = over.n + arr.n
    fleet = FleetState.empty(n)
    for name in ("x", "y", "dx", "dy", "alt", "batdx", "batdy"):
        getattr(fleet, name)[: over.n] = getattr(over, name)
        getattr(fleet, name)[over.n :] = getattr(arr, name)
    # Keep overflights clear of the glide path altitudes.
    low = fleet.alt[: over.n] < 10_000.0
    fleet.alt[: over.n][low] += 10_000.0
    return _finish(fleet)
