"""Measurement sweeps: run the ATM tasks across fleet sizes and platforms.

The measurement protocol follows the paper's Section 6.1: for each fleet
size the tasks are individually timed and reported as the average over
the executed iterations (Task 1 runs every period; Task 2+3 once per
major cycle).  All platforms measure against bit-identical fleet
evolutions, so their curves are directly comparable.

Each (backend, fleet-size) cell is a *pure function* of the registry
name and the task parameters: ``measure_platform`` resolves a fresh
backend instance per call, so cells are order-independent and can be
cached (:mod:`repro.harness.cache`) or sharded across worker processes
(:mod:`repro.harness.parallel`) without changing a single output bit.
``sweep(..., jobs=N)`` — or an ambient
:func:`~repro.harness.parallel.sweep_options` block — turns both on.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Union

import numpy as np

from ..backends.base import Backend
from ..backends.registry import resolve_backend
from ..core.canonical import canonical_json
from ..core.collision import DetectionMode
from ..core.radar import generate_radar_frame
from ..core.setup import setup_flight
from ..core.sweepline import resolve_pruning
from ..core.trace import (
    DEFAULT_TRACE_BUDGET,
    CollisionRecord,
    FunctionalTrace,
    collision_nbytes,
    compute_trace,
    estimate_trace_bytes,
    period_nbytes,
    stream_trace,
    trace_key,
    trace_nbytes,
)
from ..core.types import TaskTiming
from ..analysis.deadlines import record_cell_metrics
from ..obs import count as obs_count
from ..obs import span as obs_span
from ..obs.metrics import metric_inc
from .parallel import _emit_shard, current_options, measure_cells

__all__ = [
    "DEFAULT_NS_ALL_PLATFORMS",
    "DEFAULT_NS_NVIDIA",
    "PlatformMeasurement",
    "SweepData",
    "measure_platform",
    "sweep",
]

#: Fleet sizes for the all-platform figures (multiples of the 96-PE /
#: 96-thread unit, as in the paper's block-setup rule).
DEFAULT_NS_ALL_PLATFORMS: tuple = (96, 480, 960, 1440, 1920, 2880, 3840)

#: Fleet sizes for the NVIDIA-only figures (the cards scale further).
DEFAULT_NS_NVIDIA: tuple = (96, 480, 960, 1920, 2880, 3840, 5760)


@dataclass
class PlatformMeasurement:
    """Averaged task timings of one platform at one fleet size."""

    platform: str
    n_aircraft: int
    task1_seconds: List[float]
    task23: TaskTiming

    @property
    def task1_mean_s(self) -> float:
        return float(np.mean(self.task1_seconds))

    @property
    def task1_max_s(self) -> float:
        return float(np.max(self.task1_seconds))

    @property
    def task23_s(self) -> float:
        return self.task23.seconds

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serializable form; exact inverse of :meth:`from_dict`."""
        return {
            "platform": self.platform,
            "n_aircraft": int(self.n_aircraft),
            "task1_seconds": [float(s) for s in self.task1_seconds],
            "task23": self.task23.to_dict(),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "PlatformMeasurement":
        return cls(
            platform=data["platform"],
            n_aircraft=int(data["n_aircraft"]),
            task1_seconds=[float(s) for s in data["task1_seconds"]],
            task23=TaskTiming.from_dict(data["task23"]),
        )


# ---------------------------------------------------------------------------
# the shared functional-trace tier (see docs/performance.md)
# ---------------------------------------------------------------------------

#: In-process memo of recent traces, keyed by ``trace_key``.  Small and
#: bounded: a sweep touches each fleet size once per backend, so holding
#: the last few cells lets all backends share one functional pass.
_TRACE_MEMO: "OrderedDict[str, FunctionalTrace]" = OrderedDict()
_TRACE_MEMO_CAPACITY = 16


def _remember_trace(
    trace: FunctionalTrace, traces: Any = None, *, budget: Any = None
) -> None:
    """Admit ``trace`` to the memo (LRU) and the on-disk tier if given.

    The :class:`~repro.core.trace.TraceBudget` gates both tiers: a trace
    above the resident bound is never memoized (the streaming replay
    path serves such cells), and one above the payload bound is never
    serialized to the store.
    """
    budget = budget or DEFAULT_TRACE_BUDGET
    nbytes = trace_nbytes(trace)
    key = trace.key()
    if (
        traces is not None
        and budget.allows_payload(nbytes)
        and traces.get(key) is None
    ):
        traces.put(key, trace)
    if not budget.allows_resident(nbytes):
        return
    _TRACE_MEMO[key] = trace
    _TRACE_MEMO.move_to_end(key)
    while len(_TRACE_MEMO) > _TRACE_MEMO_CAPACITY:
        _TRACE_MEMO.popitem(last=False)


def _lookup_trace(
    n: int,
    *,
    seed: int,
    periods: int,
    mode: Any,
    traces: Any,
    pruning: Any = "off",
    budget: Any = None,
) -> Optional[FunctionalTrace]:
    """Memo-then-store lookup of one cell's trace; None when absent.

    Hits emit a ``harness.trace`` span (source ``memo``/``store``) plus a
    counter; misses emit nothing — whoever computes the trace owns the
    ``compute``/``pool`` span.  ``pruning`` may be a policy ("auto") —
    it is resolved at ``n`` before keying.
    """
    effective = "on" if resolve_pruning(pruning, n) else "off"
    key = trace_key(n=n, seed=seed, periods=periods, mode=mode, pruning=effective)
    trace = _TRACE_MEMO.get(key)
    if trace is not None:
        _TRACE_MEMO.move_to_end(key)
        source = "memo"
    elif traces is not None:
        trace = traces.get(key)
        if trace is None:
            return None
        source = "store"
        _remember_trace(trace, budget=budget)
    else:
        return None
    with obs_span("harness.trace", cat="harness", n_aircraft=n, source=source):
        pass
    obs_count(f"harness.trace.{source}_hits")
    metric_inc("atm_trace_requests", source=source)
    return trace


def _obtain_trace(
    n: int,
    *,
    seed: int,
    periods: int,
    mode: Any,
    traces: Any,
    pruning: Any = "off",
    budget: Any = None,
    detect_chunk_bytes: Optional[int] = None,
) -> FunctionalTrace:
    """The cell's trace from memo, store, or a fresh functional pass."""
    trace = _lookup_trace(
        n,
        seed=seed,
        periods=periods,
        mode=mode,
        traces=traces,
        pruning=pruning,
        budget=budget,
    )
    if trace is not None:
        return trace
    with obs_span("harness.trace", cat="harness", n_aircraft=n, source="compute"):
        trace = compute_trace(
            n,
            seed=seed,
            periods=periods,
            mode=mode,
            pruning=pruning,
            detect_chunk_bytes=detect_chunk_bytes,
        )
    obs_count("harness.trace.computed")
    metric_inc("atm_trace_requests", source="compute")
    _remember_trace(trace, traces, budget=budget)
    return trace


def measure_platform(
    backend: Union[str, Backend],
    n: int,
    *,
    seed: int = 2018,
    periods: int = 3,
    mode: DetectionMode = DetectionMode.SIGNED,
    cache: Any = None,
    trace: Any = None,
    journal: Any = None,
    pruning: Any = None,
) -> PlatformMeasurement:
    """Run ``periods`` tracking periods plus one collision pass.

    The fleet flies and is tracked for ``periods`` half-seconds first, so
    the collision pass sees a realistically-evolved state rather than the
    pristine initial layout.

    ``cache`` is a :class:`~repro.harness.cache.ResultCache` to memoize
    through, ``None`` to use the ambient
    :func:`~repro.harness.parallel.sweep_options` cache, or ``False`` to
    force a fresh measurement.  Caching applies when the backend came
    from a registry name (a fresh instance is resolved, so the cell is a
    pure function of the name) or advertises ``deterministic_timing``;
    a stateful instance — the MIMD model mid-experiment — is never
    served from or written to the cache.

    ``trace`` selects how the functional results are produced: ``None``
    follows the ambient :func:`~repro.harness.parallel.sweep_options`
    policy (on by default — the simulation runs once per cell and every
    backend replays its cost ledger from the shared
    :class:`~repro.core.trace.FunctionalTrace`), ``False`` forces direct
    re-execution, and a :class:`~repro.core.trace.FunctionalTrace`
    instance is replayed as-is (it must match the task parameters).  Both
    paths return byte-identical measurements — the equivalence tests
    assert exactly that.

    ``journal`` is a :class:`~repro.harness.faults.SweepJournal` to
    checkpoint the cell in (and, when resuming, to serve it from),
    ``None`` to use the ambient journal, or ``False`` for neither —
    the sweep engine passes ``False`` because it owns all journal
    traffic itself.

    ``pruning`` is a candidate-pruning policy ("auto"/"on"/"off" or a
    :class:`~repro.core.sweepline.PruningPolicy`), ``None`` for the
    ambient one.  Functional results are bit-identical either way; the
    *effective* setting at this ``n`` participates in the cache key.
    When the cell's trace would exceed the ambient
    :class:`~repro.core.trace.TraceBudget`'s resident bound, the replay
    consumes the record stream one period at a time instead of
    materializing the trace (same bytes out, bounded memory).
    """
    if periods < 1:
        raise ValueError("need at least one tracking period")
    opts = current_options()
    resolved_cache = opts.cache if cache is None else (cache or None)
    pruning_policy = opts.pruning if pruning is None else str(
        getattr(pruning, "value", pruning)
    )
    effective_pruning = "on" if resolve_pruning(pruning_policy, n) else "off"
    budget = opts.trace_budget or DEFAULT_TRACE_BUDGET
    resolved_journal = opts.journal if journal is None else (
        None if journal is False else journal
    )
    spec = backend
    backend = resolve_backend(spec)
    key = None
    if (resolved_cache is not None or resolved_journal is not None) and (
        isinstance(spec, str) or backend.deterministic_timing
    ):
        from .cache import ResultCache

        key = ResultCache.key_for(
            backend,
            n=n,
            seed=seed,
            periods=periods,
            mode=mode,
            pruning=effective_pruning,
        )
        if resolved_cache is not None:
            hit = resolved_cache.get(key)
            if hit is not None:
                # A hit elides the measurement and with it the task spans, so
                # a shard span keeps warm traces fully attributed; misses need
                # nothing extra — the measurement below emits task1/task23.
                _emit_shard(backend.name, n, "cache", opts.jobs, hit)
                if resolved_journal is not None:
                    resolved_journal.record(key, hit)
                return hit
        if resolved_journal is not None:
            checkpointed = resolved_journal.lookup(key)
            if checkpointed is not None:
                _emit_shard(backend.name, n, "journal", opts.jobs, checkpointed)
                if resolved_cache is not None:
                    resolved_cache.put(key, checkpointed)
                return checkpointed
    trace_obj: Optional[FunctionalTrace] = None
    streamed = False
    if trace is None:
        if opts.trace and backend.supports_trace_replay:
            if not budget.allows_resident(estimate_trace_bytes(n, periods)):
                streamed = True
            else:
                trace_obj = _obtain_trace(
                    n,
                    seed=seed,
                    periods=periods,
                    mode=mode,
                    traces=opts.traces,
                    pruning=pruning_policy,
                    budget=budget,
                    detect_chunk_bytes=opts.detect_chunk_bytes,
                )
    elif trace is not False:
        if not isinstance(trace, FunctionalTrace):
            raise TypeError(f"trace must be a FunctionalTrace, got {type(trace)!r}")
        if not trace.matches(n=n, seed=seed, periods=periods, mode=mode):
            raise ValueError(
                "trace does not cover the requested measurement cell "
                f"(trace: n={trace.n_aircraft} seed={trace.seed} "
                f"periods={trace.periods} mode={trace.mode}; requested: "
                f"n={n} seed={seed} periods={periods} mode={mode})"
            )
        if backend.supports_trace_replay:
            trace_obj = trace
    if streamed:
        # Bounded-memory replay: the trace would blow the resident
        # budget, so consume the functional record stream one period at
        # a time and discard each record after its cost replay.  Same
        # bytes out as the materialized path — records are identical.
        task1 = []
        t23 = None
        peak = 0
        with obs_span(
            "harness.trace", cat="harness", n_aircraft=n, source="stream"
        ):
            for record in stream_trace(
                n,
                seed=seed,
                periods=periods,
                mode=mode,
                pruning=pruning_policy,
                detect_chunk_bytes=opts.detect_chunk_bytes,
            ):
                if isinstance(record, CollisionRecord):
                    peak = max(peak, collision_nbytes(record))
                    t23 = backend.collision_timing_from_trace(record)
                else:
                    peak = max(peak, period_nbytes(record))
                    task1.append(backend.track_timing_from_trace(record).seconds)
        obs_count("harness.trace.streamed")
        metric_inc("atm_trace_requests", source="stream")
        from ..obs.metrics import metric_set

        metric_set("atm_trace_peak_bytes", float(peak), path="streamed")
    elif trace_obj is not None:
        task1 = [
            backend.track_timing_from_trace(p).seconds
            for p in trace_obj.period_records
        ]
        t23 = backend.collision_timing_from_trace(trace_obj.collision)
    else:
        fleet = setup_flight(n, seed)
        task1 = []
        for period in range(periods):
            frame = generate_radar_frame(fleet, seed, period)
            task1.append(backend.track_and_correlate(fleet, frame).seconds)
        t23 = backend.detect_and_resolve(fleet, mode=mode)
    measurement = PlatformMeasurement(
        platform=backend.name,
        n_aircraft=n,
        task1_seconds=task1,
        task23=t23,
    )
    # The deadline SLO monitor sees every freshly-measured cell here;
    # cells served from cache/journal/pool record via _emit_shard, so
    # each returned measurement is recorded exactly once per process.
    record_cell_metrics(backend.name, n, task1, t23.seconds)
    if key is not None and resolved_cache is not None:
        resolved_cache.put(key, measurement)
    if key is not None and resolved_journal is not None:
        resolved_journal.record(key, measurement)
    return measurement


@dataclass
class SweepData:
    """Task timings for several platforms across a fleet-size axis."""

    ns: tuple
    #: platform -> list of measurements aligned with ``ns``.
    measurements: Dict[str, List[PlatformMeasurement]] = field(default_factory=dict)

    def task1_series(self, platform: str) -> List[float]:
        return [m.task1_mean_s for m in self.measurements[platform]]

    def task23_series(self, platform: str) -> List[float]:
        return [m.task23_s for m in self.measurements[platform]]

    def platforms(self) -> List[str]:
        return list(self.measurements)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serializable form; exact inverse of :meth:`from_dict`."""
        return {
            "ns": [int(n) for n in self.ns],
            "measurements": {
                platform: [m.to_dict() for m in rows]
                for platform, rows in self.measurements.items()
            },
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "SweepData":
        return cls(
            ns=tuple(int(n) for n in data["ns"]),
            measurements={
                platform: [PlatformMeasurement.from_dict(m) for m in rows]
                for platform, rows in data["measurements"].items()
            },
        )

    def to_canonical_json(self) -> str:
        """Deterministic serialization; byte-equal for equal sweeps.

        This is the form the parallel-determinism tests compare: a
        ``jobs=4`` sweep must produce the same bytes as ``jobs=1``.
        """
        return canonical_json(self.to_dict())


def sweep(
    backends: Sequence[Union[str, Backend]],
    ns: Sequence[int] = DEFAULT_NS_ALL_PLATFORMS,
    *,
    seed: int = 2018,
    periods: int = 3,
    mode: DetectionMode = DetectionMode.SIGNED,
    jobs: Optional[int] = None,
    cache: Any = None,
    trace: Optional[bool] = None,
    pruning: Optional[str] = None,
) -> SweepData:
    """Measure every backend at every fleet size.

    ``jobs``/``cache``/``trace``/``pruning`` default to the ambient
    :func:`~repro.harness.parallel.sweep_options`; pass ``jobs>1`` to
    shard cells across worker processes, a
    :class:`~repro.harness.cache.ResultCache` (or ``False``) to
    override the ambient cache, ``trace=False`` to force direct
    functional re-execution per backend, and ``pruning`` to set the
    candidate-pruning policy ("auto"/"on"/"off"; outputs are
    bit-identical either way).  The result is merged by matrix
    position, so its :meth:`SweepData.to_canonical_json` bytes do not
    depend on the worker count, the trace engine, or scheduling order.
    """
    opts = current_options()
    jobs = opts.jobs if jobs is None else max(1, int(jobs))
    resolved_cache = opts.cache if cache is None else (cache or None)
    from .parallel import sweep_options

    with sweep_options(trace=trace, pruning=pruning):
        names, rows = measure_cells(
            list(backends),
            tuple(ns),
            seed=seed,
            periods=periods,
            mode=mode,
            jobs=jobs,
            cache=resolved_cache,
        )
    data = SweepData(ns=tuple(ns))
    for name, platform_rows in zip(names, rows):
        data.measurements[name] = platform_rows
    return data
