"""Measurement sweeps: run the ATM tasks across fleet sizes and platforms.

The measurement protocol follows the paper's Section 6.1: for each fleet
size the tasks are individually timed and reported as the average over
the executed iterations (Task 1 runs every period; Task 2+3 once per
major cycle).  All platforms measure against bit-identical fleet
evolutions, so their curves are directly comparable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Union

import numpy as np

from ..backends.base import Backend
from ..backends.registry import resolve_backend
from ..core.collision import DetectionMode
from ..core.radar import generate_radar_frame
from ..core.setup import setup_flight
from ..core.types import TaskTiming

__all__ = [
    "DEFAULT_NS_ALL_PLATFORMS",
    "DEFAULT_NS_NVIDIA",
    "PlatformMeasurement",
    "SweepData",
    "measure_platform",
    "sweep",
]

#: Fleet sizes for the all-platform figures (multiples of the 96-PE /
#: 96-thread unit, as in the paper's block-setup rule).
DEFAULT_NS_ALL_PLATFORMS: tuple = (96, 480, 960, 1440, 1920, 2880, 3840)

#: Fleet sizes for the NVIDIA-only figures (the cards scale further).
DEFAULT_NS_NVIDIA: tuple = (96, 480, 960, 1920, 2880, 3840, 5760)


@dataclass
class PlatformMeasurement:
    """Averaged task timings of one platform at one fleet size."""

    platform: str
    n_aircraft: int
    task1_seconds: List[float]
    task23: TaskTiming

    @property
    def task1_mean_s(self) -> float:
        return float(np.mean(self.task1_seconds))

    @property
    def task1_max_s(self) -> float:
        return float(np.max(self.task1_seconds))

    @property
    def task23_s(self) -> float:
        return self.task23.seconds


def measure_platform(
    backend: Union[str, Backend],
    n: int,
    *,
    seed: int = 2018,
    periods: int = 3,
    mode: DetectionMode = DetectionMode.SIGNED,
) -> PlatformMeasurement:
    """Run ``periods`` tracking periods plus one collision pass.

    The fleet flies and is tracked for ``periods`` half-seconds first, so
    the collision pass sees a realistically-evolved state rather than the
    pristine initial layout.
    """
    if periods < 1:
        raise ValueError("need at least one tracking period")
    backend = resolve_backend(backend)
    fleet = setup_flight(n, seed)
    task1: List[float] = []
    for period in range(periods):
        frame = generate_radar_frame(fleet, seed, period)
        task1.append(backend.track_and_correlate(fleet, frame).seconds)
    t23 = backend.detect_and_resolve(fleet, mode=mode)
    return PlatformMeasurement(
        platform=backend.name,
        n_aircraft=n,
        task1_seconds=task1,
        task23=t23,
    )


@dataclass
class SweepData:
    """Task timings for several platforms across a fleet-size axis."""

    ns: tuple
    #: platform -> list of measurements aligned with ``ns``.
    measurements: Dict[str, List[PlatformMeasurement]] = field(default_factory=dict)

    def task1_series(self, platform: str) -> List[float]:
        return [m.task1_mean_s for m in self.measurements[platform]]

    def task23_series(self, platform: str) -> List[float]:
        return [m.task23_s for m in self.measurements[platform]]

    def platforms(self) -> List[str]:
        return list(self.measurements)


def sweep(
    backends: Sequence[Union[str, Backend]],
    ns: Sequence[int] = DEFAULT_NS_ALL_PLATFORMS,
    *,
    seed: int = 2018,
    periods: int = 3,
    mode: DetectionMode = DetectionMode.SIGNED,
) -> SweepData:
    """Measure every backend at every fleet size."""
    data = SweepData(ns=tuple(ns))
    for spec in backends:
        backend = resolve_backend(spec)
        rows = [
            measure_platform(backend, n, seed=seed, periods=periods, mode=mode)
            for n in ns
        ]
        data.measurements[backend.name] = rows
    return data
