"""Measurement sweeps: run the ATM tasks across fleet sizes and platforms.

The measurement protocol follows the paper's Section 6.1: for each fleet
size the tasks are individually timed and reported as the average over
the executed iterations (Task 1 runs every period; Task 2+3 once per
major cycle).  All platforms measure against bit-identical fleet
evolutions, so their curves are directly comparable.

Each (backend, fleet-size) cell is a *pure function* of the registry
name and the task parameters: ``measure_platform`` resolves a fresh
backend instance per call, so cells are order-independent and can be
cached (:mod:`repro.harness.cache`) or sharded across worker processes
(:mod:`repro.harness.parallel`) without changing a single output bit.
``sweep(..., jobs=N)`` — or an ambient
:func:`~repro.harness.parallel.sweep_options` block — turns both on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Union

import numpy as np

from ..backends.base import Backend
from ..backends.registry import resolve_backend
from ..core.canonical import canonical_json
from ..core.collision import DetectionMode
from ..core.radar import generate_radar_frame
from ..core.setup import setup_flight
from ..core.types import TaskTiming
from .parallel import _emit_shard, current_options, measure_cells

__all__ = [
    "DEFAULT_NS_ALL_PLATFORMS",
    "DEFAULT_NS_NVIDIA",
    "PlatformMeasurement",
    "SweepData",
    "measure_platform",
    "sweep",
]

#: Fleet sizes for the all-platform figures (multiples of the 96-PE /
#: 96-thread unit, as in the paper's block-setup rule).
DEFAULT_NS_ALL_PLATFORMS: tuple = (96, 480, 960, 1440, 1920, 2880, 3840)

#: Fleet sizes for the NVIDIA-only figures (the cards scale further).
DEFAULT_NS_NVIDIA: tuple = (96, 480, 960, 1920, 2880, 3840, 5760)


@dataclass
class PlatformMeasurement:
    """Averaged task timings of one platform at one fleet size."""

    platform: str
    n_aircraft: int
    task1_seconds: List[float]
    task23: TaskTiming

    @property
    def task1_mean_s(self) -> float:
        return float(np.mean(self.task1_seconds))

    @property
    def task1_max_s(self) -> float:
        return float(np.max(self.task1_seconds))

    @property
    def task23_s(self) -> float:
        return self.task23.seconds

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serializable form; exact inverse of :meth:`from_dict`."""
        return {
            "platform": self.platform,
            "n_aircraft": int(self.n_aircraft),
            "task1_seconds": [float(s) for s in self.task1_seconds],
            "task23": self.task23.to_dict(),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "PlatformMeasurement":
        return cls(
            platform=data["platform"],
            n_aircraft=int(data["n_aircraft"]),
            task1_seconds=[float(s) for s in data["task1_seconds"]],
            task23=TaskTiming.from_dict(data["task23"]),
        )


def measure_platform(
    backend: Union[str, Backend],
    n: int,
    *,
    seed: int = 2018,
    periods: int = 3,
    mode: DetectionMode = DetectionMode.SIGNED,
    cache: Any = None,
) -> PlatformMeasurement:
    """Run ``periods`` tracking periods plus one collision pass.

    The fleet flies and is tracked for ``periods`` half-seconds first, so
    the collision pass sees a realistically-evolved state rather than the
    pristine initial layout.

    ``cache`` is a :class:`~repro.harness.cache.ResultCache` to memoize
    through, ``None`` to use the ambient
    :func:`~repro.harness.parallel.sweep_options` cache, or ``False`` to
    force a fresh measurement.  Caching applies when the backend came
    from a registry name (a fresh instance is resolved, so the cell is a
    pure function of the name) or advertises ``deterministic_timing``;
    a stateful instance — the MIMD model mid-experiment — is never
    served from or written to the cache.
    """
    if periods < 1:
        raise ValueError("need at least one tracking period")
    resolved_cache = current_options().cache if cache is None else (cache or None)
    spec = backend
    backend = resolve_backend(spec)
    key = None
    if resolved_cache is not None and (
        isinstance(spec, str) or backend.deterministic_timing
    ):
        key = resolved_cache.key_for(backend, n=n, seed=seed, periods=periods, mode=mode)
        hit = resolved_cache.get(key)
        if hit is not None:
            # A hit elides the measurement and with it the task spans, so
            # a shard span keeps warm traces fully attributed; misses need
            # nothing extra — the measurement below emits task1/task23.
            _emit_shard(backend.name, n, "cache", current_options().jobs, hit)
            return hit
    fleet = setup_flight(n, seed)
    task1: List[float] = []
    for period in range(periods):
        frame = generate_radar_frame(fleet, seed, period)
        task1.append(backend.track_and_correlate(fleet, frame).seconds)
    t23 = backend.detect_and_resolve(fleet, mode=mode)
    measurement = PlatformMeasurement(
        platform=backend.name,
        n_aircraft=n,
        task1_seconds=task1,
        task23=t23,
    )
    if key is not None:
        resolved_cache.put(key, measurement)
    return measurement


@dataclass
class SweepData:
    """Task timings for several platforms across a fleet-size axis."""

    ns: tuple
    #: platform -> list of measurements aligned with ``ns``.
    measurements: Dict[str, List[PlatformMeasurement]] = field(default_factory=dict)

    def task1_series(self, platform: str) -> List[float]:
        return [m.task1_mean_s for m in self.measurements[platform]]

    def task23_series(self, platform: str) -> List[float]:
        return [m.task23_s for m in self.measurements[platform]]

    def platforms(self) -> List[str]:
        return list(self.measurements)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serializable form; exact inverse of :meth:`from_dict`."""
        return {
            "ns": [int(n) for n in self.ns],
            "measurements": {
                platform: [m.to_dict() for m in rows]
                for platform, rows in self.measurements.items()
            },
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "SweepData":
        return cls(
            ns=tuple(int(n) for n in data["ns"]),
            measurements={
                platform: [PlatformMeasurement.from_dict(m) for m in rows]
                for platform, rows in data["measurements"].items()
            },
        )

    def to_canonical_json(self) -> str:
        """Deterministic serialization; byte-equal for equal sweeps.

        This is the form the parallel-determinism tests compare: a
        ``jobs=4`` sweep must produce the same bytes as ``jobs=1``.
        """
        return canonical_json(self.to_dict())


def sweep(
    backends: Sequence[Union[str, Backend]],
    ns: Sequence[int] = DEFAULT_NS_ALL_PLATFORMS,
    *,
    seed: int = 2018,
    periods: int = 3,
    mode: DetectionMode = DetectionMode.SIGNED,
    jobs: Optional[int] = None,
    cache: Any = None,
) -> SweepData:
    """Measure every backend at every fleet size.

    ``jobs``/``cache`` default to the ambient
    :func:`~repro.harness.parallel.sweep_options`; pass ``jobs>1`` to
    shard cells across worker processes and a
    :class:`~repro.harness.cache.ResultCache` (or ``False``) to
    override the ambient cache.  The result is merged by matrix
    position, so its :meth:`SweepData.to_canonical_json` bytes do not
    depend on the worker count or scheduling order.
    """
    opts = current_options()
    jobs = opts.jobs if jobs is None else max(1, int(jobs))
    resolved_cache = opts.cache if cache is None else (cache or None)
    names, rows = measure_cells(
        list(backends),
        tuple(ns),
        seed=seed,
        periods=periods,
        mode=mode,
        jobs=jobs,
        cache=resolved_cache,
    )
    data = SweepData(ns=tuple(ns))
    for name, platform_rows in zip(names, rows):
        data.measurements[name] = platform_rows
    return data
