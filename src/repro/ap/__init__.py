"""Associative-processor (STARAN) simulator.

An enhanced-SIMD machine model with the constant-time associative
primitives — broadcast, associative search, any-responder, pick-one,
global min/max — that let the ATM tasks run in linear time (paper
Section 2.2; Yuan/Baker [12, 13]).
"""

from ..backends.registry import register_backend
from .backend import ApBackend
from .primitives import AssociativeArray, StaranCosts
from .staran import STARAN, STARAN_1972, ApConfig

__all__ = [
    "ApBackend",
    "AssociativeArray",
    "StaranCosts",
    "STARAN",
    "STARAN_1972",
    "ApConfig",
]


def _register() -> None:
    for cfg in (STARAN, STARAN_1972):
        register_backend(cfg.registry_name, lambda cfg=cfg: ApBackend(cfg))


_register()
