"""Associative-processor cost replay of the three ATM tasks.

The associative algorithms of [12, 13] have the same outer-loop
structure as the plain-SIMD versions, but every loop body is a constant
number of constant-time primitives — which is the whole point of the
architecture:

* **Task 1** — for each unmatched radar report: broadcast the report,
  associative-search the expected-position gates of *all* aircraft at
  once, use the step function to see how many responded, pick-one /
  discard by responder count, write the match flags masked.  Linear in
  the number of reports.
* **Task 2** — for each aircraft: broadcast its track, compute the
  division-free Batcher window comparison on every PE simultaneously
  (cross-multiplied inequalities — bit-serial multiplies, no divide
  unit), min-reduce the earliest conflict time.  Linear in N.
* **Task 3** — per attempted trial heading: broadcast the rotated trial
  and redo the Task-2-shaped step.  Linear in the number of trials.
"""

from __future__ import annotations

from ..core.collision import DetectionStats
from ..core.resolution import ResolutionStats
from ..core.tracking import TrackingStats
from .primitives import AssociativeArray
from .staran import ApConfig

__all__ = ["charge_task1", "charge_task23", "charge_setup"]


def _gate_step(ap: AssociativeArray, times: int = 1) -> None:
    """``times`` radar reports against all aircraft: the Task-1 loop body.

    Charged closed-form: one batched call per primitive instead of a
    Python loop per report.  Every cost constant is an integer-valued
    float, so the products below are exact and the ledger totals —
    cycles, per-class counts *and* the ``searches``/``broadcasts``
    counters — are bit-identical to ``times`` repetitions of the
    single-report body.
    """
    if times <= 0:
        return
    ap.broadcast_words(2 * times)  # rx, ry
    ap.search(4, times=times)  # two |gap| < g window tests, two coordinates
    ap.mask_op(2 * times)
    ap.any_responder(2 * times)  # responder count: none / one / many
    ap.pick_one(1 * times)
    ap.mem(2 * times)  # match-flag writes, masked


def _batcher_step(ap: AssociativeArray, times: int = 1) -> None:
    """``times`` tracks against all aircraft: the Task-2/3 loop body.

    Batched closed-form like :func:`_gate_step` (exact by the same
    integer-cost argument).
    """
    if times <= 0:
        return
    ap.broadcast_words(5 * times)  # x, y, dx, dy, alt
    ap.search(1, times=times)  # altitude band gate
    ap.alu(8 * times)  # gaps, relative velocities
    ap.multiply(4 * times)  # cross-multiplied window inequalities
    ap.alu(6 * times)  # window intersection tests
    ap.mask_op(3 * times)
    ap.global_extremum(1 * times)  # earliest conflict time
    ap.mem(2 * times)  # time_till / colWith updates, masked


def charge_task1(config: ApConfig, n_aircraft: int, stats: TrackingStats) -> AssociativeArray:
    """Cycle ledger for one Task-1 execution on the AP."""
    ap = AssociativeArray(n_aircraft, config.pes_per_module, config.costs)

    # Parallel prologue: expected positions + match-state reset.
    ap.alu(4)
    ap.mem(6)

    for round_no in range(stats.rounds_executed):
        reports = int(stats.round_radar_ids[round_no].shape[0])
        if not reports:
            continue
        ap.scalar(4 * reports)
        _gate_step(ap, times=reports)

    # Parallel commit.
    ap.alu(2)
    ap.mem(4)
    return ap


def charge_task23(
    config: ApConfig,
    n_aircraft: int,
    det: DetectionStats,
    res: ResolutionStats,
) -> AssociativeArray:
    """Cycle ledger for one fused Task-2+3 execution on the AP."""
    ap = AssociativeArray(n_aircraft, config.pes_per_module, config.costs)

    ap.scalar(4 * n_aircraft)
    _batcher_step(ap, times=n_aircraft)

    if res.trials_evaluated:
        # Manoeuvre bookkeeping on the control unit, then the re-check.
        ap.scalar(14 * res.trials_evaluated)
        _batcher_step(ap, times=res.trials_evaluated)

    # Parallel epilogue: commit new paths, clear flags.
    ap.alu(2)
    ap.mem(4)
    return ap


def charge_setup(config: ApConfig, n_aircraft: int) -> AssociativeArray:
    """Cycle ledger for the one-time SetupFlight initialisation."""
    ap = AssociativeArray(n_aircraft, config.pes_per_module, config.costs)
    ap.alu(60)  # parallel RNG + conversions, all records at once
    ap.multiply(4)
    ap.mem(7)
    return ap
