"""Associative-processor cost replay of the three ATM tasks.

The associative algorithms of [12, 13] have the same outer-loop
structure as the plain-SIMD versions, but every loop body is a constant
number of constant-time primitives — which is the whole point of the
architecture:

* **Task 1** — for each unmatched radar report: broadcast the report,
  associative-search the expected-position gates of *all* aircraft at
  once, use the step function to see how many responded, pick-one /
  discard by responder count, write the match flags masked.  Linear in
  the number of reports.
* **Task 2** — for each aircraft: broadcast its track, compute the
  division-free Batcher window comparison on every PE simultaneously
  (cross-multiplied inequalities — bit-serial multiplies, no divide
  unit), min-reduce the earliest conflict time.  Linear in N.
* **Task 3** — per attempted trial heading: broadcast the rotated trial
  and redo the Task-2-shaped step.  Linear in the number of trials.
"""

from __future__ import annotations

from ..core.collision import DetectionStats
from ..core.resolution import ResolutionStats
from ..core.tracking import TrackingStats
from .primitives import AssociativeArray
from .staran import ApConfig

__all__ = ["charge_task1", "charge_task23", "charge_setup"]


def _gate_step(ap: AssociativeArray) -> None:
    """One radar report against all aircraft: the Task-1 loop body."""
    ap.broadcast_words(2)  # rx, ry
    ap.search(4)  # two |gap| < g window tests, two coordinates
    ap.mask_op(2)
    ap.any_responder(2)  # responder count: none / one / many
    ap.pick_one(1)
    ap.mem(2)  # match-flag writes, masked


def _batcher_step(ap: AssociativeArray) -> None:
    """One track against all aircraft: the Task-2/3 loop body."""
    ap.broadcast_words(5)  # x, y, dx, dy, alt
    ap.search(1)  # altitude band gate
    ap.alu(8)  # gaps, relative velocities
    ap.multiply(4)  # cross-multiplied window inequalities
    ap.alu(6)  # window intersection tests
    ap.mask_op(3)
    ap.global_extremum(1)  # earliest conflict time
    ap.mem(2)  # time_till / colWith updates, masked


def charge_task1(config: ApConfig, n_aircraft: int, stats: TrackingStats) -> AssociativeArray:
    """Cycle ledger for one Task-1 execution on the AP."""
    ap = AssociativeArray(n_aircraft, config.pes_per_module, config.costs)

    # Parallel prologue: expected positions + match-state reset.
    ap.alu(4)
    ap.mem(6)

    for round_no in range(stats.rounds_executed):
        for _ in range(int(stats.round_radar_ids[round_no].shape[0])):
            ap.scalar(4)
            _gate_step(ap)

    # Parallel commit.
    ap.alu(2)
    ap.mem(4)
    return ap


def charge_task23(
    config: ApConfig,
    n_aircraft: int,
    det: DetectionStats,
    res: ResolutionStats,
) -> AssociativeArray:
    """Cycle ledger for one fused Task-2+3 execution on the AP."""
    ap = AssociativeArray(n_aircraft, config.pes_per_module, config.costs)

    for _ in range(n_aircraft):
        ap.scalar(4)
        _batcher_step(ap)

    for _ in range(res.trials_evaluated):
        ap.scalar(14)  # manoeuvre bookkeeping on the control unit
        _batcher_step(ap)

    # Parallel epilogue: commit new paths, clear flags.
    ap.alu(2)
    ap.mem(4)
    return ap


def charge_setup(config: ApConfig, n_aircraft: int) -> AssociativeArray:
    """Cycle ledger for the one-time SetupFlight initialisation."""
    ap = AssociativeArray(n_aircraft, config.pes_per_module, config.costs)
    ap.alu(60)  # parallel RNG + conversions, all records at once
    ap.multiply(4)
    ap.mem(7)
    return ap
