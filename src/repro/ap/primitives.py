"""Associative-processor primitives (paper Section 2.2).

An associative processor is a SIMD machine whose hardware additionally
supports, in (small) constant time regardless of the number of PEs:

* **broadcast** — the control unit sends a word to every PE;
* **associative search** — every PE compares a field of its record
  against the broadcast value simultaneously, setting its responder bit;
* **any-responder / step function** — the control unit learns in one
  operation whether any PE responded;
* **pick-one** — select a single responder for exclusive processing;
* **global maximum / minimum** — a bit-serial search over a field of all
  (masked) PEs.

These are the operations Goodyear's STARAN implemented in its
multi-dimensional-access memory and flip network, and they are exactly
why the ATM tasks run in *linear* time on an AP: the O(N) outer loops of
Tasks 1-3 have constant-cost bodies (Yuan/Baker [12, 13]).

:class:`AssociativeArray` charges cycles for these primitives.  Unlike
the plain-SIMD :class:`~repro.simd.pe_array.PEArray`, there is no
striping factor: the machine is sized with one flight record per PE
(DESIGN.md — the AP operating regime the paper's linear-time claims
assume), and no log-depth reductions: search, responder and extremum
operations cost fixed cycle counts.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict

__all__ = ["StaranCosts", "AssociativeArray"]


@dataclass(frozen=True)
class StaranCosts:
    """Cycle costs of the associative primitives.

    The ATM software of [13] works on short fixed-point fields, processed
    bit-serially across all PEs at once; costs scale with field width,
    not PE count.
    """

    #: bit-serial compare/add/subtract of one 16-bit field, all PEs.
    field_alu: float = 20.0
    #: bit-serial multiply of 16-bit fields (division-free Batcher form).
    field_mul: float = 150.0
    #: PE-local field load/store (MDA memory access).
    field_mem: float = 10.0
    #: broadcast one word to all PEs.
    broadcast: float = 8.0
    #: step function: "did any PE respond?".
    any_responder: float = 2.0
    #: select exactly one responder.
    pick_one: float = 4.0
    #: global min/max of a 16-bit field (bit-serial search).
    global_extremum: float = 40.0
    #: control-unit scalar operation.
    scalar: float = 1.0
    #: mask set/combine.
    mask: float = 2.0


@dataclass
class AssociativeArray:
    """Cycle ledger of an AP execution, one record per PE."""

    n_records: int
    pes_per_module: int = 256
    costs: StaranCosts = field(default_factory=StaranCosts)

    cycles: float = 0.0
    searches: int = 0
    broadcasts: int = 0
    extrema: int = 0
    #: per-primitive-class cycle and call tallies (``search``,
    #: ``multiply``, ``global_extremum``, ...) for repro.obs export.
    class_cycles: Dict[str, float] = field(default_factory=dict)
    class_counts: Dict[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.n_records <= 0:
            raise ValueError("need at least one record")
        if self.pes_per_module <= 0:
            raise ValueError("module size must be positive")

    @property
    def n_modules(self) -> int:
        """Array modules installed (the machine is sized to the fleet)."""
        return math.ceil(self.n_records / self.pes_per_module)

    @property
    def n_pes(self) -> int:
        return self.n_modules * self.pes_per_module

    # ------------------------------------------------------------------
    # constant-time primitives
    # ------------------------------------------------------------------

    def _charge(self, klass: str, cycles: float, count: float) -> None:
        self.cycles += cycles
        self.class_cycles[klass] = self.class_cycles.get(klass, 0.0) + cycles
        self.class_counts[klass] = self.class_counts.get(klass, 0.0) + count

    def broadcast_words(self, words: float = 1.0) -> None:
        self._charge("broadcast", self.costs.broadcast * words, words)
        self.broadcasts += int(words)

    def search(self, field_ops: float = 1.0, times: int = 1) -> None:
        """Associative search: parallel field comparisons, all PEs.

        ``times`` batches that many identical searches into one charge —
        the closed-form equivalent of calling ``search(field_ops)`` in a
        loop (all cost constants are integer-valued, so the batched sum
        is bit-identical to the per-call accumulation).
        """
        if times < 0:
            raise ValueError("negative search count")
        if times == 0:
            return
        self._charge("search", self.costs.field_alu * field_ops * times, times)
        self.searches += times

    def alu(self, field_ops: float = 1.0) -> None:
        self._charge("alu", self.costs.field_alu * field_ops, field_ops)

    def multiply(self, count: float = 1.0) -> None:
        self._charge("multiply", self.costs.field_mul * count, count)

    def mem(self, accesses: float = 1.0) -> None:
        self._charge("mem", self.costs.field_mem * accesses, accesses)

    def any_responder(self, count: float = 1.0) -> None:
        self._charge("any_responder", self.costs.any_responder * count, count)

    def pick_one(self, count: float = 1.0) -> None:
        self._charge("pick_one", self.costs.pick_one * count, count)

    def global_extremum(self, count: float = 1.0) -> None:
        self._charge("global_extremum", self.costs.global_extremum * count, count)
        self.extrema += int(count)

    def mask_op(self, count: float = 1.0) -> None:
        self._charge("mask", self.costs.mask * count, count)

    def scalar(self, count: float = 1.0) -> None:
        self._charge("scalar", self.costs.scalar * count, count)

    def seconds(self, clock_hz: float) -> float:
        if clock_hz <= 0:
            raise ValueError("clock must be positive")
        return self.cycles / clock_hz

    def class_seconds(self, clock_hz: float) -> Dict[str, float]:
        """Per-primitive-class seconds; values sum to ``seconds()``."""
        if clock_hz <= 0:
            raise ValueError("clock must be positive")
        return {k: v / clock_hz for k, v in self.class_cycles.items()}
