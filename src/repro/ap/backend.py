"""Associative-processor backend (STARAN)."""

from __future__ import annotations

from typing import Any, Dict, Union

from ..backends.base import Backend
from ..core.collision import DetectionMode
from ..core.resolution import detect_and_resolve as core_detect_and_resolve
from ..core.tracking import correlate as core_correlate
from ..core.types import FleetState, RadarFrame, TaskTiming, TimingBreakdown
from ..obs import count as obs_count
from ..obs import span as obs_span
from .primitives import AssociativeArray
from .staran import STARAN, STARAN_1972, ApConfig
from .tasks import charge_setup, charge_task1, charge_task23

__all__ = ["ApBackend"]

_CONFIGS = {c.key: c for c in (STARAN, STARAN_1972)}


class ApBackend(Backend):
    """An associative processor running the AP algorithms of [12, 13]."""

    deterministic_timing = True
    supports_trace_replay = True

    def __init__(self, config: Union[str, ApConfig] = STARAN) -> None:
        if isinstance(config, str):
            try:
                config = _CONFIGS[config]
            except KeyError:
                known = ", ".join(sorted(_CONFIGS))
                raise KeyError(f"unknown AP config {config!r}; known: {known}") from None
        self.config = config
        self.name = config.registry_name

    def _emit_ap_obs(self, ap: AssociativeArray) -> dict:
        """Trace the associative ledger: one span per primitive class."""
        detail = {}
        for klass, class_s in ap.class_seconds(self.config.clock_hz).items():
            name = f"ap.{klass}"
            detail[name] = class_s
            with obs_span(
                name, cat="ap", count=ap.class_counts[klass], modules=ap.n_modules
            ) as sp:
                sp.add_modelled(class_s)
            obs_count(f"{name}.calls", ap.class_counts[klass])
        obs_count("ap.searches", ap.searches)
        obs_count("ap.broadcasts", ap.broadcasts)
        obs_count("ap.extrema", ap.extrema)
        return detail

    def _charge_task1(self, task, n: int, stats) -> TaskTiming:
        ap = charge_task1(self.config, n, stats)
        seconds = ap.seconds(self.config.clock_hz)
        detail = self._emit_ap_obs(ap)
        task.add_modelled(seconds)
        return TaskTiming(
            task="task1",
            platform=self.name,
            n_aircraft=n,
            seconds=seconds,
            breakdown=TimingBreakdown(compute=seconds),
            detail=detail,
            stats={
                "rounds": stats.rounds_executed,
                "committed": stats.committed,
                "cycles": ap.cycles,
                "modules": ap.n_modules,
                "searches": ap.searches,
            },
        )

    def _charge_task23(self, task, n: int, det, res) -> TaskTiming:
        ap = charge_task23(self.config, n, det, res)
        seconds = ap.seconds(self.config.clock_hz)
        detail = self._emit_ap_obs(ap)
        task.add_modelled(seconds)
        return TaskTiming(
            task="task23",
            platform=self.name,
            n_aircraft=n,
            seconds=seconds,
            breakdown=TimingBreakdown(compute=seconds),
            detail=detail,
            stats={
                "conflicts": det.conflicts,
                "critical_conflicts": det.critical_conflicts,
                "resolved": res.resolved,
                "unresolved": res.unresolved,
                "trials": res.trials_evaluated,
                "cycles": ap.cycles,
                "modules": ap.n_modules,
            },
        )

    def track_and_correlate(self, fleet: FleetState, frame: RadarFrame) -> TaskTiming:
        with self._task_span("task1", fleet.n) as task:
            with obs_span("core.correlate", cat="core"):
                stats = core_correlate(fleet, frame)
            return self._charge_task1(task, fleet.n, stats)

    def detect_and_resolve(
        self,
        fleet: FleetState,
        mode: DetectionMode = DetectionMode.SIGNED,
    ) -> TaskTiming:
        with self._task_span("task23", fleet.n) as task:
            with obs_span("core.detect_and_resolve", cat="core"):
                det, res = core_detect_and_resolve(fleet, mode)
            return self._charge_task23(task, fleet.n, det, res)

    def track_timing_from_trace(self, period) -> TaskTiming:
        with self._task_span("task1", period.n_aircraft) as task:
            return self._charge_task1(task, period.n_aircraft, period.stats)

    def collision_timing_from_trace(self, collision) -> TaskTiming:
        with self._task_span("task23", collision.n_aircraft) as task:
            return self._charge_task23(
                task, collision.n_aircraft, collision.det, collision.res
            )

    def setup_timing(self, n: int) -> TaskTiming:
        """Modelled one-time SetupFlight cost."""
        ap = charge_setup(self.config, n)
        seconds = ap.seconds(self.config.clock_hz)
        return TaskTiming(
            task="setup",
            platform=self.name,
            n_aircraft=n,
            seconds=seconds,
            breakdown=TimingBreakdown(compute=seconds),
        )

    def peak_throughput_ops_per_s(self) -> float:
        # Field-operation throughput of a fleet-sized array: every PE
        # participates in each field op, one field op per field_alu cycles.
        per_op_cycles = self.config.costs.field_alu
        return self.config.pes_per_module * self.config.clock_hz / per_op_cycles

    def describe(self) -> Dict[str, Any]:
        info = super().describe()
        info.update(
            kind="associative processor model",
            machine=self.config.name,
            pes_per_module=self.config.pes_per_module,
            clock_mhz=self.config.clock_hz / 1e6,
        )
        return info
