"""STARAN associative-processor configuration.

Goodyear Aerospace's STARAN (early 1970s) organised its PEs in array
modules of 256 bit-serial processing elements over multi-dimensional
access memory; the ATM demonstration to the FAA at Dulles ran on exactly
this machine (paper Section 3).

Calibration note (recorded in DESIGN.md / EXPERIMENTS.md): the paper
plots the "AP (STARAN)" series from the Yuan/Baker studies [12, 13],
whose AP numbers describe an AP *design* sized for the task — one flight
record per PE, enough array modules for the fleet — rather than the
surviving 1972 hardware.  We follow that convention: the module count
scales with the fleet and the effective clock is set to a modern-
conservative 40 MHz so the linear curves clear every half-second
deadline across the tested range, matching the behaviour the paper
reports.  The 1972 hardware itself (STARAN_1972, ~5 MHz effective) is
included for historical comparison runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .primitives import StaranCosts

__all__ = ["ApConfig", "STARAN", "STARAN_1972"]


@dataclass(frozen=True)
class ApConfig:
    """Static description of an associative processor."""

    name: str
    key: str
    clock_hz: float
    pes_per_module: int = 256
    costs: StaranCosts = field(default_factory=StaranCosts)

    def __post_init__(self) -> None:
        if self.clock_hz <= 0:
            raise ValueError(
                f"AP config {self.key!r}: clock_hz must be positive,"
                f" got {self.clock_hz!r}"
            )
        if self.pes_per_module <= 0:
            raise ValueError(
                f"AP config {self.key!r}: pes_per_module (the associative"
                f" word count) must be positive, got {self.pes_per_module!r}"
            )

    @property
    def registry_name(self) -> str:
        return f"ap:{self.key}"


STARAN = ApConfig(
    name="STARAN AP (fleet-sized, 40 MHz effective)",
    key="staran",
    clock_hz=40e6,
)

STARAN_1972 = ApConfig(
    name="STARAN AP (1972 hardware, 5 MHz effective)",
    key="staran-1972",
    clock_hz=5e6,
)
