"""SIMD-style cost replay of the three ATM tasks.

The structure follows the associative algorithms of Yuan/Baker [12, 13]
as executed on a *plain* SIMD machine (the ClearSpeed emulation): a
sequential control-unit loop whose body is a fixed bundle of vector
instructions over the whole PE array.

* Task 1: one loop iteration per *unmatched radar report* per round —
  broadcast the report, gate-test every aircraft in parallel, find the
  responders with a global reduction;
* Task 2: one loop iteration per aircraft — broadcast its track, run the
  Batcher interval equations on every PE in parallel, min-reduce the
  earliest conflict time;
* Task 3: one loop iteration per attempted trial heading — broadcast the
  rotated trial, re-run the parallel check, reduce.

Each vector instruction is multiplied by the virtual-PE stripe factor
``ceil(n / n_pes)``, which is what bends the 96-PE ClearSpeed curve away
from the ideal one-aircraft-per-PE line the STARAN model follows.
"""

from __future__ import annotations

from ..core.collision import DetectionStats
from ..core.resolution import ResolutionStats
from ..core.tracking import TrackingStats
from .clearspeed import SimdConfig
from .instructions import Op
from .pe_array import PEArray

__all__ = ["charge_task1", "charge_task23", "charge_setup"]

# Task 1 per-iteration vector bundle.
_T1_GATE_ALU = 10
_T1_UPDATE_OPS = 4
_T1_REDUCTIONS = 2
_T1_SCALAR = 4
# Task 1 parallel prologue/epilogue (expected positions, commit).
_T1_EDGE_OPS = 10

# Task 2 per-iteration vector bundle (Eqs. 1-6 + altitude gate + masks).
_T2_ALU = 25
_T2_SPECIAL = 4
_T2_UPDATE_OPS = 4
_T2_REDUCTIONS = 2
_T2_SCALAR = 4
_T2_BROADCAST_WORDS = 5

# Task 3 per-trial extras on top of a Task-2-shaped check.
_T3_SCALAR = 12
_T3_SCALAR_SPECIAL = 2

# SetupFlight: fully parallel, one bundle.
_SETUP_OPS = 140
_SETUP_SPECIAL = 1


def charge_task1(config: SimdConfig, n_aircraft: int, stats: TrackingStats) -> PEArray:
    """Cycle ledger for one Task-1 execution on the SIMD machine."""
    pe = PEArray(config.n_pes, n_aircraft, config.costs)

    # Load the shuffled radar frame into the array edge-on.
    pe.network(
        config.network.distribute_cycles(
            stats.round_radar_ids[0].shape[0] if stats.round_radar_ids else n_aircraft
        )
    )

    # Parallel prologue: expected positions, rMatch reset.
    pe.vector(Op.ALU, _T1_EDGE_OPS)
    pe.vector(Op.MEM, 4)

    for round_no in range(stats.rounds_executed):
        active_radars = int(stats.round_radar_ids[round_no].shape[0])
        for_count = active_radars
        pe.scalar(Op.SCALAR, _T1_SCALAR * for_count)
        pe.broadcast(2 * for_count)  # rx, ry
        pe.vector(Op.ALU, _T1_GATE_ALU * for_count)
        pe.vector(Op.MASK, 2 * for_count)
        pe.reduce(_T1_REDUCTIONS * for_count)
        pe.vector(Op.MEM, _T1_UPDATE_OPS * for_count)

    # Commit: take radar position where uniquely matched.
    pe.vector(Op.ALU, _T1_EDGE_OPS)
    pe.vector(Op.MEM, 4)
    return pe


def charge_task23(
    config: SimdConfig,
    n_aircraft: int,
    det: DetectionStats,
    res: ResolutionStats,
) -> PEArray:
    """Cycle ledger for one fused Task-2+3 execution."""
    pe = PEArray(config.n_pes, n_aircraft, config.costs)

    # Detection: one sequential step per aircraft.
    steps = n_aircraft
    pe.scalar(Op.SCALAR, _T2_SCALAR * steps)
    pe.broadcast(_T2_BROADCAST_WORDS * steps)
    pe.vector(Op.ALU, _T2_ALU * steps)
    pe.vector(Op.SPECIAL, _T2_SPECIAL * steps)
    pe.vector(Op.MASK, 2 * steps)
    pe.reduce(_T2_REDUCTIONS * steps)
    pe.vector(Op.MEM, _T2_UPDATE_OPS * steps)

    # Resolution: each attempted trial replays a broadcast + parallel
    # check + reduction, plus scalar manoeuvre work on the control unit.
    trials = res.trials_evaluated
    pe.scalar(Op.SCALAR, _T3_SCALAR * trials)
    pe.scalar(Op.SPECIAL, _T3_SCALAR_SPECIAL * trials)
    pe.broadcast(_T2_BROADCAST_WORDS * trials)
    pe.vector(Op.ALU, _T2_ALU * trials)
    pe.vector(Op.SPECIAL, _T2_SPECIAL * trials)
    pe.reduce(1 * trials)
    pe.vector(Op.MEM, 2 * trials)
    return pe


def charge_setup(config: SimdConfig, n_aircraft: int) -> PEArray:
    """Cycle ledger for the one-time SetupFlight initialisation."""
    pe = PEArray(config.n_pes, n_aircraft, config.costs)
    pe.vector(Op.ALU, _SETUP_OPS)
    pe.vector(Op.SPECIAL, _SETUP_SPECIAL)
    pe.vector(Op.MEM, 7)
    pe.network(config.network.distribute_cycles(n_aircraft))
    return pe
