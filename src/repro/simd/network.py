"""Inter-PE network models.

The ClearSpeed CSX600 connects its 96 PEs in a ring ("swazzle" path);
data rearrangement costs one cycle per hop per word.  The ATM tasks of
the paper barely use inter-PE communication (broadcast and reductions
cover them), but the load/unload of the flight table and the radar-frame
distribution go through the network, so the model charges them.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = ["RingNetwork"]


@dataclass(frozen=True)
class RingNetwork:
    """A unidirectional ring of ``n_pes`` processing elements."""

    n_pes: int
    cycles_per_hop: float = 1.0

    def __post_init__(self) -> None:
        if self.n_pes <= 0:
            raise ValueError("ring needs at least one PE")
        if self.cycles_per_hop <= 0:
            raise ValueError("hop cost must be positive")

    def shift_cycles(self, distance: int, words: int = 1) -> float:
        """Cycles to shift ``words`` values by ``distance`` positions.

        Distance wraps around the ring; shifting by 0 is free.
        """
        hops = distance % self.n_pes
        return self.cycles_per_hop * hops * words

    def distribute_cycles(self, n_elements: int) -> float:
        """Cycles to stream ``n_elements`` values in from the edge.

        The array fills like a shift register: one element enters per
        cycle, so a full load of e elements over p PEs costs
        ``ceil(e / p)`` stripes of p hops each.
        """
        if n_elements < 0:
            raise ValueError("negative element count")
        stripes = math.ceil(n_elements / self.n_pes)
        return self.cycles_per_hop * stripes * self.n_pes

    def gather_cycles(self, n_elements: int) -> float:
        """Cycles to stream ``n_elements`` values out to the edge."""
        return self.distribute_cycles(n_elements)
