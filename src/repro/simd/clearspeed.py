"""ClearSpeed CSX600 configuration (the paper's SIMD platform).

The CSX600 accelerator has two chips, each a SIMD array of 96 PEs on a
ring network, clocked at 250 MHz (paper Section 1.1; Yuan/Baker [12,13]
programmed it in the Cn language).  The AP emulation of [12, 13] ran on
one 96-PE array, which is what this configuration models; the
``CSX600_DUAL`` variant with both chips exists for scaling studies.
"""

from __future__ import annotations

from dataclasses import dataclass

from .instructions import DEFAULT_COSTS, CostTable
from .network import RingNetwork

__all__ = ["SimdConfig", "CSX600", "CSX600_DUAL"]


@dataclass(frozen=True)
class SimdConfig:
    """Static description of a traditional SIMD machine."""

    name: str
    key: str
    n_pes: int
    clock_hz: float
    costs: CostTable
    network: RingNetwork

    def __post_init__(self) -> None:
        if self.n_pes <= 0:
            raise ValueError(
                f"SIMD config {self.key!r}: n_pes must be positive,"
                f" got {self.n_pes!r}"
            )
        if self.clock_hz <= 0:
            raise ValueError(
                f"SIMD config {self.key!r}: clock_hz must be positive,"
                f" got {self.clock_hz!r}"
            )
        if self.network.n_pes != self.n_pes:
            raise ValueError(
                f"SIMD config {self.key!r}: ring network is sized for"
                f" {self.network.n_pes} PEs but the array has {self.n_pes}"
            )

    @property
    def registry_name(self) -> str:
        return f"simd:{self.key}"

    @property
    def peak_ops_per_s(self) -> float:
        """Peak PE-local operation throughput."""
        return self.n_pes * self.clock_hz


CSX600 = SimdConfig(
    name="ClearSpeed CSX600 (96 PEs)",
    key="clearspeed-csx600",
    n_pes=96,
    clock_hz=250e6,
    costs=DEFAULT_COSTS,
    network=RingNetwork(n_pes=96),
)

CSX600_DUAL = SimdConfig(
    name="ClearSpeed CSX600 (2 chips, 192 PEs)",
    key="clearspeed-csx600-dual",
    n_pes=192,
    clock_hz=250e6,
    costs=DEFAULT_COSTS,
    network=RingNetwork(n_pes=192),
)
