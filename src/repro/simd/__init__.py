"""Traditional-SIMD machine simulator (ClearSpeed CSX600).

Control unit + synchronous PE array with per-instruction-class cycle
costs, virtual-PE striping when the fleet outgrows the array, and a ring
network for data movement — the platform the paper's AP emulation of
[12, 13] ran on.
"""

from ..backends.registry import register_backend
from .backend import SimdBackend
from .clearspeed import CSX600, CSX600_DUAL, SimdConfig
from .instructions import DEFAULT_COSTS, CostTable, Op
from .network import RingNetwork
from .pe_array import PEArray

__all__ = [
    "SimdBackend",
    "CSX600",
    "CSX600_DUAL",
    "SimdConfig",
    "DEFAULT_COSTS",
    "CostTable",
    "Op",
    "RingNetwork",
    "PEArray",
]


def _register() -> None:
    for cfg in (CSX600, CSX600_DUAL):
        register_backend(cfg.registry_name, lambda cfg=cfg: SimdBackend(cfg))


_register()
