"""Instruction classes and cycle costs of the SIMD machine model.

A traditional SIMD computer (paper Section 2.1) executes one instruction
stream: the control unit issues each instruction to every processing
element simultaneously.  The cost of a *vector* instruction is its cycle
count times the virtual-PE striping factor (when the data set is larger
than the PE array, each PE holds ``ceil(n / n_pes)`` elements and
replays the instruction once per stripe).

The table below is deliberately coarse — classes, not opcodes — because
what shapes the curves is the *structure* (which operations are per-step
constants vs. striped vector work), not 10% differences in per-op cost.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict

__all__ = ["Op", "CostTable", "DEFAULT_COSTS"]


class Op(enum.Enum):
    """Instruction classes charged by the machine model."""

    #: PE-local add/sub/compare/logical on a word.
    ALU = "alu"
    #: PE-local multiply.
    MUL = "mul"
    #: PE-local divide / sqrt / trig (iterative on simple PE ALUs).
    SPECIAL = "special"
    #: PE-local memory read/write.
    MEM = "mem"
    #: control-unit scalar operation (loop counters, branches).
    SCALAR = "scalar"
    #: broadcast of one word from the control unit to all PEs.
    BROADCAST = "broadcast"
    #: set/combine PE mask bits.
    MASK = "mask"


@dataclass(frozen=True)
class CostTable:
    """Cycles per instruction class, plus the reduction cost model.

    ``reduction_base`` + ``reduction_per_level`` x ceil(log2(PEs)) is the
    cost of a global AND/OR/min/max over the PE array on a plain SIMD
    machine (tree or ring sweep).  The associative processor overrides
    this with its constant-time hardware (see :mod:`repro.ap`).
    """

    cycles: Dict[Op, float] = field(
        default_factory=lambda: {
            Op.ALU: 1.0,
            Op.MUL: 2.0,
            Op.SPECIAL: 16.0,
            Op.MEM: 2.0,
            Op.SCALAR: 1.0,
            Op.BROADCAST: 2.0,
            Op.MASK: 1.0,
        }
    )
    reduction_base: float = 4.0
    reduction_per_level: float = 2.0

    def of(self, op: Op) -> float:
        return self.cycles[op]


DEFAULT_COSTS = CostTable()
