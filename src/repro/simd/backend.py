"""SIMD backend: the ClearSpeed CSX600 running the AP-style algorithms."""

from __future__ import annotations

from typing import Any, Dict, Union

from ..backends.base import Backend
from ..core.collision import DetectionMode
from ..core.resolution import detect_and_resolve as core_detect_and_resolve
from ..core.tracking import correlate as core_correlate
from ..core.types import FleetState, RadarFrame, TaskTiming, TimingBreakdown
from .clearspeed import CSX600, CSX600_DUAL, SimdConfig
from .tasks import charge_setup, charge_task1, charge_task23

__all__ = ["SimdBackend"]

_CONFIGS = {c.key: c for c in (CSX600, CSX600_DUAL)}


class SimdBackend(Backend):
    """A traditional synchronous SIMD machine (paper Section 2.1)."""

    deterministic_timing = True

    def __init__(self, config: Union[str, SimdConfig] = CSX600) -> None:
        if isinstance(config, str):
            try:
                config = _CONFIGS[config]
            except KeyError:
                known = ", ".join(sorted(_CONFIGS))
                raise KeyError(
                    f"unknown SIMD config {config!r}; known: {known}"
                ) from None
        self.config = config
        self.name = config.registry_name

    def track_and_correlate(self, fleet: FleetState, frame: RadarFrame) -> TaskTiming:
        stats = core_correlate(fleet, frame)
        pe = charge_task1(self.config, fleet.n, stats)
        seconds = pe.seconds(self.config.clock_hz)
        return TaskTiming(
            task="task1",
            platform=self.name,
            n_aircraft=fleet.n,
            seconds=seconds,
            breakdown=TimingBreakdown(compute=seconds),
            stats={
                "rounds": stats.rounds_executed,
                "committed": stats.committed,
                "stripe": pe.stripe,
                "cycles": pe.cycles,
                "vector_instructions": pe.vector_instructions,
                "reductions": pe.reductions,
            },
        )

    def detect_and_resolve(
        self,
        fleet: FleetState,
        mode: DetectionMode = DetectionMode.SIGNED,
    ) -> TaskTiming:
        det, res = core_detect_and_resolve(fleet, mode)
        pe = charge_task23(self.config, fleet.n, det, res)
        seconds = pe.seconds(self.config.clock_hz)
        return TaskTiming(
            task="task23",
            platform=self.name,
            n_aircraft=fleet.n,
            seconds=seconds,
            breakdown=TimingBreakdown(compute=seconds),
            stats={
                "conflicts": det.conflicts,
                "critical_conflicts": det.critical_conflicts,
                "resolved": res.resolved,
                "unresolved": res.unresolved,
                "trials": res.trials_evaluated,
                "stripe": pe.stripe,
                "cycles": pe.cycles,
            },
        )

    def setup_timing(self, n: int) -> TaskTiming:
        """Modelled one-time SetupFlight cost."""
        pe = charge_setup(self.config, n)
        seconds = pe.seconds(self.config.clock_hz)
        return TaskTiming(
            task="setup",
            platform=self.name,
            n_aircraft=n,
            seconds=seconds,
            breakdown=TimingBreakdown(compute=seconds),
        )

    def peak_throughput_ops_per_s(self) -> float:
        return self.config.peak_ops_per_s

    def describe(self) -> Dict[str, Any]:
        info = super().describe()
        info.update(
            kind="traditional SIMD machine model",
            machine=self.config.name,
            n_pes=self.config.n_pes,
            clock_mhz=self.config.clock_hz / 1e6,
        )
        return info
