"""SIMD backend: the ClearSpeed CSX600 running the AP-style algorithms."""

from __future__ import annotations

from typing import Any, Dict, Union

from ..backends.base import Backend
from ..core.collision import DetectionMode
from ..core.resolution import detect_and_resolve as core_detect_and_resolve
from ..core.tracking import correlate as core_correlate
from ..core.types import FleetState, RadarFrame, TaskTiming, TimingBreakdown
from ..obs import count as obs_count
from ..obs import span as obs_span
from .clearspeed import CSX600, CSX600_DUAL, SimdConfig
from .pe_array import PEArray
from .tasks import charge_setup, charge_task1, charge_task23

__all__ = ["SimdBackend"]

_CONFIGS = {c.key: c for c in (CSX600, CSX600_DUAL)}


class SimdBackend(Backend):
    """A traditional synchronous SIMD machine (paper Section 2.1)."""

    deterministic_timing = True
    supports_trace_replay = True

    def __init__(self, config: Union[str, SimdConfig] = CSX600) -> None:
        if isinstance(config, str):
            try:
                config = _CONFIGS[config]
            except KeyError:
                known = ", ".join(sorted(_CONFIGS))
                raise KeyError(
                    f"unknown SIMD config {config!r}; known: {known}"
                ) from None
        self.config = config
        self.name = config.registry_name

    def _emit_pe_obs(self, pe: PEArray) -> dict:
        """Trace the PE-array ledger: one span per instruction class.

        Returns the per-class modelled-seconds dict (sums to the task's
        ``seconds``) used for ``TaskTiming.detail``.
        """
        detail = {}
        for klass, class_s in pe.class_seconds(self.config.clock_hz).items():
            name = f"simd.{klass}"
            detail[name] = class_s
            with obs_span(
                name, cat="simd", count=pe.class_counts[klass], stripe=pe.stripe
            ) as sp:
                sp.add_modelled(class_s)
            obs_count(f"{name}.issues", pe.class_counts[klass])
        obs_count("simd.vector_instructions", pe.vector_instructions)
        obs_count("simd.scalar_instructions", pe.scalar_instructions)
        obs_count("simd.reductions", pe.reductions)
        return detail

    def _charge_task1(self, task, n: int, stats) -> TaskTiming:
        pe = charge_task1(self.config, n, stats)
        seconds = pe.seconds(self.config.clock_hz)
        detail = self._emit_pe_obs(pe)
        task.add_modelled(seconds)
        return TaskTiming(
            task="task1",
            platform=self.name,
            n_aircraft=n,
            seconds=seconds,
            breakdown=TimingBreakdown(compute=seconds),
            detail=detail,
            stats={
                "rounds": stats.rounds_executed,
                "committed": stats.committed,
                "stripe": pe.stripe,
                "cycles": pe.cycles,
                "vector_instructions": pe.vector_instructions,
                "reductions": pe.reductions,
            },
        )

    def _charge_task23(self, task, n: int, det, res) -> TaskTiming:
        pe = charge_task23(self.config, n, det, res)
        seconds = pe.seconds(self.config.clock_hz)
        detail = self._emit_pe_obs(pe)
        task.add_modelled(seconds)
        return TaskTiming(
            task="task23",
            platform=self.name,
            n_aircraft=n,
            seconds=seconds,
            breakdown=TimingBreakdown(compute=seconds),
            detail=detail,
            stats={
                "conflicts": det.conflicts,
                "critical_conflicts": det.critical_conflicts,
                "resolved": res.resolved,
                "unresolved": res.unresolved,
                "trials": res.trials_evaluated,
                "stripe": pe.stripe,
                "cycles": pe.cycles,
            },
        )

    def track_and_correlate(self, fleet: FleetState, frame: RadarFrame) -> TaskTiming:
        with self._task_span("task1", fleet.n) as task:
            with obs_span("core.correlate", cat="core"):
                stats = core_correlate(fleet, frame)
            return self._charge_task1(task, fleet.n, stats)

    def detect_and_resolve(
        self,
        fleet: FleetState,
        mode: DetectionMode = DetectionMode.SIGNED,
    ) -> TaskTiming:
        with self._task_span("task23", fleet.n) as task:
            with obs_span("core.detect_and_resolve", cat="core"):
                det, res = core_detect_and_resolve(fleet, mode)
            return self._charge_task23(task, fleet.n, det, res)

    def track_timing_from_trace(self, period) -> TaskTiming:
        with self._task_span("task1", period.n_aircraft) as task:
            return self._charge_task1(task, period.n_aircraft, period.stats)

    def collision_timing_from_trace(self, collision) -> TaskTiming:
        with self._task_span("task23", collision.n_aircraft) as task:
            return self._charge_task23(
                task, collision.n_aircraft, collision.det, collision.res
            )

    def setup_timing(self, n: int) -> TaskTiming:
        """Modelled one-time SetupFlight cost."""
        pe = charge_setup(self.config, n)
        seconds = pe.seconds(self.config.clock_hz)
        return TaskTiming(
            task="setup",
            platform=self.name,
            n_aircraft=n,
            seconds=seconds,
            breakdown=TimingBreakdown(compute=seconds),
        )

    def peak_throughput_ops_per_s(self) -> float:
        return self.config.peak_ops_per_s

    def describe(self) -> Dict[str, Any]:
        info = super().describe()
        info.update(
            kind="traditional SIMD machine model",
            machine=self.config.name,
            n_pes=self.config.n_pes,
            clock_mhz=self.config.clock_hz / 1e6,
        )
        return info
