"""The PE array: striping, masking and the cycle ledger.

:class:`PEArray` is the accounting heart of both the plain-SIMD and the
associative backends.  It does not hold data (the functional results
come from the shared :mod:`repro.core` algorithms); it charges cycles
for the synchronous instruction stream a SIMD execution of those
algorithms issues.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict

from .instructions import DEFAULT_COSTS, CostTable, Op

__all__ = ["PEArray"]


@dataclass
class PEArray:
    """A synchronous array of ``n_pes`` processing elements.

    Parameters
    ----------
    n_pes:
        Physical PE count.
    n_elements:
        Data-set size mapped onto the array (aircraft or radar count);
        sets the virtual-PE striping factor.
    costs:
        Cycle cost table.
    """

    n_pes: int
    n_elements: int
    costs: CostTable = field(default_factory=lambda: DEFAULT_COSTS)

    #: accumulated machine cycles.
    cycles: float = 0.0
    #: accumulated counts per phase, for reporting.
    vector_instructions: int = 0
    scalar_instructions: int = 0
    reductions: int = 0
    #: per-instruction-class cycle and issue tallies, e.g.
    #: ``{"vector.alu": ..., "scalar.scalar": ..., "broadcast": ...,
    #: "reduce": ...}`` — the attribution repro.obs exports as counters.
    class_cycles: Dict[str, float] = field(default_factory=dict)
    class_counts: Dict[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.n_pes <= 0:
            raise ValueError("need at least one PE")
        if self.n_elements <= 0:
            raise ValueError("need at least one element")

    @property
    def stripe(self) -> int:
        """Virtual-PE factor: instruction replays per vector op."""
        return math.ceil(self.n_elements / self.n_pes)

    # ------------------------------------------------------------------
    # charging
    # ------------------------------------------------------------------

    def _charge(self, klass: str, cycles: float, count: float) -> None:
        self.cycles += cycles
        self.class_cycles[klass] = self.class_cycles.get(klass, 0.0) + cycles
        self.class_counts[klass] = self.class_counts.get(klass, 0.0) + count

    def vector(self, op: Op, count: float = 1.0) -> None:
        """``count`` vector instructions over the whole (striped) array."""
        if count < 0:
            raise ValueError("negative instruction count")
        self._charge(
            f"vector.{op.name.lower()}", self.costs.of(op) * count * self.stripe, count
        )
        self.vector_instructions += int(count)

    def scalar(self, op: Op = Op.SCALAR, count: float = 1.0) -> None:
        """Control-unit work; independent of the array size."""
        if count < 0:
            raise ValueError("negative instruction count")
        self._charge(f"scalar.{op.name.lower()}", self.costs.of(op) * count, count)
        self.scalar_instructions += int(count)

    def broadcast(self, words: float = 1.0) -> None:
        """Broadcast ``words`` values from the control unit to all PEs."""
        self._charge("broadcast", self.costs.of(Op.BROADCAST) * words, words)
        self.vector_instructions += int(words)

    def network(self, cycles: float) -> None:
        """Ring-network transfer cycles (edge-on data distribution)."""
        if cycles < 0:
            raise ValueError("negative cycle count")
        self._charge("network", cycles, 1.0)

    def reduce(self, count: float = 1.0) -> None:
        """Global AND/OR/min/max over the array (tree of depth log2 PEs).

        Striping adds a local pre-reduction pass over each PE's stripe.
        """
        levels = max(1.0, math.ceil(math.log2(self.n_pes)))
        per = (
            self.costs.reduction_base
            + self.costs.reduction_per_level * levels
            + self.costs.of(Op.ALU) * (self.stripe - 1)
        )
        self._charge("reduce", per * count, count)
        self.reductions += int(count)

    def seconds(self, clock_hz: float) -> float:
        """Convert the accumulated cycles to seconds."""
        if clock_hz <= 0:
            raise ValueError("clock must be positive")
        return self.cycles / clock_hz

    def class_seconds(self, clock_hz: float) -> Dict[str, float]:
        """Per-instruction-class seconds; values sum to ``seconds()``."""
        if clock_hz <= 0:
            raise ValueError("clock must be positive")
        return {k: v / clock_hz for k, v in self.class_cycles.items()}
