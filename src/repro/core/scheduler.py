"""The major cycle: 16 half-second periods with hard deadlines (Section 4.2).

Every half second Task 1 must run; in the 16th period the fused Task 2+3
runs after Task 1.  Whatever modelled time the platform needs is charged
against the 0.5 s period budget:

* a task whose predecessor already exhausted the period is **skipped**
  ("remaining tasks that may not have time to complete their execution
  before the end of the period must be skipped");
* a period whose scheduled work exceeds 0.5 s is a **missed deadline**;
* leftover time is idle waiting — "whatever time is left, we wait that
  long before executing the next period" — recorded as slack.

Radar generation runs *before* each period starts and is not part of the
ATM budget (the paper: "this activity can occur prior to the start of
each half-second time interval").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, List, Optional

import numpy as np

from . import constants as C
from .collision import DetectionMode
from .radar import generate_radar_frame
from .types import FleetState, TaskTiming

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..backends.base import Backend

__all__ = ["PeriodRecord", "ScheduleResult", "run_schedule"]


@dataclass
class PeriodRecord:
    """Outcome of one half-second period."""

    major_cycle: int
    period: int  # 0..15 within the major cycle
    task1: TaskTiming
    task23: Optional[TaskTiming]
    #: total modelled task time charged to this period, seconds.
    time_used: float
    #: unused time the system waits out before the next period.
    slack: float
    deadline_missed: bool
    #: Task 2+3 was due this period but skipped because Task 1 overran.
    task23_skipped: bool


@dataclass
class ScheduleResult:
    """Aggregate of a multi-major-cycle run on one platform."""

    platform: str
    n_aircraft: int
    periods: List[PeriodRecord] = field(default_factory=list)

    @property
    def total_periods(self) -> int:
        return len(self.periods)

    @property
    def missed_deadlines(self) -> int:
        return sum(1 for p in self.periods if p.deadline_missed)

    @property
    def skipped_tasks(self) -> int:
        return sum(1 for p in self.periods if p.task23_skipped)

    @property
    def miss_rate(self) -> float:
        return self.missed_deadlines / self.total_periods if self.periods else 0.0

    def task1_times(self) -> np.ndarray:
        return np.array([p.task1.seconds for p in self.periods])

    def task23_times(self) -> np.ndarray:
        return np.array([p.task23.seconds for p in self.periods if p.task23 is not None])

    @property
    def worst_period_seconds(self) -> float:
        return max((p.time_used for p in self.periods), default=0.0)

    @property
    def mean_utilization(self) -> float:
        """Mean fraction of each period spent computing (vs waiting)."""
        if not self.periods:
            return 0.0
        used = np.array([min(p.time_used, C.PERIOD_SECONDS) for p in self.periods])
        return float(used.mean() / C.PERIOD_SECONDS)

    def summary(self) -> dict:
        t1 = self.task1_times()
        t23 = self.task23_times()
        return {
            "platform": self.platform,
            "n_aircraft": self.n_aircraft,
            "periods": self.total_periods,
            "missed_deadlines": self.missed_deadlines,
            "skipped_tasks": self.skipped_tasks,
            "miss_rate": self.miss_rate,
            "task1_mean_s": float(t1.mean()) if t1.size else 0.0,
            "task1_max_s": float(t1.max()) if t1.size else 0.0,
            "task23_mean_s": float(t23.mean()) if t23.size else 0.0,
            "task23_max_s": float(t23.max()) if t23.size else 0.0,
            "worst_period_s": self.worst_period_seconds,
            "mean_utilization": self.mean_utilization,
        }


def run_schedule(
    backend: "Backend",
    fleet: FleetState,
    *,
    major_cycles: int = 1,
    seed: int = 2018,
    mode: DetectionMode = DetectionMode.SIGNED,
    radar_dropout: float = 0.0,
    radar_clutter: int = 0,
) -> ScheduleResult:
    """Drive ``major_cycles`` 8-second cycles of the ATM schedule.

    The fleet is mutated in place (it keeps flying between cycles).
    Timing comes entirely from the backend's architecture model; this
    function only applies the period budget rules.
    """
    if major_cycles < 1:
        raise ValueError("need at least one major cycle")

    result = ScheduleResult(platform=backend.name, n_aircraft=fleet.n)
    global_period = 0

    for cycle in range(major_cycles):
        for period in range(C.PERIODS_PER_MAJOR_CYCLE):
            frame = generate_radar_frame(
                fleet, seed, global_period, dropout=radar_dropout,
                clutter=radar_clutter,
            )
            t1 = backend.track_and_correlate(fleet, frame)

            time_used = t1.seconds
            t23: Optional[TaskTiming] = None
            skipped = False
            if period == C.COLLISION_PERIOD_INDEX:
                if time_used >= C.PERIOD_SECONDS:
                    skipped = True
                else:
                    t23 = backend.detect_and_resolve(fleet, mode=mode)
                    time_used += t23.seconds

            missed = time_used > C.PERIOD_SECONDS or skipped
            result.periods.append(
                PeriodRecord(
                    major_cycle=cycle,
                    period=period,
                    task1=t1,
                    task23=t23,
                    time_used=time_used,
                    slack=max(C.PERIOD_SECONDS - time_used, 0.0),
                    deadline_missed=missed,
                    task23_skipped=skipped,
                )
            )
            global_period += 1

    return result
