"""Counter-based deterministic random numbers.

The paper's CUDA program initialises every aircraft in its own thread
("all threads initialize an aircraft simultaneously").  To make *every*
backend — GPU-style thread-per-aircraft kernels, PE-per-aircraft SIMD
code and sequential reference code — produce **bit-identical** fleets, we
use a counter-based generator: the random value for (seed, element,
stream) is a pure function of those three integers, independent of the
order in which elements are generated.

The mixing function is SplitMix64 (Steele, Lea & Flood, OOPSLA 2014),
implemented with vectorised uint64 NumPy arithmetic.  It passes BigCrush
as the finaliser of a 64-bit counter and is more than adequate for a
workload simulation.

Streams
-------
Each independent random decision in the simulation gets its own stream
id (see :class:`Stream`), so that e.g. the x coordinate draw never
correlates with the speed draw of the same aircraft.
"""

from __future__ import annotations

import enum

import numpy as np

__all__ = [
    "Stream",
    "splitmix64",
    "random_unit",
    "random_uniform",
    "random_int",
    "random_sign",
]

_GOLDEN = np.uint64(0x9E3779B97F4A7C15)
_MIX1 = np.uint64(0xBF58476D1CE4E5B9)
_MIX2 = np.uint64(0x94D049BB133111EB)

#: 2**-53, to map the top 53 bits of a uint64 onto [0, 1).
_INV_2_53 = float(np.ldexp(1.0, -53))


class Stream(enum.IntEnum):
    """Independent random streams used by the airfield simulation."""

    SETUP_X = 1
    SETUP_Y = 2
    SETUP_X_SIGN = 3
    SETUP_Y_SIGN = 4
    SETUP_SPEED = 5
    SETUP_DX = 6
    SETUP_DX_SIGN = 7
    SETUP_DY_SIGN = 8
    SETUP_ALTITUDE = 9
    RADAR_NOISE_X = 10
    RADAR_NOISE_Y = 11
    MIMD_JITTER = 12
    WORKLOAD = 13
    CLUTTER_X = 14
    CLUTTER_Y = 15
    TERRAIN = 16
    SCENARIO = 17


def _as_u64(value) -> np.ndarray:
    """Coerce an int or integer array to uint64 with wrap-around."""
    return np.asarray(value).astype(np.uint64, copy=False)


def splitmix64(counter) -> np.ndarray:
    """Return the SplitMix64 output for each value of ``counter``.

    Parameters
    ----------
    counter:
        Integer scalar or integer array.  Interpreted modulo 2**64.

    Returns
    -------
    numpy.ndarray
        uint64 array of the same shape as ``counter``.
    """
    with np.errstate(over="ignore"):
        z = _as_u64(counter) + _GOLDEN
        z = (z ^ (z >> np.uint64(30))) * _MIX1
        z = (z ^ (z >> np.uint64(27))) * _MIX2
        z = z ^ (z >> np.uint64(31))
    return z


def _key(seed: int, element, stream: int) -> np.ndarray:
    """Combine (seed, element, stream) into a single uint64 counter.

    The element index is pre-whitened so that consecutive ids land far
    apart in counter space; seed and stream occupy independent whitened
    lanes XORed together.
    """
    e = splitmix64(_as_u64(element))
    with np.errstate(over="ignore"):
        s = splitmix64(np.uint64(seed & 0xFFFFFFFFFFFFFFFF))
        t = splitmix64(np.uint64(stream) * _GOLDEN)
    return e ^ s ^ t


def random_unit(seed: int, element, stream: int) -> np.ndarray:
    """Uniform floats in [0, 1) for each element index."""
    bits = splitmix64(_key(seed, element, stream))
    return (bits >> np.uint64(11)).astype(np.float64) * _INV_2_53


def random_uniform(seed: int, element, stream: int, low, high) -> np.ndarray:
    """Uniform floats in [low, high) for each element index.

    ``low``/``high`` may be scalars or arrays broadcastable against
    ``element``.
    """
    u = random_unit(seed, element, stream)
    return np.asarray(low) + u * (np.asarray(high) - np.asarray(low))


def random_int(seed: int, element, stream: int, low: int, high: int) -> np.ndarray:
    """Uniform integers in the inclusive range [low, high].

    Uses the top bits of the generator output; the modulo bias over a
    span of at most a few hundred values is < 2**-55 and irrelevant here.
    """
    if high < low:
        raise ValueError(f"empty integer range [{low}, {high}]")
    span = np.uint64(high - low + 1)
    bits = splitmix64(_key(seed, element, stream))
    return (low + (bits % span).astype(np.int64)).astype(np.int64)


def random_sign(seed: int, element, stream: int, *, negative_when_even: bool) -> np.ndarray:
    """Return +-1.0 using the paper's parity trick.

    The paper draws an integer in [0, 50] and negates the coordinate when
    the draw is even (for x) or odd (for y).  ``negative_when_even``
    selects which parity maps to -1.
    """
    draw = random_int(seed, element, stream, 0, 50)
    even = (draw % 2) == 0
    negative = even if negative_when_even else ~even
    return np.where(negative, -1.0, 1.0)
