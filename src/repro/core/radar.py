"""GenerateRadarData: simulate the per-period radar reports (Section 4.1).

The paper's simulation has a single flight table (the ``drone`` struct):
the "expected location" of an aircraft this period is ``(x+dx, y+dy)``
where (x, y) is its recorded location from the previous period, and the
simulated radar report *is* that expected location plus a small signed
noise on each coordinate (wind, measurement error, ...).  Task 1 then
re-derives the expected locations, correlates them with the noisy
reports, and commits either the radar position (matched) or the expected
position (unmatched) as the aircraft's new (x, y).

The report list is deliberately scrambled before Task 1 sees it — "the
radar data array is split into fourths and each fourth is reversed" — so
that ``radar[i]`` does **not** line up with ``drone[i]`` and correlation
has real work to do.

The noise draw is counter-based on ``(seed, aircraft_id, period)`` so all
backends generate identical frames regardless of execution order.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from . import constants as C
from .rng import Stream, random_uniform, random_unit, splitmix64
from .types import FleetState, RadarFrame

__all__ = [
    "radar_noise",
    "fourth_reversal_permutation",
    "clutter_echoes",
    "generate_radar_frame",
]


def _period_element(ids: np.ndarray, period: int) -> np.ndarray:
    """Mix the period index into the per-aircraft RNG element key."""
    with np.errstate(over="ignore"):
        return (
            np.asarray(ids, dtype=np.uint64)
            ^ splitmix64(np.uint64(period) + np.uint64(0xA5A5A5A5))
        ).astype(np.int64)


def radar_noise(
    seed: int, ids: np.ndarray, period: int
) -> Tuple[np.ndarray, np.ndarray]:
    """Signed radar noise for each aircraft id at the given period."""
    el = _period_element(np.asarray(ids, dtype=np.int64), period)
    nx = random_uniform(
        seed, el, Stream.RADAR_NOISE_X, -C.RADAR_NOISE_MAX_NM, C.RADAR_NOISE_MAX_NM
    )
    ny = random_uniform(
        seed, el, Stream.RADAR_NOISE_Y, -C.RADAR_NOISE_MAX_NM, C.RADAR_NOISE_MAX_NM
    )
    return nx, ny


def fourth_reversal_permutation(n: int) -> np.ndarray:
    """The paper's host-side shuffle: split into fourths, reverse each.

    Returns ``perm`` such that ``shuffled[i] = original[perm[i]]``.  For n
    not divisible by four the last fourth absorbs the remainder, matching
    the natural C loop the paper describes.
    """
    if n < 0:
        raise ValueError("negative length")
    perm = np.arange(n, dtype=np.int64)
    quarter = n // 4
    bounds = [0, quarter, 2 * quarter, 3 * quarter, n]
    for lo, hi in zip(bounds[:-1], bounds[1:]):
        perm[lo:hi] = perm[lo:hi][::-1]
    return perm


def clutter_echoes(
    seed: int, period: int, count: int
) -> Tuple[np.ndarray, np.ndarray]:
    """Positions of ``count`` false radar echoes (ground clutter, birds,
    anomalous propagation) scattered uniformly over the airfield."""
    ids = np.arange(count, dtype=np.int64)
    with np.errstate(over="ignore"):
        el = (ids.astype(np.uint64) ^ splitmix64(np.uint64(period) * np.uint64(31))).astype(
            np.int64
        )
    cx = random_uniform(seed, el, Stream.CLUTTER_X, -C.GRID_HALF_NM, C.GRID_HALF_NM)
    cy = random_uniform(seed, el, Stream.CLUTTER_Y, -C.GRID_HALF_NM, C.GRID_HALF_NM)
    return cx, cy


def generate_radar_frame(
    fleet: FleetState,
    seed: int,
    period: int,
    *,
    dropout: float = 0.0,
    clutter: int = 0,
) -> RadarFrame:
    """Produce the shuffled radar frame for one half-second period.

    Does **not** mutate the fleet: the flight table only changes when
    Task 1 commits positions.

    Parameters
    ----------
    fleet:
        Current flight table; reports are generated from each aircraft's
        expected position ``(x+dx, y+dy)`` plus noise.
    seed, period:
        Deterministic noise keys.
    dropout:
        Optional fraction of reports to drop.  The paper notes "a radar
        report may not be obtained for some aircraft during some periods"
        but keeps all reports in its simulation, so the default is 0;
        robustness tests and experiments use non-zero values.
    clutter:
        Optional number of *false* echoes mixed into the frame (the
        paper motivates processing all primary radar precisely because
        it is noisy and transponder-free).  Clutter reports carry
        ``true_id == NO_MATCH`` and should end the period unmatched or
        discarded; tests use them to probe Task 1's ambiguity rules.
    """
    if not 0.0 <= dropout < 1.0:
        raise ValueError(f"dropout must be in [0, 1), got {dropout}")
    if clutter < 0:
        raise ValueError(f"clutter count must be >= 0, got {clutter}")

    ids = np.arange(fleet.n, dtype=np.int64)
    nx, ny = radar_noise(seed, ids, period)
    rx = fleet.x + fleet.dx + nx
    ry = fleet.y + fleet.dy + ny

    if dropout > 0.0:
        keep = random_unit(seed, _period_element(ids, period), Stream.WORKLOAD) >= dropout
        if not np.any(keep):
            # Guarantee at least one report so downstream shapes stay sane.
            keep = keep.copy()
            keep[0] = True
        ids, rx, ry = ids[keep], rx[keep], ry[keep]

    if clutter > 0:
        cx, cy = clutter_echoes(seed, period, clutter)
        rx = np.concatenate([rx, cx])
        ry = np.concatenate([ry, cy])
        ids = np.concatenate([ids, np.full(clutter, C.NO_MATCH, dtype=np.int64)])

    perm = fourth_reversal_permutation(ids.shape[0])
    frame = RadarFrame.empty(ids.shape[0])
    frame.rx[:] = rx[perm]
    frame.ry[:] = ry[perm]
    frame.true_id[:] = ids[perm]
    return frame
