"""SetupFlight: create the initial virtual airfield (paper Section 4.1).

The procedure follows the paper step by step:

1. draw x, y uniformly in [0, 128];
2. draw an integer in [0, 50]; if even, negate x; draw another, if odd,
   negate y (so positions cover all four quadrants);
3. draw a speed S uniformly in [30, 600] nm/h;
4. draw |dx| (the speed component parallel to the x axis) and set
   ``|dy| = sqrt(S^2 - dx^2)``; signs of dx and dy are drawn with the
   same parity trick;
5. convert dx, dy from nm/h to nm/period by dividing by 7200;
6. draw an altitude uniformly.

The paper says |dx| is drawn "between 30 and 600" which would make dy
imaginary whenever |dx| > S; we draw |dx| uniformly in [30, S] instead
(DESIGN.md deviation #1) — S >= 30 always, so the range is never empty.

Because the generator is counter-based (see :mod:`repro.core.rng`), the
fleet produced for a given ``(seed, n)`` is identical no matter which
backend, thread order or chunking produced it.
"""

from __future__ import annotations

import numpy as np

from . import constants as C
from .rng import Stream, random_sign, random_uniform
from .types import FleetState

__all__ = ["setup_flight", "setup_flight_rows"]


def setup_flight_rows(seed: int, ids: np.ndarray) -> dict:
    """Compute initial state for the aircraft with indices ``ids``.

    This is the per-thread body of the paper's ``SetupFlight`` kernel,
    vectorised over an arbitrary subset of aircraft ids.  Simulated
    backends (CUDA warps, SIMD PEs) call it on their own slices and are
    guaranteed to agree with the full-fleet call.

    Returns a dict of column-name -> array for the requested rows.
    """
    ids = np.asarray(ids, dtype=np.int64)

    x = random_uniform(seed, ids, Stream.SETUP_X, 0.0, C.GRID_HALF_NM)
    y = random_uniform(seed, ids, Stream.SETUP_Y, 0.0, C.GRID_HALF_NM)
    x = x * random_sign(seed, ids, Stream.SETUP_X_SIGN, negative_when_even=True)
    y = y * random_sign(seed, ids, Stream.SETUP_Y_SIGN, negative_when_even=False)

    speed_knots = random_uniform(
        seed, ids, Stream.SETUP_SPEED, C.SPEED_MIN_KNOTS, C.SPEED_MAX_KNOTS
    )
    dx_mag_knots = random_uniform(
        seed, ids, Stream.SETUP_DX, C.SPEED_MIN_KNOTS, speed_knots
    )
    dy_mag_knots = np.sqrt(np.maximum(speed_knots**2 - dx_mag_knots**2, 0.0))

    dx_knots = dx_mag_knots * random_sign(
        seed, ids, Stream.SETUP_DX_SIGN, negative_when_even=True
    )
    dy_knots = dy_mag_knots * random_sign(
        seed, ids, Stream.SETUP_DY_SIGN, negative_when_even=False
    )

    alt = random_uniform(
        seed, ids, Stream.SETUP_ALTITUDE, C.ALTITUDE_MIN_FT, C.ALTITUDE_MAX_FT
    )

    return {
        "x": x,
        "y": y,
        "dx": dx_knots / C.PERIODS_PER_HOUR,
        "dy": dy_knots / C.PERIODS_PER_HOUR,
        "alt": alt,
    }


def setup_flight(n: int, seed: int = 2018) -> FleetState:
    """Create a fleet of ``n`` aircraft exactly as the paper's kernel does."""
    fleet = FleetState.empty(n)
    rows = setup_flight_rows(seed, np.arange(n, dtype=np.int64))
    fleet.x[:] = rows["x"]
    fleet.y[:] = rows["y"]
    fleet.dx[:] = rows["dx"]
    fleet.dy[:] = rows["dy"]
    fleet.alt[:] = rows["alt"]
    fleet.batdx[:] = fleet.dx
    fleet.batdy[:] = fleet.dy
    fleet.expected_x[:] = fleet.x
    fleet.expected_y[:] = fleet.y
    fleet.validate()
    return fleet
