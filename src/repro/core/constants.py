"""Physical and scheduling constants of the ATM simulation.

All values come from the paper (Sections 3-5) or from the STARAN ATM
software of Yuan/Baker/Meilander it builds on.  Where the paper is
ambiguous the resolution is recorded in DESIGN.md ("Paper ambiguities
resolved").

Unit conventions
----------------
* distance: nautical miles (nm)
* altitude: feet
* speed: nm/hour when talking about aircraft performance,
  nm/**period** inside the simulation state
* time inside the collision math: **periods** (one period = 0.5 s)
"""

from __future__ import annotations

# --- airfield geometry ------------------------------------------------------

#: The airfield is a 256 nm x 256 nm square centred on the origin.
AIRFIELD_SIZE_NM: float = 256.0

#: Half-width of the airfield; positions satisfy -128 <= x, y <= 128.
#: (The paper quotes both "125" and "128"; we use 128 so the square is
#: exactly the stated 256 nm x 256 nm bounding area.)
GRID_HALF_NM: float = AIRFIELD_SIZE_NM / 2.0

# --- real-time schedule -----------------------------------------------------

#: One scheduling period is half a second.
PERIOD_SECONDS: float = 0.5

#: A major cycle is 16 half-second periods = 8 seconds.
PERIODS_PER_MAJOR_CYCLE: int = 16

#: Number of half-second periods in one hour; used to convert nm/h to
#: nm/period (the paper divides dx and dy by 7200).
PERIODS_PER_HOUR: int = 7200

#: Collision detection+resolution runs once per major cycle, in the last
#: period (index 15 of 0..15).
COLLISION_PERIOD_INDEX: int = PERIODS_PER_MAJOR_CYCLE - 1

# --- aircraft kinematics ----------------------------------------------------

#: Slowest aircraft speed in nm/h.
SPEED_MIN_KNOTS: float = 30.0

#: Fastest aircraft speed in nm/h.
SPEED_MAX_KNOTS: float = 600.0

#: Altitudes are drawn uniformly from this band (feet).
ALTITUDE_MIN_FT: float = 1_000.0
ALTITUDE_MAX_FT: float = 40_000.0

# --- Task 1: tracking & correlation ----------------------------------------

#: Half-width of the initial correlation gate: the radar must fall inside
#: a 1 nm x 1 nm box centred on the aircraft's expected position.
TRACK_GATE_HALF_NM: float = 0.5

#: Number of additional correlation rounds; each round doubles the gate
#: (0.5 -> 1.0 -> 2.0 half-width, i.e. 1x1 -> 2x2 -> 4x4 boxes).
TRACK_EXTRA_ROUNDS: int = 2

#: Total number of correlation rounds (first round + doublings).
TRACK_TOTAL_ROUNDS: int = 1 + TRACK_EXTRA_ROUNDS

#: Maximum magnitude of the radar position noise (nm per coordinate).
#: "Small" relative to the 0.5 nm gate so most aircraft correlate in the
#: first round.
RADAR_NOISE_MAX_NM: float = 0.25

# --- Task 2: collision detection (Batcher) ----------------------------------

#: Error band added/subtracted around each aircraft track: +-1.5 nm, so
#: the combined separation requirement in Eqs. (1)-(4) is 3 nm.
COLLISION_BAND_NM: float = 1.5

#: Combined band of the two aircraft (the literal "3" in Eqs. (1)-(4)).
COLLISION_BAND_TOTAL_NM: float = 2.0 * COLLISION_BAND_NM

#: Collision look-ahead horizon: 20 minutes expressed in periods.
PROJECTION_HORIZON_PERIODS: float = 20.0 * 60.0 / PERIOD_SECONDS  # = 2400

#: A conflict is *critical* (needs resolution now) when the first moment
#: of band overlap is below this many periods.  The paper initialises
#: ``time_till`` to 300 and calls that "a safe number".
TIME_TILL_SAFE_PERIODS: float = 300.0

#: Vertical separation: aircraft further apart than this many feet can
#: never conflict (Algorithm 2, line 3).
ALTITUDE_SEPARATION_FT: float = 1_000.0

# --- Task 3: collision resolution -------------------------------------------

#: Each resolution attempt rotates the track's velocity by a multiple of
#: this angle, alternating sign: +5, -5, +10, -10, ... degrees.
RESOLUTION_STEP_DEG: float = 5.0

#: Largest rotation attempted on each side.
RESOLUTION_MAX_DEG: float = 30.0

#: Number of trial headings: +-5, +-10, ..., +-30.
RESOLUTION_MAX_TRIALS: int = 2 * int(RESOLUTION_MAX_DEG / RESOLUTION_STEP_DEG)

# --- sentinel values ---------------------------------------------------------

#: ``FleetState.col_with`` / ``RadarFrame.match_with`` value: no partner.
NO_MATCH: int = -1

#: ``RadarFrame.match_with`` value: radar saw two or more aircraft and was
#: discarded for this half second.
DISCARDED: int = -2

#: ``FleetState.r_match`` value: aircraft saw two or more radars and was
#: dropped from correlation (keeps its expected position).
MULTI_MATCHED: int = -1

#: ``FleetState.r_match`` value: not yet correlated.
UNMATCHED: int = 0

#: ``FleetState.r_match`` value: correlated with exactly one radar so far.
MATCHED_ONCE: int = 1
