"""Exact vectorized band counting for the warp/vector-group cost models.

The CUDA and wide-vector timing models both need, for every execution
group (a 32-lane warp, an 8/16-lane AVX-512 group), the number of sweep
targets ``t`` for which *any* lane value ``v`` in the group satisfies
the altitude-gate predicate ``|v - t| < sep`` — evaluated in float64,
bit-for-bit as the brute-force ``np.abs(lanes - t) < sep`` comparison
would.  The naive formulation materializes an ``(groups, width, n)``
boolean tensor, which made the collision cost models quadratic in the
fleet size.

This module computes the same counts in ``O(n log n)``:

1. For each lane value ``v``, the set ``{t : |fl(v - t)| < sep}`` is a
   *contiguous* float interval — the rounded difference ``fl(v - t)`` is
   monotone non-increasing in ``t``, so the predicate holds on a single
   run of consecutive floats containing ``v`` itself.  The exact first
   and last float of that run are found by a vectorized bisection over
   the total-ordered bit patterns of float64 (:func:`band_bounds`).  No
   epsilon tolerance is involved.
2. Each lane interval becomes an index range ``[B, A)`` on the sorted
   target array; the per-group count is the size of the *union* of its
   lanes' ranges, computed with a sort-by-start + running-max scan
   (:func:`group_band_pass_counts`).

Exactness against the brute-force predicate is asserted by
``tests/core/test_bands.py``, including adversarial values placed within
a few ulps of the band boundary.
"""

from __future__ import annotations

import numpy as np

__all__ = ["band_bounds", "group_band_pass_counts"]

_SIGN_BIT = np.uint64(0x8000000000000000)
_ALL_BITS = np.uint64(0xFFFFFFFFFFFFFFFF)


def _ordered_key(x: np.ndarray) -> np.ndarray:
    """Map float64 to uint64 keys that sort in numeric order.

    The standard IEEE-754 total-order transform: flip the sign bit of
    non-negative values, flip every bit of negative ones.  Adjacent
    floats map to adjacent keys, so bisection over keys is bisection
    over representable values.
    """
    u = np.asarray(x, dtype=np.float64).view(np.uint64)
    mask = np.where(u >> np.uint64(63) == 1, _ALL_BITS, _SIGN_BIT)
    return u ^ mask


def _key_to_float(k: np.ndarray) -> np.ndarray:
    mask = np.where(k >> np.uint64(63) == 1, _SIGN_BIT, _ALL_BITS)
    return (k ^ mask).view(np.float64)


def band_bounds(values: np.ndarray, sep: float) -> tuple:
    """Exact per-value float bounds of the open band ``|fl(v - t)| < sep``.

    Returns ``(lo, hi)`` where ``lo[i]``/``hi[i]`` are the smallest and
    largest float64 ``t`` with ``abs(values[i] - t) < sep`` — the
    predicate holds exactly for ``lo[i] <= t <= hi[i]`` and for no other
    float.  ``sep`` must be positive and finite, ``values`` finite.
    """
    v = np.asarray(values, dtype=np.float64)
    if not (np.isfinite(sep) and sep > 0.0):
        raise ValueError(f"band half-width must be positive and finite, got {sep}")
    if v.size and not np.all(np.isfinite(v)):
        raise ValueError("band values must be finite")

    def _pred(t: np.ndarray) -> np.ndarray:
        return np.abs(v - t) < sep

    def _edge(false_anchor: float) -> np.ndarray:
        """Bisect between ``v`` (predicate true) and ``false_anchor``
        (predicate false) down to adjacent keys; return the true side."""
        true_k = _ordered_key(v)
        false_k = np.full_like(true_k, _ordered_key(np.float64(false_anchor)))
        while True:
            gap_lo = np.minimum(true_k, false_k)
            gap = np.maximum(true_k, false_k) - gap_lo
            if not (gap > 1).any():
                break
            mid_k = gap_lo + gap // np.uint64(2)
            good = _pred(_key_to_float(mid_k))
            true_k = np.where(good, mid_k, true_k)
            false_k = np.where(good, false_k, mid_k)
        return _key_to_float(true_k)

    return _edge(-np.inf), _edge(np.inf)


def group_band_pass_counts(
    lane_values: np.ndarray,
    lane_valid: np.ndarray,
    targets: np.ndarray,
    sep: float,
) -> np.ndarray:
    """Per-group count of targets within ``sep`` of any valid lane.

    ``lane_values`` has shape ``(n_groups, width)``; ``lane_valid`` is a
    same-shaped boolean mask of live lanes.  The result equals, bit for
    bit, ``((|lane_values[..., None] - targets| < sep) &
    lane_valid[..., None]).any(axis=1).sum(axis=1)`` without
    materializing the tensor.
    """
    lane_values = np.asarray(lane_values, dtype=np.float64)
    lane_valid = np.asarray(lane_valid, dtype=bool)
    targets = np.asarray(targets, dtype=np.float64)
    if lane_values.shape != lane_valid.shape or lane_values.ndim != 2:
        raise ValueError("lane_values and lane_valid must share a 2-D shape")
    n_groups, width = lane_values.shape
    n = targets.shape[0]
    if n_groups == 0 or n == 0 or width == 0:
        return np.zeros(n_groups, dtype=np.int64)

    flat_valid = lane_valid.ravel()
    # Invalid lanes may hold padding sentinels (0, inf); neutralize them
    # before the boundary search and drop their ranges afterwards.
    flat_values = np.where(flat_valid, lane_values.ravel(), 0.0)
    lo, hi = band_bounds(flat_values, sep)

    order = np.sort(targets)
    begin = np.searchsorted(order, lo, side="left")
    end = np.searchsorted(order, hi, side="right")
    begin = np.where(flat_valid, begin, 0)
    end = np.where(flat_valid, end, 0)

    group = np.repeat(np.arange(n_groups, dtype=np.int64), width)
    # Sort lanes by (group, range start), then measure each range's
    # contribution beyond the running maximum of earlier range ends:
    # within a group the uncovered part of [B_k, A_k) is exactly
    # [max(B_k, M_k), A_k) where M_k = max(A_1..A_{k-1}).
    idx = np.lexsort((begin, group))
    g_s, b_s, e_s = group[idx], begin[idx], end[idx]
    offset = g_s * np.int64(n + 1)  # keeps the cummax from crossing groups
    run = np.maximum.accumulate(e_s + offset)
    prev = np.empty_like(run)
    prev[1:] = run[:-1]
    starts = np.flatnonzero(np.concatenate(([True], g_s[1:] != g_s[:-1])))
    prev[starts] = offset[starts]
    covered_to = prev - offset
    contrib = np.maximum(0, e_s - np.maximum(b_s, covered_to))
    return np.bincount(g_s, weights=contrib, minlength=n_groups).astype(np.int64)
