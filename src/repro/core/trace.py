"""The functional-trace artifact: one functional pass, N cost replays.

Every backend in this repository computes **bit-identical functional
results** (DESIGN.md deviation #2) and then charges a platform-specific
cost ledger from the run's *dynamic statistics*.  The ledgers never look
at the algorithmic intermediates — only at a small, well-defined set of
artifacts:

* Task 1 — the :class:`~repro.core.tracking.TrackingStats` (per-round
  radar-id groups, candidate counts, active-plane counts) plus the
  post-correlation match columns the CUDA commit-phase model reads
  (``frame.match_with``, ``fleet.r_match``, ``fleet.matched_radar``);
* Tasks 2+3 — the :class:`~repro.core.collision.DetectionStats` and
  :class:`~repro.core.resolution.ResolutionStats` plus the altitude
  column (it is never mutated by the tasks).

A :class:`FunctionalTrace` captures exactly that set for one
``(n, seed, periods, mode, dropout, clutter)`` cell, so the expensive
functional simulation runs **once** and all backends replay their cost
models from the shared trace.  The cost-replay contract is documented in
``docs/performance.md``; the equivalence tests assert byte-identical
:class:`~repro.core.types.TaskTiming` output between the two paths.

Traces serialize to JSON exactly (ints stay ints; floats survive via
shortest-repr) so :class:`~repro.harness.cache.TraceStore` can keep an
on-disk tier keyed by :func:`trace_key`, and so traces can cross the
process boundary to sweep workers as plain dicts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

import numpy as np

from .collision import DetectionMode, DetectionStats
from .radar import generate_radar_frame
from .resolution import ResolutionStats, detect_and_resolve
from .setup import setup_flight
from .tracking import TrackingStats, correlate

__all__ = [
    "TRACE_SCHEMA_VERSION",
    "FleetView",
    "FrameView",
    "TracePeriod",
    "CollisionRecord",
    "FunctionalTrace",
    "TraceBudget",
    "DEFAULT_TRACE_BUDGET",
    "period_nbytes",
    "collision_nbytes",
    "trace_nbytes",
    "estimate_trace_bytes",
    "stream_trace",
    "compute_trace",
    "trace_key",
]

#: Bump when the trace payload shape changes; part of the store key, so
#: a schema change starts a fresh on-disk subtree instead of misreading.
#: v2 added the effective ``pruning`` parameter to the params block.
TRACE_SCHEMA_VERSION = 2


# ---------------------------------------------------------------------------
# duck-typed stand-ins for FleetState / RadarFrame
# ---------------------------------------------------------------------------


@dataclass
class FleetView:
    """The slice of :class:`~repro.core.types.FleetState` cost models read.

    Timing models access fleet state through attributes only, so a view
    with the recorded columns substitutes for the live fleet during
    replay.  Columns a given model does not read are ``None``.
    """

    n: int
    r_match: Optional[np.ndarray] = None
    matched_radar: Optional[np.ndarray] = None
    alt: Optional[np.ndarray] = None


@dataclass
class FrameView:
    """The slice of :class:`~repro.core.types.RadarFrame` cost models read."""

    n: int
    match_with: Optional[np.ndarray] = None


# ---------------------------------------------------------------------------
# exact (de)serialization of the stats dataclasses
# ---------------------------------------------------------------------------


def _int_list(arr) -> List[int]:
    return [int(v) for v in arr]


def _tracking_stats_to_dict(stats: TrackingStats) -> Dict[str, Any]:
    return {
        "rounds_executed": int(stats.rounds_executed),
        "candidate_pairs": _int_list(stats.candidate_pairs),
        "matched": _int_list(stats.matched),
        "discarded_radars": int(stats.discarded_radars),
        "dropped_aircraft": int(stats.dropped_aircraft),
        "committed": int(stats.committed),
        "coasted": int(stats.coasted),
        "round_radar_ids": [_int_list(ids) for ids in stats.round_radar_ids],
        "round_active_planes": _int_list(stats.round_active_planes),
        "round_candidates_per_radar": [
            _int_list(c) for c in stats.round_candidates_per_radar
        ],
    }


def _tracking_stats_from_dict(data: Dict[str, Any]) -> TrackingStats:
    return TrackingStats(
        rounds_executed=int(data["rounds_executed"]),
        candidate_pairs=[int(v) for v in data["candidate_pairs"]],
        matched=[int(v) for v in data["matched"]],
        discarded_radars=int(data["discarded_radars"]),
        dropped_aircraft=int(data["dropped_aircraft"]),
        committed=int(data["committed"]),
        coasted=int(data["coasted"]),
        round_radar_ids=[
            np.asarray(ids, dtype=np.int64) for ids in data["round_radar_ids"]
        ],
        round_active_planes=[int(v) for v in data["round_active_planes"]],
        round_candidates_per_radar=[
            np.asarray(c, dtype=np.int64) for c in data["round_candidates_per_radar"]
        ],
    )


def _detection_stats_to_dict(det: DetectionStats) -> Dict[str, Any]:
    crit = det.critical_per_aircraft
    return {
        "pairs_checked": int(det.pairs_checked),
        "pairs_in_altitude_band": int(det.pairs_in_altitude_band),
        "conflicts": int(det.conflicts),
        "critical_conflicts": int(det.critical_conflicts),
        "flagged_aircraft": int(det.flagged_aircraft),
        "critical_per_aircraft": None if crit is None else _int_list(crit),
    }


def _detection_stats_from_dict(data: Dict[str, Any]) -> DetectionStats:
    crit = data["critical_per_aircraft"]
    return DetectionStats(
        pairs_checked=int(data["pairs_checked"]),
        pairs_in_altitude_band=int(data["pairs_in_altitude_band"]),
        conflicts=int(data["conflicts"]),
        critical_conflicts=int(data["critical_conflicts"]),
        flagged_aircraft=int(data["flagged_aircraft"]),
        critical_per_aircraft=(
            None if crit is None else np.asarray(crit, dtype=np.int64)
        ),
    )


def _resolution_stats_to_dict(res: ResolutionStats) -> Dict[str, Any]:
    return {
        "needed_resolution": int(res.needed_resolution),
        "already_clear": int(res.already_clear),
        "resolved": int(res.resolved),
        "unresolved": int(res.unresolved),
        "trials_evaluated": int(res.trials_evaluated),
        "trials_histogram": {str(k): int(v) for k, v in res.trials_histogram.items()},
        "attempts": _int_list(res.attempts),
    }


def _resolution_stats_from_dict(data: Dict[str, Any]) -> ResolutionStats:
    return ResolutionStats(
        needed_resolution=int(data["needed_resolution"]),
        already_clear=int(data["already_clear"]),
        resolved=int(data["resolved"]),
        unresolved=int(data["unresolved"]),
        trials_evaluated=int(data["trials_evaluated"]),
        trials_histogram={
            int(k): int(v) for k, v in data["trials_histogram"].items()
        },
        attempts=np.asarray(data["attempts"], dtype=np.int64),
    )


# ---------------------------------------------------------------------------
# the trace records
# ---------------------------------------------------------------------------


@dataclass
class TracePeriod:
    """Everything a Task-1 cost ledger consumes for one tracking period."""

    n_aircraft: int
    frame_n: int
    stats: TrackingStats
    #: post-correlation ``frame.match_with`` (length ``frame_n``).
    match_with: np.ndarray
    #: post-correlation ``fleet.r_match`` (length ``n_aircraft``).
    r_match: np.ndarray
    #: post-correlation ``fleet.matched_radar`` (length ``n_aircraft``).
    matched_radar: np.ndarray

    def fleet_view(self) -> FleetView:
        return FleetView(
            n=self.n_aircraft,
            r_match=self.r_match,
            matched_radar=self.matched_radar,
        )

    def frame_view(self) -> FrameView:
        return FrameView(n=self.frame_n, match_with=self.match_with)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "n_aircraft": int(self.n_aircraft),
            "frame_n": int(self.frame_n),
            "stats": _tracking_stats_to_dict(self.stats),
            "match_with": _int_list(self.match_with),
            "r_match": _int_list(self.r_match),
            "matched_radar": _int_list(self.matched_radar),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "TracePeriod":
        return cls(
            n_aircraft=int(data["n_aircraft"]),
            frame_n=int(data["frame_n"]),
            stats=_tracking_stats_from_dict(data["stats"]),
            match_with=np.asarray(data["match_with"], dtype=np.int64),
            r_match=np.asarray(data["r_match"], dtype=np.int8),
            matched_radar=np.asarray(data["matched_radar"], dtype=np.int64),
        )


@dataclass
class CollisionRecord:
    """Everything a Task-2+3 cost ledger consumes for the collision pass."""

    n_aircraft: int
    #: the altitude column (never mutated by any task).
    alt: np.ndarray
    det: DetectionStats
    res: ResolutionStats

    def fleet_view(self) -> FleetView:
        return FleetView(n=self.n_aircraft, alt=self.alt)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "n_aircraft": int(self.n_aircraft),
            "alt": [float(v) for v in self.alt],
            "det": _detection_stats_to_dict(self.det),
            "res": _resolution_stats_to_dict(self.res),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "CollisionRecord":
        return cls(
            n_aircraft=int(data["n_aircraft"]),
            alt=np.asarray(data["alt"], dtype=np.float64),
            det=_detection_stats_from_dict(data["det"]),
            res=_resolution_stats_from_dict(data["res"]),
        )


@dataclass(frozen=True)
class TraceBudget:
    """Memory envelope for trace materialization and shipping.

    ``max_resident_bytes`` bounds what one fully-materialized trace may
    occupy in this process — above it the harness replays the stream
    record-by-record instead of memoizing the trace.
    ``max_payload_bytes`` bounds what may be serialized to the on-disk
    trace store or shipped to pool workers; above it workers recompute
    their own (pruned) trace rather than receive a multi-GB payload.
    """

    max_resident_bytes: int = 1 << 30
    max_payload_bytes: int = 64 << 20

    def allows_resident(self, nbytes: int) -> bool:
        return int(nbytes) <= self.max_resident_bytes

    def allows_payload(self, nbytes: int) -> bool:
        return int(nbytes) <= self.max_payload_bytes


DEFAULT_TRACE_BUDGET = TraceBudget()

#: fixed per-record overhead allowance (dataclass + scalar stats).
_RECORD_OVERHEAD = 256


def period_nbytes(rec: "TracePeriod") -> int:
    """Actual array bytes held by one period record."""
    return int(
        rec.match_with.nbytes
        + rec.r_match.nbytes
        + rec.matched_radar.nbytes
        + sum(np.asarray(i).nbytes for i in rec.stats.round_radar_ids)
        + sum(np.asarray(c).nbytes for c in rec.stats.round_candidates_per_radar)
        + _RECORD_OVERHEAD
    )


def collision_nbytes(rec: "CollisionRecord") -> int:
    """Actual array bytes held by the collision record."""
    crit = rec.det.critical_per_aircraft
    return int(
        rec.alt.nbytes
        + (0 if crit is None else np.asarray(crit).nbytes)
        + np.asarray(rec.res.attempts).nbytes
        + _RECORD_OVERHEAD
    )


def trace_nbytes(trace: "FunctionalTrace") -> int:
    """Actual array bytes held by a materialized trace."""
    total = sum(period_nbytes(p) for p in trace.period_records)
    if trace.collision is not None:
        total += collision_nbytes(trace.collision)
    return int(total) + 2 * _RECORD_OVERHEAD


def estimate_trace_bytes(n: int, periods: int) -> int:
    """Conservative a-priori size of a ``(n, periods)`` trace in memory.

    Each period carries ~17n bytes of match columns plus up to 8n per
    executed round of radar-id/candidate arrays (3 rounds worst case);
    the collision record carries three length-n int64/float64 columns.
    Used by the harness to decide memoization vs streaming *before*
    computing anything.
    """
    return int(periods) * 56 * int(n) + 32 * int(n) + 4096


@dataclass
class FunctionalTrace:
    """The shared functional pass of one measurement cell.

    Computed once per ``(n, seed, periods, mode, dropout, clutter)`` and
    replayed by every backend's cost model; see
    :meth:`~repro.backends.base.Backend.track_timing_from_trace`.

    ``pruning`` records the *effective* candidate-pruning setting
    ("on"/"off") the functional pass ran under.  The payload is
    bit-identical either way (that is the :mod:`repro.core.sweepline`
    contract), but the fingerprint carries it so a pruned artifact is
    never silently substituted where an unpruned one was requested.
    """

    n_aircraft: int
    seed: int
    periods: int
    mode: DetectionMode
    dropout: float = 0.0
    clutter: int = 0
    pruning: str = "off"
    period_records: List[TracePeriod] = field(default_factory=list)
    collision: CollisionRecord = None

    def key(self) -> str:
        """The trace's canonical fingerprint (storage key)."""
        return trace_key(
            n=self.n_aircraft,
            seed=self.seed,
            periods=self.periods,
            mode=self.mode,
            dropout=self.dropout,
            clutter=self.clutter,
            pruning=self.pruning,
        )

    def matches(self, *, n: int, seed: int, periods: int, mode: DetectionMode) -> bool:
        """Whether this trace covers the given measurement parameters."""
        return (
            self.n_aircraft == int(n)
            and self.seed == int(seed)
            and self.periods == int(periods)
            and str(getattr(self.mode, "value", self.mode))
            == str(getattr(mode, "value", mode))
        )

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serializable form; exact inverse of :meth:`from_dict`."""
        return {
            "schema": TRACE_SCHEMA_VERSION,
            "params": {
                "n": int(self.n_aircraft),
                "seed": int(self.seed),
                "periods": int(self.periods),
                "mode": str(self.mode.value),
                "dropout": float(self.dropout),
                "clutter": int(self.clutter),
                "pruning": str(self.pruning),
            },
            "periods": [p.to_dict() for p in self.period_records],
            "collision": self.collision.to_dict(),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "FunctionalTrace":
        if int(data.get("schema", -1)) != TRACE_SCHEMA_VERSION:
            raise ValueError(f"unsupported trace schema {data.get('schema')!r}")
        params = data["params"]
        return cls(
            n_aircraft=int(params["n"]),
            seed=int(params["seed"]),
            periods=int(params["periods"]),
            mode=DetectionMode(params["mode"]),
            dropout=float(params["dropout"]),
            clutter=int(params["clutter"]),
            pruning=str(params.get("pruning", "off")),
            period_records=[TracePeriod.from_dict(p) for p in data["periods"]],
            collision=CollisionRecord.from_dict(data["collision"]),
        )


def trace_key(
    *,
    n: int,
    seed: int,
    periods: int,
    mode: Any,
    dropout: float = 0.0,
    clutter: int = 0,
    pruning: str = "off",
) -> str:
    """Canonical fingerprint of one functional-trace cell.

    Uses the same machinery as the result cache
    (:func:`repro.core.canonical.fingerprint_of`); the library version is
    included because a release may change the functional algorithms.
    ``pruning`` is the *effective* setting ("on"/"off", never "auto") so
    an ``auto`` policy below the threshold shares artifacts with an
    explicit ``off``.
    """
    from .. import __version__
    from .canonical import fingerprint_of

    return fingerprint_of(
        {
            "kind": "functional-trace",
            "schema": TRACE_SCHEMA_VERSION,
            "library_version": __version__,
            "task": {
                "n": int(n),
                "seed": int(seed),
                "periods": int(periods),
                "mode": str(getattr(mode, "value", mode)),
                "dropout": float(dropout),
                "clutter": int(clutter),
                "pruning": str(pruning),
            },
        }
    )


def stream_trace(
    n: int,
    *,
    seed: int = 2018,
    periods: int = 3,
    mode: DetectionMode = DetectionMode.SIGNED,
    dropout: float = 0.0,
    clutter: int = 0,
    pruning: Any = "off",
    detect_chunk_bytes: Optional[int] = None,
):
    """Run the functional simulation, yielding records as they complete.

    A generator over ``periods`` :class:`TracePeriod` records followed
    by the final :class:`CollisionRecord` — the streaming core both
    :func:`compute_trace` (materialize) and the harness's bounded-memory
    replay path (consume-and-discard) are built on.  Each yielded record
    is independent; a consumer that drops records after use holds at
    most one period of trace state plus the live fleet.

    ``pruning`` is a :class:`~repro.core.sweepline.PruningPolicy` (or
    its string value) resolved at ``n``; the functional outputs are
    bit-identical either way.  Emits one ``atm_trace_bytes`` increment
    per record.
    """
    from ..obs import span as obs_span
    from ..obs.metrics import metric_inc
    from .sweepline import detect_and_resolve_pruned, resolve_pruning

    if periods < 1:
        raise ValueError("need at least one tracking period")
    effective = resolve_pruning(pruning, n)
    fleet = setup_flight(n, seed)
    for period in range(periods):
        frame = generate_radar_frame(
            fleet, seed, period, dropout=dropout, clutter=clutter
        )
        with obs_span("core.correlate", cat="core"):
            stats = correlate(fleet, frame, pruned=effective)
        record = TracePeriod(
            n_aircraft=fleet.n,
            frame_n=frame.n,
            stats=stats,
            match_with=frame.match_with.copy(),
            r_match=fleet.r_match.copy(),
            matched_radar=fleet.matched_radar.copy(),
        )
        metric_inc("atm_trace_bytes", float(period_nbytes(record)), record="period")
        yield record
    with obs_span("core.detect_and_resolve", cat="core"):
        if effective:
            det, res = detect_and_resolve_pruned(fleet, mode)
        else:
            det, res = detect_and_resolve(
                fleet, mode, chunk_budget_bytes=detect_chunk_bytes
            )
    collision = CollisionRecord(
        n_aircraft=fleet.n, alt=fleet.alt.copy(), det=det, res=res
    )
    metric_inc(
        "atm_trace_bytes", float(collision_nbytes(collision)), record="collision"
    )
    yield collision


def compute_trace(
    n: int,
    *,
    seed: int = 2018,
    periods: int = 3,
    mode: DetectionMode = DetectionMode.SIGNED,
    dropout: float = 0.0,
    clutter: int = 0,
    pruning: Any = "off",
    detect_chunk_bytes: Optional[int] = None,
) -> FunctionalTrace:
    """Run the functional simulation once and record the trace.

    Mirrors the measurement protocol of
    :func:`repro.harness.sweep.measure_platform` exactly: ``periods``
    tracking periods on an evolving fleet, then one collision pass, all
    through the shared :mod:`repro.core` algorithms.  Materializes the
    :func:`stream_trace` record stream and reports the resident size via
    the ``atm_trace_peak_bytes`` gauge (``path="materialized"``).
    """
    from ..obs.metrics import metric_set
    from .sweepline import resolve_pruning

    records: List[TracePeriod] = []
    collision: Optional[CollisionRecord] = None
    resident = 0
    for record in stream_trace(
        n,
        seed=seed,
        periods=periods,
        mode=mode,
        dropout=dropout,
        clutter=clutter,
        pruning=pruning,
        detect_chunk_bytes=detect_chunk_bytes,
    ):
        if isinstance(record, CollisionRecord):
            collision = record
            resident += collision_nbytes(record)
        else:
            records.append(record)
            resident += period_nbytes(record)
    metric_set("atm_trace_peak_bytes", float(resident), path="materialized")
    return FunctionalTrace(
        n_aircraft=n,
        seed=seed,
        periods=periods,
        mode=mode,
        dropout=dropout,
        clutter=clutter,
        pruning="on" if resolve_pruning(pruning, n) else "off",
        period_records=records,
        collision=collision,
    )
