"""Task 2 — Collision Detection via Batcher's algorithm (Section 5.2).

The time-x / time-y band construction (paper Fig. 3): each aircraft drags
an error band of +-1.5 nm around its track line, so two aircraft are "in
conflict" on an axis while the gap between their positions is below the
combined 3 nm band.  Solving for the time window on each axis and
intersecting gives ``[time_min, time_max]``; the pair is on a collision
course when ``time_min < time_max`` and the window touches the 20-minute
projection horizon.  A conflict is *critical* when its first moment is
closer than ``time_till`` (initialised to 300 periods).

Two detection modes are provided:

``SIGNED`` (default)
    The mathematically exact band intersection on the signed relative
    motion, as in Batcher's construction and the AP implementation of
    Yuan/Baker [12, 13].  Receding aircraft (whose bands only overlapped
    in the past) are not flagged.

``PAPER_ABS``
    The literal Eqs. (1)-(6) of the paper, which take absolute values of
    both the positional gap and the relative velocity.  This form maps
    past overlaps onto positive times (a known simplification in the
    paper's presentation); it is provided for fidelity experiments.
    DESIGN.md deviation #7.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from . import constants as C
from .types import FleetState

__all__ = [
    "DetectionMode",
    "DetectionStats",
    "axis_interval_signed",
    "axis_interval_paper_abs",
    "pair_interval",
    "conflict_row",
    "detect",
    "detect_chunk_rows",
]

_INF = np.inf

#: float64 temporaries live per pair cell inside one detect() chunk
#: (gaps, relative velocities, the two window bounds, t_eff, masks, the
#: where/min scratch) — about 12 arrays of 8 bytes.
DETECT_PAIR_ROW_BYTES = 96

#: default working-set budget for one detect() chunk.  At the paper's
#: largest fleet (n = 16000) this yields 131 rows; at n = 10^6 it keeps
#: the chunk at 2 rows instead of 512 * 10^6 cells.
DETECT_CHUNK_BUDGET_BYTES = 192 << 20


def detect_chunk_rows(n: int, budget_bytes: Optional[int] = None) -> int:
    """Rows per detection chunk that fit ``budget_bytes`` of temporaries.

    Each chunk materializes ``rows x n`` pair cells at roughly
    :data:`DETECT_PAIR_ROW_BYTES` per cell.  Results are chunk-invariant
    (every row's outputs depend only on that row), so this only trades
    memory against vectorization width.
    """
    budget = DETECT_CHUNK_BUDGET_BYTES if budget_bytes is None else int(budget_bytes)
    if n <= 0:
        return 1
    return max(1, min(int(n), budget // max(1, DETECT_PAIR_ROW_BYTES * int(n))))


class DetectionMode(str, enum.Enum):
    """Which form of the band-overlap equations to use."""

    SIGNED = "signed"
    PAPER_ABS = "paper-abs"


@dataclass
class DetectionStats:
    """Dynamic counts from one Task-2 pass (feeds timing models)."""

    #: ordered pairs examined (i != j, after no filtering).
    pairs_checked: int = 0
    #: ordered pairs surviving the 1000 ft altitude gate.
    pairs_in_altitude_band: int = 0
    #: ordered pairs whose bands overlap within the 20-minute horizon.
    conflicts: int = 0
    #: ordered pairs whose overlap starts within the critical window.
    critical_conflicts: int = 0
    #: aircraft flagged for resolution (col == 1).
    flagged_aircraft: int = 0
    #: per-aircraft count of critical partners (length n); warp/PE-level
    #: timing models charge conflict bookkeeping where it happened.
    critical_per_aircraft: "np.ndarray" = None  # set by detect()


def axis_interval_signed(gap, rel_v, band: float) -> Tuple[np.ndarray, np.ndarray]:
    """Time window during which ``|gap + rel_v * t| < band`` (one axis).

    Returns (t_lo, t_hi); empty windows come back with t_lo > t_hi.
    ``rel_v == 0`` yields (-inf, +inf) when already inside the band and
    an empty window otherwise.
    """
    gap = np.asarray(gap, dtype=np.float64)
    rel_v = np.asarray(rel_v, dtype=np.float64)
    with np.errstate(divide="ignore", invalid="ignore", over="ignore"):
        t1 = (-gap - band) / rel_v
        t2 = (-gap + band) / rel_v
    lo = np.minimum(t1, t2)
    hi = np.maximum(t1, t2)
    static = rel_v == 0.0
    inside = np.abs(gap) < band
    lo = np.where(static, np.where(inside, -_INF, _INF), lo)
    hi = np.where(static, np.where(inside, _INF, -_INF), hi)
    return lo, hi


def axis_interval_paper_abs(gap, rel_v, band: float) -> Tuple[np.ndarray, np.ndarray]:
    """The paper's Eqs. (1)-(4): absolute gap and absolute relative speed.

    ``min = (|gap| - band) / |rel_v|`` (clamped at 0),
    ``max = (|gap| + band) / |rel_v|``.
    """
    agap = np.abs(np.asarray(gap, dtype=np.float64))
    av = np.abs(np.asarray(rel_v, dtype=np.float64))
    with np.errstate(divide="ignore", invalid="ignore", over="ignore"):
        lo = np.maximum(agap - band, 0.0) / av
        hi = (agap + band) / av
    static = av == 0.0
    inside = agap < band
    lo = np.where(static, np.where(inside, 0.0, _INF), lo)
    hi = np.where(static, np.where(inside, _INF, -_INF), hi)
    return lo, hi


def pair_interval(
    gap_x,
    gap_y,
    rel_vx,
    rel_vy,
    mode: DetectionMode = DetectionMode.SIGNED,
    band: float = C.COLLISION_BAND_TOTAL_NM,
) -> Tuple[np.ndarray, np.ndarray]:
    """Combined (time_min, time_max) window per Eqs. (5)-(6)."""
    axis = (
        axis_interval_signed if mode is DetectionMode.SIGNED else axis_interval_paper_abs
    )
    x_lo, x_hi = axis(gap_x, rel_vx, band)
    y_lo, y_hi = axis(gap_y, rel_vy, band)
    return np.maximum(x_lo, y_lo), np.minimum(x_hi, y_hi)


def conflict_row(
    fleet: FleetState,
    i: int,
    dxi: float,
    dyi: float,
    mode: DetectionMode = DetectionMode.SIGNED,
    *,
    horizon: float = C.PROJECTION_HORIZON_PERIODS,
) -> Tuple[np.ndarray, np.ndarray]:
    """Conflict test of aircraft ``i`` (with trial velocity) vs everyone.

    Used both by detection (with the committed velocity) and by Task 3
    (with a rotated trial velocity).  Returns ``(conflict, t_eff)`` —
    boolean mask over all aircraft (False at j == i and outside the
    altitude band) and the effective first-overlap time (clamped >= 0 in
    SIGNED mode, as defined by the paper's time axis starting "now").
    """
    gap_x = fleet.x - fleet.x[i]
    gap_y = fleet.y - fleet.y[i]
    rel_vx = fleet.dx - dxi
    rel_vy = fleet.dy - dyi

    t_lo, t_hi = pair_interval(gap_x, gap_y, rel_vx, rel_vy, mode)
    if mode is DetectionMode.SIGNED:
        t_eff = np.maximum(t_lo, 0.0)
        open_window = (t_lo < t_hi) & (t_hi > 0.0)
    else:
        t_eff = t_lo
        open_window = t_lo < t_hi

    near_alt = np.abs(fleet.alt - fleet.alt[i]) < C.ALTITUDE_SEPARATION_FT
    conflict = open_window & (t_eff < horizon) & near_alt
    conflict[i] = False
    return conflict, t_eff


def earliest_critical(
    fleet: FleetState,
    i: int,
    dxi: float,
    dyi: float,
    mode: DetectionMode = DetectionMode.SIGNED,
    *,
    threshold: float = C.TIME_TILL_SAFE_PERIODS,
) -> Optional[Tuple[int, float]]:
    """Earliest critical conflict of aircraft ``i`` at a given velocity.

    Returns ``(partner_id, t_eff)`` of the soonest conflict with
    ``t_eff < threshold``, ties broken toward the smaller partner id, or
    ``None`` when the path is critically clear.
    """
    conflict, t_eff = conflict_row(fleet, i, dxi, dyi, mode)
    critical = conflict & (t_eff < threshold)
    if not np.any(critical):
        return None
    t = np.where(critical, t_eff, _INF)
    j = int(np.argmin(t))  # argmin returns the first (smallest id) minimum
    return j, float(t[j])


def detect(
    fleet: FleetState,
    mode: DetectionMode = DetectionMode.SIGNED,
    *,
    chunk: Optional[int] = None,
    chunk_budget_bytes: Optional[int] = None,
) -> DetectionStats:
    """Full Task-2 pass: every aircraft against every other.

    Mutates ``col``, ``time_till`` and ``col_with`` exactly as the
    paper's kernel does: ``time_till`` becomes the earliest critical
    overlap time (if below the 300-period safe value), ``col_with`` the
    partner achieving it, ``col`` flags aircraft needing resolution.

    ``chunk`` (rows per pass) defaults to whatever fits
    ``chunk_budget_bytes`` (:data:`DETECT_CHUNK_BUDGET_BYTES` if unset)
    via :func:`detect_chunk_rows`; outputs are identical for any chunk.
    """
    stats = DetectionStats()
    fleet.reset_collision()
    n = fleet.n
    stats.pairs_checked = n * (n - 1)
    stats.critical_per_aircraft = np.zeros(n, dtype=np.int64)
    if chunk is None:
        chunk = detect_chunk_rows(n, chunk_budget_bytes)

    for lo in range(0, n, chunk):
        hi = min(lo + chunk, n)
        rows = slice(lo, hi)
        gap_x = fleet.x[None, :] - fleet.x[rows, None]
        gap_y = fleet.y[None, :] - fleet.y[rows, None]
        rel_vx = fleet.dx[None, :] - fleet.dx[rows, None]
        rel_vy = fleet.dy[None, :] - fleet.dy[rows, None]

        t_lo, t_hi = pair_interval(gap_x, gap_y, rel_vx, rel_vy, mode)
        if mode is DetectionMode.SIGNED:
            t_eff = np.maximum(t_lo, 0.0)
            open_window = (t_lo < t_hi) & (t_hi > 0.0)
        else:
            t_eff = t_lo
            open_window = t_lo < t_hi

        near_alt = (
            np.abs(fleet.alt[None, :] - fleet.alt[rows, None])
            < C.ALTITUDE_SEPARATION_FT
        )
        # Mask the diagonal (i == j).
        diag = np.arange(lo, hi)
        self_mask = np.ones_like(open_window)
        self_mask[np.arange(hi - lo), diag] = False

        stats.pairs_in_altitude_band += int(np.count_nonzero(near_alt & self_mask))
        conflict = (
            open_window
            & (t_eff < C.PROJECTION_HORIZON_PERIODS)
            & near_alt
            & self_mask
        )
        stats.conflicts += int(np.count_nonzero(conflict))

        critical = conflict & (t_eff < C.TIME_TILL_SAFE_PERIODS)
        stats.critical_conflicts += int(np.count_nonzero(critical))
        stats.critical_per_aircraft[lo:hi] = np.count_nonzero(critical, axis=1)

        t = np.where(critical, t_eff, _INF)
        row_min = t.min(axis=1)
        hit = row_min < C.TIME_TILL_SAFE_PERIODS
        partners = np.argmin(t, axis=1)
        idx = np.arange(lo, hi)[hit]
        fleet.time_till[idx] = row_min[hit]
        fleet.col_with[idx] = partners[hit]
        fleet.col[idx] = 1

    stats.flagged_aircraft = int(np.count_nonzero(fleet.col))
    return stats
