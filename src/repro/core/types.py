"""Core data structures: the flight-record table and radar frames.

The paper stores all aircraft state in a single ``drone`` structure in
GPU global memory (Section 5).  We mirror that as a structure-of-arrays
(:class:`FleetState`) so every backend — vectorised NumPy, simulated GPU
warps, simulated SIMD PEs — operates on the same contiguous columns.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Any, Dict

import numpy as np

from . import constants as C

__all__ = ["FleetState", "RadarFrame", "TaskTiming", "TimingBreakdown"]


def _column(n: int, dtype, fill=0) -> np.ndarray:
    out = np.empty(n, dtype=dtype)
    out.fill(fill)
    return out


@dataclass
class FleetState:
    """Structure-of-arrays flight-record table for ``n`` aircraft.

    Mirrors the paper's ``drone`` struct: position, per-period velocity,
    the Batcher trial path (``batdx``/``batdy``), altitude, collision
    bookkeeping and the radar-correlation state.

    All arrays have length ``n`` and aircraft ``i`` is row ``i``
    everywhere; the aircraft id *is* the index.
    """

    #: x position, nm, in [-128, 128].
    x: np.ndarray
    #: y position, nm, in [-128, 128].
    y: np.ndarray
    #: x velocity, nm per half-second period.
    dx: np.ndarray
    #: y velocity, nm per half-second period.
    dy: np.ndarray
    #: altitude, feet.
    alt: np.ndarray
    #: trial-path x velocity produced during collision resolution
    #: (the paper's ``batx``; see DESIGN.md deviation notes — the trial
    #: path is the current position with a rotated velocity vector).
    batdx: np.ndarray
    #: trial-path y velocity (the paper's ``baty``).
    batdy: np.ndarray
    #: 1 when a critical collision was anticipated for this aircraft in
    #: the most recent detection pass, else 0 (the paper's ``col``).
    col: np.ndarray
    #: periods until the earliest anticipated band overlap
    #: (the paper's ``time_till``; initialised to 300).
    time_till: np.ndarray
    #: id of the aircraft this one is anticipated to conflict with,
    #: or NO_MATCH (the paper's ``colWith``).
    col_with: np.ndarray
    #: Task-1 correlation state: UNMATCHED / MATCHED_ONCE / MULTI_MATCHED
    #: (the paper's ``rMatch``).
    r_match: np.ndarray
    #: id of the radar report this aircraft correlated with, or NO_MATCH
    #: (the paper's ``rMatchWith`` viewed from the aircraft side; kept for
    #: symmetry and used by the tracking commit step).
    matched_radar: np.ndarray
    #: expected x position for the current period (x + dx).
    expected_x: np.ndarray
    #: expected y position for the current period (y + dy).
    expected_y: np.ndarray

    @classmethod
    def empty(cls, n: int) -> "FleetState":
        """Allocate a zeroed fleet of ``n`` aircraft."""
        if n <= 0:
            raise ValueError(f"fleet size must be positive, got {n}")
        return cls(
            x=_column(n, np.float64),
            y=_column(n, np.float64),
            dx=_column(n, np.float64),
            dy=_column(n, np.float64),
            alt=_column(n, np.float64),
            batdx=_column(n, np.float64),
            batdy=_column(n, np.float64),
            col=_column(n, np.int8),
            time_till=_column(n, np.float64, C.TIME_TILL_SAFE_PERIODS),
            col_with=_column(n, np.int64, C.NO_MATCH),
            r_match=_column(n, np.int8, C.UNMATCHED),
            matched_radar=_column(n, np.int64, C.NO_MATCH),
            expected_x=_column(n, np.float64),
            expected_y=_column(n, np.float64),
        )

    @property
    def n(self) -> int:
        """Number of aircraft."""
        return self.x.shape[0]

    def copy(self) -> "FleetState":
        """Deep copy (every column copied)."""
        return FleetState(
            **{
                f.name: getattr(self, f.name).copy()
                for f in dataclasses.fields(self)
            }
        )

    def speeds_per_period(self) -> np.ndarray:
        """Ground speed of each aircraft in nm/period."""
        return np.hypot(self.dx, self.dy)

    def speeds_knots(self) -> np.ndarray:
        """Ground speed of each aircraft in nm/hour."""
        return self.speeds_per_period() * C.PERIODS_PER_HOUR

    def reset_correlation(self) -> None:
        """Clear the per-period Task-1 bookkeeping columns."""
        self.r_match.fill(C.UNMATCHED)
        self.matched_radar.fill(C.NO_MATCH)

    def reset_collision(self) -> None:
        """Clear the per-major-cycle Task-2/3 bookkeeping columns."""
        self.col.fill(0)
        self.time_till.fill(C.TIME_TILL_SAFE_PERIODS)
        self.col_with.fill(C.NO_MATCH)
        self.batdx[:] = self.dx
        self.batdy[:] = self.dy

    def state_equal(self, other: "FleetState") -> bool:
        """Bit-exact equality of every column; used by equivalence tests."""
        return all(
            np.array_equal(getattr(self, f.name), getattr(other, f.name))
            for f in dataclasses.fields(self)
        )

    def validate(self) -> None:
        """Raise ``ValueError`` if any structural invariant is broken."""
        n = self.n
        for f in dataclasses.fields(self):
            col = getattr(self, f.name)
            if col.shape != (n,):
                raise ValueError(f"column {f.name} has shape {col.shape}, expected ({n},)")
        if not np.all(np.isfinite(self.x)) or not np.all(np.isfinite(self.y)):
            raise ValueError("non-finite aircraft position")
        if np.any(np.abs(self.x) > C.GRID_HALF_NM + 1e-9) or np.any(
            np.abs(self.y) > C.GRID_HALF_NM + 1e-9
        ):
            raise ValueError("aircraft outside the airfield bounding square")


@dataclass
class RadarFrame:
    """One half-second's worth of simulated radar reports.

    At most one report per aircraft per period (paper Section 4,
    GenerateRadarData).  ``true_id`` records which aircraft generated each
    report — it is *never* read by the ATM algorithms (a real system does
    not know it); it exists purely so tests can score correlation
    accuracy.
    """

    #: report x position, nm.
    rx: np.ndarray
    #: report y position, nm.
    ry: np.ndarray
    #: the paper's ``rMatchWith``: NO_MATCH, DISCARDED, or an aircraft id.
    match_with: np.ndarray
    #: ground-truth source aircraft of each report (test-only).
    true_id: np.ndarray

    @classmethod
    def empty(cls, n: int) -> "RadarFrame":
        return cls(
            rx=_column(n, np.float64),
            ry=_column(n, np.float64),
            match_with=_column(n, np.int64, C.NO_MATCH),
            true_id=_column(n, np.int64, C.NO_MATCH),
        )

    @property
    def n(self) -> int:
        """Number of radar reports."""
        return self.rx.shape[0]

    def copy(self) -> "RadarFrame":
        return RadarFrame(
            rx=self.rx.copy(),
            ry=self.ry.copy(),
            match_with=self.match_with.copy(),
            true_id=self.true_id.copy(),
        )

    def reset_matches(self) -> None:
        """Forget all correlation decisions (new period)."""
        self.match_with.fill(C.NO_MATCH)


@dataclass
class TimingBreakdown:
    """Where a task's modelled time went, in seconds."""

    compute: float = 0.0
    memory: float = 0.0
    transfer: float = 0.0
    sync: float = 0.0
    overhead: float = 0.0

    @property
    def total(self) -> float:
        return self.compute + self.memory + self.transfer + self.sync + self.overhead

    def as_dict(self) -> Dict[str, float]:
        """The five components as a plain dict (JSON-friendly)."""
        return {
            "compute": self.compute,
            "memory": self.memory,
            "transfer": self.transfer,
            "sync": self.sync,
            "overhead": self.overhead,
        }

    def scaled(self, factor: float) -> "TimingBreakdown":
        return TimingBreakdown(
            compute=self.compute * factor,
            memory=self.memory * factor,
            transfer=self.transfer * factor,
            sync=self.sync * factor,
            overhead=self.overhead * factor,
        )

    @classmethod
    def from_dict(cls, data: Dict[str, float]) -> "TimingBreakdown":
        """Inverse of :meth:`as_dict` (unknown keys rejected)."""
        return cls(**{k: float(v) for k, v in data.items()})


@dataclass
class TaskTiming:
    """Result of running one ATM task on one backend.

    ``seconds`` is *modelled* architecture time (cycles / clock + memory
    and transfer models), not host wall-clock; see DESIGN.md "Timing
    semantics".
    """

    #: which task: "task1" or "task23".
    task: str
    #: backend/platform name, e.g. "cuda:titan-x-pascal".
    platform: str
    #: number of aircraft processed.
    n_aircraft: int
    #: modelled execution time in seconds.
    seconds: float
    #: component breakdown; components sum to ``seconds``.
    breakdown: TimingBreakdown = field(default_factory=TimingBreakdown)
    #: free-form dynamic statistics (rounds used, conflicts found, ...).
    stats: Dict[str, Any] = field(default_factory=dict)
    #: optional fine-grained modelled-time attribution (span-name ->
    #: seconds) produced by the :mod:`repro.obs` instrumentation; the
    #: figure/report pipeline passes it through untouched.  Where a
    #: backend populates it, the values sum to ``seconds``.
    detail: Dict[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.seconds < 0:
            raise ValueError("negative task time")

    @property
    def milliseconds(self) -> float:
        return self.seconds * 1e3

    def meets_deadline(self, budget_seconds: float) -> bool:
        """Would this task fit in the given slice of its period?"""
        return self.seconds <= budget_seconds

    def to_dict(self) -> Dict[str, Any]:
        """Canonical JSON-serializable form (used by the result cache).

        ``stats`` values pass through :func:`repro.core.canonical.canonicalize`
        because backends stuff numpy scalars and lists in there; the
        round trip ``from_dict(to_dict(t))`` preserves every numeric
        value exactly (floats survive JSON via shortest-repr).
        """
        from .canonical import canonicalize

        return {
            "task": self.task,
            "platform": self.platform,
            "n_aircraft": int(self.n_aircraft),
            "seconds": float(self.seconds),
            "breakdown": self.breakdown.as_dict(),
            "stats": canonicalize(self.stats),
            "detail": {str(k): float(v) for k, v in self.detail.items()},
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "TaskTiming":
        """Rebuild a timing from :meth:`to_dict` output."""
        return cls(
            task=data["task"],
            platform=data["platform"],
            n_aircraft=int(data["n_aircraft"]),
            seconds=float(data["seconds"]),
            breakdown=TimingBreakdown.from_dict(data.get("breakdown", {})),
            stats=dict(data.get("stats", {})),
            detail={k: float(v) for k, v in data.get("detail", {}).items()},
        )
