"""Geometric helpers shared by all backends.

Everything here is pure and vectorised; backends that model per-thread
execution call these on length-1 slices or full columns alike.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from . import constants as C

__all__ = [
    "rotate_velocity",
    "advance",
    "wraparound",
    "project",
    "inside_gate",
    "trial_angle_deg",
]


def rotate_velocity(dx, dy, angle_deg) -> Tuple[np.ndarray, np.ndarray]:
    """Rotate velocity vectors by ``angle_deg`` (counter-clockwise).

    Rotation preserves speed exactly (up to float rounding), which is the
    point of the paper's resolution manoeuvre: the aircraft changes
    heading, not speed.
    """
    theta = np.deg2rad(angle_deg)
    cos_t, sin_t = np.cos(theta), np.sin(theta)
    dx = np.asarray(dx, dtype=np.float64)
    dy = np.asarray(dy, dtype=np.float64)
    return dx * cos_t - dy * sin_t, dx * sin_t + dy * cos_t


def advance(x, y, dx, dy, periods: float = 1.0) -> Tuple[np.ndarray, np.ndarray]:
    """Dead-reckon positions forward by ``periods`` half-seconds."""
    return np.asarray(x) + np.asarray(dx) * periods, np.asarray(y) + np.asarray(dy) * periods


def wraparound(x, y) -> Tuple[np.ndarray, np.ndarray]:
    """Re-enter aircraft that left the airfield at the mirrored point.

    The paper: "when an aircraft exits this grid at location (x, y), then
    another aircraft with the same speed and direction of flight is
    re-entered into the grid at the location (-x, -y)".  Mapping
    (x, y) -> (-x, -y) keeps the heading valid: an aircraft flying
    north-east off the top-right corner re-enters at the bottom-left still
    flying north-east.
    """
    x = np.asarray(x, dtype=np.float64).copy()
    y = np.asarray(y, dtype=np.float64).copy()
    out = (np.abs(x) > C.GRID_HALF_NM) | (np.abs(y) > C.GRID_HALF_NM)
    x[out] = -x[out]
    y[out] = -y[out]
    # A mirrored point can itself sit outside if the aircraft overshot
    # both axes between periods is impossible (|-x| == |x|), but clamp
    # against float drift so validate() never trips on 128.0000000001.
    np.clip(x, -C.GRID_HALF_NM, C.GRID_HALF_NM, out=x)
    np.clip(y, -C.GRID_HALF_NM, C.GRID_HALF_NM, out=y)
    return x, y


def project(x, y, dx, dy, horizon_periods: float = C.PROJECTION_HORIZON_PERIODS):
    """Project positions ``horizon_periods`` ahead (paper: 20 minutes)."""
    return advance(x, y, dx, dy, horizon_periods)


def inside_gate(ex, ey, rx, ry, gate_half_nm: float) -> np.ndarray:
    """Is radar (rx, ry) inside the square gate centred on (ex, ey)?

    Strict inequalities as in the paper:
    ``aircraft.x - g < radar.x < aircraft.x + g`` for each coordinate.
    """
    ex = np.asarray(ex)
    ey = np.asarray(ey)
    rx = np.asarray(rx)
    ry = np.asarray(ry)
    return (
        (np.abs(rx - ex) < gate_half_nm)
        & (np.abs(ry - ey) < gate_half_nm)
    )


def trial_angle_deg(attempt: int) -> float:
    """Heading offset for resolution attempt ``attempt`` (0-based).

    Attempts alternate sides with growing magnitude:
    0 -> +5, 1 -> -5, 2 -> +10, 3 -> -10, ..., 11 -> -30 degrees.
    """
    if attempt < 0 or attempt >= C.RESOLUTION_MAX_TRIALS:
        raise ValueError(
            f"attempt {attempt} outside [0, {C.RESOLUTION_MAX_TRIALS - 1}]"
        )
    magnitude = C.RESOLUTION_STEP_DEG * (attempt // 2 + 1)
    return magnitude if attempt % 2 == 0 else -magnitude
