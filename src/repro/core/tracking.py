"""Task 1 — Tracking & Correlation (paper Section 5.1, Algorithm 1).

Reference semantics
-------------------
The paper's CUDA kernel runs one thread per radar report, each scanning
all aircraft; the shared ``rMatch``/``rMatchWith`` state makes the kernel
racy.  DESIGN.md deviation #2 fixes a deterministic serialization that is
one of the legal outcomes of that kernel and that **every** backend in
this repository implements identically: radars are processed in index
order, and each radar scans aircraft in index order.

State machine (per correlation round, gate half-width ``g``):

* a radar report *matches* an aircraft when the report falls strictly
  inside the ``2g x 2g`` box centred on the aircraft's expected position;
* an aircraft seen by a second radar is dropped (``r_match = -1``) and
  keeps its expected position this period;
* a radar that sees a second (still unmatched) aircraft is discarded
  (``match_with = -2``) and stops scanning;
* round 2 and 3 double the gate and retry only unmatched radars against
  aircraft still unmatched at the start of the round;
* finally, every aircraft matched by exactly one surviving radar takes
  the radar position as its new (x, y); everyone else advances to its
  expected position.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

import numpy as np

from . import constants as C
from .geometry import wraparound
from .types import FleetState, RadarFrame

__all__ = ["TrackingStats", "compute_expected", "run_correlation_round", "correlate"]

#: Radar rows are compared against aircraft in chunks of this many radars
#: to bound the gate-matrix working set (chunk x n bools).
_CHUNK = 2048


@dataclass
class TrackingStats:
    """Dynamic counts from one Task-1 execution (feeds timing models)."""

    #: number of rounds actually executed (1..3).
    rounds_executed: int = 0
    #: radar-aircraft candidate pairs examined, per round.
    candidate_pairs: List[int] = field(default_factory=list)
    #: new radar-aircraft matches made, per round.
    matched: List[int] = field(default_factory=list)
    #: radars discarded for seeing multiple aircraft (total).
    discarded_radars: int = 0
    #: aircraft dropped for being seen by multiple radars (total).
    dropped_aircraft: int = 0
    #: aircraft whose position was committed from a radar report.
    committed: int = 0
    #: aircraft that fell back to their expected position.
    coasted: int = 0
    #: radar indices still unmatched at the start of each round; the
    #: architecture timing models use these to charge only the warps/PEs
    #: that still have work in rounds 2 and 3.
    round_radar_ids: List[np.ndarray] = field(default_factory=list)
    #: number of aircraft still unmatched at the start of each round.
    round_active_planes: List[int] = field(default_factory=list)
    #: per-round, per-radar candidate counts (``bincount`` over the gate
    #: hits); lets warp-level timing models charge match bookkeeping to
    #: the warps that actually did it.
    round_candidates_per_radar: List[np.ndarray] = field(default_factory=list)

    @property
    def total_candidate_pairs(self) -> int:
        return int(sum(self.candidate_pairs))


def compute_expected(fleet: FleetState) -> None:
    """Fill ``expected_x/expected_y`` with this period's dead-reckoning."""
    np.add(fleet.x, fleet.dx, out=fleet.expected_x)
    np.add(fleet.y, fleet.dy, out=fleet.expected_y)


def _candidate_pairs(
    radar_ids: np.ndarray,
    frame: RadarFrame,
    fleet: FleetState,
    plane_mask: np.ndarray,
    gate_half: float,
) -> tuple[np.ndarray, np.ndarray]:
    """All (radar, aircraft) index pairs whose gate test passes.

    Returned sorted by radar index then aircraft index — exactly the
    order the serialized state machine visits them.
    """
    pair_r: list[np.ndarray] = []
    pair_p: list[np.ndarray] = []
    ex, ey = fleet.expected_x, fleet.expected_y
    for lo in range(0, radar_ids.shape[0], _CHUNK):
        rid = radar_ids[lo : lo + _CHUNK]
        rx = frame.rx[rid][:, None]
        ry = frame.ry[rid][:, None]
        hit = (
            (np.abs(rx - ex[None, :]) < gate_half)
            & (np.abs(ry - ey[None, :]) < gate_half)
            & plane_mask[None, :]
        )
        rows, cols = np.nonzero(hit)
        pair_r.append(rid[rows])
        pair_p.append(cols.astype(np.int64))
    if not pair_r:
        return np.empty(0, np.int64), np.empty(0, np.int64)
    return np.concatenate(pair_r), np.concatenate(pair_p)


def _candidate_pairs_hashed(
    radar_ids: np.ndarray,
    frame: RadarFrame,
    fleet: FleetState,
    plane_mask: np.ndarray,
    gate_half: float,
) -> tuple[np.ndarray, np.ndarray]:
    """Grid-hashed :func:`_candidate_pairs`: same pairs, same order.

    Expected positions are bucketed on a grid of cell size
    ``2 * gate_half``; each radar probes its own cell plus the 3x3
    neighbourhood, and survivors are re-filtered with the *exact* gate
    predicate on the same float operands as the brute scan — so the
    result is provably the identical pair set, in (radar, plane) order.

    Coverage argument: the gate half-widths are powers of two, so the
    grid quotients ``pos / cell`` are computed exactly; a gate hit means
    the radar and expected quotients differ by < 0.5 per axis, hence
    their floors (cell indices) differ by at most 1 — the 3x3 probe is a
    superset of all hits.  Distinct probe offsets land in distinct cells
    (the shifted keys are injective over the padded grid), so no pair is
    generated twice.
    """
    from .sweepline import _prune_span

    planes = np.nonzero(plane_mask)[0].astype(np.int64)
    empty = np.empty(0, np.int64)
    brute = int(radar_ids.shape[0]) * int(planes.shape[0])
    if radar_ids.shape[0] == 0 or planes.shape[0] == 0:
        _prune_span("track", planes.shape[0], brute, 0)
        return empty, empty

    cell = 2.0 * gate_half
    ex = fleet.expected_x[planes]
    ey = fleet.expected_y[planes]
    pcx = np.floor(ex / cell).astype(np.int64)
    pcy = np.floor(ey / cell).astype(np.int64)
    rx = frame.rx[radar_ids]
    ry = frame.ry[radar_ids]
    rcx = np.floor(rx / cell).astype(np.int64)
    rcy = np.floor(ry / cell).astype(np.int64)

    # Shifted non-negative keys, padded one cell so radar probes at
    # offset -1/+1 stay in range; row stride ky keeps them injective.
    x0 = int(min(pcx.min(), rcx.min())) - 1
    y0 = int(min(pcy.min(), rcy.min())) - 1
    ky = int(max(pcy.max(), rcy.max())) + 2 - y0
    pkey = (pcx - x0) * ky + (pcy - y0)
    order = np.argsort(pkey, kind="stable")
    skey = pkey[order]
    rbase = (rcx - x0) * ky + (rcy - y0)

    pair_r: list[np.ndarray] = []
    pair_p: list[np.ndarray] = []
    nr = radar_ids.shape[0]
    probed = 0
    for off_x in (-1, 0, 1):
        for off_y in (-1, 0, 1):
            probe = rbase + off_x * ky + off_y
            begin = np.searchsorted(skey, probe, side="left")
            end = np.searchsorted(skey, probe, side="right")
            count = end - begin
            total = int(count.sum())
            probed += total
            if not total:
                continue
            # Expand each radar's [begin, end) run into flat positions.
            ri = np.repeat(np.arange(nr, dtype=np.int64), count)
            run_start = np.cumsum(count) - count
            offs = np.arange(total, dtype=np.int64) - np.repeat(run_start, count)
            cand = planes[order[np.repeat(begin, count) + offs]]
            rr = radar_ids[ri]
            hit = (np.abs(frame.rx[rr] - fleet.expected_x[cand]) < gate_half) & (
                np.abs(frame.ry[rr] - fleet.expected_y[cand]) < gate_half
            )
            pair_r.append(rr[hit])
            pair_p.append(cand[hit])

    _prune_span("track", planes.shape[0], brute, probed)
    if not pair_r:
        return empty, empty
    pr = np.concatenate(pair_r)
    pp = np.concatenate(pair_p)
    o = np.lexsort((pp, pr))
    return pr[o], pp[o]


def run_correlation_round(
    fleet: FleetState,
    frame: RadarFrame,
    gate_half: float,
    stats: TrackingStats,
    *,
    hashed: bool = False,
) -> None:
    """Execute one correlation round with the given gate half-width.

    ``hashed`` selects the grid-hash candidate generator (identical
    pairs in identical order; O(n log n) instead of O(n^2)).
    """
    radar_ids = np.nonzero(frame.match_with == C.NO_MATCH)[0].astype(np.int64)
    plane_mask = fleet.r_match == C.UNMATCHED
    generate = _candidate_pairs_hashed if hashed else _candidate_pairs
    pr, pp = generate(radar_ids, frame, fleet, plane_mask, gate_half)

    stats.rounds_executed += 1
    stats.candidate_pairs.append(int(pr.shape[0]))
    stats.round_radar_ids.append(radar_ids)
    stats.round_active_planes.append(int(np.count_nonzero(plane_mask)))
    stats.round_candidates_per_radar.append(np.bincount(pr, minlength=frame.n))

    matched_this_round = 0
    r_match = fleet.r_match
    matched_radar = fleet.matched_radar
    match_with = frame.match_with

    # Walk the candidate list grouped by radar, in (radar, plane) order.
    # The run boundaries of the radar column are found vectorized (a
    # run starts wherever the value changes); only the inherently
    # sequential per-run state machine below stays in Python.
    total = pr.shape[0]
    if total:
        starts = np.flatnonzero(np.concatenate(([True], pr[1:] != pr[:-1])))
        ends = np.append(starts[1:], total)
    else:
        starts = ends = np.empty(0, dtype=np.int64)
    for idx, end in zip(starts, ends):
        i = pr[idx]
        for k in range(idx, end):
            p = pp[k]
            state = r_match[p]
            if state == C.MULTI_MATCHED:
                continue
            if state == C.MATCHED_ONCE:
                # Second radar sees an already-correlated aircraft: drop it.
                r_match[p] = C.MULTI_MATCHED
                stats.dropped_aircraft += 1
                continue
            # state == UNMATCHED
            if match_with[i] == C.NO_MATCH:
                match_with[i] = p
                r_match[p] = C.MATCHED_ONCE
                matched_radar[p] = i
                matched_this_round += 1
            else:
                # Radar already holds an aircraft and sees a second one:
                # discard the radar and stop its scan.
                match_with[i] = C.DISCARDED
                stats.discarded_radars += 1
                break

    stats.matched.append(matched_this_round)


def _commit(fleet: FleetState, frame: RadarFrame, stats: TrackingStats) -> None:
    """Apply correlation results: radar position or expected position."""
    take_radar = np.zeros(fleet.n, dtype=bool)
    radar_of = np.full(fleet.n, -1, dtype=np.int64)

    valid = frame.match_with >= 0
    radars = np.nonzero(valid)[0]
    planes = frame.match_with[radars]
    good = (fleet.r_match[planes] == C.MATCHED_ONCE) & (
        fleet.matched_radar[planes] == radars
    )
    take_radar[planes[good]] = True
    radar_of[planes[good]] = radars[good]

    new_x = fleet.expected_x.copy()
    new_y = fleet.expected_y.copy()
    src = radar_of[take_radar]
    new_x[take_radar] = frame.rx[src]
    new_y[take_radar] = frame.ry[src]

    fleet.x[:], fleet.y[:] = wraparound(new_x, new_y)
    stats.committed = int(np.count_nonzero(take_radar))
    stats.coasted = fleet.n - stats.committed


def correlate(
    fleet: FleetState,
    frame: RadarFrame,
    *,
    pruned: bool = False,
) -> TrackingStats:
    """Run the full Task 1 on a fleet and a radar frame (both mutated).

    Returns the dynamic statistics used by the architecture timing
    models (candidate counts per round, rounds executed, ...).
    ``pruned`` swaps in the grid-hash candidate generator; stats and
    state mutations are bit-identical either way.
    """
    stats = TrackingStats()
    fleet.reset_correlation()
    frame.reset_matches()
    compute_expected(fleet)

    gate = C.TRACK_GATE_HALF_NM
    for round_no in range(C.TRACK_TOTAL_ROUNDS):
        if round_no > 0:
            if not np.any(frame.match_with == C.NO_MATCH):
                break  # every radar resolved; no extra rounds needed
            gate *= 2.0
        run_correlation_round(fleet, frame, gate, stats, hashed=pruned)

    _commit(fleet, frame, stats)
    return stats
