"""Task 3 — Collision Resolution (paper Section 5.3, Algorithm 2).

Aircraft flagged by detection are handled one at a time, in index order
(the paper's kernel guards against two threads manipulating the same
aircraft; the deterministic serialization of DESIGN.md deviation #2 makes
that ordering explicit).  For each flagged aircraft:

1. re-verify the conflict against the *current* fleet state — an earlier
   resolution this pass may already have cleared it;
2. try trial headings rotated +-5, -+10, ... up to +-30 degrees from the
   original velocity (the paper's ``batx``/``baty`` trial path — our
   ``batdx``/``batdy``, see DESIGN.md deviation #6: the trial path is the
   current position flown with a rotated velocity);
3. each trial re-runs the Batcher check of this aircraft against every
   other aircraft; the first critically-clear heading is committed;
4. if no heading within 30 degrees clears the conflict the aircraft keeps
   its path — the paper notes such leftovers would be resolved by an
   altitude change in practice.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Tuple

import numpy as np

from . import constants as C
from .collision import DetectionMode, DetectionStats, detect, earliest_critical
from .geometry import rotate_velocity, trial_angle_deg
from .types import FleetState

__all__ = ["ResolutionStats", "resolve", "detect_and_resolve"]


@dataclass
class ResolutionStats:
    """Dynamic counts from one Task-3 pass (feeds timing models)."""

    #: aircraft that entered resolution with a live critical conflict.
    needed_resolution: int = 0
    #: aircraft whose conflict had already evaporated at re-verification.
    already_clear: int = 0
    #: aircraft that committed a new heading.
    resolved: int = 0
    #: aircraft that exhausted all 12 trial headings.
    unresolved: int = 0
    #: total trial headings evaluated (each costs a detection sweep).
    trials_evaluated: int = 0
    #: histogram: trials needed (1..12) -> number of aircraft.
    trials_histogram: Dict[int, int] = field(default_factory=dict)
    #: per-aircraft trial count (length n; 0 for aircraft that needed no
    #: resolution).  Architecture timing models use this to charge each
    #: thread/PE its data-dependent re-detection sweeps.
    attempts: np.ndarray = field(default_factory=lambda: np.zeros(0, dtype=np.int64))


def resolve(
    fleet: FleetState,
    mode: DetectionMode = DetectionMode.SIGNED,
    *,
    critical_exists: Optional[Callable[[int, float, float], bool]] = None,
) -> ResolutionStats:
    """Run Task 3 over every aircraft flagged by the preceding Task 2.

    The state machine only ever consumes the *existence* of a critical
    conflict (``earliest_critical(...) is None`` checks), never the
    partner or time.  ``critical_exists(i, dxi, dyi)`` lets a caller
    substitute an equivalent existence oracle — the pruned sort-sweep in
    :mod:`repro.core.sweepline` uses this so both implementations share
    one trial loop and cannot drift apart.
    """
    stats = ResolutionStats()
    stats.attempts = np.zeros(fleet.n, dtype=np.int64)
    flagged = np.nonzero(fleet.col == 1)[0]

    if critical_exists is None:
        def critical_exists(i: int, dxi: float, dyi: float) -> bool:
            return earliest_critical(fleet, i, dxi, dyi, mode) is not None

    for i in flagged:
        i = int(i)
        if not critical_exists(i, float(fleet.dx[i]), float(fleet.dy[i])):
            # Partner already turned away; clear the stale flag.
            stats.already_clear += 1
            fleet.col[i] = 0
            fleet.time_till[i] = C.TIME_TILL_SAFE_PERIODS
            fleet.col_with[i] = C.NO_MATCH
            continue

        stats.needed_resolution += 1
        base_dx, base_dy = float(fleet.dx[i]), float(fleet.dy[i])
        committed = False
        for attempt in range(C.RESOLUTION_MAX_TRIALS):
            angle = trial_angle_deg(attempt)
            trial_dx, trial_dy = rotate_velocity(base_dx, base_dy, angle)
            fleet.batdx[i], fleet.batdy[i] = trial_dx, trial_dy
            stats.trials_evaluated += 1
            stats.attempts[i] += 1
            if not critical_exists(i, float(trial_dx), float(trial_dy)):
                fleet.dx[i], fleet.dy[i] = trial_dx, trial_dy
                fleet.col[i] = 0
                fleet.time_till[i] = C.TIME_TILL_SAFE_PERIODS
                fleet.col_with[i] = C.NO_MATCH
                stats.resolved += 1
                used = attempt + 1
                stats.trials_histogram[used] = stats.trials_histogram.get(used, 0) + 1
                committed = True
                break
        if not committed:
            # Keep the original path; in practice an altitude change
            # would separate the pair (paper Section 5.3).
            stats.unresolved += 1

    return stats


def detect_and_resolve(
    fleet: FleetState,
    mode: DetectionMode = DetectionMode.SIGNED,
    *,
    chunk_budget_bytes: Optional[int] = None,
) -> Tuple[DetectionStats, ResolutionStats]:
    """The paper's fused ``CheckCollisionPath``: Task 2 then Task 3.

    ``chunk_budget_bytes`` tunes the detection pass's working-set budget
    (:func:`~repro.core.collision.detect_chunk_rows`); results are
    chunk-invariant.
    """
    det = detect(fleet, mode, chunk_budget_bytes=chunk_budget_bytes)
    res = resolve(fleet, mode)
    return det, res
