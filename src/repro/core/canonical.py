"""Canonical JSON forms and stable fingerprints.

Several subsystems need *the same* deterministic serialization of
loosely-typed Python data:

* the result cache (:mod:`repro.harness.cache`) fingerprints a
  backend's ``describe()`` output to key cached measurements, and
* the report writer (:mod:`repro.harness.report`) embeds the same
  platform descriptions in ``report.json``.

Backends build those descriptions from their config dataclasses, so the
values can be numpy scalars, numpy arrays, tuples, sets or enums — none
of which the stdlib ``json`` encoder accepts (or hashes stably).
:func:`canonicalize` folds all of them onto plain Python scalars,
lists and string-keyed dicts; :func:`canonical_json` renders that with
sorted keys and fixed separators so equal values always produce equal
bytes; :func:`fingerprint_of` hashes the bytes.

The properties the cache relies on (tested in
``tests/properties/test_fingerprint_properties.py``):

* **key-order invariance** — dicts differing only in insertion order
  fingerprint identically;
* **value sensitivity** — any changed leaf changes the fingerprint;
* **cross-process stability** — no ``id()``, ``hash()`` randomization
  or repr of live objects leaks in, so a fingerprint computed in one
  process equals the same computation in any other.
"""

from __future__ import annotations

import enum
import hashlib
import json
from typing import Any

import numpy as np

__all__ = ["canonicalize", "canonical_json", "fingerprint_of"]


def canonicalize(value: Any) -> Any:
    """Fold ``value`` onto plain JSON-serializable Python data.

    numpy scalars become their Python equivalents, numpy arrays become
    (nested) lists, tuples become lists, sets become sorted lists,
    enums become their ``value``, and mappings are rebuilt with string
    keys.  Plain scalars pass through unchanged.  Anything else raises
    ``TypeError`` — silently stringifying unknown objects would make
    fingerprints depend on ``repr`` details.
    """
    if value is None or isinstance(value, (bool, int, str)):
        return value
    if isinstance(value, float):
        return value
    if isinstance(value, enum.Enum):
        return canonicalize(value.value)
    if isinstance(value, np.bool_):
        return bool(value)
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    if isinstance(value, np.ndarray):
        return [canonicalize(v) for v in value.tolist()]
    if isinstance(value, dict):
        out = {}
        for key, item in value.items():
            key = canonicalize(key)
            if not isinstance(key, str):
                key = json.dumps(key, sort_keys=True)
            out[key] = canonicalize(item)
        return out
    if isinstance(value, (list, tuple)):
        return [canonicalize(v) for v in value]
    if isinstance(value, (set, frozenset)):
        items = [canonicalize(v) for v in value]
        return sorted(items, key=lambda v: json.dumps(v, sort_keys=True))
    raise TypeError(
        f"cannot canonicalize {type(value).__name__!r} value {value!r}; "
        "convert it to plain scalars/lists/dicts first"
    )


def canonical_json(value: Any) -> str:
    """Deterministic JSON text: canonicalized, sorted keys, no spaces."""
    return json.dumps(
        canonicalize(value), sort_keys=True, separators=(",", ":"), ensure_ascii=True
    )


def fingerprint_of(value: Any) -> str:
    """SHA-256 hex digest of the canonical JSON form of ``value``."""
    return hashlib.sha256(canonical_json(value).encode("ascii")).hexdigest()
