"""High-level façade: an airfield full of moving aircraft plus a platform.

:class:`Simulation` wires together the pieces a downstream user needs —
SetupFlight, the per-period radar feed, the three ATM tasks on a chosen
architecture backend, and the hard-deadline major cycle — behind a small
API::

    from repro import Simulation
    sim = Simulation(n_aircraft=960, backend="cuda:titan-x-pascal")
    result = sim.run(major_cycles=4)
    print(result.summary())
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

from . import constants as C
from .collision import DetectionMode
from .radar import generate_radar_frame
from .scheduler import ScheduleResult, run_schedule
from .setup import setup_flight
from .types import FleetState, RadarFrame, TaskTiming

__all__ = ["Simulation"]


class Simulation:
    """An ATM simulation bound to one architecture backend.

    Parameters
    ----------
    n_aircraft:
        Fleet size; the paper sweeps this as the independent variable.
    backend:
        A backend instance, a registry name ("reference",
        "cuda:titan-x-pascal", "simd:clearspeed-csx600", "ap:staran",
        "mimd:xeon-16"), or None for the NumPy reference.
    seed:
        Master seed for the airfield and radar noise.
    mode:
        Collision-equation form; see :class:`DetectionMode`.
    """

    def __init__(
        self,
        n_aircraft: int,
        backend: Union[str, "object", None] = None,
        *,
        seed: int = 2018,
        mode: DetectionMode = DetectionMode.SIGNED,
        radar_dropout: float = 0.0,
        radar_clutter: int = 0,
    ) -> None:
        from ..backends.registry import resolve_backend

        self.seed = seed
        self.mode = mode
        self.radar_dropout = radar_dropout
        self.radar_clutter = radar_clutter
        self.backend = resolve_backend(backend)
        self.fleet: FleetState = setup_flight(n_aircraft, seed)
        self._global_period = 0

    # ------------------------------------------------------------------
    # stepping
    # ------------------------------------------------------------------

    @property
    def n_aircraft(self) -> int:
        return self.fleet.n

    @property
    def current_period(self) -> int:
        """Global half-second period counter since the simulation started."""
        return self._global_period

    def next_radar_frame(self) -> RadarFrame:
        """Generate (but do not consume) the next period's radar frame."""
        return generate_radar_frame(
            self.fleet,
            self.seed,
            self._global_period,
            dropout=self.radar_dropout,
            clutter=self.radar_clutter,
        )

    def step_period(self) -> TaskTiming:
        """Run one half-second period's Task 1 and advance the clock.

        Collision work is *not* run here; use :meth:`step_major_cycle` or
        :meth:`run` for the full schedule, or call
        :meth:`run_collision_tasks` explicitly.
        """
        frame = self.next_radar_frame()
        timing = self.backend.track_and_correlate(self.fleet, frame)
        self._global_period += 1
        return timing

    def run_collision_tasks(self) -> TaskTiming:
        """Run the fused Task 2+3 once on the current fleet."""
        return self.backend.detect_and_resolve(self.fleet, mode=self.mode)

    def step_major_cycle(self) -> ScheduleResult:
        """Run one full 8-second major cycle (16 periods + collisions)."""
        return self.run(major_cycles=1)

    def run(self, major_cycles: int = 1) -> ScheduleResult:
        """Run the hard-deadline schedule for ``major_cycles`` cycles."""
        result = run_schedule(
            self.backend,
            self.fleet,
            major_cycles=major_cycles,
            seed=self.seed,
            mode=self.mode,
            radar_dropout=self.radar_dropout,
            radar_clutter=self.radar_clutter,
        )
        self._global_period += result.total_periods
        return result

    # ------------------------------------------------------------------
    # inspection helpers (used by examples)
    # ------------------------------------------------------------------

    def positions(self) -> np.ndarray:
        """Current (n, 2) aircraft positions in nm."""
        return np.column_stack([self.fleet.x, self.fleet.y])

    def headings_deg(self) -> np.ndarray:
        """Current headings in degrees, measured from the +x axis."""
        return np.degrees(np.arctan2(self.fleet.dy, self.fleet.dx))

    def conflicts_now(self) -> int:
        """Number of aircraft currently flagged as on a collision course."""
        return int(np.count_nonzero(self.fleet.col))

    def density_per_1000nm2(self) -> float:
        """Traffic density — aircraft per 1000 square nm."""
        area = C.AIRFIELD_SIZE_NM**2
        return self.fleet.n / area * 1000.0
