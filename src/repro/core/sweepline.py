"""Sort-sweep / spatial-hash candidate pruning for the functional pass.

The brute-force Task-2 kernel (:func:`repro.core.collision.detect`)
evaluates all ``n * (n - 1)`` ordered pairs; the functional simulation
therefore cost O(n^2) even though the *cost ledgers* are what actually
charge the paper's algorithms.  At continental fleet sizes (n = 10^6,
ROADMAP item 3) that is infeasible, so this module prunes the candidate
set before the exact pair mathematics runs — **without changing a single
output bit**:

* **Altitude-band gate** (the sweep line).  Every conflict requires
  ``|fl(alt_j - alt_i)| < 1000 ft``.  Because IEEE-754 negation is exact
  (``fl(a - b) == -fl(b - a)``), the partner set of aircraft ``i`` is
  exactly the aircraft whose altitude falls in the closed float interval
  computed by :func:`repro.core.bands.band_bounds` — the same
  total-order bisection machinery the warp/vector cost models use.  On
  the altitude-sorted fleet each partner set is one contiguous window,
  located by ``searchsorted`` with **no epsilon and no float
  recomputation**: the in-band mask is purely positional.  The empirical
  window is ~5% of the fleet (1000 ft band over a 1000..40000 ft uniform
  altitude layer), so the detection pass evaluates ~5% of the pairs, on
  exactly the same float operands as the brute-force kernel.

* **Per-axis time-window sort-sweep** for the resolution re-checks.
  Task 3 only consumes the *existence* of a critical conflict
  (:func:`~repro.core.resolution.resolve` None-checks
  ``earliest_critical``), and a critical conflict must start within 300
  periods, so a partner must sit within
  ``band + (s_i + s_max) * 300`` nm on **each** axis (a conservative
  bound with a 1e-9 relative slack that dwarfs the ~1e-15 accumulated
  float rounding; the 20-minute horizon itself prunes nothing — maximum
  reach over 2400 periods is 200 nm on a 256 nm airfield).  Candidates
  surviving the altitude window plus the per-axis boxes are then tested
  with the exact :func:`~repro.core.collision.pair_interval` math, so
  the existence answer is bit-for-bit the brute-force one.

* **Grid hash** for Task-1 candidate generation (in
  :mod:`repro.core.tracking`): radar reports only match aircraft inside
  a ``2g x 2g`` gate, so bucketing expected positions on a ``2g`` grid
  and probing the 3x3 neighbourhood yields a superset of the gate hits,
  which the exact gate predicate then filters.

The pruned implementations are differential- and property-tested
(``tests/core/test_sweepline.py``) to be bit-identical to the brute
passes on SIGNED and PAPER_ABS modes, including ulp-adversarial
coordinates.  The cost ledgers are untouched: ``pairs_checked`` stays
the closed-form ``n * (n - 1)`` and every other statistic is reproduced
exactly, so each backend still charges what *its* algorithm (all-pairs,
bitonic, associative scan) would do.  See docs/performance.md,
"Large-n regime".
"""

from __future__ import annotations

import enum
import math
from typing import Any, Optional, Tuple

import numpy as np

from . import constants as C
from .bands import band_bounds
from .collision import DetectionMode, DetectionStats, pair_interval
from .types import FleetState

__all__ = [
    "PruningPolicy",
    "PRUNE_MIN_N",
    "resolve_pruning",
    "AltitudeBandIndex",
    "detect_pruned",
    "resolve_pruned",
    "detect_and_resolve_pruned",
]

_INF = np.inf

#: ``auto`` enables pruning from this fleet size on.  Above every paper
#: axis (the paper stops at 5760/16000), so default reproduction runs
#: keep the brute-force pass byte-for-byte untouched.
PRUNE_MIN_N = 8192

#: Pair cells evaluated per dense block of the pruned detection pass
#: (bounds the working set: ~10 float64 temporaries of this many cells).
#: 250k cells keeps the ~20 MB of temporaries L2/L3-resident, which
#: measures ~1.5x faster at n=1e5 than multi-megacell blocks.
_BLOCK_CELLS = 250_000

#: Members scanned per chunk of a resolution existence query; small
#: enough that a positive query exits early, large enough to stay
#: vectorized.
_QUERY_CHUNK = 16384

#: Relative inflation of the conservative per-axis resolution windows.
#: The exact requirement is ~5 rounding errors (~1e-15 relative); 1e-9
#: leaves six orders of magnitude of margin while still pruning ~88% of
#: each altitude window.
_WINDOW_SLACK = 1e-9


class PruningPolicy(str, enum.Enum):
    """Whether trace generation may prune candidate pairs.

    ``AUTO`` (default) turns pruning on from :data:`PRUNE_MIN_N`
    aircraft; ``ON``/``OFF`` force it.  Either way the functional
    results are bit-identical — the policy only selects which
    (equivalent) implementation computes them.
    """

    AUTO = "auto"
    ON = "on"
    OFF = "off"


def resolve_pruning(policy: Any, n: int) -> bool:
    """Resolve a policy (enum or string) to an effective on/off at ``n``."""
    p = PruningPolicy(str(getattr(policy, "value", policy) or "auto"))
    if p is PruningPolicy.ON:
        return True
    if p is PruningPolicy.OFF:
        return False
    return int(n) >= PRUNE_MIN_N


def _prune_span(task: str, n: int, brute: int, candidates: int) -> None:
    """One ``core.prune`` marker span + counter per pruned pass."""
    from ..obs import span as obs_span
    from ..obs.metrics import metric_inc

    with obs_span(
        "core.prune",
        cat="core",
        task=task,
        n_aircraft=int(n),
        brute_pairs=int(brute),
        candidates=int(candidates),
    ):
        pass
    metric_inc("atm_prune_candidates", float(candidates), task=task)


class AltitudeBandIndex:
    """Alt-sorted order plus exact per-aircraft altitude-band windows.

    ``order`` sorts the fleet by altitude; aircraft ``i``'s altitude-band
    partners (including itself) occupy the contiguous sorted positions
    ``[begin[i], end[i])`` — exactly the set
    ``{j : |fl(alt_j - alt_i)| < ALTITUDE_SEPARATION_FT}``, by the
    :func:`~repro.core.bands.band_bounds` total-order bisection.  Also
    snapshots positions in sorted order (static during a collision pass;
    velocities are *not* static under resolution commits, so those are
    gathered live) and the fleet's maximum speed for the conservative
    resolution windows.
    """

    def __init__(self, fleet: FleetState) -> None:
        alt = fleet.alt
        self.n = int(alt.shape[0])
        self.order = np.argsort(alt, kind="stable")
        self.sorted_alt = alt[self.order]
        lo, hi = band_bounds(alt, C.ALTITUDE_SEPARATION_FT)
        self.begin = np.searchsorted(self.sorted_alt, lo, side="left")
        self.end = np.searchsorted(self.sorted_alt, hi, side="right")
        self.x_sorted = fleet.x[self.order]
        self.y_sorted = fleet.y[self.order]
        if self.n:
            self.max_speed = float(np.hypot(fleet.dx, fleet.dy).max())
        else:
            self.max_speed = 0.0

    @property
    def band_pairs(self) -> int:
        """Ordered pairs surviving the altitude gate (excl. self-pairs)."""
        if not self.n:
            return 0
        return int((self.end - self.begin - 1).sum())


def _window(t_lo, t_hi, mode: DetectionMode) -> Tuple[np.ndarray, np.ndarray]:
    """The (t_eff, open_window) step shared with ``detect``, verbatim."""
    if mode is DetectionMode.SIGNED:
        t_eff = np.maximum(t_lo, 0.0)
        open_window = (t_lo < t_hi) & (t_hi > 0.0)
    else:
        t_eff = t_lo
        open_window = t_lo < t_hi
    return t_eff, open_window


def detect_pruned(
    fleet: FleetState,
    mode: DetectionMode = DetectionMode.SIGNED,
    *,
    index: Optional[AltitudeBandIndex] = None,
    block_cells: int = _BLOCK_CELLS,
) -> DetectionStats:
    """Task-2 pass over the altitude-banded candidate pairs only.

    Bit-identical to :func:`repro.core.collision.detect` — same
    ``DetectionStats`` (``pairs_checked`` stays the closed-form
    ``n * (n - 1)`` the paper's kernels charge) and the same ``col`` /
    ``time_till`` / ``col_with`` mutations, including ``detect``'s
    smallest-partner-id tie-break — but evaluates the pair mathematics
    only on pairs inside the exact altitude band (~5% of all pairs).
    """
    stats = DetectionStats()
    fleet.reset_collision()
    n = fleet.n
    stats.pairs_checked = n * (n - 1)
    stats.critical_per_aircraft = np.zeros(n, dtype=np.int64)
    if index is None:
        index = AltitudeBandIndex(fleet)
    stats.pairs_in_altitude_band = index.band_pairs
    if n == 0:
        stats.flagged_aircraft = 0
        return stats

    order = index.order
    # Per *sorted position*: that row's altitude-band window bounds.
    begin_s = index.begin[order]
    end_s = index.end[order]
    x, y, dx, dy = fleet.x, fleet.y, fleet.dx, fleet.dy

    # A block of r adjacent (alt-sorted) rows unions to a column span of
    # roughly r + widest-window positions, so the dense block holds
    # r * (r + widest) cells — size r from that quadratic, not from the
    # window alone, or small-window fleets degenerate to r^2 ~ brute.
    widest = int((end_s - begin_s).max())
    rows_per = int((math.isqrt(widest * widest + 4 * int(block_cells)) - widest) // 2)
    rows_per = max(1, rows_per)
    for s in range(0, n, rows_per):
        e = min(s + rows_per, n)
        cb = int(begin_s[s:e].min())
        ce = int(end_s[s:e].max())
        rows = order[s:e]  # original aircraft ids of this row block
        cols = order[cb:ce]  # original ids of the union column window

        # Exactly the operand layout of detect()'s chunk: column value
        # minus row value, elementwise float64 — identical results.
        gap_x = x[cols][None, :] - x[rows][:, None]
        gap_y = y[cols][None, :] - y[rows][:, None]
        rel_vx = dx[cols][None, :] - dx[rows][:, None]
        rel_vy = dy[cols][None, :] - dy[rows][:, None]

        t_lo, t_hi = pair_interval(gap_x, gap_y, rel_vx, rel_vy, mode)
        t_eff, open_window = _window(t_lo, t_hi, mode)

        # Positional altitude mask (no float recomputation) + self mask.
        pos = np.arange(cb, ce, dtype=np.int64)[None, :]
        cand = (
            (pos >= begin_s[s:e, None])
            & (pos < end_s[s:e, None])
            & (cols[None, :] != rows[:, None])
        )

        conflict = (
            open_window & (t_eff < C.PROJECTION_HORIZON_PERIODS) & cand
        )
        stats.conflicts += int(np.count_nonzero(conflict))

        critical = conflict & (t_eff < C.TIME_TILL_SAFE_PERIODS)
        stats.critical_conflicts += int(np.count_nonzero(critical))
        stats.critical_per_aircraft[rows] = np.count_nonzero(critical, axis=1)

        t = np.where(critical, t_eff, _INF)
        row_min = t.min(axis=1)
        hit = row_min < C.TIME_TILL_SAFE_PERIODS
        if np.any(hit):
            # detect() takes argmin over the *original* index order; in
            # the alt-sorted layout that is the smallest original id
            # among the columns achieving the (bitwise equal) minimum.
            partner = np.where(t == row_min[:, None], cols[None, :], n).min(
                axis=1
            )
            idx = rows[hit]
            fleet.time_till[idx] = row_min[hit]
            fleet.col_with[idx] = partner[hit]
            fleet.col[idx] = 1

    stats.flagged_aircraft = int(np.count_nonzero(fleet.col))
    _prune_span("detect", n, stats.pairs_checked, stats.pairs_in_altitude_band)
    return stats


def _has_critical(
    fleet: FleetState,
    index: AltitudeBandIndex,
    i: int,
    dxi: float,
    dyi: float,
    mode: DetectionMode,
    threshold: float = C.TIME_TILL_SAFE_PERIODS,
) -> Tuple[bool, int]:
    """Pruned existence test: does ``i`` (at the given velocity) have a
    critical conflict?  Returns ``(answer, candidates_tested)``.

    Equivalent to ``earliest_critical(...) is not None``: the altitude
    window is exact; the per-axis boxes are conservative (a critical
    conflict needs ``|gap| <~ band + |rel_v| * threshold`` per axis, and
    ``|rel_v| <= s_i + s_max``); survivors get the exact pair test on
    the same float operands as ``conflict_row``.
    """
    assert threshold <= C.PROJECTION_HORIZON_PERIODS
    s, e = int(index.begin[i]), int(index.end[i])
    xi = float(fleet.x[i])
    yi = float(fleet.y[i])
    speed_i = float(np.hypot(dxi, dyi))
    w = (
        C.COLLISION_BAND_TOTAL_NM + (speed_i + index.max_speed) * threshold
    ) * (1.0 + _WINDOW_SLACK)
    order = index.order
    tested = 0
    for cs in range(s, e, _QUERY_CHUNK):
        ce = min(cs + _QUERY_CHUNK, e)
        box = (np.abs(index.x_sorted[cs:ce] - xi) < w) & (
            np.abs(index.y_sorted[cs:ce] - yi) < w
        )
        if not box.any():
            continue
        cand = order[cs:ce][box]
        cand = cand[cand != i]
        if cand.size == 0:
            continue
        tested += int(cand.size)
        gap_x = fleet.x[cand] - xi
        gap_y = fleet.y[cand] - yi
        rel_vx = fleet.dx[cand] - dxi
        rel_vy = fleet.dy[cand] - dyi
        t_lo, t_hi = pair_interval(gap_x, gap_y, rel_vx, rel_vy, mode)
        t_eff, open_window = _window(t_lo, t_hi, mode)
        # threshold <= horizon, so (t_eff < threshold) subsumes the
        # horizon test; the altitude gate is the window membership.
        if np.any(open_window & (t_eff < threshold)):
            return True, tested
    return False, tested


def resolve_pruned(
    fleet: FleetState,
    mode: DetectionMode = DetectionMode.SIGNED,
    *,
    index: Optional[AltitudeBandIndex] = None,
):
    """Task-3 pass with pruned conflict re-verification.

    Runs the exact :func:`repro.core.resolution.resolve` state machine
    (same trial order, same commits, same stats) but answers each
    "does a critical conflict exist?" re-check through the altitude
    window + per-axis boxes instead of a full ``conflict_row`` sweep.
    """
    from .resolution import resolve

    if index is None:
        index = AltitudeBandIndex(fleet)
    flagged = int(np.count_nonzero(fleet.col == 1))
    counters = {"queries": 0, "tested": 0}

    def critical_exists(i: int, dxi: float, dyi: float) -> bool:
        answer, tested = _has_critical(fleet, index, i, dxi, dyi, mode)
        counters["queries"] += 1
        counters["tested"] += tested
        return answer

    stats = resolve(fleet, mode, critical_exists=critical_exists)
    _prune_span(
        "resolve",
        fleet.n,
        counters["queries"] * max(0, fleet.n - 1),
        counters["tested"],
    )
    del flagged
    return stats


def detect_and_resolve_pruned(
    fleet: FleetState,
    mode: DetectionMode = DetectionMode.SIGNED,
):
    """The fused ``CheckCollisionPath`` over pruned candidates.

    One :class:`AltitudeBandIndex` serves both passes: altitudes and
    positions are never mutated by Tasks 2/3, and the index's speed
    bound tolerates resolution's heading commits (rotations preserve
    speed to a few ulps, far inside the window slack).
    """
    index = AltitudeBandIndex(fleet)
    det = detect_pruned(fleet, mode, index=index)
    res = resolve_pruned(fleet, mode, index=index)
    return det, res
