"""Core ATM algorithms and data structures (the paper's Sections 3-5).

This package is the architecture-independent reference: the airfield
setup, the radar simulation, and the three compute-intensive ATM tasks —
Tracking & Correlation (Task 1), Collision Detection (Task 2) and
Collision Resolution (Task 3) — together with the hard-deadline major
cycle that schedules them.
"""

from . import constants
from .canonical import canonical_json, canonicalize, fingerprint_of
from .collision import DetectionMode, DetectionStats, detect
from .radar import generate_radar_frame
from .resolution import ResolutionStats, detect_and_resolve, resolve
from .scheduler import PeriodRecord, ScheduleResult, run_schedule
from .setup import setup_flight
from .simulation import Simulation
from .tracking import TrackingStats, correlate
from .types import FleetState, RadarFrame, TaskTiming, TimingBreakdown

__all__ = [
    "constants",
    "canonicalize",
    "canonical_json",
    "fingerprint_of",
    "DetectionMode",
    "DetectionStats",
    "detect",
    "generate_radar_frame",
    "ResolutionStats",
    "detect_and_resolve",
    "resolve",
    "PeriodRecord",
    "ScheduleResult",
    "run_schedule",
    "setup_flight",
    "Simulation",
    "TrackingStats",
    "correlate",
    "FleetState",
    "RadarFrame",
    "TaskTiming",
    "TimingBreakdown",
]
