"""Hardware design-space search over the parameterized device models.

The paper compares seven *fixed* configurations; this package turns the
device tables behind them into a declarative, searchable
:class:`~repro.search.space.DesignSpace` (per-parameter grids plus
lumos-style area/power/tech-node budgets) and drives three seeded
searchers — random, genetic, successive halving — through the existing
sweep harness.  Every candidate is just a fresh
``Backend.describe()`` fingerprint, so the result cache, the functional
trace tier and the sweep journal all work unchanged; the seven paper
configs are fixed points of the space (see ``tests/search``).

See docs/search.md for the user-level story.
"""

from .space import (
    Budget,
    DesignPoint,
    DesignSpace,
    Parameter,
    backend_from_spec,
    candidate_area_mm2,
    candidate_power_w,
    paper_points,
    space_for,
)
from .evaluate import CandidateEvaluator, Evaluation, OBJECTIVES
from .searchers import (
    SEARCHERS,
    SearchOutcome,
    genetic_search,
    random_search,
    successive_halving_search,
)
from .runner import SearchSpec, run_search

__all__ = [
    "Budget",
    "DesignPoint",
    "DesignSpace",
    "Parameter",
    "backend_from_spec",
    "candidate_area_mm2",
    "candidate_power_w",
    "paper_points",
    "space_for",
    "CandidateEvaluator",
    "Evaluation",
    "OBJECTIVES",
    "SEARCHERS",
    "SearchOutcome",
    "genetic_search",
    "random_search",
    "successive_halving_search",
    "SearchSpec",
    "run_search",
]
