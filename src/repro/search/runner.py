"""Search runs: spec in, canonical (byte-reproducible) result out.

A :class:`SearchSpec` is the complete, serializable description of one
search — family, base, grids, budget, searcher, objective, seeds,
fleet-size axis — and :func:`run_search` is a pure function of it plus
the execution environment (jobs / cache / journal), returning a result
dict whose :func:`~repro.core.canonical.canonical_json` bytes carry no
wall-clock state.  The CI ``search`` job asserts exactly that: two runs
of the same spec produce identical trajectory bytes.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from .. import __version__
from ..core.canonical import canonical_json
from ..core.collision import DetectionMode
from ..harness.parallel import sweep_options
from .evaluate import OBJECTIVES, CandidateEvaluator, Evaluation
from .searchers import SEARCHERS, SearchOutcome
from .space import Budget, DesignSpace, space_for

__all__ = ["SearchSpec", "run_search", "render_search", "load_search_spec"]


@dataclass(frozen=True)
class SearchSpec:
    """Everything that determines a search run's results."""

    space: DesignSpace
    searcher: str = "genetic"
    objective: str = "modelled_time"
    #: seed of the searcher's private RNG.
    seed: int = 2018
    #: budget of *new* candidate evaluations (memo hits are free).
    max_evaluations: int = 24
    #: fleet-size axis each candidate is swept over.
    ns: Tuple[int, ...] = (96, 480, 960)
    #: tracking periods per sweep cell.
    periods: int = 3
    #: seed of the simulated fleet (the paper's 2018).
    sweep_seed: int = 2018
    mode: DetectionMode = DetectionMode.SIGNED
    #: also evaluate the family's named (paper) configs for comparison.
    compare_paper: bool = True

    def __post_init__(self) -> None:
        if self.searcher not in SEARCHERS:
            known = ", ".join(sorted(SEARCHERS))
            raise KeyError(f"unknown searcher {self.searcher!r}; known: {known}")
        if self.objective not in OBJECTIVES:
            known = ", ".join(sorted(OBJECTIVES))
            raise KeyError(f"unknown objective {self.objective!r}; known: {known}")
        if self.max_evaluations < 1:
            raise ValueError("max_evaluations must be at least 1")
        if not self.ns:
            raise ValueError("need at least one fleet size")
        object.__setattr__(self, "ns", tuple(int(n) for n in self.ns))
        object.__setattr__(self, "mode", DetectionMode(self.mode))

    def to_dict(self) -> Dict[str, Any]:
        return {
            "space": self.space.to_dict(),
            "searcher": self.searcher,
            "objective": self.objective,
            "seed": self.seed,
            "max_evaluations": self.max_evaluations,
            "ns": list(self.ns),
            "periods": self.periods,
            "sweep_seed": self.sweep_seed,
            "mode": self.mode.value,
            "compare_paper": self.compare_paper,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SearchSpec":
        return cls(
            space=DesignSpace.from_dict(data["space"]),
            searcher=data.get("searcher", "genetic"),
            objective=data.get("objective", "modelled_time"),
            seed=int(data.get("seed", 2018)),
            max_evaluations=int(data.get("max_evaluations", 24)),
            ns=tuple(data.get("ns", (96, 480, 960))),
            periods=int(data.get("periods", 3)),
            sweep_seed=int(data.get("sweep_seed", 2018)),
            mode=DetectionMode(data.get("mode", "signed")),
            compare_paper=bool(data.get("compare_paper", True)),
        )


def load_search_spec(path: str) -> SearchSpec:
    """Parse a JSON spec file (the ``atm-repro search --spec`` format)."""
    with open(path, "r", encoding="utf-8") as fh:
        return SearchSpec.from_dict(json.load(fh))


def _dominates_pair(
    time_a: float, area_a: float, time_b: float, area_b: float
) -> bool:
    return (
        time_a <= time_b
        and area_a <= area_b
        and (time_a < time_b or area_a < area_b)
    )


def run_search(
    spec: SearchSpec,
    *,
    jobs: Optional[int] = None,
    cache: Any = None,
    traces: Any = None,
    journal: Any = None,
) -> Dict[str, Any]:
    """Execute one search run and return its canonical result dict.

    ``jobs``/``cache``/``traces``/``journal`` configure the ambient
    sweep environment for every candidate evaluation; the search logic
    itself is strictly sequential in the parent process, so the
    trajectory is a pure function of the spec (the jobs=1 vs jobs=N and
    ``--resume`` property tests pin this).
    """
    evaluator = CandidateEvaluator(
        spec.space,
        objective=spec.objective,
        ns=spec.ns,
        seed=spec.sweep_seed,
        periods=spec.periods,
        mode=spec.mode,
        searcher=spec.searcher,
    )
    search_fn = SEARCHERS[spec.searcher]
    with sweep_options(jobs=jobs, cache=cache, traces=traces, journal=journal):
        outcome: SearchOutcome = search_fn(
            spec.space,
            evaluator,
            seed=spec.seed,
            max_evaluations=spec.max_evaluations,
        )
        paper: List[Evaluation] = []
        if spec.compare_paper:
            paper = _paper_evaluations(spec)
    result: Dict[str, Any] = {
        "kind": "atm-search-result",
        "library_version": __version__,
        "spec": spec.to_dict(),
        "best": outcome.best.to_dict() if outcome.best is not None else None,
        "trajectory": [ev.to_dict() for ev in outcome.trajectory],
        "best_fitness_curve": list(outcome.best_fitness_curve),
        "rounds": outcome.rounds,
        "evaluated": sum(1 for ev in outcome.trajectory if ev.evaluated),
        "rejected": sum(1 for ev in outcome.trajectory if not ev.evaluated),
        "pareto": [ev.to_dict() for ev in evaluator.pareto_front()],
        "paper": [ev.to_dict() for ev in paper],
        "dominates_paper": _dominance(outcome.best, paper),
    }
    return result


def _paper_evaluations(spec: SearchSpec) -> List[Evaluation]:
    """The family's named configs, judged on the same axis, unbudgeted.

    A tight search budget must not reject the reference hardware — the
    comparison needs the paper devices' actual time/area coordinates —
    so they are evaluated through a budget-free copy of the space.
    """
    free_space = dataclasses.replace(
        spec.space, budget=Budget(tech_nm=spec.space.budget.tech_nm)
    )
    evaluator = CandidateEvaluator(
        free_space,
        objective=spec.objective,
        ns=spec.ns,
        seed=spec.sweep_seed,
        periods=spec.periods,
        mode=spec.mode,
        searcher="paper",
    )
    out = []
    from .space import _family  # family base table

    for base_key in sorted(_family(spec.space.family).bases):
        point = dataclasses.replace(free_space, base=base_key).base_point()
        out.append(evaluator.evaluate(point))
    return out


def _dominance(
    best: Optional[Evaluation], paper: Sequence[Evaluation]
) -> Dict[str, bool]:
    """base key -> does the best candidate dominate it on (time, area)."""
    out: Dict[str, bool] = {}
    if best is None or not best.evaluated:
        return {ev.point.base: False for ev in paper}
    for ev in paper:
        if not ev.evaluated:
            out[ev.point.base] = False
            continue
        out[ev.point.base] = _dominates_pair(
            best.modelled_time_s, best.area_mm2, ev.modelled_time_s, ev.area_mm2
        )
    return out


# ---------------------------------------------------------------------------
# terminal rendering
# ---------------------------------------------------------------------------


def _fmt_point(entry: Mapping[str, Any]) -> str:
    params = entry["point"].get("params", {})
    inner = ", ".join(f"{k}={v}" for k, v in sorted(params.items()))
    return f"{entry['point']['family']}:{entry['point']['base']}" + (
        f" {{{inner}}}" if inner else ""
    )


def render_search(result: Mapping[str, Any]) -> str:
    """Human-readable summary table of one search result."""
    spec = result["spec"]
    lines = [
        f"search: {spec['searcher']} over {spec['space']['family']}"
        f" (base {spec['space']['base']}), objective {spec['objective']}",
        f"seed {spec['seed']}, {result['evaluated']} evaluated,"
        f" {result['rejected']} budget-rejected, {result['rounds']} round(s)",
        "",
    ]
    best = result.get("best")
    if best is None:
        lines.append("no feasible candidate found")
    else:
        lines.append(
            f"best [{best['key']}]: {_fmt_point(best)}\n"
            f"  fitness={best['fitness']:.6g}"
            f"  modelled_time={best['modelled_time_s']:.6g}s"
            f"  worst_margin={best['worst_margin_s']:.6g}s"
            f"  area={best['area_mm2']:.1f}mm2  power={best['power_w']:.1f}W"
        )
    pareto = result.get("pareto") or []
    if pareto:
        lines.append("")
        lines.append(f"pareto front (time x area), {len(pareto)} point(s):")
        for entry in pareto:
            lines.append(
                f"  {entry['modelled_time_s']:>12.6g}s"
                f" {entry['area_mm2']:>8.1f}mm2  {_fmt_point(entry)}"
            )
    paper = result.get("paper") or []
    if paper:
        lines.append("")
        lines.append("paper reference configs on the same axis:")
        dom = result.get("dominates_paper", {})
        for entry in paper:
            mark = "dominated by best" if dom.get(entry["point"]["base"]) else "-"
            lines.append(
                f"  {entry['modelled_time_s']:>12.6g}s"
                f" {entry['area_mm2']:>8.1f}mm2  {_fmt_point(entry)}  [{mark}]"
            )
    return "\n".join(lines) + "\n"
