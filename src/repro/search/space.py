"""Declarative design spaces over the device configuration tables.

A :class:`DesignSpace` names one architecture *family* (``cuda``,
``simd``, ``ap``, ``mimd``, ``vector``), a *base* named configuration
whose non-searched fields are inherited, a set of :class:`Parameter`
grids, and a :class:`Budget` of lumos-style area/power limits at a
technology node.  A :class:`DesignPoint` is one assignment of values to
the searched parameters; its :meth:`~DesignPoint.spec` string round-trips
through :func:`~repro.backends.registry.resolve_backend`, so candidate
cells are sharded to pool workers, cached and journaled exactly like the
named platforms.

The paper's own configurations are *fixed points* of the space: a point
whose parameters all equal the base values builds the registered named
config itself — same key, same ``describe()``, same fingerprint — which
is what the differential tests in ``tests/search`` pin down.

Area and power come from deliberately simple first-order models
(documented per family below), normalized at a 16 nm reference node and
scaled lumos-style: area by ``(tech/16)**2``, power by ``tech/16``.
They exist to make budget constraints *meaningful and monotone* — more
cores cost more area — not to predict silicon.
"""

from __future__ import annotations

import dataclasses
import json
import math
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from ..core.canonical import canonical_json, fingerprint_of

__all__ = [
    "Parameter",
    "Budget",
    "DesignPoint",
    "DesignSpace",
    "FAMILIES",
    "backend_from_spec",
    "candidate_area_mm2",
    "candidate_power_w",
    "paper_points",
    "space_for",
]

#: reference technology node (nm) the area/power coefficients are
#: calibrated at.
REFERENCE_TECH_NM = 16.0

#: array modules an AP candidate is provisioned with (the fleet-sized
#: STARAN convention of the paper's sources sizes modules to the fleet;
#: the budget model charges a fixed provisioned module count).
AP_BUDGET_MODULES = 16

_SPEC_PREFIX = "search:"


@dataclass(frozen=True)
class Parameter:
    """One searchable device parameter: a finite ordered value grid."""

    name: str
    values: Tuple[Any, ...]

    def __post_init__(self) -> None:
        if not self.values:
            raise ValueError(f"parameter {self.name!r}: empty value grid")
        if len(set(self.values)) != len(self.values):
            raise ValueError(f"parameter {self.name!r}: duplicate grid values")

    @classmethod
    def range(
        cls, name: str, lo: float, hi: float, step: float
    ) -> "Parameter":
        """An inclusive arithmetic grid ``lo, lo+step, ... <= hi``."""
        if step <= 0:
            raise ValueError(f"parameter {name!r}: step must be positive")
        if hi < lo:
            raise ValueError(f"parameter {name!r}: hi < lo")
        count = int(math.floor((hi - lo) / step + 1e-9)) + 1
        values = tuple(lo + i * step for i in range(count))
        if all(float(v).is_integer() for v in values):
            values = tuple(int(v) for v in values)
        return cls(name=name, values=values)

    def to_dict(self) -> Dict[str, Any]:
        return {"name": self.name, "values": list(self.values)}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "Parameter":
        if "values" in data:
            return cls(name=data["name"], values=tuple(data["values"]))
        return cls.range(data["name"], data["lo"], data["hi"], data["step"])


@dataclass(frozen=True)
class Budget:
    """Lumos-style physical budget a candidate must fit inside."""

    #: maximum die area in mm^2 (None = unconstrained).
    area_mm2: Optional[float] = None
    #: maximum power draw in watts (None = unconstrained).
    power_w: Optional[float] = None
    #: technology node in nm; scales the 16 nm-referenced models.
    tech_nm: float = REFERENCE_TECH_NM

    def __post_init__(self) -> None:
        if self.tech_nm <= 0:
            raise ValueError(f"budget: tech_nm must be positive, got {self.tech_nm!r}")
        for label, value in (("area_mm2", self.area_mm2), ("power_w", self.power_w)):
            if value is not None and value <= 0:
                raise ValueError(f"budget: {label} must be positive, got {value!r}")

    @property
    def area_scale(self) -> float:
        return (self.tech_nm / REFERENCE_TECH_NM) ** 2

    @property
    def power_scale(self) -> float:
        return self.tech_nm / REFERENCE_TECH_NM

    def violations(self, area_mm2: float, power_w: float) -> List[str]:
        """Constraint names the (already tech-scaled) estimates violate."""
        out = []
        if self.area_mm2 is not None and area_mm2 > self.area_mm2:
            out.append("area")
        if self.power_w is not None and power_w > self.power_w:
            out.append("power")
        return out

    def to_dict(self) -> Dict[str, Any]:
        return {
            "area_mm2": self.area_mm2,
            "power_w": self.power_w,
            "tech_nm": self.tech_nm,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "Budget":
        return cls(
            area_mm2=data.get("area_mm2"),
            power_w=data.get("power_w"),
            tech_nm=data.get("tech_nm", REFERENCE_TECH_NM),
        )


# ---------------------------------------------------------------------------
# architecture families
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class _Family:
    """How one architecture package plugs into the design space."""

    name: str
    #: base-key -> named config instance.
    bases: Mapping[str, Any]
    default_base: str
    #: config fields a DesignSpace may search over.
    searchable: Tuple[str, ...]
    #: config -> fresh Backend instance.
    build_backend: Callable[[Any], Any]
    #: config -> die area estimate, mm^2 at the 16 nm reference node.
    area_mm2: Callable[[Any], float]
    #: config -> power estimate, watts at the 16 nm reference node.
    power_w: Callable[[Any], float]
    #: (base config, merged field dict) -> derived config; hook for
    #: families with coupled fields (the SIMD ring network size).
    derive: Optional[Callable[[Any, Dict[str, Any]], Any]] = None


def _cuda_family() -> _Family:
    from ..cuda.backend import CudaBackend
    from ..cuda.device import DEVICES

    def area(dev) -> float:
        # SM tile + per-core lane area + memory-interface area per GB/s.
        return (
            dev.sm_count * (3.0 + 0.055 * dev.cores_per_sm)
            + 0.10 * dev.mem_bandwidth_gbs
        )

    def power(dev) -> float:
        # dynamic core power ~ cores x clock, plus DRAM interface power.
        return (
            0.045 * dev.sm_count * dev.cores_per_sm * dev.core_clock_ghz
            + 0.08 * dev.mem_bandwidth_gbs
        )

    return _Family(
        name="cuda",
        bases=DEVICES,
        default_base="titan-x-pascal",
        searchable=("sm_count", "cores_per_sm", "core_clock_ghz", "mem_bandwidth_gbs"),
        build_backend=CudaBackend,
        area_mm2=area,
        power_w=power,
    )


def _simd_family() -> _Family:
    from ..simd.backend import SimdBackend
    from ..simd.clearspeed import CSX600, CSX600_DUAL
    from ..simd.network import RingNetwork

    def derive(base, fields: Dict[str, Any]):
        # The ring network is sized to the PE array; SimdConfig's own
        # validation rejects a mismatch, so resizing n_pes rebuilds it.
        fields["network"] = dataclasses.replace(
            base.network, n_pes=fields["n_pes"]
        )
        return dataclasses.replace(base, **fields)

    return _Family(
        name="simd",
        bases={c.key: c for c in (CSX600, CSX600_DUAL)},
        default_base=CSX600.key,
        searchable=("n_pes", "clock_hz"),
        build_backend=SimdBackend,
        # control unit + per-PE tile; bit-serial PEs are tiny but the
        # clock drives dynamic power linearly.
        area_mm2=lambda c: 8.0 + 0.35 * c.n_pes,
        power_w=lambda c: 0.4e-9 * c.n_pes * c.clock_hz,
        derive=derive,
    )


def _ap_family() -> _Family:
    from ..ap.backend import ApBackend
    from ..ap.staran import STARAN, STARAN_1972

    return _Family(
        name="ap",
        bases={c.key: c for c in (STARAN, STARAN_1972)},
        default_base=STARAN.key,
        searchable=("pes_per_module", "clock_hz"),
        build_backend=ApBackend,
        # AP_BUDGET_MODULES provisioned modules of bit-serial words +
        # multi-dimensional access memory.
        area_mm2=lambda c: 4.0 + 0.012 * c.pes_per_module * AP_BUDGET_MODULES,
        power_w=lambda c: 0.15e-9 * c.pes_per_module * AP_BUDGET_MODULES * c.clock_hz,
    )


def _mimd_family() -> _Family:
    from ..mimd.backend import MimdBackend
    from ..mimd.xeon import XEON_8, XEON_16

    return _Family(
        name="mimd",
        bases={c.key: c for c in (XEON_16, XEON_8)},
        default_base=XEON_16.key,
        searchable=("n_cores", "clock_hz", "ipc"),
        build_backend=MimdBackend,
        # a big out-of-order core is area-expensive, and wider issue
        # (higher sustained ipc) costs superlinear area; model linearly.
        area_mm2=lambda c: 10.0 + c.n_cores * (8.0 + 4.0 * c.ipc),
        power_w=lambda c: 3.5e-9 * c.n_cores * c.clock_hz * c.ipc,
    )


def _vector_family() -> _Family:
    from ..vector.backend import VectorBackend
    from ..vector.machine import AVX512_WORKSTATION, XEON_PHI_7250

    return _Family(
        name="vector",
        bases={c.key: c for c in (XEON_PHI_7250, AVX512_WORKSTATION)},
        default_base=XEON_PHI_7250.key,
        searchable=("n_cores", "lanes_per_core", "clock_hz", "mem_bandwidth_gbs"),
        build_backend=VectorBackend,
        area_mm2=lambda c: 8.0 + c.n_cores * (4.0 + 0.45 * c.lanes_per_core),
        power_w=lambda c: 0.14e-9 * c.n_cores * c.lanes_per_core * c.clock_hz,
    )


_FAMILY_BUILDERS: Dict[str, Callable[[], _Family]] = {
    "cuda": _cuda_family,
    "simd": _simd_family,
    "ap": _ap_family,
    "mimd": _mimd_family,
    "vector": _vector_family,
}

_FAMILY_CACHE: Dict[str, _Family] = {}


def _family(name: str) -> _Family:
    try:
        fam = _FAMILY_CACHE.get(name)
        if fam is None:
            fam = _FAMILY_CACHE[name] = _FAMILY_BUILDERS[name]()
        return fam
    except KeyError:
        known = ", ".join(sorted(_FAMILY_BUILDERS))
        raise KeyError(f"unknown family {name!r}; known families: {known}") from None


#: public read-only view of the family names.
FAMILIES: Tuple[str, ...] = tuple(sorted(_FAMILY_BUILDERS))


# ---------------------------------------------------------------------------
# design points
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class DesignPoint:
    """One candidate configuration: family + base + parameter overrides.

    ``params`` holds only the *searched* fields, as a sorted tuple of
    ``(name, value)`` pairs so points hash and compare by value.
    """

    family: str
    base: str
    params: Tuple[Tuple[str, Any], ...] = ()

    def __post_init__(self) -> None:
        fam = _family(self.family)
        if self.base not in fam.bases:
            known = ", ".join(sorted(fam.bases))
            raise KeyError(
                f"unknown {self.family} base {self.base!r}; known: {known}"
            )
        object.__setattr__(self, "params", tuple(sorted(self.params)))
        names = [n for n, _ in self.params]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate parameter in point: {names}")
        for name, _ in self.params:
            if name not in fam.searchable:
                raise KeyError(
                    f"{self.family} has no searchable parameter {name!r};"
                    f" searchable: {', '.join(fam.searchable)}"
                )

    # -- identity ------------------------------------------------------

    @property
    def key(self) -> str:
        """Stable short identifier; effectively-equal points share it.

        Computed over the *overrides* (searched fields that differ from
        the base), so explicitly pinning a parameter at its base value
        yields the same key as leaving it unspecified.
        """
        digest = fingerprint_of(
            {"family": self.family, "base": self.base, "params": self.overrides()}
        )
        return f"pt-{digest[:12]}"

    def spec(self) -> str:
        """The ``search:`` spec string `resolve_backend` understands."""
        return _SPEC_PREFIX + canonical_json(
            {"family": self.family, "base": self.base, "params": dict(self.params)}
        )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "family": self.family,
            "base": self.base,
            "params": dict(self.params),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "DesignPoint":
        return cls(
            family=data["family"],
            base=data["base"],
            params=tuple(dict(data.get("params", {})).items()),
        )

    # -- realization ---------------------------------------------------

    def overrides(self) -> Dict[str, Any]:
        """The searched fields that differ from the base config."""
        base_cfg = _family(self.family).bases[self.base]
        return {
            name: value
            for name, value in self.params
            if value != getattr(base_cfg, name)
        }

    def build_config(self) -> Any:
        """The config dataclass this point denotes.

        A point whose parameters all equal the base values returns the
        registered named config itself — identical key, name and
        fingerprint — making the paper's configurations exact fixed
        points of the space (the differential tests pin this).
        """
        fam = _family(self.family)
        base_cfg = fam.bases[self.base]
        fields = self.overrides()
        if not fields:
            return base_cfg
        merged = dict(fields)
        merged["key"] = self.key
        merged["name"] = (
            f"{base_cfg.name} [search {self.key}: "
            + ", ".join(f"{k}={v}" for k, v in sorted(fields.items()))
            + "]"
        )
        if fam.derive is not None:
            full = {
                name: merged.get(name, getattr(base_cfg, name))
                for name in (f.name for f in dataclasses.fields(base_cfg))
            }
            return fam.derive(base_cfg, full)
        return dataclasses.replace(base_cfg, **merged)

    def build(self) -> Any:
        """A fresh backend instance for this candidate."""
        fam = _family(self.family)
        return fam.build_backend(self.build_config())

    def area_mm2(self, budget: Optional[Budget] = None) -> float:
        """Die-area estimate, scaled to the budget's tech node."""
        fam = _family(self.family)
        scale = budget.area_scale if budget is not None else 1.0
        return fam.area_mm2(self.build_config()) * scale

    def power_w(self, budget: Optional[Budget] = None) -> float:
        """Power estimate, scaled to the budget's tech node."""
        fam = _family(self.family)
        scale = budget.power_scale if budget is not None else 1.0
        return fam.power_w(self.build_config()) * scale


def candidate_area_mm2(point: DesignPoint, budget: Optional[Budget] = None) -> float:
    """Module-level alias of :meth:`DesignPoint.area_mm2`."""
    return point.area_mm2(budget)


def candidate_power_w(point: DesignPoint, budget: Optional[Budget] = None) -> float:
    """Module-level alias of :meth:`DesignPoint.power_w`."""
    return point.power_w(budget)


def backend_from_spec(spec: str) -> Any:
    """Resolve a ``search:{json}`` candidate spec to a fresh backend.

    This is the hook :func:`repro.backends.registry.resolve_backend`
    dispatches to, which is what lets pool workers, the result cache and
    the sweep journal treat candidates exactly like named platforms.
    """
    if not spec.startswith(_SPEC_PREFIX):
        raise ValueError(f"not a search spec: {spec!r}")
    try:
        payload = json.loads(spec[len(_SPEC_PREFIX):])
    except json.JSONDecodeError as exc:
        raise ValueError(f"malformed search spec {spec!r}: {exc}") from None
    return DesignPoint.from_dict(payload).build()


# ---------------------------------------------------------------------------
# the space
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class DesignSpace:
    """A searchable family x base x parameter-grid x budget box."""

    family: str
    base: str
    parameters: Tuple[Parameter, ...]
    budget: Budget = Budget()

    def __post_init__(self) -> None:
        fam = _family(self.family)
        if self.base not in fam.bases:
            known = ", ".join(sorted(fam.bases))
            raise KeyError(
                f"unknown {self.family} base {self.base!r}; known: {known}"
            )
        names = [p.name for p in self.parameters]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate parameters in space: {names}")
        for name in names:
            if name not in fam.searchable:
                raise KeyError(
                    f"{self.family} has no searchable parameter {name!r};"
                    f" searchable: {', '.join(fam.searchable)}"
                )

    @property
    def size(self) -> int:
        """Number of grid points in the box."""
        out = 1
        for p in self.parameters:
            out *= len(p.values)
        return out

    def point(self, **values: Any) -> DesignPoint:
        """The design point with the given parameter assignment.

        Unspecified parameters take the base config's value; specified
        ones must lie on their grid.
        """
        by_name = {p.name: p for p in self.parameters}
        params = []
        for name, value in values.items():
            p = by_name.get(name)
            if p is None:
                raise KeyError(
                    f"space does not search {name!r};"
                    f" searched: {', '.join(by_name) or '(none)'}"
                )
            if value not in p.values:
                raise ValueError(
                    f"{name}={value!r} is off the grid {p.values}"
                )
            params.append((name, value))
        return DesignPoint(family=self.family, base=self.base, params=tuple(params))

    def base_point(self) -> DesignPoint:
        """The base named config, as a (parameter-free) point."""
        return DesignPoint(family=self.family, base=self.base)

    def random_point(self, rng) -> DesignPoint:
        """A uniform draw from the grid (deterministic given ``rng``)."""
        params = tuple(
            (p.name, p.values[rng.randrange(len(p.values))])
            for p in self.parameters
        )
        return DesignPoint(family=self.family, base=self.base, params=params)

    def mutate(self, point: DesignPoint, rng, rate: float = 0.25) -> DesignPoint:
        """Re-draw each parameter with probability ``rate``.

        The forced parameter is drawn among those with more than one
        grid value, so at least one parameter always moves (a no-op
        mutation would make the genetic searcher stall on duplicate
        candidates).  Degenerate case: a space whose grids are all
        singletons has a single point, so ``point`` returns unchanged.
        """
        movable = [i for i, p in enumerate(self.parameters) if len(p.values) > 1]
        if not movable:
            return point
        current = dict(point.params)
        forced = movable[rng.randrange(len(movable))]
        params = []
        for i, p in enumerate(self.parameters):
            value = current.get(p.name, self._base_value(p.name))
            if i == forced or rng.random() < rate:
                choices = [v for v in p.values if v != value]
                if choices:
                    value = choices[rng.randrange(len(choices))]
            params.append((p.name, value))
        return DesignPoint(family=self.family, base=self.base, params=tuple(params))

    def crossover(self, a: DesignPoint, b: DesignPoint, rng) -> DesignPoint:
        """Uniform crossover: each parameter from one parent at random."""
        pa, pb = dict(a.params), dict(b.params)
        params = tuple(
            (
                p.name,
                (pa if rng.random() < 0.5 else pb).get(
                    p.name, self._base_value(p.name)
                ),
            )
            for p in self.parameters
        )
        return DesignPoint(family=self.family, base=self.base, params=params)

    def _base_value(self, name: str) -> Any:
        return getattr(_family(self.family).bases[self.base], name)

    def check_budget(self, point: DesignPoint) -> List[str]:
        """Constraint names ``point`` violates (empty = admissible)."""
        return self.budget.violations(
            point.area_mm2(self.budget), point.power_w(self.budget)
        )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "family": self.family,
            "base": self.base,
            "parameters": [p.to_dict() for p in self.parameters],
            "budget": self.budget.to_dict(),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "DesignSpace":
        return cls(
            family=data["family"],
            base=data.get("base") or _family(data["family"]).default_base,
            parameters=tuple(
                Parameter.from_dict(p) for p in data.get("parameters", [])
            ),
            budget=Budget.from_dict(data.get("budget", {})),
        )


# ---------------------------------------------------------------------------
# paper fixed points
# ---------------------------------------------------------------------------

#: the seven configurations the paper's comparison rests on (the six
#: platforms of the figures plus the §7.2 vector machine).
PAPER_POINTS: Tuple[Tuple[str, str], ...] = (
    ("cuda", "geforce-9800-gt"),
    ("cuda", "gtx-880m"),
    ("cuda", "titan-x-pascal"),
    ("ap", "staran"),
    ("simd", "clearspeed-csx600"),
    ("mimd", "xeon-16"),
    ("vector", "xeon-phi-7250"),
)


def paper_points() -> List[DesignPoint]:
    """The seven paper configurations expressed as design points."""
    return [DesignPoint(family=f, base=b) for f, b in PAPER_POINTS]


def space_for(
    family: str,
    *,
    base: Optional[str] = None,
    budget: Optional[Budget] = None,
    parameters: Optional[Sequence[Parameter]] = None,
) -> DesignSpace:
    """A ready-made space searching every parameter of ``family``.

    The default grids bracket the named configs with a handful of
    steps per axis — small enough for smoke searches, wide enough that
    the searchers have real decisions to make.
    """
    fam = _family(family)
    base_key = base or fam.default_base
    if parameters is None:
        parameters = _default_parameters(family)
    return DesignSpace(
        family=family,
        base=base_key,
        parameters=tuple(parameters),
        budget=budget or Budget(),
    )


def _default_parameters(family: str) -> List[Parameter]:
    if family == "cuda":
        return [
            Parameter("sm_count", (2, 4, 8, 14, 20, 28)),
            Parameter("cores_per_sm", (8, 32, 64, 96, 128, 192)),
            Parameter("core_clock_ghz", (0.6, 0.954, 1.2, 1.417, 1.5)),
            Parameter("mem_bandwidth_gbs", (57.6, 160.0, 320.0, 480.0)),
        ]
    if family == "simd":
        return [
            Parameter("n_pes", (48, 96, 192, 384, 768)),
            Parameter("clock_hz", (125e6, 250e6, 500e6, 1e9)),
        ]
    if family == "ap":
        return [
            Parameter("pes_per_module", (128, 256, 512, 1024)),
            Parameter("clock_hz", (5e6, 20e6, 40e6, 80e6)),
        ]
    if family == "mimd":
        return [
            Parameter("n_cores", (4, 8, 16, 32, 64)),
            Parameter("clock_hz", (1.2e9, 2.4e9, 3.2e9)),
            Parameter("ipc", (0.5, 1.0, 2.0)),
        ]
    if family == "vector":
        return [
            Parameter("n_cores", (8, 16, 34, 68)),
            Parameter("lanes_per_core", (4, 8, 16)),
            Parameter("clock_hz", (1.4e9, 2.2e9, 3.0e9)),
            Parameter("mem_bandwidth_gbs", (80.0, 200.0, 400.0)),
        ]
    raise KeyError(f"unknown family {family!r}")
