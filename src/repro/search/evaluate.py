"""Candidate evaluation: budget gate, sweep, objective scalarization.

A :class:`CandidateEvaluator` turns one :class:`~repro.search.space.DesignPoint`
into a scalar fitness (lower is better) by running the candidate through
the ordinary sweep harness — the same :func:`repro.harness.sweep.sweep`
the report path uses, under whatever ambient
:func:`~repro.harness.parallel.sweep_options` the caller installed, so
``--jobs``, the result cache and the sweep journal all apply to search
evaluations for free.

Budget constraints are checked *before* any sweep work: a candidate that
violates the area or power budget is rejected with
``atm_search_rejected`` counters (zero-initialized at construction, so a
clean run is readable from the metrics snapshot alone) and never touches
the harness.
"""

from __future__ import annotations

import dataclasses
import math
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..core.collision import DetectionMode
from ..core import constants as C
from ..harness.sweep import sweep
from ..obs.metrics import metric_inc, metric_set
from .space import DesignPoint, DesignSpace

__all__ = ["Evaluation", "CandidateEvaluator", "OBJECTIVES", "REJECTED_FITNESS"]

#: fitness assigned to budget-rejected candidates (orders worse than any
#: evaluated candidate, but finite so trajectories stay strict JSON).
REJECTED_FITNESS = 1e30

#: additive penalty for candidates that miss a deadline under the
#: ``smallest_feasible`` objective (dominates any area term).
_INFEASIBLE_PENALTY = 1e9


@dataclass(frozen=True)
class Evaluation:
    """Outcome of judging one candidate (possibly without a sweep)."""

    point: DesignPoint
    fitness: float
    ns: Tuple[int, ...]
    area_mm2: float
    power_w: float
    #: budget constraints violated ("area"/"power"); empty = evaluated.
    rejected: Tuple[str, ...] = ()
    worst_margin_s: Optional[float] = None
    modelled_time_s: Optional[float] = None
    deadline_misses: Optional[int] = None

    @property
    def evaluated(self) -> bool:
        return not self.rejected

    def to_dict(self) -> Dict[str, Any]:
        return {
            "point": self.point.to_dict(),
            "key": self.point.key,
            "fitness": self.fitness,
            "ns": list(self.ns),
            "area_mm2": self.area_mm2,
            "power_w": self.power_w,
            "rejected": list(self.rejected),
            "worst_margin_s": self.worst_margin_s,
            "modelled_time_s": self.modelled_time_s,
            "deadline_misses": self.deadline_misses,
        }


def _objective_worst_margin(ev: "Evaluation") -> float:
    return -ev.worst_margin_s


def _objective_modelled_time(ev: "Evaluation") -> float:
    return ev.modelled_time_s


def _objective_time_area(ev: "Evaluation") -> float:
    return ev.modelled_time_s * ev.area_mm2


def _objective_smallest_feasible(ev: "Evaluation") -> float:
    if ev.worst_margin_s < 0 or ev.deadline_misses:
        return _INFEASIBLE_PENALTY + ev.area_mm2
    return ev.area_mm2


#: objective name -> scalarizer over a sweep-backed Evaluation (lower is
#: better for all of them).
OBJECTIVES = {
    "worst_margin": _objective_worst_margin,
    "modelled_time": _objective_modelled_time,
    "time_area": _objective_time_area,
    "smallest_feasible": _objective_smallest_feasible,
}


def _cell_margins(task1_seconds: Sequence[float], task23_s: float) -> List[float]:
    """Per-period deadline margins of one sweep cell.

    Mirrors :func:`repro.analysis.deadlines.record_cell_metrics`: each
    tracking period budgets Task 1 alone against the half-second
    deadline; the final period is the collision period and budgets
    Task 1 plus the fused Task 2+3.
    """
    margins = [C.PERIOD_SECONDS - float(t) for t in task1_seconds[:-1]]
    if task1_seconds:
        margins.append(C.PERIOD_SECONDS - (float(task1_seconds[-1]) + float(task23_s)))
    return margins


class CandidateEvaluator:
    """Budget-gated, memoized fitness evaluation through the harness."""

    def __init__(
        self,
        space: DesignSpace,
        *,
        objective: str = "modelled_time",
        ns: Sequence[int] = (96, 480, 960),
        seed: int = 2018,
        periods: int = 3,
        mode: DetectionMode = DetectionMode.SIGNED,
        searcher: str = "search",
    ) -> None:
        if objective not in OBJECTIVES:
            known = ", ".join(sorted(OBJECTIVES))
            raise KeyError(f"unknown objective {objective!r}; known: {known}")
        self.space = space
        self.objective = objective
        self.ns = tuple(int(n) for n in ns)
        if not self.ns:
            raise ValueError("need at least one fleet size to evaluate against")
        self.seed = int(seed)
        self.periods = int(periods)
        self.mode = mode
        self.searcher = searcher
        #: evaluations in the order first requested (the trajectory).
        self.trajectory: List[Evaluation] = []
        self.best: Optional[Evaluation] = None
        self._memo: Dict[Tuple[str, Tuple[int, ...]], Evaluation] = {}
        # Counters-with-zeros: a snapshot must answer "how many budget
        # rejections happened" even when the answer is zero.
        for constraint in ("area", "power"):
            metric_inc(
                "atm_search_rejected", 0, searcher=searcher, constraint=constraint
            )
        for outcome in ("evaluated", "rejected", "memoized"):
            metric_inc(
                "atm_search_evaluations", 0, searcher=searcher, outcome=outcome
            )

    # ------------------------------------------------------------------

    def evaluate(
        self, point: DesignPoint, ns: Optional[Sequence[int]] = None
    ) -> Evaluation:
        """Fitness of ``point`` at fidelity ``ns`` (default: full axis).

        Results are memoized by ``(point.key, ns)``; repeated requests —
        a GA re-visiting an elite, a halving rung promoting a survivor —
        return the recorded evaluation without touching the harness.
        """
        ns = self.ns if ns is None else tuple(int(n) for n in ns)
        memo_key = (point.key, ns)
        hit = self._memo.get(memo_key)
        if hit is not None:
            metric_inc(
                "atm_search_evaluations",
                searcher=self.searcher,
                outcome="memoized",
            )
            return hit
        ev = self._judge(point, ns)
        self._memo[memo_key] = ev
        self.trajectory.append(ev)
        # Only full-fidelity evaluations compete for `best`: a halving
        # rung over a prefix of the axis sweeps fewer cells, so its
        # modelled-time fitness is not comparable to the full axis.
        if ev.evaluated and ns == self.ns and (
            self.best is None or self._better(ev, self.best)
        ):
            self.best = ev
            metric_set(
                "atm_search_best_fitness",
                ev.fitness,
                searcher=self.searcher,
                objective=self.objective,
            )
        return ev

    def _better(self, a: Evaluation, b: Evaluation) -> bool:
        """Strictly better: lower fitness, ties broken by point key."""
        if a.fitness != b.fitness:
            return a.fitness < b.fitness
        return a.point.key < b.point.key

    def _judge(self, point: DesignPoint, ns: Tuple[int, ...]) -> Evaluation:
        area = point.area_mm2(self.space.budget)
        power = point.power_w(self.space.budget)
        violated = tuple(self.space.budget.violations(area, power))
        if violated:
            for constraint in violated:
                metric_inc(
                    "atm_search_rejected",
                    searcher=self.searcher,
                    constraint=constraint,
                )
            metric_inc(
                "atm_search_evaluations",
                searcher=self.searcher,
                outcome="rejected",
            )
            return Evaluation(
                point=point,
                fitness=REJECTED_FITNESS,
                ns=ns,
                area_mm2=area,
                power_w=power,
                rejected=violated,
            )
        data = sweep(
            [point.spec()],
            ns,
            seed=self.seed,
            periods=self.periods,
            mode=self.mode,
        )
        (rows,) = data.measurements.values()
        margins: List[float] = []
        total_s = 0.0
        for m in rows:
            margins.extend(_cell_margins(m.task1_seconds, m.task23_s))
            total_s += sum(float(t) for t in m.task1_seconds) + float(m.task23_s)
        worst = min(margins)
        misses = sum(1 for m in margins if m < 0)
        ev = Evaluation(
            point=point,
            fitness=math.nan,  # scalarized below once the stats exist
            ns=ns,
            area_mm2=area,
            power_w=power,
            worst_margin_s=worst,
            modelled_time_s=total_s,
            deadline_misses=misses,
        )
        ev = dataclasses.replace(ev, fitness=float(OBJECTIVES[self.objective](ev)))
        metric_inc(
            "atm_search_evaluations", searcher=self.searcher, outcome="evaluated"
        )
        return ev

    # ------------------------------------------------------------------

    def pareto_front(self) -> List[Evaluation]:
        """Non-dominated full-fidelity evaluations on (time, area).

        Lower is better on both axes; rejected candidates and partial-
        fidelity (halving rung) evaluations are excluded.  Sorted by
        modelled time, ties by point key, so the front is deterministic.
        """
        full = [
            ev
            for ev in self.trajectory
            if ev.evaluated and ev.ns == self.ns
        ]
        front = [
            ev
            for ev in full
            if not any(_dominates(other, ev) for other in full)
        ]
        return sorted(front, key=lambda ev: (ev.modelled_time_s, ev.point.key))


def _dominates(a: Evaluation, b: Evaluation) -> bool:
    """True when ``a`` is no worse on both axes and better on one."""
    return (
        a.modelled_time_s <= b.modelled_time_s
        and a.area_mm2 <= b.area_mm2
        and (a.modelled_time_s < b.modelled_time_s or a.area_mm2 < b.area_mm2)
    )
