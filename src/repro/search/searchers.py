"""Three seeded searchers over a :class:`~repro.search.space.DesignSpace`.

All three are deterministic functions of ``(space, evaluator, seed,
evaluation budget)``: they draw only from a private ``random.Random``,
break every tie by point key, and spend at most ``max_evaluations``
*new* evaluations (memo hits are free).  That is what the property tests
pin: the same seed and spec produce the identical trajectory whether the
underlying sweeps run inline, on a process pool, or out of the journal.

* ``random`` — uniform draws from the grid; the baseline archgym also
  starts from.
* ``genetic`` — tournament selection, uniform crossover, per-parameter
  mutation, one elite carried per generation.
* ``halving`` — successive halving on a fleet-size fidelity ladder:
  rung 0 sees only the smallest fleet sizes, survivors are promoted to
  longer prefixes of the axis until the full axis ranks the finalists.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..obs.metrics import metric_inc
from .evaluate import REJECTED_FITNESS, CandidateEvaluator, Evaluation
from .space import DesignPoint, DesignSpace

__all__ = [
    "SearchOutcome",
    "random_search",
    "genetic_search",
    "successive_halving_search",
    "SEARCHERS",
]


@dataclass
class SearchOutcome:
    """What a searcher hands back to the runner."""

    searcher: str
    seed: int
    best: Optional[Evaluation]
    #: all evaluations in first-request order (the trajectory).
    trajectory: List[Evaluation]
    #: best fitness after each trajectory step (the dashboard curve).
    best_fitness_curve: List[float]
    #: generations/rungs completed (1 for pure random search).
    rounds: int

    def to_dict(self) -> Dict[str, Any]:
        return {
            "searcher": self.searcher,
            "seed": self.seed,
            "best": self.best.to_dict() if self.best is not None else None,
            "trajectory": [ev.to_dict() for ev in self.trajectory],
            "best_fitness_curve": list(self.best_fitness_curve),
            "rounds": self.rounds,
        }


def _finish(
    evaluator: CandidateEvaluator, searcher: str, seed: int, rounds: int
) -> SearchOutcome:
    curve: List[float] = []
    best_so_far = math.inf
    for ev in evaluator.trajectory:
        # only full-fidelity evaluations are mutually comparable — a
        # halving rung over a prefix of the axis has a smaller modelled
        # time by construction.
        if ev.evaluated and ev.ns == evaluator.ns and ev.fitness < best_so_far:
            best_so_far = ev.fitness
        # entries before the first full-fidelity evaluation use the
        # finite REJECTED_FITNESS sentinel: math.inf would serialize as
        # the non-JSON token `Infinity` in the --out/--json result.
        curve.append(best_so_far if math.isfinite(best_so_far) else REJECTED_FITNESS)
    return SearchOutcome(
        searcher=searcher,
        seed=seed,
        best=evaluator.best,
        trajectory=list(evaluator.trajectory),
        best_fitness_curve=curve,
        rounds=rounds,
    )


def random_search(
    space: DesignSpace,
    evaluator: CandidateEvaluator,
    *,
    seed: int = 2018,
    max_evaluations: int = 24,
) -> SearchOutcome:
    """Uniform random draws from the grid (with-replacement, memoized)."""
    rng = random.Random(seed)
    spent = 0
    idle = 0
    while spent < max_evaluations and idle < 100:
        before = len(evaluator.trajectory)
        evaluator.evaluate(space.random_point(rng))
        fresh = len(evaluator.trajectory) - before
        spent += fresh
        # a small grid can be exhausted before the budget: every draw
        # memo-hits, and without this guard the loop would never end.
        idle = 0 if fresh else idle + 1
    metric_inc("atm_search_rounds", searcher="random")
    return _finish(evaluator, "random", seed, rounds=1)


def genetic_search(
    space: DesignSpace,
    evaluator: CandidateEvaluator,
    *,
    seed: int = 2018,
    max_evaluations: int = 24,
    population: int = 8,
    tournament: int = 3,
    crossover_rate: float = 0.7,
    mutation_rate: float = 0.25,
    elitism: int = 1,
) -> SearchOutcome:
    """Tournament-selection genetic algorithm over the grid.

    Budget-rejected candidates stay in the population with
    ``REJECTED_FITNESS`` so the GA can flow around an infeasible region
    instead of stalling, but they can never win a tournament against an
    evaluated rival.
    """
    if population < 2:
        raise ValueError("population must be at least 2")
    rng = random.Random(seed)
    spent = 0

    def judge(point: DesignPoint) -> Evaluation:
        nonlocal spent
        before = len(evaluator.trajectory)
        ev = evaluator.evaluate(point)
        spent += len(evaluator.trajectory) - before
        return ev

    # seed generation: the base config plus uniform draws.
    current: List[Evaluation] = [judge(space.base_point())]
    while len(current) < population and spent < max_evaluations:
        current.append(judge(space.random_point(rng)))
    rounds = 1
    metric_inc("atm_search_rounds", searcher="genetic")

    def rank_key(ev: Evaluation) -> Tuple[float, str]:
        return (ev.fitness, ev.point.key)

    def select() -> Evaluation:
        entrants = [
            current[rng.randrange(len(current))]
            for _ in range(min(tournament, len(current)))
        ]
        return min(entrants, key=rank_key)

    idle_generations = 0
    while spent < max_evaluations and idle_generations < 3:
        generation_start = spent
        current.sort(key=rank_key)
        nxt: List[Evaluation] = current[: max(0, elitism)]
        while len(nxt) < population and spent < max_evaluations:
            if rng.random() < crossover_rate:
                child = space.crossover(select().point, select().point, rng)
            else:
                child = select().point
            child = space.mutate(child, rng, rate=mutation_rate)
            nxt.append(judge(child))
        current = nxt
        rounds += 1
        metric_inc("atm_search_rounds", searcher="genetic")
        # a small grid can be exhausted before the budget: every child
        # memo-hits, `spent` stops moving, and without this guard the
        # generation loop would never end (random_search's idle guard,
        # at generation granularity).
        idle_generations = (
            0 if spent > generation_start else idle_generations + 1
        )
    return _finish(evaluator, "genetic", seed, rounds=rounds)


def successive_halving_search(
    space: DesignSpace,
    evaluator: CandidateEvaluator,
    *,
    seed: int = 2018,
    max_evaluations: int = 24,
    eta: int = 2,
) -> SearchOutcome:
    """Successive halving with fleet-size prefixes as the fidelity axis.

    The rung ladder uses prefixes of the evaluator's fleet-size axis:
    rung 0 judges a wide cohort on ``ns[:1]``, each later rung keeps the
    top ``1/eta`` of the cohort and extends the prefix, and the final
    rung ranks survivors on the full axis.  Because low-fidelity
    evaluations sweep fewer cells, the cohort can start far wider than
    an equal-budget flat search.
    """
    if eta < 2:
        raise ValueError("eta must be at least 2")
    ns = evaluator.ns
    rungs = len(ns)
    rng = random.Random(seed)
    # cohort size so that total cell-cost roughly fits the budget:
    # sum_r (cohort/eta^r) * (r+1)/rungs <= max_evaluations.
    unit = sum((r + 1) / (rungs * eta**r) for r in range(rungs))
    cohort_size = max(eta, int(max_evaluations / unit))
    seen = set()
    cohort: List[DesignPoint] = []
    attempts = 0
    while len(cohort) < cohort_size and attempts < 50 * cohort_size:
        pt = space.random_point(rng)
        attempts += 1
        if pt.key not in seen:
            seen.add(pt.key)
            cohort.append(pt)
    spent = 0.0
    rounds = 0
    ranked: List[Evaluation] = []
    for rung in range(rungs):
        prefix = ns[: rung + 1]
        cost = len(prefix) / rungs
        ranked = []
        for pt in cohort:
            if spent >= max_evaluations:
                break
            before = len(evaluator.trajectory)
            ev = evaluator.evaluate(pt, ns=prefix)
            spent += (len(evaluator.trajectory) - before) * cost
            ranked.append(ev)
        rounds += 1
        metric_inc("atm_search_rounds", searcher="halving")
        ranked.sort(key=lambda ev: (ev.fitness, ev.point.key))
        keep = max(1, math.ceil(len(ranked) / eta))
        cohort = [ev.point for ev in ranked[:keep]]
        if spent >= max_evaluations:
            break
    # guarantee at least one full-fidelity evaluation so `best` (and the
    # Pareto front) compare like with like.
    for pt in cohort:
        evaluator.evaluate(pt, ns=ns)
        break
    return _finish(evaluator, "halving", seed, rounds=rounds)


#: searcher name -> callable(space, evaluator, *, seed, max_evaluations).
SEARCHERS: Dict[str, Callable[..., SearchOutcome]] = {
    "random": random_search,
    "genetic": genetic_search,
    "halving": successive_halving_search,
}
