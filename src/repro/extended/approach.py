"""Final approach spacing: in-trail separation on the landing corridor.

The STARAN ATC software sequenced final approach as one of its periodic
tasks [13].  This module models a single runway with a straight approach
corridor: aircraft inside the corridor and below the feeder altitude are
ordered by distance to threshold, and any follower closer than the
required in-trail separation to its leader receives a *speed advisory*
(a bounded speed reduction, applied immediately to the velocity vector;
heading is unchanged).

Thread-per-aircraft classification is data parallel; the sequencing tail
is a sort plus a short serial pass over the (small) approach queue —
again the structure the cost adapters replay.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

import numpy as np

from ..core import constants as C
from ..core.types import FleetState

__all__ = ["Runway", "ApproachStats", "sequence_approach"]

#: Required in-trail separation on final, nm.
IN_TRAIL_SEPARATION_NM: float = 3.0

#: Speed reduction per advisory (fraction of current speed).
SPEED_REDUCTION: float = 0.10

#: Slowest speed an advisory may command, nm/period.
MIN_APPROACH_SPEED: float = 80.0 / C.PERIODS_PER_HOUR


@dataclass(frozen=True)
class Runway:
    """A runway threshold with a straight approach corridor."""

    #: threshold position, nm.
    x: float = -40.0
    y: float = -20.0
    #: approach course *toward* the threshold, degrees from +x axis
    #: (aircraft on approach fly roughly this heading).
    course_deg: float = 0.0
    #: corridor length from the threshold backwards, nm.
    length_nm: float = 40.0
    #: corridor half-width, nm.
    half_width_nm: float = 4.0
    #: aircraft above this altitude are not considered on approach.
    feeder_altitude_ft: float = 8000.0

    def corridor_coordinates(self, x, y):
        """(along, across) corridor coordinates of airfield points.

        ``along`` is distance from the threshold measured *against* the
        approach course (an aircraft 10 nm out has along = 10); positive
        ``across`` is left of course.
        """
        theta = np.deg2rad(self.course_deg)
        ux, uy = np.cos(theta), np.sin(theta)
        rx = np.asarray(x, dtype=np.float64) - self.x
        ry = np.asarray(y, dtype=np.float64) - self.y
        along = -(rx * ux + ry * uy)
        across = -rx * uy + ry * ux
        return along, across

    def on_approach(self, fleet: FleetState) -> np.ndarray:
        """Mask of aircraft inside the corridor, inbound and low enough."""
        along, across = self.corridor_coordinates(fleet.x, fleet.y)
        theta = np.deg2rad(self.course_deg)
        inbound = (fleet.dx * np.cos(theta) + fleet.dy * np.sin(theta)) > 0
        return (
            (along > 0.0)
            & (along <= self.length_nm)
            & (np.abs(across) <= self.half_width_nm)
            & (fleet.alt <= self.feeder_altitude_ft)
            & inbound
        )


@dataclass
class ApproachStats:
    """Dynamic counts from one approach-sequencing pass."""

    #: aircraft inside the corridor this pass.
    on_approach: int = 0
    #: follower/leader pairs violating in-trail separation.
    violations: int = 0
    #: speed advisories issued (== violations, capped by the floor).
    advisories: int = 0
    #: sequenced aircraft ids, nearest the threshold first.
    sequence: List[int] = field(default_factory=list)
    #: advisory payloads (aircraft id, new speed knots) for the AVA task.
    advisory_targets: List[tuple] = field(default_factory=list)


def sequence_approach(fleet: FleetState, runway: Runway) -> ApproachStats:
    """Run one final-approach spacing pass, mutating follower speeds."""
    stats = ApproachStats()
    mask = runway.on_approach(fleet)
    ids = np.nonzero(mask)[0]
    stats.on_approach = int(ids.size)
    if ids.size < 2:
        stats.sequence = [int(i) for i in ids]
        return stats

    along, _ = runway.corridor_coordinates(fleet.x[ids], fleet.y[ids])
    order = np.argsort(along, kind="stable")
    seq = ids[order]
    stats.sequence = [int(i) for i in seq]
    gaps = np.diff(along[order])

    for k in np.nonzero(gaps < IN_TRAIL_SEPARATION_NM)[0]:
        follower = int(seq[k + 1])
        stats.violations += 1
        speed = float(np.hypot(fleet.dx[follower], fleet.dy[follower]))
        if speed <= MIN_APPROACH_SPEED:
            continue  # already at the command floor
        new_speed = max(speed * (1.0 - SPEED_REDUCTION), MIN_APPROACH_SPEED)
        factor = new_speed / speed
        fleet.dx[follower] *= factor
        fleet.dy[follower] *= factor
        fleet.batdx[follower] = fleet.dx[follower]
        fleet.batdy[follower] = fleet.dy[follower]
        stats.advisories += 1
        stats.advisory_targets.append(
            (follower, new_speed * C.PERIODS_PER_HOUR)
        )
    return stats
