"""Display processing: the controller's scope picture.

The Goodyear ATC software also regenerated the controllers' displays
every cycle — projecting each track onto scope coordinates, building its
data block (callsign, altitude, speed) and placing the blocks so they do
not overlap.  Projection and block building are embarrassingly parallel;
label *deconfliction* is the interesting part: a naive pairwise check is
O(N^2), so this implementation buckets blocks on a scope grid and only
compares within a neighbourhood — the structure the cost adapters
charge.

A label that cannot be placed in any of its candidate offsets is drawn
overlapping (real scopes do this too); the stats record how many.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

import numpy as np

from ..core import constants as C
from ..core.types import FleetState

__all__ = ["ScopeConfig", "DisplayStats", "build_display"]

#: Candidate label anchor offsets around a target, in scope cells
#: (E, N, W, S — the four cardinal placements controllers expect).
_OFFSETS: Tuple[Tuple[int, int], ...] = ((1, 0), (0, 1), (-1, 0), (0, -1))


@dataclass(frozen=True)
class ScopeConfig:
    """A controller scope: a square raster over the airfield."""

    #: scope raster resolution (cells per axis).
    cells: int = 64

    def __post_init__(self) -> None:
        if self.cells < 8:
            raise ValueError("scope needs at least 8x8 cells")

    def project(self, x, y) -> Tuple[np.ndarray, np.ndarray]:
        """Airfield nm -> integer scope cells (clamped to the raster)."""
        scale = self.cells / C.AIRFIELD_SIZE_NM
        cx = np.floor((np.asarray(x) + C.GRID_HALF_NM) * scale).astype(np.int64)
        cy = np.floor((np.asarray(y) + C.GRID_HALF_NM) * scale).astype(np.int64)
        return (
            np.clip(cx, 0, self.cells - 1),
            np.clip(cy, 0, self.cells - 1),
        )


@dataclass
class DisplayStats:
    """Dynamic counts from one display-processing pass."""

    aircraft: int = 0
    #: scope cells occupied by at least one target.
    occupied_cells: int = 0
    #: targets sharing a cell with another target.
    crowded_targets: int = 0
    #: labels placed at the first-choice offset.
    first_choice_labels: int = 0
    #: labels that needed an alternate offset.
    moved_labels: int = 0
    #: labels left overlapping (no free offset).
    overlapping_labels: int = 0
    #: label cell of each aircraft, for tests.
    label_cells: List[Tuple[int, int]] = field(default_factory=list)


def build_display(fleet: FleetState, scope: ScopeConfig = ScopeConfig()) -> DisplayStats:
    """Project the fleet onto the scope and place all data blocks.

    Deterministic: targets are processed in aircraft-id order and take
    the first free candidate offset; a taken label cell is "free" again
    only for the target that owns it.  Does not mutate the fleet.
    """
    stats = DisplayStats(aircraft=fleet.n)
    cx, cy = scope.project(fleet.x, fleet.y)

    target_of_cell: Dict[Tuple[int, int], int] = {}
    crowded = 0
    for i in range(fleet.n):
        cell = (int(cx[i]), int(cy[i]))
        if cell in target_of_cell:
            crowded += 1
            if target_of_cell[cell] >= 0:
                crowded += 1
                target_of_cell[cell] = -1  # already counted the first
        else:
            target_of_cell[cell] = i
    stats.occupied_cells = len(target_of_cell)
    stats.crowded_targets = crowded

    taken: set = set(target_of_cell)  # targets themselves block labels
    for i in range(fleet.n):
        placed = False
        for k, (ox, oy) in enumerate(_OFFSETS):
            cell = (
                int(np.clip(cx[i] + ox, 0, scope.cells - 1)),
                int(np.clip(cy[i] + oy, 0, scope.cells - 1)),
            )
            if cell not in taken:
                taken.add(cell)
                stats.label_cells.append(cell)
                if k == 0:
                    stats.first_choice_labels += 1
                else:
                    stats.moved_labels += 1
                placed = True
                break
        if not placed:
            # Draw overlapping at the first-choice position.
            cell = (
                int(np.clip(cx[i] + 1, 0, scope.cells - 1)),
                int(np.clip(cy[i], 0, scope.cells - 1)),
            )
            stats.label_cells.append(cell)
            stats.overlapping_labels += 1
    return stats
