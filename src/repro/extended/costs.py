"""Per-platform timing adapters for the extended ATM tasks.

The core backends time Tasks 1-3 with their machine models; the extended
tasks (terrain avoidance, final approach, voice advisory) reuse exactly
the same machinery — warp ledgers, PE arrays, associative primitives,
work-queue chunks — via the adapters below, dispatched on the backend
type.  Every adapter charges the same algorithmic structure:

* terrain avoidance — data-parallel over aircraft: ``samples`` path
  points, each a position advance plus a bilinear elevation fetch, then
  a clearance compare; a small serial tail per violation;
* final approach — data-parallel corridor classification, then a serial
  sequencing pass over the (small) approach queue;
* voice advisory — an inherently serial channel: constant per-cycle
  service plus per-advisory work.
"""

from __future__ import annotations

from typing import Union

import numpy as np

from ..ap.backend import ApBackend
from ..ap.primitives import AssociativeArray
from ..backends.base import Backend
from ..core.types import TaskTiming, TimingBreakdown
from ..cuda.backend import CudaBackend
from ..cuda.execution import WarpLedger
from ..cuda.grid import LaunchConfig
from ..cuda.timing import kernel_timing
from ..mimd.backend import MimdBackend
from ..mimd.events import WorkChunk, simulate_work_queue
from ..simd.backend import SimdBackend
from ..simd.instructions import Op
from ..simd.pe_array import PEArray
from .advisory import AdvisoryStats
from .approach import ApproachStats
from .display import DisplayStats
from .terrain_avoidance import TerrainStats

__all__ = ["terrain_timing", "approach_timing", "advisory_timing", "display_timing"]

# algorithmic op counts (simple-op equivalents, shared by all adapters)
_TA_OPS_PER_SAMPLE = 18  # advance, grid coords, bilinear blend, compare
_TA_FETCHES_PER_SAMPLE = 4  # the four lattice corners
_TA_VIOLATION_OPS = 12
_AP_CLASSIFY_OPS = 20  # corridor transform + window tests
_AP_SEQUENCE_OPS = 30  # per queued aircraft: gap check + advisory math
_AVA_BASE_OPS = 200  # channel bookkeeping per service
_AVA_PER_MESSAGE_OPS = 120

#: nominal sequential rate for the reference adapter (matches
#: repro.backends.reference).
_REF_SECONDS_PER_OP = 1e-9


def _timing(task: str, backend: Backend, n: int, seconds: float, stats: dict) -> TaskTiming:
    return TaskTiming(
        task=task,
        platform=backend.name,
        n_aircraft=n,
        seconds=seconds,
        breakdown=TimingBreakdown(compute=seconds),
        stats=stats,
    )


# ---------------------------------------------------------------------------
# terrain avoidance
# ---------------------------------------------------------------------------


def terrain_timing(backend: Backend, n: int, stats: TerrainStats) -> TaskTiming:
    """Modelled time of one terrain-avoidance pass on ``backend``."""
    samples = stats.samples_per_aircraft
    info = {
        "violations": stats.violations,
        "advisories": stats.advisories,
        "samples": samples,
    }

    if isinstance(backend, CudaBackend):
        device = backend.device
        config = LaunchConfig.for_problem(n, device, backend.block_size)
        ledger = WarpLedger(device, config)
        ledger.charge_contiguous_access(5)  # x, y, dx, dy, alt
        ledger.charge_issue(_TA_OPS_PER_SAMPLE * samples)
        # Bilinear fetches land on scattered grid cells: charge a real
        # gather using a stride pattern derived from aircraft spread.
        idx = (np.arange(config.padded_threads, dtype=np.int64) * 257) % (257 * 257)
        ledger.charge_gather(idx, repeats=_TA_FETCHES_PER_SAMPLE * samples)
        mask = np.zeros(config.padded_threads, dtype=bool)
        mask[: stats.violation_mask.shape[0]] = stats.violation_mask
        if mask.any():
            ledger.charge_issue(_TA_VIOLATION_OPS, mask)
            ledger.charge_gather(idx, mask)  # advisory/altitude writes
        kt = kernel_timing("TerrainAvoidance", device, config, ledger)
        return TaskTiming(
            task="terrain",
            platform=backend.name,
            n_aircraft=n,
            seconds=kt.seconds,
            breakdown=kt.breakdown(),
            stats={**info, "bound": kt.bound},
        )

    if isinstance(backend, ApBackend):
        ap = AssociativeArray(n, backend.config.pes_per_module, backend.config.costs)
        for _ in range(samples):
            ap.alu(6)  # path advance + grid coordinates
            ap.mem(_TA_FETCHES_PER_SAMPLE)  # PE-local terrain tile reads
            ap.alu(8)  # bilinear blend + running max
        ap.search(1)  # clearance test, all PEs at once
        ap.any_responder(1)
        # Each violator is picked and advised in constant time.
        for _ in range(stats.violations):
            ap.pick_one(1)
            ap.scalar(_TA_VIOLATION_OPS)
            ap.mem(1)
        seconds = ap.seconds(backend.config.clock_hz)
        return _timing("terrain", backend, n, seconds, info)

    if isinstance(backend, SimdBackend):
        pe = PEArray(backend.config.n_pes, n, backend.config.costs)
        for _ in range(samples):
            pe.vector(Op.ALU, 6)
            pe.vector(Op.MEM, _TA_FETCHES_PER_SAMPLE)
            pe.vector(Op.ALU, 8)
        pe.vector(Op.ALU, 2)  # clearance compare
        pe.reduce(1)  # any violation?
        pe.scalar(Op.SCALAR, _TA_VIOLATION_OPS * stats.violations)
        pe.vector(Op.MEM, 1)
        seconds = pe.seconds(backend.config.clock_hz)
        return _timing("terrain", backend, n, seconds, info)

    if isinstance(backend, MimdBackend):
        cfg = backend.config
        per_aircraft = cfg.op_seconds(_TA_OPS_PER_SAMPLE * samples)
        chunks = [
            WorkChunk(
                per_aircraft
                + (cfg.op_seconds(_TA_VIOLATION_OPS) if stats.violation_mask[i] else 0.0),
                # The terrain grid is read-only (no coherence traffic);
                # only advisory writes lock the shared table.
                2 * cfg.lock_op_s if stats.violation_mask[i] else 0.0,
            )
            for i in range(n)
        ]
        run = simulate_work_queue(
            cfg.n_cores,
            chunks,
            pop_cost_s=cfg.queue_pop_s,
            jitter_sigma=cfg.jitter_sigma,
            rng=backend._rng,
        )
        return _timing("terrain", backend, n, run.makespan_s, info)

    # reference / unknown backends: sequential op count.
    ops = n * _TA_OPS_PER_SAMPLE * samples + stats.violations * _TA_VIOLATION_OPS
    return _timing("terrain", backend, n, ops * _REF_SECONDS_PER_OP, info)


# ---------------------------------------------------------------------------
# final approach
# ---------------------------------------------------------------------------


def approach_timing(backend: Backend, n: int, stats: ApproachStats) -> TaskTiming:
    """Modelled time of one approach-sequencing pass on ``backend``."""
    m = stats.on_approach
    info = {
        "on_approach": m,
        "violations": stats.violations,
        "advisories": stats.advisories,
    }

    if isinstance(backend, CudaBackend):
        device = backend.device
        config = LaunchConfig.for_problem(n, device, backend.block_size)
        ledger = WarpLedger(device, config)
        ledger.charge_contiguous_access(5)
        ledger.charge_issue(_AP_CLASSIFY_OPS)
        # Sequencing is a serial tail: one thread walks the queue
        # (m log m compare-swaps + per-pair checks) — charge warp 0.
        serial = np.zeros(config.n_warps)
        serial[0] = _AP_SEQUENCE_OPS * max(m, 1) * max(np.log2(max(m, 2)), 1.0)
        ledger.charge_issue_per_warp(serial)
        kt = kernel_timing("FinalApproach", device, config, ledger)
        return TaskTiming(
            task="approach",
            platform=backend.name,
            n_aircraft=n,
            seconds=kt.seconds,
            breakdown=kt.breakdown(),
            stats={**info, "bound": kt.bound},
        )

    if isinstance(backend, ApBackend):
        ap = AssociativeArray(n, backend.config.pes_per_module, backend.config.costs)
        ap.broadcast_words(4)  # runway geometry
        ap.search(4)  # corridor window tests, all PEs at once
        ap.mask_op(2)
        # Associative sequencing: extract the queue nearest-first by
        # repeated global-minimum selection — m constant-time steps.
        for _ in range(m):
            ap.global_extremum(1)
            ap.pick_one(1)
            ap.scalar(6)
        ap.scalar(_AP_SEQUENCE_OPS * stats.violations)
        ap.mem(2)
        seconds = ap.seconds(backend.config.clock_hz)
        return _timing("approach", backend, n, seconds, info)

    if isinstance(backend, SimdBackend):
        pe = PEArray(backend.config.n_pes, n, backend.config.costs)
        pe.broadcast(4)
        pe.vector(Op.ALU, _AP_CLASSIFY_OPS)
        pe.vector(Op.MASK, 2)
        for _ in range(m):
            pe.reduce(1)  # global min over corridor distance
            pe.scalar(Op.SCALAR, 6)
        pe.scalar(Op.SCALAR, _AP_SEQUENCE_OPS * stats.violations)
        pe.vector(Op.MEM, 2)
        seconds = pe.seconds(backend.config.clock_hz)
        return _timing("approach", backend, n, seconds, info)

    if isinstance(backend, MimdBackend):
        cfg = backend.config
        chunks = [WorkChunk(cfg.op_seconds(_AP_CLASSIFY_OPS), 0.0) for _ in range(n)]
        # Serial sequencing section: one chunk holding the queue lock.
        chunks.append(
            WorkChunk(
                cfg.op_seconds(_AP_SEQUENCE_OPS * max(m, 1)),
                max(m, 1) * cfg.lock_op_s,
            )
        )
        run = simulate_work_queue(
            cfg.n_cores,
            chunks,
            pop_cost_s=cfg.queue_pop_s,
            jitter_sigma=cfg.jitter_sigma,
            rng=backend._rng,
        )
        return _timing("approach", backend, n, run.makespan_s, info)

    ops = n * _AP_CLASSIFY_OPS + max(m, 1) * _AP_SEQUENCE_OPS
    return _timing("approach", backend, n, ops * _REF_SECONDS_PER_OP, info)


# ---------------------------------------------------------------------------
# voice advisory channel
# ---------------------------------------------------------------------------


def advisory_timing(backend: Backend, n: int, stats: AdvisoryStats) -> TaskTiming:
    """Modelled *compute* time of servicing the advisory channel.

    The seconds of radio air time are not compute; what the platform
    pays is queue management and message formatting — serial work on
    every architecture (one voice channel), so only the scalar/control
    path speed differs.
    """
    messages = stats.uttered + stats.dropped_stale
    ops = _AVA_BASE_OPS + _AVA_PER_MESSAGE_OPS * messages
    info = {
        "uttered": stats.uttered,
        "dropped_stale": stats.dropped_stale,
        "backlog": stats.backlog,
    }

    if isinstance(backend, CudaBackend):
        # Serial host-side work in the paper's design (a kernel launch
        # for a handful of messages would be pure overhead): charge a
        # 3 GHz host core.
        seconds = ops / 3e9
    elif isinstance(backend, (ApBackend,)):
        seconds = ops * backend.config.costs.scalar / backend.config.clock_hz
    elif isinstance(backend, SimdBackend):
        seconds = ops / backend.config.clock_hz
    elif isinstance(backend, MimdBackend):
        seconds = backend.config.op_seconds(ops) + messages * backend.config.lock_op_s
    else:
        seconds = ops * _REF_SECONDS_PER_OP
    return _timing("advisory", backend, n, seconds, info)


# ---------------------------------------------------------------------------
# display processing
# ---------------------------------------------------------------------------

_DISPLAY_PROJECT_OPS = 14  # scope projection + data-block formatting
_DISPLAY_PLACE_OPS = 10  # per candidate-offset probe


def display_timing(backend: Backend, n: int, stats: DisplayStats) -> TaskTiming:
    """Modelled time of one display-processing pass on ``backend``.

    Projection/formatting is data parallel; label placement is a serial
    walk over the (bucketed) scope — short, but serial on every
    architecture, so the control-path speed decides it.
    """
    probes = (
        stats.first_choice_labels
        + 2.5 * stats.moved_labels
        + 4 * stats.overlapping_labels
    )
    placement_ops = probes * _DISPLAY_PLACE_OPS
    info = {
        "occupied_cells": stats.occupied_cells,
        "crowded_targets": stats.crowded_targets,
        "moved_labels": stats.moved_labels,
        "overlapping_labels": stats.overlapping_labels,
    }

    if isinstance(backend, CudaBackend):
        device = backend.device
        config = LaunchConfig.for_problem(n, device, backend.block_size)
        ledger = WarpLedger(device, config)
        ledger.charge_contiguous_access(3)  # x, y, alt for the block
        ledger.charge_issue(_DISPLAY_PROJECT_OPS)
        serial = np.zeros(ledger.n_warps)
        serial[0] = placement_ops
        ledger.charge_issue_per_warp(serial)
        kt = kernel_timing("DisplayProcessing", device, config, ledger)
        return TaskTiming(
            task="display",
            platform=backend.name,
            n_aircraft=n,
            seconds=kt.seconds,
            breakdown=kt.breakdown(),
            stats=info,
        )

    if isinstance(backend, ApBackend):
        ap = AssociativeArray(n, backend.config.pes_per_module, backend.config.costs)
        ap.alu(6)  # projection, all PEs at once
        ap.mem(3)
        # Placement: pick-one per label, constant-time probes.
        ap.pick_one(n)
        ap.scalar(placement_ops)
        seconds = ap.seconds(backend.config.clock_hz)
        return _timing("display", backend, n, seconds, info)

    if isinstance(backend, SimdBackend):
        pe = PEArray(backend.config.n_pes, n, backend.config.costs)
        pe.vector(Op.ALU, _DISPLAY_PROJECT_OPS)
        pe.vector(Op.MEM, 3)
        pe.scalar(Op.SCALAR, placement_ops)
        seconds = pe.seconds(backend.config.clock_hz)
        return _timing("display", backend, n, seconds, info)

    if isinstance(backend, MimdBackend):
        cfg = backend.config
        chunks = [WorkChunk(cfg.op_seconds(_DISPLAY_PROJECT_OPS), 0.0) for _ in range(n)]
        chunks.append(WorkChunk(cfg.op_seconds(placement_ops), 0.0))
        run = simulate_work_queue(
            cfg.n_cores,
            chunks,
            pop_cost_s=cfg.queue_pop_s,
            jitter_sigma=cfg.jitter_sigma,
            rng=backend._rng,
        )
        return _timing("display", backend, n, run.makespan_s, info)

    ops = n * _DISPLAY_PROJECT_OPS + placement_ops
    return _timing("display", backend, n, ops * _REF_SECONDS_PER_OP, info)
