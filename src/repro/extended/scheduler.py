"""The complete-ATM-system schedule (the paper's §7.1 future work).

The paper's evaluation runs the three compute-intensive tasks; its
stated next step is "to implement all basic ATM tasks and create a more
complete ATM system that can be tested on NVIDIA-CUDA machines to
determine if it is still viable and will not miss deadlines or change
the curves of the execution graph significantly."  This scheduler does
exactly that: the full task table, modelled after the Goodyear STARAN
ATC software's periodic structure [13], still under the hard
half-second budget.

Task table (one 16-period major cycle):

| period(s) | task |
|---|---|
| every     | Task 1 — tracking & correlation |
| 0         | voice-advisory channel service (speaks last cycle's queue) |
| 1, 9      | display processing (4-second period) |
| 3, 11     | final approach sequencing (4-second period) |
| 7         | terrain avoidance (8-second period, offset from CD/CR) |
| 15        | Tasks 2+3 — collision detection & resolution |

Deadline rules are the core scheduler's: a task whose predecessors
exhausted the period is skipped; a period over 0.5 s is missed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from ..backends.base import Backend
from ..core import constants as C
from ..core.collision import DetectionMode
from ..core.radar import generate_radar_frame
from ..core.types import FleetState, TaskTiming
from .advisory import Advisory, AdvisoryChannel, AdvisoryKind
from .approach import Runway, sequence_approach
from .costs import advisory_timing, approach_timing, display_timing, terrain_timing
from .display import ScopeConfig, build_display
from .terrain import TerrainGrid
from .terrain_avoidance import check_terrain

__all__ = [
    "APPROACH_PERIODS",
    "TERRAIN_PERIOD",
    "ADVISORY_PERIOD",
    "DISPLAY_PERIODS",
    "ExtendedPeriodRecord",
    "ExtendedScheduleResult",
    "run_extended_schedule",
]

APPROACH_PERIODS = (3, 11)
TERRAIN_PERIOD = 7
ADVISORY_PERIOD = 0
DISPLAY_PERIODS = (1, 9)


@dataclass
class ExtendedPeriodRecord:
    """Outcome of one half-second period of the full system."""

    major_cycle: int
    period: int
    #: every task that ran this period, in execution order.
    tasks: List[TaskTiming]
    time_used: float
    slack: float
    deadline_missed: bool
    #: names of tasks that were due but skipped for lack of budget.
    skipped: List[str] = field(default_factory=list)


@dataclass
class ExtendedScheduleResult:
    """Aggregate of a full-system run."""

    platform: str
    n_aircraft: int
    periods: List[ExtendedPeriodRecord] = field(default_factory=list)

    @property
    def total_periods(self) -> int:
        return len(self.periods)

    @property
    def missed_deadlines(self) -> int:
        return sum(1 for p in self.periods if p.deadline_missed)

    @property
    def skipped_tasks(self) -> int:
        return sum(len(p.skipped) for p in self.periods)

    @property
    def worst_period_seconds(self) -> float:
        return max((p.time_used for p in self.periods), default=0.0)

    def task_times(self, task: str) -> np.ndarray:
        out = [
            t.seconds
            for p in self.periods
            for t in p.tasks
            if t.task == task
        ]
        return np.array(out)

    def summary(self) -> dict:
        tasks = sorted({t.task for p in self.periods for t in p.tasks})
        out = {
            "platform": self.platform,
            "n_aircraft": self.n_aircraft,
            "periods": self.total_periods,
            "missed_deadlines": self.missed_deadlines,
            "skipped_tasks": self.skipped_tasks,
            "worst_period_s": self.worst_period_seconds,
        }
        for task in tasks:
            times = self.task_times(task)
            out[f"{task}_mean_s"] = float(times.mean())
            out[f"{task}_max_s"] = float(times.max())
        return out


def run_extended_schedule(
    backend: Backend,
    fleet: FleetState,
    *,
    terrain: Optional[TerrainGrid] = None,
    runway: Optional[Runway] = None,
    channel: Optional[AdvisoryChannel] = None,
    scope: Optional[ScopeConfig] = None,
    major_cycles: int = 1,
    seed: int = 2018,
    mode: DetectionMode = DetectionMode.SIGNED,
    radar_dropout: float = 0.0,
    radar_clutter: int = 0,
) -> ExtendedScheduleResult:
    """Drive the complete ATM system for ``major_cycles`` cycles."""
    if major_cycles < 1:
        raise ValueError("need at least one major cycle")
    terrain = terrain if terrain is not None else TerrainGrid.generate(seed)
    runway = runway if runway is not None else Runway()
    channel = channel if channel is not None else AdvisoryChannel()
    scope = scope if scope is not None else ScopeConfig()

    result = ExtendedScheduleResult(platform=backend.name, n_aircraft=fleet.n)
    global_period = 0

    for cycle in range(major_cycles):
        for period in range(C.PERIODS_PER_MAJOR_CYCLE):
            frame = generate_radar_frame(
                fleet, seed, global_period,
                dropout=radar_dropout, clutter=radar_clutter,
            )
            tasks: List[TaskTiming] = []
            skipped: List[str] = []

            def budget_left() -> float:
                return C.PERIOD_SECONDS - sum(t.seconds for t in tasks)

            # Task 1 always runs first.
            tasks.append(backend.track_and_correlate(fleet, frame))

            # Periodic tasks, in the table's order, each gated on the
            # remaining budget (the core scheduler's skip rule).
            if period == ADVISORY_PERIOD:
                if budget_left() > 0:
                    stats = channel.service_cycle(cycle)
                    tasks.append(advisory_timing(backend, fleet.n, stats))
                else:
                    skipped.append("advisory")

            if period in DISPLAY_PERIODS:
                if budget_left() > 0:
                    stats = build_display(fleet, scope)
                    tasks.append(display_timing(backend, fleet.n, stats))
                else:
                    skipped.append("display")

            if period in APPROACH_PERIODS:
                if budget_left() > 0:
                    stats = sequence_approach(fleet, runway)
                    tasks.append(approach_timing(backend, fleet.n, stats))
                    channel.submit_many(
                        Advisory(AdvisoryKind.APPROACH, i, payload, cycle)
                        for i, payload in stats.advisory_targets
                    )
                else:
                    skipped.append("approach")

            if period == TERRAIN_PERIOD:
                if budget_left() > 0:
                    stats = check_terrain(fleet, terrain)
                    tasks.append(terrain_timing(backend, fleet.n, stats))
                    channel.submit_many(
                        Advisory(AdvisoryKind.TERRAIN, i, payload, cycle)
                        for i, payload in stats.advisory_targets
                    )
                else:
                    skipped.append("terrain")

            if period == C.COLLISION_PERIOD_INDEX:
                if budget_left() > 0:
                    tasks.append(backend.detect_and_resolve(fleet, mode=mode))
                    unresolved = np.nonzero(fleet.col == 1)[0]
                    channel.submit_many(
                        Advisory(
                            AdvisoryKind.COLLISION,
                            int(i),
                            float(fleet.time_till[i]),
                            cycle,
                        )
                        for i in unresolved
                    )
                else:
                    skipped.append("task23")

            time_used = sum(t.seconds for t in tasks)
            missed = time_used > C.PERIOD_SECONDS or bool(skipped)
            result.periods.append(
                ExtendedPeriodRecord(
                    major_cycle=cycle,
                    period=period,
                    tasks=tasks,
                    time_used=time_used,
                    slack=max(C.PERIOD_SECONDS - time_used, 0.0),
                    deadline_missed=missed,
                    skipped=skipped,
                )
            )
            global_period += 1

    return result
