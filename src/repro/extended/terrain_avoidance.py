"""Terrain avoidance: project each path over the ground, climb if needed.

Per the STARAN ATC task set [13] (and the deconfliction focus of
Thompson et al. [11]): every few seconds each aircraft's dead-reckoned
path over the next few minutes is checked against the terrain beneath
it.  An aircraft whose clearance falls below the minimum obstacle
clearance receives a *climb advisory* to a safe altitude; the flight
model applies the climb at a bounded rate over subsequent cycles.

Like the collision tasks, the algorithm is thread-per-aircraft data
parallel with a small sequential advisory tail — exactly the shape the
architecture cost adapters in :mod:`repro.extended.costs` replay.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

import numpy as np

from ..core.types import FleetState
from .terrain import TerrainGrid

__all__ = [
    "TERRAIN_LOOKAHEAD_PERIODS",
    "TERRAIN_SAMPLES",
    "MIN_CLEARANCE_FT",
    "CLIMB_PER_CYCLE_FT",
    "TerrainStats",
    "check_terrain",
]

#: Look-ahead horizon: 3 minutes of flight.
TERRAIN_LOOKAHEAD_PERIODS: float = 360.0

#: Path samples per aircraft per check.
TERRAIN_SAMPLES: int = 12

#: Minimum obstacle clearance (standard en-route MOC is 1000 ft).
MIN_CLEARANCE_FT: float = 1000.0

#: Advisory climb target margin above the violating terrain.
CLIMB_MARGIN_FT: float = 500.0

#: Maximum altitude change applied per 8-second cycle (a ~1500 ft/min
#: climb sustained over one major cycle).
CLIMB_PER_CYCLE_FT: float = 200.0


@dataclass
class TerrainStats:
    """Dynamic counts from one terrain-avoidance pass."""

    aircraft_checked: int = 0
    samples_per_aircraft: int = TERRAIN_SAMPLES
    #: aircraft whose projected clearance violated the MOC.
    violations: int = 0
    #: climb advisories issued this pass (== violations).
    advisories: int = 0
    #: feet of climb actually applied this pass (rate-limited).
    climb_applied_ft: float = 0.0
    #: per-aircraft violation mask (length n), for the cost adapters.
    violation_mask: np.ndarray = field(default_factory=lambda: np.zeros(0, bool))
    #: advisory payloads (aircraft id, target altitude) for the AVA task.
    advisory_targets: List[tuple] = field(default_factory=list)


def check_terrain(fleet: FleetState, grid: TerrainGrid) -> TerrainStats:
    """Run one terrain-avoidance pass, mutating altitudes as advised.

    Returns the statistics the timing adapters and the advisory channel
    consume.
    """
    stats = TerrainStats(aircraft_checked=fleet.n)

    ahead = grid.max_elevation_along(
        fleet.x,
        fleet.y,
        fleet.dx,
        fleet.dy,
        periods=TERRAIN_LOOKAHEAD_PERIODS,
        samples=TERRAIN_SAMPLES,
    )
    required = ahead + MIN_CLEARANCE_FT
    violating = fleet.alt < required
    stats.violation_mask = violating
    stats.violations = int(np.count_nonzero(violating))
    stats.advisories = stats.violations

    if stats.violations:
        ids = np.nonzero(violating)[0]
        targets = required[ids] + CLIMB_MARGIN_FT
        stats.advisory_targets = [
            (int(i), float(t)) for i, t in zip(ids, targets)
        ]
        # Rate-limited climb toward the advisory target.
        climb = np.minimum(targets - fleet.alt[ids], CLIMB_PER_CYCLE_FT)
        fleet.alt[ids] += climb
        stats.climb_applied_ft = float(climb.sum())

    return stats
