"""The complete ATM system — the paper's §7.1 future work, built.

Adds the remaining periodic tasks of the Goodyear STARAN ATC software
[13] on top of the three the paper evaluates: terrain avoidance over a
synthetic elevation substrate, final-approach in-trail spacing on a
runway corridor, and the rate-limited automatic voice advisory channel —
with per-platform timing adapters reusing each machine model's own cost
machinery.
"""

from .advisory import Advisory, AdvisoryChannel, AdvisoryKind, AdvisoryStats
from .approach import ApproachStats, Runway, sequence_approach
from .costs import advisory_timing, approach_timing, display_timing, terrain_timing
from .display import DisplayStats, ScopeConfig, build_display
from .simulation import FullAtmSimulation
from .scheduler import (
    ExtendedPeriodRecord,
    ExtendedScheduleResult,
    run_extended_schedule,
)
from .terrain import TerrainGrid
from .terrain_avoidance import TerrainStats, check_terrain

__all__ = [
    "Advisory",
    "AdvisoryChannel",
    "AdvisoryKind",
    "AdvisoryStats",
    "ApproachStats",
    "Runway",
    "sequence_approach",
    "advisory_timing",
    "approach_timing",
    "display_timing",
    "terrain_timing",
    "DisplayStats",
    "ScopeConfig",
    "build_display",
    "FullAtmSimulation",
    "ExtendedPeriodRecord",
    "ExtendedScheduleResult",
    "run_extended_schedule",
    "TerrainGrid",
    "TerrainStats",
    "check_terrain",
]
