"""Automatic Voice Advisory (AVA): the rate-limited controller channel.

The Goodyear ATC software included an automatic voice advisory function:
the system itself speaks to aircraft.  A voice channel is a serial
resource — one advisory takes seconds of air time — so advisories queue
by priority, age while they wait, and stale ones are dropped.  The
channel model here issues a fixed number of advisory slots per major
cycle and reports queueing statistics; collision, terrain and approach
passes feed it.
"""

from __future__ import annotations

import enum
import heapq
import itertools
from dataclasses import dataclass, field
from typing import List, Optional

__all__ = ["AdvisoryKind", "Advisory", "AdvisoryChannel", "AdvisoryStats"]


class AdvisoryKind(enum.IntEnum):
    """Advisory categories, ordered by urgency (lower = more urgent)."""

    COLLISION = 0
    TERRAIN = 1
    APPROACH = 2


@dataclass(frozen=True)
class Advisory:
    """One message for one aircraft."""

    kind: AdvisoryKind
    aircraft: int
    #: free-form payload, e.g. the commanded altitude or speed.
    payload: float
    #: major-cycle index at which the advisory was generated.
    issued_cycle: int


@dataclass
class AdvisoryStats:
    """Channel statistics for one major cycle."""

    queued: int = 0
    uttered: int = 0
    dropped_stale: int = 0
    backlog: int = 0
    #: worst queueing delay among uttered advisories, in major cycles.
    max_delay_cycles: int = 0
    uttered_by_kind: dict = field(default_factory=dict)


class AdvisoryChannel:
    """A priority-queued voice channel with bounded rate and freshness.

    Parameters
    ----------
    slots_per_cycle:
        Advisories the channel can speak per 8-second major cycle (a
        ~2-second transmission each leaves ~4 slots).
    max_age_cycles:
        Advisories older than this are dropped unspoken — a stale
        "climb" call is worse than none (the next pass reissues a
        current one).
    """

    def __init__(self, slots_per_cycle: int = 4, max_age_cycles: int = 2) -> None:
        if slots_per_cycle < 1:
            raise ValueError("need at least one voice slot per cycle")
        if max_age_cycles < 1:
            raise ValueError("advisories must live at least one cycle")
        self.slots_per_cycle = slots_per_cycle
        self.max_age_cycles = max_age_cycles
        self._heap: List[tuple] = []
        self._tiebreak = itertools.count()

    # ------------------------------------------------------------------

    def submit(self, advisory: Advisory) -> None:
        """Queue one advisory (priority: urgency, then age)."""
        heapq.heappush(
            self._heap,
            (
                int(advisory.kind),
                advisory.issued_cycle,
                next(self._tiebreak),
                advisory,
            ),
        )

    def submit_many(self, advisories) -> int:
        count = 0
        for adv in advisories:
            self.submit(adv)
            count += 1
        return count

    @property
    def backlog(self) -> int:
        return len(self._heap)

    def service_cycle(self, current_cycle: int) -> AdvisoryStats:
        """Speak up to ``slots_per_cycle`` advisories; drop stale ones."""
        stats = AdvisoryStats(queued=len(self._heap))
        spoken = 0
        while self._heap and spoken < self.slots_per_cycle:
            _, issued, _, adv = heapq.heappop(self._heap)
            age = current_cycle - issued
            if age > self.max_age_cycles:
                stats.dropped_stale += 1
                continue
            spoken += 1
            stats.uttered += 1
            stats.max_delay_cycles = max(stats.max_delay_cycles, age)
            stats.uttered_by_kind[adv.kind.name] = (
                stats.uttered_by_kind.get(adv.kind.name, 0) + 1
            )
        # Purge anything left that is already stale, so the backlog
        # number reflects actionable messages only.
        fresh: List[tuple] = []
        while self._heap:
            item = heapq.heappop(self._heap)
            if current_cycle - item[1] > self.max_age_cycles:
                stats.dropped_stale += 1
            else:
                fresh.append(item)
        for item in fresh:
            heapq.heappush(self._heap, item)
        stats.backlog = len(self._heap)
        return stats
