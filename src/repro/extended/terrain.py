"""Synthetic terrain: the elevation substrate for terrain avoidance.

The full ATM task set of the STARAN software ([13]; also the airspace
deconfliction work of Thompson et al. [11]) includes *terrain avoidance*
— projecting each flight path over the ground and warning when the
clearance shrinks.  No real digital elevation model ships with this
repository, so :class:`TerrainGrid` synthesises one: multi-octave value
noise (bilinearly interpolated random lattices at 64/32/16/8 nm scales)
over the 256 nm x 256 nm airfield, shaped so roughly half the field is
near-flat lowland and ridges rise to ~8000 ft.  The generator is
counter-based, so a given seed names the same landscape everywhere.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from ..core import constants as C
from ..core.rng import Stream, random_unit, splitmix64

__all__ = ["TerrainGrid", "DEFAULT_PEAK_FT"]

#: Highest synthetic ridge, feet.
DEFAULT_PEAK_FT: float = 8000.0

#: Value-noise octaves: (cell size in nm, relative amplitude).
_OCTAVES: Tuple[Tuple[float, float], ...] = (
    (64.0, 1.0),
    (32.0, 0.5),
    (16.0, 0.25),
    (8.0, 0.125),
)


def _lattice_values(seed: int, octave: int, ix: np.ndarray, iy: np.ndarray) -> np.ndarray:
    """Deterministic random value at integer lattice node (ix, iy)."""
    with np.errstate(over="ignore"):
        key = (
            ix.astype(np.uint64) * np.uint64(0x9E3779B97F4A7C15)
            ^ splitmix64(iy.astype(np.uint64))
            ^ splitmix64(np.uint64(octave) + np.uint64(0xC0FFEE))
        )
    return random_unit(seed, key.astype(np.int64), Stream.TERRAIN)


@dataclass(frozen=True)
class TerrainGrid:
    """A sampled elevation field over the airfield.

    ``cells`` holds elevations (feet) at 1 nm resolution on a
    ``(side, side)`` grid whose [0, 0] corner is the airfield's
    (-128, -128) nm corner.
    """

    seed: int
    cells: np.ndarray
    peak_ft: float

    @property
    def side(self) -> int:
        return self.cells.shape[0]

    @classmethod
    def generate(
        cls,
        seed: int = 2018,
        *,
        resolution_nm: float = 1.0,
        peak_ft: float = DEFAULT_PEAK_FT,
    ) -> "TerrainGrid":
        """Synthesise the landscape for ``seed``."""
        if resolution_nm <= 0:
            raise ValueError("resolution must be positive")
        if peak_ft < 0:
            raise ValueError("peak elevation must be non-negative")
        side = int(round(C.AIRFIELD_SIZE_NM / resolution_nm)) + 1
        xs = np.linspace(0.0, C.AIRFIELD_SIZE_NM, side)
        gx, gy = np.meshgrid(xs, xs, indexing="ij")

        height = np.zeros((side, side))
        total_amp = 0.0
        for octave, (cell, amp) in enumerate(_OCTAVES):
            fx = gx / cell
            fy = gy / cell
            ix = np.floor(fx).astype(np.int64)
            iy = np.floor(fy).astype(np.int64)
            tx = fx - ix
            ty = fy - iy
            # Smoothstep for C1-continuous ridges.
            tx = tx * tx * (3 - 2 * tx)
            ty = ty * ty * (3 - 2 * ty)
            v00 = _lattice_values(seed, octave, ix, iy)
            v10 = _lattice_values(seed, octave, ix + 1, iy)
            v01 = _lattice_values(seed, octave, ix, iy + 1)
            v11 = _lattice_values(seed, octave, ix + 1, iy + 1)
            height += amp * (
                v00 * (1 - tx) * (1 - ty)
                + v10 * tx * (1 - ty)
                + v01 * (1 - tx) * ty
                + v11 * tx * ty
            )
            total_amp += amp
        height /= total_amp

        # Shape: push the lower half toward flat lowland, keep ridges.
        shaped = np.clip((height - 0.45) / 0.55, 0.0, 1.0) ** 1.5
        return cls(seed=seed, cells=shaped * peak_ft, peak_ft=peak_ft)

    # ------------------------------------------------------------------
    # sampling
    # ------------------------------------------------------------------

    def _to_grid(self, x, y) -> Tuple[np.ndarray, np.ndarray]:
        scale = (self.side - 1) / C.AIRFIELD_SIZE_NM
        gx = (np.asarray(x, dtype=np.float64) + C.GRID_HALF_NM) * scale
        gy = (np.asarray(y, dtype=np.float64) + C.GRID_HALF_NM) * scale
        return (
            np.clip(gx, 0.0, self.side - 1 - 1e-9),
            np.clip(gy, 0.0, self.side - 1 - 1e-9),
        )

    def elevation_at(self, x, y) -> np.ndarray:
        """Bilinear elevation sample (feet) at airfield coordinates."""
        gx, gy = self._to_grid(x, y)
        ix = np.floor(gx).astype(np.int64)
        iy = np.floor(gy).astype(np.int64)
        tx = gx - ix
        ty = gy - iy
        c = self.cells
        return (
            c[ix, iy] * (1 - tx) * (1 - ty)
            + c[ix + 1, iy] * tx * (1 - ty)
            + c[ix, iy + 1] * (1 - tx) * ty
            + c[ix + 1, iy + 1] * tx * ty
        )

    def max_elevation_along(
        self, x, y, dx, dy, *, periods: float, samples: int
    ) -> np.ndarray:
        """Highest terrain under each projected path.

        Samples ``samples`` points uniformly over the next ``periods``
        half-seconds of dead-reckoned flight (positions outside the
        airfield clamp to the boundary, matching the wraparound world's
        conservative reading: the mirrored terrain is not scanned).
        """
        if samples < 1:
            raise ValueError("need at least one sample")
        x = np.asarray(x, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        dx = np.asarray(dx, dtype=np.float64)
        dy = np.asarray(dy, dtype=np.float64)
        best = np.full(x.shape, -np.inf)
        for k in range(samples):
            t = periods * (k + 1) / samples
            np.maximum(best, self.elevation_at(x + dx * t, y + dy * t), out=best)
        return best

    def stats(self) -> dict:
        return {
            "seed": self.seed,
            "side": self.side,
            "min_ft": float(self.cells.min()),
            "max_ft": float(self.cells.max()),
            "mean_ft": float(self.cells.mean()),
            "flat_fraction": float(np.mean(self.cells < 0.02 * self.peak_ft)),
        }
