"""Façade for the complete ATM system (mirrors ``repro.core.Simulation``).

::

    from repro.extended import FullAtmSimulation
    sim = FullAtmSimulation(960, backend="cuda:titan-x-pascal")
    result = sim.run(major_cycles=4)
    print(result.summary())
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

from ..core.collision import DetectionMode
from ..core.setup import setup_flight
from ..core.types import FleetState
from .advisory import AdvisoryChannel
from .approach import Runway
from .display import ScopeConfig
from .scheduler import ExtendedScheduleResult, run_extended_schedule
from .terrain import TerrainGrid

__all__ = ["FullAtmSimulation"]


class FullAtmSimulation:
    """A fleet plus the full task table on one architecture backend.

    Parameters mirror :class:`repro.core.Simulation`, with the extra
    substrate objects (terrain, runway, scope, advisory channel) either
    supplied or generated from the seed.
    """

    def __init__(
        self,
        n_aircraft: int,
        backend: Union[str, "object", None] = None,
        *,
        seed: int = 2018,
        mode: DetectionMode = DetectionMode.SIGNED,
        terrain: Optional[TerrainGrid] = None,
        runway: Optional[Runway] = None,
        scope: Optional[ScopeConfig] = None,
        channel: Optional[AdvisoryChannel] = None,
        radar_dropout: float = 0.0,
        radar_clutter: int = 0,
        fleet: Optional[FleetState] = None,
    ) -> None:
        from ..backends.registry import resolve_backend

        self.seed = seed
        self.mode = mode
        self.backend = resolve_backend(backend)
        self.terrain = terrain if terrain is not None else TerrainGrid.generate(seed)
        self.runway = runway if runway is not None else Runway()
        self.scope = scope if scope is not None else ScopeConfig()
        self.channel = channel if channel is not None else AdvisoryChannel()
        self.radar_dropout = radar_dropout
        self.radar_clutter = radar_clutter
        if fleet is not None:
            if fleet.n != n_aircraft:
                raise ValueError(
                    f"supplied fleet has {fleet.n} aircraft, expected {n_aircraft}"
                )
            self.fleet = fleet
        else:
            self.fleet = setup_flight(n_aircraft, seed)

    @property
    def n_aircraft(self) -> int:
        return self.fleet.n

    def run(self, major_cycles: int = 1) -> ExtendedScheduleResult:
        """Run the full task table for ``major_cycles`` 8-second cycles."""
        return run_extended_schedule(
            self.backend,
            self.fleet,
            terrain=self.terrain,
            runway=self.runway,
            channel=self.channel,
            scope=self.scope,
            major_cycles=major_cycles,
            seed=self.seed,
            mode=self.mode,
            radar_dropout=self.radar_dropout,
            radar_clutter=self.radar_clutter,
        )

    def advisory_backlog(self) -> int:
        """Messages still waiting on the voice channel."""
        return self.channel.backlog

    def terrain_clearance_ft(self) -> np.ndarray:
        """Current height of each aircraft above the terrain below it."""
        return self.fleet.alt - self.terrain.elevation_at(self.fleet.x, self.fleet.y)
