"""16-core Intel Xeon configuration (the paper's multi-core platform).

Calibration note (recorded in DESIGN.md): the per-operation costs follow
measured x86 characteristics — a contended lock acquisition is a
cross-core cache-line transfer plus a CAS retry, several hundred
nanoseconds under contention — and the *structure* (every access to the
shared dynamic flight database synchronises) follows the shared-memory
implementation that [13] found unable to hold ATM deadlines.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["MimdConfig", "XEON_16", "XEON_8"]


@dataclass(frozen=True)
class MimdConfig:
    """Static description of a shared-memory multi-core machine."""

    name: str
    key: str
    n_cores: int
    clock_hz: float
    #: sustained simple operations per cycle per core.
    ipc: float
    #: serialized cost of one contended record-lock operation (cache-line
    #: RFO + CAS under contention), seconds.
    lock_op_s: float
    #: serialized interconnect cost of one shared-record reader-lock
    #: access (shared-mode cache-line transfer), seconds.
    read_lock_s: float
    #: serialized cost of popping the shared work queue, seconds.
    queue_pop_s: float
    #: lognormal sigma of per-chunk OS jitter (preemptions, migrations,
    #: frequency transitions) — the source of timing unpredictability.
    jitter_sigma: float

    def __post_init__(self) -> None:
        positive = {
            "n_cores": self.n_cores,
            "clock_hz": self.clock_hz,
            "ipc": self.ipc,
        }
        for field_name, value in positive.items():
            if not value > 0:
                raise ValueError(
                    f"MIMD config {self.key!r}: {field_name} must be"
                    f" positive, got {value!r}"
                )
        non_negative = {
            "lock_op_s": self.lock_op_s,
            "read_lock_s": self.read_lock_s,
            "queue_pop_s": self.queue_pop_s,
            "jitter_sigma": self.jitter_sigma,
        }
        for field_name, value in non_negative.items():
            if value < 0:
                raise ValueError(
                    f"MIMD config {self.key!r}: {field_name} must be >= 0,"
                    f" got {value!r}"
                )

    @property
    def registry_name(self) -> str:
        return f"mimd:{self.key}"

    @property
    def peak_ops_per_s(self) -> float:
        return self.n_cores * self.clock_hz * self.ipc

    def op_seconds(self, ops: float) -> float:
        """Pure compute time of ``ops`` simple operations on one core."""
        return ops / (self.clock_hz * self.ipc)


XEON_16 = MimdConfig(
    name="Intel Xeon, 16 cores",
    key="xeon-16",
    n_cores=16,
    clock_hz=2.4e9,
    ipc=1.0,
    lock_op_s=500e-9,
    read_lock_s=20e-9,
    queue_pop_s=150e-9,
    jitter_sigma=0.25,
)

XEON_8 = MimdConfig(
    name="Intel Xeon, 8 cores",
    key="xeon-8",
    n_cores=8,
    clock_hz=2.4e9,
    ipc=1.0,
    lock_op_s=400e-9,
    read_lock_s=20e-9,
    queue_pop_s=150e-9,
    jitter_sigma=0.25,
)
