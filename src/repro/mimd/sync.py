"""Serialized shared resources: locks and the coherence interconnect.

The MIMD model's central mechanism (paper Sections 2.3 and the [13]
findings it cites): asynchronous cores share one dynamic flight-record
database, and every synchronising access — acquiring a record lock,
bouncing a cache line, a CAS on the work queue head — serialises on
shared hardware.  A :class:`SerializedResource` is exactly that: a FIFO
server; requests that arrive while it is busy wait.

This is what makes the model's time *emerge* rather than being asserted:
while aggregate synchronisation demand is far below the resource's
capacity the machine scales like work/16, and as demand approaches
capacity the makespan bends away from linear — the "rapidly increasing"
multi-core curve of the paper.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["SerializedResource"]


@dataclass
class SerializedResource:
    """A FIFO-serialised shared resource (lock word, coherence bus).

    ``free_at`` is the simulation time at which the resource next becomes
    idle.  ``acquire`` models one request: service begins when both the
    requester and the resource are ready, holds for ``hold_s`` and
    returns the completion time.
    """

    free_at: float = 0.0
    total_busy: float = 0.0
    total_wait: float = 0.0
    requests: int = 0

    def acquire(self, now: float, hold_s: float) -> float:
        """Serve one request arriving at ``now`` for ``hold_s`` seconds."""
        if hold_s < 0:
            raise ValueError("negative hold time")
        start = max(now, self.free_at)
        self.total_wait += start - now
        self.free_at = start + hold_s
        self.total_busy += hold_s
        self.requests += 1
        return self.free_at

    @property
    def mean_wait(self) -> float:
        return self.total_wait / self.requests if self.requests else 0.0
