"""Chunk builders: the ATM tasks as shared-memory multi-core work lists.

The MIMD implementation modelled here follows the shared-memory design
the paper describes for [13]: "aircraft data was stored in shared memory
that all processors in the system could access".  Consequences charged
per chunk:

* every scan of a shared flight record takes a reader-lock whose cache
  line moves over the interconnect (``read_lock_s`` of serialized time);
* every match/conflict *update* takes an exclusive record lock — a
  contended cache-line RFO + CAS (``lock_op_s``);
* chunks are handed out by dynamic self-scheduling, so each chunk also
  pays the shared queue pop.

Chunk granularity is one radar report (Task 1) / one track aircraft or
one trial heading (Tasks 2+3) — the natural parallel loop bodies of the
algorithms.
"""

from __future__ import annotations

from typing import List

import numpy as np

from ..core import constants as C
from ..core.collision import DetectionStats
from ..core.resolution import ResolutionStats
from ..core.tracking import TrackingStats
from .events import WorkChunk
from .xeon import MimdConfig

__all__ = ["in_band_counts", "task1_chunks", "task23_chunks"]

# operation counts per algorithm step (simple-op equivalents)
_GATE_OPS = 8
_SCAN_OPS = 2
_PAIR_OPS = 27
_PAIR_SCAN_OPS = 3
_UPDATE_LOCKS = 2


def in_band_counts(alt: np.ndarray) -> np.ndarray:
    """Per-aircraft count of *other* aircraft within the 1000 ft band.

    Sort-based, exact, O(n log n): for each altitude, count neighbours
    inside ``+-ALTITUDE_SEPARATION_FT`` and subtract self.
    """
    order = np.sort(alt)
    lo = np.searchsorted(order, alt - C.ALTITUDE_SEPARATION_FT, side="left")
    hi = np.searchsorted(order, alt + C.ALTITUDE_SEPARATION_FT, side="right")
    return (hi - lo - 1).astype(np.int64)


def task1_chunks(
    config: MimdConfig, n_aircraft: int, stats: TrackingStats
) -> List[WorkChunk]:
    """One chunk per still-unmatched radar report per round."""
    chunks: List[WorkChunk] = []
    for round_no in range(stats.rounds_executed):
        radar_ids = stats.round_radar_ids[round_no]
        live_planes = stats.round_active_planes[round_no]
        candidates = stats.round_candidates_per_radar[round_no]
        compute = config.op_seconds(
            n_aircraft * _SCAN_OPS + live_planes * _GATE_OPS
        )
        scan_sync = n_aircraft * config.read_lock_s
        for rid in radar_ids:
            update_sync = (
                float(candidates[rid]) * _UPDATE_LOCKS * config.lock_op_s
            )
            chunks.append(WorkChunk(compute, scan_sync + update_sync))
    return chunks


def task23_chunks(
    config: MimdConfig,
    alt: np.ndarray,
    det: DetectionStats,
    res: ResolutionStats,
) -> List[WorkChunk]:
    """Detection chunks (one per track) + trial chunks (one per attempt)."""
    n = alt.shape[0]
    band = in_band_counts(alt)
    critical = (
        det.critical_per_aircraft
        if det.critical_per_aircraft is not None
        else np.zeros(n, dtype=np.int64)
    )
    attempts = res.attempts if res.attempts.shape[0] == n else np.zeros(n, np.int64)

    chunks: List[WorkChunk] = []
    for i in range(n):
        compute = config.op_seconds(
            n * _PAIR_SCAN_OPS + int(band[i]) * _PAIR_OPS
        )
        sync = (
            n * config.read_lock_s
            + int(band[i]) * _UPDATE_LOCKS * config.lock_op_s
            + int(critical[i]) * _UPDATE_LOCKS * config.lock_op_s
        )
        chunks.append(WorkChunk(compute, sync))

    # Each trial heading re-sweeps the table for its aircraft.
    for i in np.nonzero(attempts > 0)[0]:
        compute = config.op_seconds(
            n * _PAIR_SCAN_OPS + int(band[i]) * _PAIR_OPS + 30
        )
        sync = n * config.read_lock_s + int(band[i]) * _UPDATE_LOCKS * config.lock_op_s
        for _ in range(int(attempts[i])):
            chunks.append(WorkChunk(compute, sync))
    return chunks
