"""Shared-memory multi-core (MIMD) simulator: the 16-core Xeon.

A discrete-event model: cores self-schedule chunks from a shared work
queue, every access to the shared dynamic flight database pays
serialized interconnect time, and per-chunk OS jitter makes the timing
non-deterministic — the asynchrony the paper contrasts with SIMD
predictability.
"""

from ..backends.registry import register_backend
from .backend import MimdBackend
from .events import QueueRunResult, WorkChunk, simulate_work_queue
from .sync import SerializedResource
from .xeon import XEON_8, XEON_16, MimdConfig

__all__ = [
    "MimdBackend",
    "QueueRunResult",
    "WorkChunk",
    "simulate_work_queue",
    "SerializedResource",
    "XEON_8",
    "XEON_16",
    "MimdConfig",
]


def _register() -> None:
    for cfg in (XEON_16, XEON_8):
        register_backend(cfg.registry_name, lambda cfg=cfg: MimdBackend(cfg))


_register()
