"""Discrete-event simulation of a multi-core work-queue execution.

Cores repeatedly pop work chunks from a shared queue (whose head pointer
is a contended atomic — a :class:`~repro.mimd.sync.SerializedResource`),
compute the chunk, and push their synchronisation traffic through the
coherence interconnect (a second serialized resource).  OS jitter
multiplies each chunk's compute time by a seeded lognormal factor — the
asynchrony that makes MIMD timing *unpredictable* (paper Section 2.3).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import List, Sequence, Tuple

import numpy as np

from .sync import SerializedResource

__all__ = ["WorkChunk", "QueueRunResult", "simulate_work_queue"]


@dataclass(frozen=True)
class WorkChunk:
    """One schedulable unit of work.

    ``compute_s`` is pure per-core computation; ``sync_s`` is the chunk's
    total serialized demand on the coherence interconnect (record locks,
    shared flag updates, cache-line transfers).
    """

    compute_s: float
    sync_s: float = 0.0

    def __post_init__(self) -> None:
        if self.compute_s < 0 or self.sync_s < 0:
            raise ValueError("negative chunk cost")


@dataclass
class QueueRunResult:
    """Outcome of one simulated work-queue execution."""

    makespan_s: float
    n_chunks: int
    n_cores: int
    #: total time cores spent computing (sum over cores).
    busy_s: float
    #: total serialized interconnect busy time.
    sync_busy_s: float
    #: total time chunks waited for the interconnect.
    sync_wait_s: float
    #: total time cores waited to pop the queue.
    queue_wait_s: float
    #: per-core completion times of their last chunk.
    core_finish_s: List[float] = field(default_factory=list)
    #: per-core time spent waiting for the serialized interconnect.
    core_sync_wait_s: List[float] = field(default_factory=list)
    #: per-core time spent waiting to pop the shared queue head.
    core_queue_wait_s: List[float] = field(default_factory=list)

    @property
    def parallel_efficiency(self) -> float:
        """busy / (cores x makespan): 1.0 means perfect scaling."""
        denom = self.n_cores * self.makespan_s
        return self.busy_s / denom if denom > 0 else 0.0


def simulate_work_queue(
    n_cores: int,
    chunks: Sequence[WorkChunk],
    *,
    pop_cost_s: float,
    jitter_sigma: float,
    rng: np.random.Generator,
) -> QueueRunResult:
    """Simulate dynamic self-scheduling of ``chunks`` over ``n_cores``.

    Chunks are handed out in order to whichever core frees up first —
    the classic self-scheduling loop of a shared-memory ATM
    implementation.  Returns the makespan and contention statistics.
    """
    if n_cores <= 0:
        raise ValueError("need at least one core")
    if pop_cost_s < 0:
        raise ValueError("negative pop cost")
    if jitter_sigma < 0:
        raise ValueError("negative jitter sigma")

    queue_head = SerializedResource()
    interconnect = SerializedResource()

    # (ready_time, core_id) min-heap; ties broken by core id.
    ready: List[Tuple[float, int]] = [(0.0, c) for c in range(n_cores)]
    heapq.heapify(ready)

    busy = 0.0
    finish = [0.0] * n_cores
    core_sync_wait = [0.0] * n_cores
    core_queue_wait = [0.0] * n_cores
    n = len(chunks)
    jitter = (
        np.exp(rng.normal(0.0, jitter_sigma, size=n))
        if jitter_sigma > 0
        else np.ones(n)
    )

    for k, chunk in enumerate(chunks):
        now, core = heapq.heappop(ready)
        popped = queue_head.acquire(now, pop_cost_s)
        core_queue_wait[core] += popped - now - pop_cost_s
        # OS jitter stretches both the computation and the time the core
        # holds its locks (a preempted lock holder stalls everyone).
        factor = float(jitter[k])
        compute = chunk.compute_s * factor
        compute_end = popped + compute
        if chunk.sync_s > 0:
            hold = chunk.sync_s * factor
            sync_end = interconnect.acquire(popped, hold)
            core_sync_wait[core] += sync_end - popped - hold
        else:
            sync_end = popped
        done = max(compute_end, sync_end)
        busy += compute
        finish[core] = done
        heapq.heappush(ready, (done, core))

    makespan = max(finish) if n else 0.0
    return QueueRunResult(
        makespan_s=makespan,
        n_chunks=n,
        n_cores=n_cores,
        busy_s=busy,
        sync_busy_s=interconnect.total_busy,
        sync_wait_s=interconnect.total_wait,
        queue_wait_s=queue_head.total_wait,
        core_finish_s=finish,
        core_sync_wait_s=core_sync_wait,
        core_queue_wait_s=core_queue_wait,
    )
