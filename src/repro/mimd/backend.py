"""Multi-core MIMD backend (16-core Xeon).

Functional results come from the shared :mod:`repro.core` algorithms.
Timing comes from the discrete-event work-queue simulation, which —
unlike every other backend — is **not deterministic**: each call draws
fresh OS-jitter factors from the backend's seeded generator, modelling
the asynchrony that keeps shared-memory multiprocessors from offering
the predictable timing hard-real-time scheduling needs (paper
Sections 2.3, 6.2 and the conclusions of [13]).

The generator is seeded at construction, so an *experiment* (a fixed
sequence of calls on one backend instance) is reproducible; repeated
identical calls within it still vary, as on real hardware.
"""

from __future__ import annotations

from typing import Any, Dict, Union

import numpy as np

from ..backends.base import Backend
from ..core.collision import DetectionMode
from ..core.resolution import detect_and_resolve as core_detect_and_resolve
from ..core.tracking import correlate as core_correlate
from ..core.types import FleetState, RadarFrame, TaskTiming, TimingBreakdown
from ..obs import count as obs_count
from ..obs import span as obs_span
from .events import QueueRunResult, simulate_work_queue
from .tasks import task1_chunks, task23_chunks
from .xeon import XEON_8, XEON_16, MimdConfig

__all__ = ["MimdBackend"]

_CONFIGS = {c.key: c for c in (XEON_16, XEON_8)}


class MimdBackend(Backend):
    """A shared-memory multi-core machine running the ATM tasks."""

    deterministic_timing = False
    supports_trace_replay = True

    def __init__(
        self,
        config: Union[str, MimdConfig] = XEON_16,
        *,
        seed: int = 2018,
    ) -> None:
        if isinstance(config, str):
            try:
                config = _CONFIGS[config]
            except KeyError:
                known = ", ".join(sorted(_CONFIGS))
                raise KeyError(
                    f"unknown MIMD config {config!r}; known: {known}"
                ) from None
        self.config = config
        self.name = config.registry_name
        self.timing_seed = seed
        self._rng = np.random.default_rng(seed)

    def _timing(self, task: str, n: int, run: QueueRunResult, extra: Dict[str, Any]) -> TaskTiming:
        sync = min(run.sync_busy_s + run.queue_wait_s, run.makespan_s)
        self._emit_queue_obs(run, sync)
        return TaskTiming(
            task=task,
            platform=self.name,
            n_aircraft=n,
            seconds=run.makespan_s,
            breakdown=TimingBreakdown(
                compute=run.makespan_s - sync,
                sync=sync,
            ),
            detail={
                "mimd.compute": run.makespan_s - sync,
                "mimd.sync": sync,
            },
            stats={
                "chunks": run.n_chunks,
                "parallel_efficiency": run.parallel_efficiency,
                "sync_busy_s": run.sync_busy_s,
                "sync_wait_s": run.sync_wait_s,
                "queue_wait_s": run.queue_wait_s,
                **extra,
            },
        )

    def _emit_queue_obs(self, run: QueueRunResult, sync: float) -> None:
        """Trace one work-queue execution: critical-path attribution plus
        the per-core wait picture (the asynchrony the paper blames)."""
        with obs_span(
            "mimd.compute",
            cat="mimd",
            chunks=run.n_chunks,
            cores=run.n_cores,
            parallel_efficiency=run.parallel_efficiency,
        ) as sp:
            sp.add_modelled(run.makespan_s - sync)
        with obs_span(
            "mimd.sync",
            cat="mimd",
            sync_busy_s=run.sync_busy_s,
            sync_wait_s=run.sync_wait_s,
            queue_wait_s=run.queue_wait_s,
            core_sync_wait_s=list(run.core_sync_wait_s),
            core_queue_wait_s=list(run.core_queue_wait_s),
            core_finish_s=list(run.core_finish_s),
        ) as sp:
            sp.add_modelled(sync)
        obs_count("mimd.chunks", run.n_chunks)
        obs_count("mimd.sync_wait_s", run.sync_wait_s)
        obs_count("mimd.queue_wait_s", run.queue_wait_s)

    def _charge_task1(self, task, n: int, stats) -> TaskTiming:
        """One work-queue simulation of Task 1.

        Draws jitter from ``self._rng``: trace replay preserves timing
        distributions only if the call sequence matches the direct path
        (``periods`` Task-1 runs, then one Task-2+3 run — exactly the
        measurement protocol).
        """
        chunks = task1_chunks(self.config, n, stats)
        run = simulate_work_queue(
            self.config.n_cores,
            chunks,
            pop_cost_s=self.config.queue_pop_s,
            jitter_sigma=self.config.jitter_sigma,
            rng=self._rng,
        )
        timing = self._timing(
            "task1",
            n,
            run,
            {"rounds": stats.rounds_executed, "committed": stats.committed},
        )
        task.add_modelled(timing.seconds)
        return timing

    def _charge_task23(self, task, n: int, alt, det, res) -> TaskTiming:
        chunks = task23_chunks(self.config, alt, det, res)
        run = simulate_work_queue(
            self.config.n_cores,
            chunks,
            pop_cost_s=self.config.queue_pop_s,
            jitter_sigma=self.config.jitter_sigma,
            rng=self._rng,
        )
        timing = self._timing(
            "task23",
            n,
            run,
            {
                "conflicts": det.conflicts,
                "critical_conflicts": det.critical_conflicts,
                "resolved": res.resolved,
                "unresolved": res.unresolved,
                "trials": res.trials_evaluated,
            },
        )
        task.add_modelled(timing.seconds)
        return timing

    def track_and_correlate(self, fleet: FleetState, frame: RadarFrame) -> TaskTiming:
        with self._task_span("task1", fleet.n) as task:
            with obs_span("core.correlate", cat="core"):
                stats = core_correlate(fleet, frame)
            return self._charge_task1(task, fleet.n, stats)

    def detect_and_resolve(
        self,
        fleet: FleetState,
        mode: DetectionMode = DetectionMode.SIGNED,
    ) -> TaskTiming:
        with self._task_span("task23", fleet.n) as task:
            with obs_span("core.detect_and_resolve", cat="core"):
                det, res = core_detect_and_resolve(fleet, mode)
            return self._charge_task23(task, fleet.n, fleet.alt, det, res)

    def track_timing_from_trace(self, period) -> TaskTiming:
        with self._task_span("task1", period.n_aircraft) as task:
            return self._charge_task1(task, period.n_aircraft, period.stats)

    def collision_timing_from_trace(self, collision) -> TaskTiming:
        with self._task_span("task23", collision.n_aircraft) as task:
            return self._charge_task23(
                task,
                collision.n_aircraft,
                collision.alt,
                collision.det,
                collision.res,
            )

    def peak_throughput_ops_per_s(self) -> float:
        return self.config.peak_ops_per_s

    def describe(self) -> Dict[str, Any]:
        info = super().describe()
        info.update(
            kind="shared-memory multi-core model",
            machine=self.config.name,
            n_cores=self.config.n_cores,
            clock_ghz=self.config.clock_hz / 1e9,
            ipc=self.config.ipc,
            jitter_sigma=self.config.jitter_sigma,
            timing_seed=self.timing_seed,
        )
        return info
