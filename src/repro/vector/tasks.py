"""Vectorized ATM task cost models for wide-vector processors.

The loop structures match the CUDA kernels (they are the natural
data-parallel formulations); the cost semantics differ in two ways:

* the "divergence" unit is the vector group (8/16 float64 lanes under an
  AVX-512 mask register) rather than the 32-lane warp;
* cross-core scheduling is static — each parallel region costs one
  barrier, never a lock.
"""

from __future__ import annotations

import math

import numpy as np

from ..core import constants as C
from ..core.bands import group_band_pass_counts
from ..core.collision import DetectionStats
from ..core.resolution import ResolutionStats
from ..core.tracking import TrackingStats
from .machine import VectorConfig

__all__ = ["group_any_counts", "task1_lane_ops", "task23_cost", "charge_task1", "charge_task23"]

# per-element op weights (shared with the other models' granularity)
_GATE_OPS = 10
_SCAN_OPS = 3
_INTERVAL_OPS = 26
_INTERVAL_DIVS = 4
_BOOKKEEPING_OPS = 8
_EDGE_OPS = 20
_SWEEP_BYTES_PER_AIRCRAFT = 40


def group_any_counts(values: np.ndarray, width: int, threshold: float) -> np.ndarray:
    """Per-vector-group deep-path iteration counts.

    Group ``g`` (lanes ``g*width .. g*width+width-1`` of ``values``)
    executes the deep path for element ``p`` when any of its lanes is
    within ``threshold`` of ``values[p]`` — AVX-512 mask semantics, the
    16-lane analogue of :func:`repro.cuda.kernels.check_collision.
    altitude_pass_counts`.  Delegates to the ``O(n log n)`` band-union
    scan of :mod:`repro.core.bands`; counts match the dense
    ``|lanes - t| < threshold`` comparison bit for bit.
    """
    n = values.shape[0]
    n_groups = math.ceil(n / width)
    padded = np.zeros(n_groups * width, dtype=np.float64)
    padded[:n] = values
    lanes = padded.reshape(n_groups, width)
    lane_valid = (np.arange(n_groups * width) < n).reshape(n_groups, width)
    return group_band_pass_counts(lanes, lane_valid, values, threshold)


def task1_lane_ops(config: VectorConfig, n: int, stats: TrackingStats) -> float:
    """Weighted lane-operations of one Task-1 pass.

    Thread-per-radar structure vectorized in groups: each group of
    radars sweeps all aircraft; the ``rMatch[p]`` check is uniform
    across the group, so only live planes pay the gate test.
    """
    width = config.lanes_per_core
    lane_ops = 2.0 * _EDGE_OPS * n  # expected positions + commit, vectorized
    for round_no in range(stats.rounds_executed):
        active_radars = int(stats.round_radar_ids[round_no].shape[0])
        groups = math.ceil(active_radars / width) if active_radars else 0
        live = stats.round_active_planes[round_no]
        # Each group sweeps all n (scan ops) and gates the live planes;
        # a group costs its full width in lanes regardless of masking.
        lane_ops += groups * width * (n * _SCAN_OPS + live * _GATE_OPS)
        lane_ops += stats.candidate_pairs[round_no] * _BOOKKEEPING_OPS * 4.0
    return lane_ops


def charge_task1(config: VectorConfig, n: int, stats: TrackingStats):
    """(seconds, breakdown dict) of one Task-1 pass."""
    compute = config.vector_seconds(task1_lane_ops(config, n, stats))
    stream = config.stream_seconds(
        n * 17.0 * stats.rounds_executed  # expected x/y + rMatch per sweep
    )
    regions = 2 + stats.rounds_executed  # init, rounds, commit
    overhead = regions * config.region_overhead_s
    return max(compute, stream) + overhead, {
        "compute_s": compute,
        "stream_s": stream,
        "overhead_s": overhead,
        "rounds": stats.rounds_executed,
    }


def task23_cost(
    config: VectorConfig,
    alt: np.ndarray,
    det: DetectionStats,
    res: ResolutionStats,
):
    """Weighted lane-ops and stream bytes of one fused Task-2+3 pass."""
    n = alt.shape[0]
    width = config.lanes_per_core
    attempts = res.attempts if res.attempts.shape[0] == n else np.zeros(n, np.int64)

    groups = math.ceil(n / width)
    # First sweep: every group sweeps all n; deep path where any lane is
    # in the altitude band.
    deep_first = group_any_counts(alt, width, C.ALTITUDE_SEPARATION_FT)
    lane_ops = float(groups * width * n * _SCAN_OPS)
    lane_ops += float(
        deep_first.sum() * width * (_INTERVAL_OPS + _INTERVAL_DIVS * config.special_op_factor)
    )
    # Re-sweeps: a resolving aircraft re-checks its trial heading against
    # the whole table — that inner sweep is itself perfectly
    # vectorizable (one track against n-element vectors), so each
    # attempt costs plain per-element lane-ops over its altitude band.
    order = np.sort(alt)
    lo = np.searchsorted(order, alt - C.ALTITUDE_SEPARATION_FT, "left")
    hi = np.searchsorted(order, alt + C.ALTITUDE_SEPARATION_FT, "right")
    band = (hi - lo - 1).astype(np.float64)
    lane_ops += float(
        (
            attempts
            * (n * _SCAN_OPS + band * (_INTERVAL_OPS + _INTERVAL_DIVS * config.special_op_factor))
        ).sum()
    )
    lane_ops += float(attempts.sum()) * _BOOKKEEPING_OPS * 4.0
    if det.critical_per_aircraft is not None and det.critical_per_aircraft.shape[0] == n:
        lane_ops += float(det.critical_per_aircraft.sum()) * _BOOKKEEPING_OPS

    sweeps = 1.0 + (float(attempts.mean()) if n else 0.0)
    stream_bytes = n * _SWEEP_BYTES_PER_AIRCRAFT * sweeps
    return lane_ops, stream_bytes


def charge_task23(
    config: VectorConfig,
    alt: np.ndarray,
    det: DetectionStats,
    res: ResolutionStats,
):
    """(seconds, breakdown dict) of one fused Task-2+3 pass."""
    lane_ops, stream_bytes = task23_cost(config, alt, det, res)
    compute = config.vector_seconds(lane_ops)
    stream = config.stream_seconds(stream_bytes)
    overhead = 2 * config.region_overhead_s  # detect region + resolve region
    return max(compute, stream) + overhead, {
        "compute_s": compute,
        "stream_s": stream,
        "overhead_s": overhead,
        "lane_ops": lane_ops,
    }
