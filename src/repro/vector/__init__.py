"""Wide-vector commodity processor models (paper §7.2 future work)."""

from ..backends.registry import register_backend
from .backend import VectorBackend
from .machine import AVX512_WORKSTATION, XEON_PHI_7250, VectorConfig

__all__ = [
    "VectorBackend",
    "AVX512_WORKSTATION",
    "XEON_PHI_7250",
    "VectorConfig",
]


def _register() -> None:
    for cfg in (XEON_PHI_7250, AVX512_WORKSTATION):
        register_backend(cfg.registry_name, lambda cfg=cfg: VectorBackend(cfg))


_register()
