"""Wide-vector commodity processors (the paper's §7.2 future work).

"Recently, there is a renewed interest in exploring SIMDization through
increasingly wide vector units on commodity processors and accelerators
(such as Intel's Xeon Phi) [8, 9].  We would like to build up on this
work and implement the basic ATM tasks ... in these commodity processors
that provide efficient, vector-based parallel computation."

This package does that: a *short-SIMD* machine model — several CPU cores
each driving 512-bit vector units with mask registers — sitting between
the fully synchronous SIMD array and the fully asynchronous multi-core:

* within a vector group, execution is SIMD: a masked lane still costs
  its slot, and a group whose *any* lane takes a branch pays the branch
  (AVX-512 masking semantics — the analogue of warp divergence);
* across cores, the parallel loops are statically scheduled (OpenMP
  ``schedule(static)``): no shared work queue, no per-record locking —
  the flight table is partitioned, so the timing is *deterministic* up
  to a fixed barrier cost per parallel region.  This is the design
  point the paper's §7.2 hopes recovers SIMD predictability on
  commodity parts.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = ["VectorConfig", "XEON_PHI_7250", "AVX512_WORKSTATION"]


@dataclass(frozen=True)
class VectorConfig:
    """Static description of a wide-vector multi-core processor."""

    name: str
    key: str
    #: physical cores devoted to the ATM tasks.
    n_cores: int
    #: float64 lanes retired per core per cycle (vector width x VPUs).
    lanes_per_core: int
    clock_hz: float
    #: sustained memory bandwidth, GB/s.
    mem_bandwidth_gbs: float
    #: cost of one fork/join barrier across the cores, seconds.
    region_overhead_s: float
    #: issue-cost multiplier for divisions/sqrt relative to a simple op.
    special_op_factor: float

    def __post_init__(self) -> None:
        positive = {
            "n_cores": self.n_cores,
            "lanes_per_core": self.lanes_per_core,
            "clock_hz": self.clock_hz,
            "mem_bandwidth_gbs": self.mem_bandwidth_gbs,
        }
        for field_name, value in positive.items():
            if not value > 0:
                raise ValueError(
                    f"vector config {self.key!r}: {field_name} must be"
                    f" positive, got {value!r}"
                )
        if self.region_overhead_s < 0:
            raise ValueError(
                f"vector config {self.key!r}: region_overhead_s must be"
                f" >= 0, got {self.region_overhead_s!r}"
            )
        if self.special_op_factor < 1.0:
            raise ValueError(
                f"vector config {self.key!r}: special_op_factor must be"
                f" >= 1 (a special op cannot be cheaper than a simple op),"
                f" got {self.special_op_factor!r}"
            )

    @property
    def registry_name(self) -> str:
        return f"vector:{self.key}"

    @property
    def peak_lane_ops_per_s(self) -> float:
        return self.n_cores * self.lanes_per_core * self.clock_hz

    def vector_seconds(self, lane_ops: float) -> float:
        """Time to retire ``lane_ops`` weighted lane-operations."""
        if lane_ops < 0:
            raise ValueError("negative op count")
        return lane_ops / self.peak_lane_ops_per_s

    def stream_seconds(self, n_bytes: float) -> float:
        """Time to stream ``n_bytes`` from memory."""
        if n_bytes < 0:
            raise ValueError("negative byte count")
        return n_bytes / (self.mem_bandwidth_gbs * 1e9)

    def groups(self, n: int) -> int:
        """Vector groups needed for ``n`` elements on one pass."""
        return math.ceil(n / self.lanes_per_core)


XEON_PHI_7250 = VectorConfig(
    name="Intel Xeon Phi 7250 (68 cores, 2x AVX-512)",
    key="xeon-phi-7250",
    n_cores=68,
    lanes_per_core=16,  # two 512-bit VPUs x 8 float64 lanes
    clock_hz=1.4e9,
    mem_bandwidth_gbs=400.0,  # MCDRAM
    region_overhead_s=8e-6,  # barrier across 68 cores
    special_op_factor=6.0,
)

AVX512_WORKSTATION = VectorConfig(
    name="AVX-512 workstation (16 cores)",
    key="avx512-16c",
    n_cores=16,
    lanes_per_core=8,  # one 512-bit FMA pipe x 8 float64 lanes
    clock_hz=3.0e9,
    mem_bandwidth_gbs=80.0,
    region_overhead_s=3e-6,
    special_op_factor=4.0,
)
