"""Wide-vector backend: ATM on AVX-512-class commodity processors."""

from __future__ import annotations

from typing import Any, Dict, Union

from ..backends.base import Backend
from ..core.collision import DetectionMode
from ..core.resolution import detect_and_resolve as core_detect_and_resolve
from ..core.tracking import correlate as core_correlate
from ..core.types import FleetState, RadarFrame, TaskTiming, TimingBreakdown
from ..obs import count as obs_count
from ..obs import span as obs_span
from .machine import AVX512_WORKSTATION, XEON_PHI_7250, VectorConfig
from .tasks import charge_task1, charge_task23

__all__ = ["VectorBackend"]

_CONFIGS = {c.key: c for c in (XEON_PHI_7250, AVX512_WORKSTATION)}


class VectorBackend(Backend):
    """A statically-scheduled, mask-vectorized multi-core machine.

    Deterministic by construction (static loop partitioning, no shared
    work queue, no record locks) — the §7.2 hypothesis that commodity
    vector hardware can recover SIMD-style predictability.
    """

    deterministic_timing = True
    supports_trace_replay = True

    def __init__(self, config: Union[str, VectorConfig] = XEON_PHI_7250) -> None:
        if isinstance(config, str):
            try:
                config = _CONFIGS[config]
            except KeyError:
                known = ", ".join(sorted(_CONFIGS))
                raise KeyError(
                    f"unknown vector config {config!r}; known: {known}"
                ) from None
        self.config = config
        self.name = config.registry_name

    def _emit_vector_obs(self, task, seconds: float, info: dict) -> dict:
        """Trace one vectorized pass: lane work vs fork/join barriers.

        The roofline takes max(compute, stream), so the "lanes" child is
        whichever term won; the loser is reported as an attribute.
        """
        lanes = seconds - info["overhead_s"]
        bound = "compute" if info["compute_s"] >= info["stream_s"] else "stream"
        with obs_span(
            "vector.lanes",
            cat="vector",
            bound=bound,
            compute_s=info["compute_s"],
            stream_s=info["stream_s"],
        ) as sp:
            sp.add_modelled(lanes)
        with obs_span("vector.barriers", cat="vector") as sp:
            sp.add_modelled(info["overhead_s"])
        obs_count("vector.regions", round(info["overhead_s"] / self.config.region_overhead_s))
        task.add_modelled(seconds)
        return {"vector.lanes": lanes, "vector.barriers": info["overhead_s"]}

    def _charge_task1(self, task, n: int, stats) -> TaskTiming:
        seconds, info = charge_task1(self.config, n, stats)
        detail = self._emit_vector_obs(task, seconds, info)
        return TaskTiming(
            task="task1",
            platform=self.name,
            n_aircraft=n,
            seconds=seconds,
            breakdown=TimingBreakdown(
                compute=seconds - info["overhead_s"], sync=info["overhead_s"]
            ),
            detail=detail,
            stats={"committed": stats.committed, **info},
        )

    def _charge_task23(self, task, n: int, alt, det, res) -> TaskTiming:
        seconds, info = charge_task23(self.config, alt, det, res)
        detail = self._emit_vector_obs(task, seconds, info)
        return TaskTiming(
            task="task23",
            platform=self.name,
            n_aircraft=n,
            seconds=seconds,
            breakdown=TimingBreakdown(
                compute=seconds - info["overhead_s"], sync=info["overhead_s"]
            ),
            detail=detail,
            stats={
                "conflicts": det.conflicts,
                "critical_conflicts": det.critical_conflicts,
                "resolved": res.resolved,
                "unresolved": res.unresolved,
                "trials": res.trials_evaluated,
                **info,
            },
        )

    def track_and_correlate(self, fleet: FleetState, frame: RadarFrame) -> TaskTiming:
        with self._task_span("task1", fleet.n) as task:
            with obs_span("core.correlate", cat="core"):
                stats = core_correlate(fleet, frame)
            return self._charge_task1(task, fleet.n, stats)

    def detect_and_resolve(
        self,
        fleet: FleetState,
        mode: DetectionMode = DetectionMode.SIGNED,
    ) -> TaskTiming:
        with self._task_span("task23", fleet.n) as task:
            with obs_span("core.detect_and_resolve", cat="core"):
                det, res = core_detect_and_resolve(fleet, mode)
            return self._charge_task23(task, fleet.n, fleet.alt, det, res)

    def track_timing_from_trace(self, period) -> TaskTiming:
        with self._task_span("task1", period.n_aircraft) as task:
            return self._charge_task1(task, period.n_aircraft, period.stats)

    def collision_timing_from_trace(self, collision) -> TaskTiming:
        with self._task_span("task23", collision.n_aircraft) as task:
            return self._charge_task23(
                task,
                collision.n_aircraft,
                collision.alt,
                collision.det,
                collision.res,
            )

    def peak_throughput_ops_per_s(self) -> float:
        return self.config.peak_lane_ops_per_s

    def describe(self) -> Dict[str, Any]:
        info = super().describe()
        info.update(
            kind="wide-vector commodity processor model",
            machine=self.config.name,
            n_cores=self.config.n_cores,
            lanes_per_core=self.config.lanes_per_core,
            clock_ghz=self.config.clock_hz / 1e9,
            mem_bandwidth_gbs=self.config.mem_bandwidth_gbs,
        )
        return info
