"""Wide-vector backend: ATM on AVX-512-class commodity processors."""

from __future__ import annotations

from typing import Any, Dict, Union

from ..backends.base import Backend
from ..core.collision import DetectionMode
from ..core.resolution import detect_and_resolve as core_detect_and_resolve
from ..core.tracking import correlate as core_correlate
from ..core.types import FleetState, RadarFrame, TaskTiming, TimingBreakdown
from .machine import AVX512_WORKSTATION, XEON_PHI_7250, VectorConfig
from .tasks import charge_task1, charge_task23

__all__ = ["VectorBackend"]

_CONFIGS = {c.key: c for c in (XEON_PHI_7250, AVX512_WORKSTATION)}


class VectorBackend(Backend):
    """A statically-scheduled, mask-vectorized multi-core machine.

    Deterministic by construction (static loop partitioning, no shared
    work queue, no record locks) — the §7.2 hypothesis that commodity
    vector hardware can recover SIMD-style predictability.
    """

    deterministic_timing = True

    def __init__(self, config: Union[str, VectorConfig] = XEON_PHI_7250) -> None:
        if isinstance(config, str):
            try:
                config = _CONFIGS[config]
            except KeyError:
                known = ", ".join(sorted(_CONFIGS))
                raise KeyError(
                    f"unknown vector config {config!r}; known: {known}"
                ) from None
        self.config = config
        self.name = config.registry_name

    def track_and_correlate(self, fleet: FleetState, frame: RadarFrame) -> TaskTiming:
        stats = core_correlate(fleet, frame)
        seconds, info = charge_task1(self.config, fleet.n, stats)
        return TaskTiming(
            task="task1",
            platform=self.name,
            n_aircraft=fleet.n,
            seconds=seconds,
            breakdown=TimingBreakdown(
                compute=seconds - info["overhead_s"], sync=info["overhead_s"]
            ),
            stats={"committed": stats.committed, **info},
        )

    def detect_and_resolve(
        self,
        fleet: FleetState,
        mode: DetectionMode = DetectionMode.SIGNED,
    ) -> TaskTiming:
        det, res = core_detect_and_resolve(fleet, mode)
        seconds, info = charge_task23(self.config, fleet.alt, det, res)
        return TaskTiming(
            task="task23",
            platform=self.name,
            n_aircraft=fleet.n,
            seconds=seconds,
            breakdown=TimingBreakdown(
                compute=seconds - info["overhead_s"], sync=info["overhead_s"]
            ),
            stats={
                "conflicts": det.conflicts,
                "critical_conflicts": det.critical_conflicts,
                "resolved": res.resolved,
                "unresolved": res.unresolved,
                "trials": res.trials_evaluated,
                **info,
            },
        )

    def peak_throughput_ops_per_s(self) -> float:
        return self.config.peak_lane_ops_per_s

    def describe(self) -> Dict[str, Any]:
        info = super().describe()
        info.update(
            kind="wide-vector commodity processor model",
            machine=self.config.name,
            n_cores=self.config.n_cores,
            lanes_per_core=self.config.lanes_per_core,
            clock_ghz=self.config.clock_hz / 1e9,
        )
        return info
