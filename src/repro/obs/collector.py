"""The process-global trace collector and its zero-overhead no-op mode.

Instrumented code throughout the library calls the module-level helpers
(:func:`span`, :func:`count`, :func:`event`) unconditionally.  When no
collector is active — the default — each helper is a single global read
followed by an early return (``span`` hands back a shared no-op context
manager), so the instrumented hot paths cost nothing measurable; the
``benchmarks/`` suite runs in this mode.

When a :class:`Collector` is activated (usually via the
:func:`collecting` context manager, or the ``atm-repro profile`` /
``report --trace`` commands), every span records **two clocks**:

* *wall time* — how long the simulator itself took, from
  ``time.perf_counter`` (start relative to the collector's epoch);
* *modelled time* — architecture seconds the backend's cost model
  attributed to the span, via :meth:`Span.add_modelled`.

Keeping both is the point: the paper's claims are about modelled time,
while the ROADMAP's "fast as the hardware allows" goal is about wall
time, and a profile must show where each one goes.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional

__all__ = [
    "Collector",
    "Span",
    "SpanRecord",
    "NULL_SPAN",
    "activate",
    "deactivate",
    "get_collector",
    "is_active",
    "collecting",
    "span",
    "count",
    "event",
]


@dataclass
class SpanRecord:
    """One finished span, as stored by the collector."""

    span_id: int
    parent_id: Optional[int]
    name: str
    cat: str
    #: wall-clock start, seconds since the collector's epoch.
    wall_start_s: float
    #: wall-clock duration of the instrumented region, seconds.
    wall_dur_s: float
    #: modelled architecture seconds attributed to this span.
    modelled_s: float
    attrs: Dict[str, Any] = field(default_factory=dict)

    def to_event(self) -> Dict[str, Any]:
        """The span as one JSON-lines event (see docs/observability.md)."""
        return {
            "type": "span",
            "id": self.span_id,
            "parent": self.parent_id,
            "name": self.name,
            "cat": self.cat,
            "wall_start_s": self.wall_start_s,
            "wall_dur_s": self.wall_dur_s,
            "modelled_s": self.modelled_s,
            "attrs": dict(self.attrs),
        }

    @classmethod
    def from_event(cls, event: Dict[str, Any]) -> "SpanRecord":
        """Rebuild a record from its :meth:`to_event` dict (pool shipping)."""
        return cls(
            span_id=int(event["id"]),
            parent_id=None if event["parent"] is None else int(event["parent"]),
            name=event["name"],
            cat=event["cat"],
            wall_start_s=float(event["wall_start_s"]),
            wall_dur_s=float(event["wall_dur_s"]),
            modelled_s=float(event["modelled_s"]),
            attrs=dict(event.get("attrs", {})),
        )


class Span:
    """A live tracing span; use as a context manager.

    Created by :meth:`Collector.span` (or the module-level :func:`span`
    helper).  On exit it appends a :class:`SpanRecord` to the collector.
    """

    __slots__ = (
        "_collector",
        "name",
        "cat",
        "attrs",
        "span_id",
        "parent_id",
        "modelled_s",
        "_t0",
    )

    def __init__(self, collector: "Collector", name: str, cat: str, attrs: Dict[str, Any]):
        self._collector = collector
        self.name = name
        self.cat = cat
        self.attrs = attrs
        self.span_id = -1
        self.parent_id: Optional[int] = None
        self.modelled_s = 0.0
        self._t0 = 0.0

    def set(self, **attrs: Any) -> "Span":
        """Attach or overwrite span attributes."""
        self.attrs.update(attrs)
        return self

    def add_modelled(self, seconds: float) -> "Span":
        """Attribute ``seconds`` of modelled architecture time to the span."""
        self.modelled_s += float(seconds)
        return self

    def __enter__(self) -> "Span":
        c = self._collector
        self.span_id = c._next_id
        c._next_id += 1
        self.parent_id = c._stack[-1] if c._stack else None
        c._stack.append(self.span_id)
        self._t0 = c._clock()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        c = self._collector
        t1 = c._clock()
        if c._stack and c._stack[-1] == self.span_id:
            c._stack.pop()
        c.spans.append(
            SpanRecord(
                span_id=self.span_id,
                parent_id=self.parent_id,
                name=self.name,
                cat=self.cat,
                wall_start_s=self._t0 - c.epoch,
                wall_dur_s=t1 - self._t0,
                modelled_s=self.modelled_s,
                attrs=self.attrs,
            )
        )
        return False


class _NullSpan:
    """Shared do-nothing span handed out when no collector is active."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def set(self, **attrs: Any) -> "_NullSpan":
        return self

    def add_modelled(self, seconds: float) -> "_NullSpan":
        return self


#: The singleton no-op span: every disabled-mode ``span()`` call returns it.
NULL_SPAN = _NullSpan()


class Collector:
    """Accumulates spans, instant events and monotonic counters."""

    def __init__(self, clock=time.perf_counter) -> None:
        self._clock = clock
        self.epoch = clock()
        self.spans: List[SpanRecord] = []
        self.events: List[Dict[str, Any]] = []
        self.counters: Dict[str, float] = {}
        self._stack: List[int] = []
        self._next_id = 0

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------

    def span(self, name: str, cat: str = "", **attrs: Any) -> Span:
        """Open a new span (context manager); nests under the current one."""
        return Span(self, name, cat, attrs)

    def count(self, name: str, value: float = 1.0) -> None:
        """Increment the monotonic counter ``name`` by ``value``."""
        self.counters[name] = self.counters.get(name, 0.0) + value

    def event(self, name: str, cat: str = "", **attrs: Any) -> None:
        """Record an instant event at the current wall time."""
        self.events.append(
            {
                "type": "event",
                "name": name,
                "cat": cat,
                "wall_start_s": self._clock() - self.epoch,
                "parent": self._stack[-1] if self._stack else None,
                "attrs": attrs,
            }
        )

    def clear(self) -> None:
        """Drop all recorded data (counters included)."""
        self.spans.clear()
        self.events.clear()
        self.counters.clear()
        self._stack.clear()
        self._next_id = 0

    # ------------------------------------------------------------------
    # composition: folding other collectors (pool shards) into this one
    # ------------------------------------------------------------------

    def adopt(
        self,
        spans: List[SpanRecord],
        events: Optional[List[Dict[str, Any]]] = None,
        counters: Optional[Dict[str, float]] = None,
        *,
        parent_id: Optional[int] = None,
        wall_offset_s: float = 0.0,
    ) -> Dict[int, int]:
        """Graft foreign spans/events/counters into this collector.

        Span ids are remapped onto this collector's id space; spans whose
        parent is not among the adopted set (the foreign roots) are
        re-parented under ``parent_id``.  ``wall_offset_s`` shifts the
        foreign wall timeline (collectors from other processes have their
        own epoch).  Counters are summed.  Returns the old->new id map.
        """
        id_map: Dict[int, int] = {}
        for s in spans:
            id_map[s.span_id] = self._next_id
            self._next_id += 1
        for s in spans:
            foreign_parent = s.parent_id
            if foreign_parent is not None and foreign_parent in id_map:
                new_parent: Optional[int] = id_map[foreign_parent]
            else:
                new_parent = parent_id
            self.spans.append(
                SpanRecord(
                    span_id=id_map[s.span_id],
                    parent_id=new_parent,
                    name=s.name,
                    cat=s.cat,
                    wall_start_s=s.wall_start_s + wall_offset_s,
                    wall_dur_s=s.wall_dur_s,
                    modelled_s=s.modelled_s,
                    attrs=dict(s.attrs),
                )
            )
        for e in events or []:
            foreign_parent = e.get("parent")
            self.events.append(
                {
                    **e,
                    "wall_start_s": float(e.get("wall_start_s", 0.0))
                    + wall_offset_s,
                    "parent": id_map.get(foreign_parent, parent_id)
                    if foreign_parent is not None
                    else parent_id,
                }
            )
        for name, value in (counters or {}).items():
            self.count(name, value)
        return id_map

    def merge(self, other: "Collector", *, root_name: str = "merge") -> int:
        """Fold ``other`` into this collector under one synthetic root span.

        The root (category ``merge``) nests under the currently-open
        span, carries the other collector's total wall seconds, and
        becomes the parent of the other's root spans, so a shard-local
        collector from a pool worker lands as one subtree instead of
        being dropped.  Counters are summed.  Returns the root span id.
        """
        root_id = self._next_id
        self._next_id += 1
        now = self._clock() - self.epoch
        wall_end = max(
            (s.wall_start_s + s.wall_dur_s for s in other.spans), default=0.0
        )
        self.spans.append(
            SpanRecord(
                span_id=root_id,
                parent_id=self._stack[-1] if self._stack else None,
                name=root_name,
                cat="merge",
                wall_start_s=now,
                wall_dur_s=wall_end,
                modelled_s=0.0,
                attrs={"spans": len(other.spans)},
            )
        )
        self.adopt(
            other.spans,
            other.events,
            other.counters,
            parent_id=root_id,
            wall_offset_s=now,
        )
        return root_id

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------

    def span_names(self) -> List[str]:
        """Distinct span names, in first-seen order."""
        seen: Dict[str, None] = {}
        for s in self.spans:
            seen.setdefault(s.name, None)
        return list(seen)

    def find(self, name: str) -> List[SpanRecord]:
        """All spans with the given name."""
        return [s for s in self.spans if s.name == name]

    def children_of(self, span_id: int) -> List[SpanRecord]:
        return [s for s in self.spans if s.parent_id == span_id]

    def roots(self) -> List[SpanRecord]:
        return [s for s in self.spans if s.parent_id is None]

    def total_modelled(self, cat: Optional[str] = None) -> float:
        """Sum of modelled seconds over spans (optionally one category)."""
        return sum(s.modelled_s for s in self.spans if cat is None or s.cat == cat)

    def total_wall(self, cat: Optional[str] = None) -> float:
        return sum(s.wall_dur_s for s in self.spans if cat is None or s.cat == cat)


# ---------------------------------------------------------------------------
# the process-global collector
# ---------------------------------------------------------------------------

_ACTIVE: Optional[Collector] = None


def get_collector() -> Optional[Collector]:
    """The active collector, or None when tracing is disabled."""
    return _ACTIVE


def is_active() -> bool:
    return _ACTIVE is not None


def activate(collector: Optional[Collector] = None) -> Collector:
    """Install ``collector`` (or a fresh one) as the process collector."""
    global _ACTIVE
    _ACTIVE = collector if collector is not None else Collector()
    return _ACTIVE


def deactivate() -> Optional[Collector]:
    """Return to no-op mode; returns the collector that was active."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = None
    return previous


@contextmanager
def collecting(collector: Optional[Collector] = None) -> Iterator[Collector]:
    """Activate a collector for the duration of the ``with`` block.

    The previously-active collector (usually None) is restored on exit,
    so nested/test usage cannot leak tracing into later code.
    """
    global _ACTIVE
    previous = _ACTIVE
    c = collector if collector is not None else Collector()
    _ACTIVE = c
    try:
        yield c
    finally:
        _ACTIVE = previous


def span(name: str, cat: str = "", **attrs: Any):
    """Open a span on the active collector, or a shared no-op span."""
    c = _ACTIVE
    if c is None:
        return NULL_SPAN
    return c.span(name, cat, **attrs)


def count(name: str, value: float = 1.0) -> None:
    """Increment a counter on the active collector (no-op when disabled)."""
    c = _ACTIVE
    if c is not None:
        c.count(name, value)


def event(name: str, cat: str = "", **attrs: Any) -> None:
    """Record an instant event on the active collector (no-op when disabled)."""
    c = _ACTIVE
    if c is not None:
        c.event(name, cat, **attrs)
