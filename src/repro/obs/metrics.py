"""Labeled metrics: counters, gauges and exact histograms with SLO readouts.

The :mod:`repro.obs.collector` layer records *traces* — what happened,
span by span.  This module records *metrics* — labeled aggregates that
survive a whole sweep and can be exported, merged across processes and
compared across runs:

* :class:`Counter` — monotonic labeled totals (cache traffic, trace
  lookups, shard sources, injected faults, deadline misses);
* :class:`Gauge` — last-written labeled values (bench stage timings);
* :class:`Histogram` — **exact** distributions over fixed bucket
  boundaries (linear for deadline margins, logarithmic for modelled
  seconds), carrying precise ``sum``/``count``/``min``/``max`` plus
  interpolated p50/p95/p99 readouts, and mergeable bucket-by-bucket so
  pool shards fold losslessly into the parent.

Zero-overhead contract — identical to the collector's: every helper
(:func:`metric_inc`, :func:`metric_set`, :func:`metric_observe`) is a
single global read plus an early return when no
:class:`MetricsRegistry` is active, which is the default.  Activate one
with :func:`recording` (or :func:`activate_metrics`).

Determinism: label sets are canonicalized through
:func:`repro.core.canonical.canonical_json` (string-coerced values,
sorted keys), and :meth:`MetricsRegistry.snapshot` emits a fully sorted
canonical structure, so two runs recording the same observations in the
same order produce byte-identical snapshots.  Instruments declared
``deterministic`` carry only modelled (architecture-time) quantities;
``snapshot(deterministic_only=True)`` projects onto those, which is the
form embedded in ``report.json`` (its byte-equality guarantee across
``--jobs``, caching, trace replay and fault recovery extends to the
snapshot).  See docs/observability.md, "Metrics & dashboard".
"""

from __future__ import annotations

import json
import math
import re
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Mapping, Optional, Sequence, Tuple

from ..core.canonical import canonical_json, canonicalize

__all__ = [
    "DECLARATIONS",
    "MetricDecl",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEADLINE_MARGIN_BUCKETS",
    "MODELLED_SECONDS_BUCKETS",
    "SERVICE_LATENCY_BUCKETS",
    "ADMISSION_MARGIN_BUCKETS",
    "log_buckets",
    "linear_buckets",
    "activate_metrics",
    "deactivate_metrics",
    "get_registry",
    "metrics_active",
    "recording",
    "metric_inc",
    "metric_set",
    "metric_observe",
    "to_openmetrics",
    "parse_openmetrics",
]


# ---------------------------------------------------------------------------
# bucket schemes
# ---------------------------------------------------------------------------


def linear_buckets(lo: float, hi: float, count: int) -> Tuple[float, ...]:
    """``count + 1`` evenly spaced upper bounds from ``lo`` to ``hi``."""
    if count < 1 or hi <= lo:
        raise ValueError("need hi > lo and count >= 1")
    step = (hi - lo) / count
    return tuple(round(lo + i * step, 12) for i in range(count + 1))


def log_buckets(lo: float, hi: float) -> Tuple[float, ...]:
    """1-2-5 decade ladder of upper bounds covering ``[lo, hi]``."""
    if lo <= 0 or hi <= lo:
        raise ValueError("need 0 < lo < hi")
    bounds: List[float] = []
    decade = 10.0 ** math.floor(math.log10(lo))
    while decade <= hi:
        for mantissa in (1.0, 2.0, 5.0):
            bound = mantissa * decade
            if lo <= bound <= hi * (1 + 1e-12):
                bounds.append(bound)
        decade *= 10.0
    return tuple(bounds)


#: Deadline-margin bounds: linear across ±0.5 s (the period budget), so
#: a negative-margin (missed-deadline) observation is visible directly
#: in the bucket counts.
DEADLINE_MARGIN_BUCKETS = linear_buckets(-0.5, 0.5, 20)

#: Modelled-seconds bounds: 1-2-5 ladder from 1 µs to 10 s, matching
#: the dynamic range of the paper's timing curves.
MODELLED_SECONDS_BUCKETS = log_buckets(1e-6, 10.0)

#: Service request-latency bounds: 1-2-5 ladder from 100 µs (a warm
#: coalesced hit) to 100 s (a cold full-matrix dispatch under load).
SERVICE_LATENCY_BUCKETS = log_buckets(1e-4, 100.0)

#: Admission-margin bounds: linear across ±30 s around the request
#: deadline, so rejected-with-negative-margin requests are directly
#: visible in the bucket counts (the service analogue of
#: :data:`DEADLINE_MARGIN_BUCKETS`).
ADMISSION_MARGIN_BUCKETS = linear_buckets(-30.0, 30.0, 24)


# ---------------------------------------------------------------------------
# instruments
# ---------------------------------------------------------------------------


def canonical_labels(labels: Mapping[str, Any]) -> str:
    """The canonical identity of one label set.

    Values are coerced to strings first (``960`` and ``"960"`` are the
    same series), then serialized with sorted keys through the same
    canonicalizer the cache fingerprints use, so the identity is stable
    across processes and insertion orders.
    """
    return canonical_json({str(k): str(v) for k, v in labels.items()})


class Counter:
    """A monotonic total; :meth:`inc` with a non-negative value."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, value: float = 1.0) -> None:
        value = float(value)
        if value < 0.0:
            raise ValueError(f"counters only go up; got {value}")
        self.value += value

    def merge(self, other: "Counter") -> None:
        self.value += other.value

    def to_dict(self) -> Dict[str, Any]:
        return {"value": self.value}

    def load(self, data: Mapping[str, Any]) -> None:
        self.value += float(data["value"])


class Gauge:
    """A last-write-wins value; :meth:`set` replaces it."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def merge(self, other: "Gauge") -> None:
        self.value = other.value

    def to_dict(self) -> Dict[str, Any]:
        return {"value": self.value}

    def load(self, data: Mapping[str, Any]) -> None:
        self.value = float(data["value"])


class Histogram:
    """Exact fixed-boundary histogram with quantile readouts.

    ``bounds`` are the finite bucket upper limits (``le`` values); an
    implicit ``+Inf`` bucket catches the rest.  The instrument keeps
    per-bucket counts plus exact ``sum``/``count``/``min``/``max``, so
    merging two histograms over the same bounds loses nothing, and
    :meth:`quantile` interpolates within the bracketing bucket (exact at
    the recorded ``min``/``max`` endpoints).
    """

    __slots__ = ("bounds", "bucket_counts", "count", "sum", "min", "max")

    def __init__(self, bounds: Sequence[float]) -> None:
        self.bounds = tuple(float(b) for b in bounds)
        if list(self.bounds) != sorted(set(self.bounds)):
            raise ValueError("histogram bounds must be strictly increasing")
        self.bucket_counts = [0] * (len(self.bounds) + 1)  # + the +Inf bucket
        self.count = 0
        self.sum = 0.0
        self.min = math.inf
        self.max = -math.inf

    def observe(self, value: float) -> None:
        value = float(value)
        idx = len(self.bounds)
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                idx = i
                break
        self.bucket_counts[idx] += 1
        self.count += 1
        self.sum += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    def merge(self, other: "Histogram") -> None:
        if other.bounds != self.bounds:
            raise ValueError("cannot merge histograms with different bounds")
        for i, c in enumerate(other.bucket_counts):
            self.bucket_counts[i] += c
        self.count += other.count
        self.sum += other.sum
        self.min = min(self.min, other.min)
        self.max = max(self.max, other.max)

    def quantile(self, q: float) -> float:
        """The q-quantile (0..1), linearly interpolated within buckets."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be within [0, 1]")
        if self.count == 0:
            return math.nan
        rank = q * self.count
        seen = 0
        for i, c in enumerate(self.bucket_counts):
            if c == 0:
                continue
            lo = self.bounds[i - 1] if i > 0 else self.min
            hi = self.bounds[i] if i < len(self.bounds) else self.max
            lo = max(lo, self.min)
            hi = min(hi, self.max)
            if rank <= seen + c:
                frac = (rank - seen) / c
                return lo + (hi - lo) * min(max(frac, 0.0), 1.0)
            seen += c
        return self.max

    def to_dict(self) -> Dict[str, Any]:
        return {
            "bounds": list(self.bounds),
            "bucket_counts": list(self.bucket_counts),
            "count": self.count,
            "sum": self.sum,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
            "p50": None if self.count == 0 else self.quantile(0.50),
            "p95": None if self.count == 0 else self.quantile(0.95),
            "p99": None if self.count == 0 else self.quantile(0.99),
        }

    def load(self, data: Mapping[str, Any]) -> None:
        other = Histogram(data["bounds"])
        other.bucket_counts = [int(c) for c in data["bucket_counts"]]
        other.count = int(data["count"])
        other.sum = float(data["sum"])
        other.min = math.inf if data.get("min") is None else float(data["min"])
        other.max = -math.inf if data.get("max") is None else float(data["max"])
        self.merge(other)


# ---------------------------------------------------------------------------
# declarations
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class MetricDecl:
    """Static metadata of one metric family."""

    name: str
    kind: str  # "counter" | "gauge" | "histogram"
    help: str
    unit: str = ""
    #: deterministic metrics carry only modelled quantities, so their
    #: series are byte-identical across --jobs/cache/trace/fault paths
    #: and may be embedded in report.json.
    deterministic: bool = False
    #: finite bucket upper bounds (histograms only).
    buckets: Tuple[float, ...] = ()

    def __post_init__(self) -> None:
        if self.kind not in ("counter", "gauge", "histogram"):
            raise ValueError(f"unknown metric kind {self.kind!r}")
        if not re.fullmatch(r"[a-zA-Z_:][a-zA-Z0-9_:]*", self.name):
            raise ValueError(f"invalid metric name {self.name!r}")
        if self.unit and not self.name.endswith(f"_{self.unit}"):
            raise ValueError(
                f"OpenMetrics requires {self.name!r} to end with its unit"
                f" {self.unit!r}"
            )
        if self.kind == "histogram" and not self.buckets:
            raise ValueError(f"histogram {self.name!r} needs bucket bounds")


#: Every metric the harness records, by family name.  The deterministic
#: families reproduce the paper's deadline table from the snapshot alone.
DECLARATIONS: Dict[str, MetricDecl] = {
    d.name: d
    for d in (
        MetricDecl(
            name="atm_deadline_margin_seconds",
            kind="histogram",
            help=(
                "Remaining half-second period budget after the period's"
                " modelled task time (negative = deadline missed); labels:"
                " platform, n_aircraft, period (tracking|collision), and"
                " source (sweep|schedule) distinguishing measurement sweeps"
                " from full major-cycle schedules"
            ),
            unit="seconds",
            deterministic=True,
            buckets=DEADLINE_MARGIN_BUCKETS,
        ),
        MetricDecl(
            name="atm_deadline_misses",
            kind="counter",
            help=(
                "Periods whose modelled task time exceeded the 0.5 s budget"
                " (or whose Task 2+3 was skipped); labels: platform,"
                " n_aircraft, source.  Recorded as 0 for clean cells so the"
                " paper's never-miss claim is readable from the snapshot."
            ),
            deterministic=True,
        ),
        MetricDecl(
            name="atm_deadline_periods",
            kind="counter",
            help=(
                "Half-second periods evaluated against the deadline budget"
                " (the denominator of the miss rate); labels: platform,"
                " n_aircraft, source"
            ),
            deterministic=True,
        ),
        MetricDecl(
            name="atm_store_requests",
            kind="counter",
            help=(
                "Content-addressed store traffic; labels: store"
                " (result|trace), outcome (hit|miss|store|quarantined|"
                "io_error)"
            ),
        ),
        MetricDecl(
            name="atm_trace_requests",
            kind="counter",
            help=(
                "Functional-trace tier lookups; labels: source"
                " (memo|store|compute|pool|stream)"
            ),
        ),
        MetricDecl(
            name="atm_prune_candidates",
            kind="counter",
            help=(
                "Candidate pairs surviving sweepline/grid-hash pruning"
                " in the functional pass; labels: task (detect|resolve|"
                "track)"
            ),
        ),
        MetricDecl(
            name="atm_trace_bytes",
            kind="counter",
            help=(
                "Functional-trace record bytes produced by the streaming"
                " generator; labels: record (period|collision)"
            ),
            unit="bytes",
        ),
        MetricDecl(
            name="atm_trace_peak_bytes",
            kind="gauge",
            help=(
                "Peak resident trace bytes of the latest functional pass;"
                " labels: path (materialized|streamed)"
            ),
            unit="bytes",
        ),
        MetricDecl(
            name="atm_shards",
            kind="counter",
            help=(
                "Sweep shards by where their result came from; labels:"
                " source (cache|journal|pool|inline)"
            ),
        ),
        MetricDecl(
            name="atm_faults",
            kind="counter",
            help=(
                "Harness fault events (injected chaos and real failures);"
                " labels: kind"
            ),
        ),
        MetricDecl(
            name="atm_bench_stage_seconds",
            kind="gauge",
            help=(
                "Wall seconds of the latest bench stage; labels: stage"
                " (reexec|trace_cold|trace_warm)"
            ),
            unit="seconds",
        ),
        MetricDecl(
            name="atm_search_evaluations",
            kind="counter",
            help=(
                "Design-space candidates judged by the search evaluator;"
                " labels: searcher (random|genetic|halving|paper), outcome"
                " (evaluated|rejected|memoized).  Zero-initialized per"
                " searcher at evaluator construction."
            ),
        ),
        MetricDecl(
            name="atm_search_rejected",
            kind="counter",
            help=(
                "Candidates rejected by the lumos-style physical budget"
                " before any sweep work; labels: searcher, constraint"
                " (area|power).  Recorded as 0 for clean runs so budget"
                " behaviour is readable from the snapshot alone."
            ),
        ),
        MetricDecl(
            name="atm_search_rounds",
            kind="counter",
            help=(
                "Search rounds completed (GA generations, halving rungs,"
                " 1 for random search); labels: searcher"
            ),
        ),
        MetricDecl(
            name="atm_search_best_fitness",
            kind="gauge",
            help=(
                "Best (lowest) full-fidelity fitness seen so far by a"
                " searcher; labels: searcher, objective"
            ),
        ),
        MetricDecl(
            name="atm_service_requests",
            kind="counter",
            help=(
                "Requests seen by the sweep service (or, with"
                " endpoint=client, sent by the load generator); labels:"
                " endpoint, outcome (served|coalesced|rejected_deadline|"
                "rejected_backpressure|bad_request|error)"
            ),
        ),
        MetricDecl(
            name="atm_service_request_seconds",
            kind="histogram",
            help=(
                "Wall-clock latency from request receipt to the last"
                " response byte (endpoint=client: as observed by the"
                " closed-loop load generator); labels: endpoint, outcome."
                "  Measured wall time — never the paper's modelled"
                " architecture seconds (see EXPERIMENTS.md)."
            ),
            unit="seconds",
            buckets=SERVICE_LATENCY_BUCKETS,
        ),
        MetricDecl(
            name="atm_service_admission_margin_seconds",
            kind="histogram",
            help=(
                "Estimated slack between a request's deadline budget and"
                " the admission controller's completion estimate at"
                " admission time (negative = rejected with a deadline"
                " verdict); labels: outcome"
            ),
            unit="seconds",
            buckets=ADMISSION_MARGIN_BUCKETS,
        ),
        MetricDecl(
            name="atm_service_inflight_requests",
            kind="gauge",
            help=(
                "Admitted requests not yet answered; labels: kind"
                " (current|peak)"
            ),
        ),
        MetricDecl(
            name="atm_service_queue_cells",
            kind="gauge",
            help=(
                "Measurement cells waiting for a batch dispatch; labels:"
                " kind (current|peak)"
            ),
        ),
        MetricDecl(
            name="atm_service_batches",
            kind="counter",
            help=(
                "Batched process-pool dispatches through the sweep engine;"
                " labels: outcome (ok|error)"
            ),
        ),
        MetricDecl(
            name="atm_service_batch_cells",
            kind="histogram",
            help=(
                "Distinct measurement cells folded into one batched"
                " dispatch (coalesced duplicates count once); no labels"
            ),
            buckets=(1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 200.0, 500.0),
        ),
        MetricDecl(
            name="atm_service_retries",
            kind="counter",
            help=(
                "Request retries by the service load generator, by"
                " taxonomy; labels: endpoint, reason (timeout|reset|"
                "rejected_backpressure|rejected_draining|circuit_open)"
            ),
        ),
        MetricDecl(
            name="atm_service_drain_seconds",
            kind="gauge",
            help=(
                "Wall-clock seconds the last graceful drain took to"
                " flush in-flight cells before shutdown (0 until a"
                " drain runs); no labels"
            ),
            unit="seconds",
        ),
        MetricDecl(
            name="atm_service_journal_replayed",
            kind="counter",
            help=(
                "Request-journal lines acted on at --resume startup;"
                " labels: kind (restored = served payloads reloaded,"
                " replayed = admitted-but-unserved cells re-enqueued,"
                " dropped = torn/corrupt lines discarded)"
            ),
        ),
    )
}


# ---------------------------------------------------------------------------
# the registry
# ---------------------------------------------------------------------------


class MetricsRegistry:
    """Holds every labeled series of every declared metric family.

    One registry per recording scope; the process-global one is
    installed with :func:`recording` / :func:`activate_metrics`.  The
    record methods (:meth:`inc`, :meth:`set`, :meth:`observe`) create
    series on first touch; unknown family names raise unless declared
    first with :meth:`declare` — silent typos would otherwise vanish
    into never-exported series.
    """

    def __init__(
        self, declarations: Optional[Mapping[str, MetricDecl]] = None
    ) -> None:
        self.declarations: Dict[str, MetricDecl] = dict(
            DECLARATIONS if declarations is None else declarations
        )
        #: family name -> canonical label json -> instrument
        self._series: Dict[str, Dict[str, Any]] = {}

    def declare(self, decl: MetricDecl) -> MetricDecl:
        existing = self.declarations.get(decl.name)
        if existing is not None and existing != decl:
            raise ValueError(f"metric {decl.name!r} already declared differently")
        self.declarations[decl.name] = decl
        return decl

    # -- recording ------------------------------------------------------

    def _instrument(self, name: str, kind: str, labels: Mapping[str, Any]):
        decl = self.declarations.get(name)
        if decl is None:
            raise KeyError(f"metric {name!r} is not declared")
        if decl.kind != kind:
            raise TypeError(f"metric {name!r} is a {decl.kind}, not a {kind}")
        family = self._series.setdefault(name, {})
        key = canonical_labels(labels)
        instrument = family.get(key)
        if instrument is None:
            if kind == "counter":
                instrument = Counter()
            elif kind == "gauge":
                instrument = Gauge()
            else:
                instrument = Histogram(decl.buckets)
            family[key] = instrument
        return instrument

    def inc(self, name: str, value: float = 1.0, **labels: Any) -> None:
        self._instrument(name, "counter", labels).inc(value)

    def set(self, name: str, value: float, **labels: Any) -> None:
        self._instrument(name, "gauge", labels).set(value)

    def observe(self, name: str, value: float, **labels: Any) -> None:
        self._instrument(name, "histogram", labels).observe(value)

    # -- queries --------------------------------------------------------

    def value(self, name: str, **labels: Any) -> Optional[float]:
        """A counter/gauge series' value, or None when never recorded."""
        instrument = self._series.get(name, {}).get(canonical_labels(labels))
        return None if instrument is None else instrument.value

    def series(self, name: str) -> Dict[str, Any]:
        """Canonical-label-json -> instrument for one family."""
        return dict(self._series.get(name, {}))

    # -- snapshot / merge -----------------------------------------------

    def snapshot(self, *, deterministic_only: bool = False) -> Dict[str, Any]:
        """Canonical JSON-able form of every recorded series.

        Families and series are emitted in sorted order and every value
        passes through :func:`repro.core.canonical.canonicalize`, so
        equal registries snapshot to byte-equal ``canonical_json``.
        With ``deterministic_only`` the snapshot is restricted to
        families declared deterministic — the projection embedded in
        ``report.json``.
        """
        families: Dict[str, Any] = {}
        for name in sorted(self._series):
            decl = self.declarations[name]
            if deterministic_only and not decl.deterministic:
                continue
            series = []
            for key in sorted(self._series[name]):
                instrument = self._series[name][key]
                series.append(
                    {"labels": json.loads(key), **instrument.to_dict()}
                )
            families[name] = {
                "kind": decl.kind,
                "help": decl.help,
                "unit": decl.unit,
                "deterministic": decl.deterministic,
                "series": series,
            }
        return canonicalize(
            {"deterministic_only": deterministic_only, "families": families}
        )

    def merge(self, other: "MetricsRegistry") -> "MetricsRegistry":
        """Fold ``other``'s series into this registry (shard -> parent)."""
        for name, series in other._series.items():
            self.declarations.setdefault(name, other.declarations[name])
            for key, instrument in series.items():
                decl = self.declarations[name]
                mine = self._instrument(name, decl.kind, json.loads(key))
                mine.merge(instrument)
        return self

    def load_snapshot(self, snapshot: Mapping[str, Any]) -> "MetricsRegistry":
        """Fold a :meth:`snapshot` dict back in (cross-process merge)."""
        for name, family in snapshot.get("families", {}).items():
            decl = self.declarations.get(name)
            if decl is None:
                decl = self.declare(
                    MetricDecl(
                        name=name,
                        kind=family["kind"],
                        help=family.get("help", ""),
                        unit=family.get("unit", ""),
                        deterministic=bool(family.get("deterministic", False)),
                        buckets=tuple(family["series"][0]["bounds"])
                        if family["kind"] == "histogram" and family["series"]
                        else (),
                    )
                )
            for entry in family["series"]:
                instrument = self._instrument(name, decl.kind, entry["labels"])
                instrument.load(entry)
        return self


# ---------------------------------------------------------------------------
# the process-global registry (no-op mode mirrors the collector's)
# ---------------------------------------------------------------------------

_ACTIVE: Optional[MetricsRegistry] = None


def get_registry() -> Optional[MetricsRegistry]:
    """The active registry, or None when metrics are disabled."""
    return _ACTIVE


def metrics_active() -> bool:
    return _ACTIVE is not None


def activate_metrics(registry: Optional[MetricsRegistry] = None) -> MetricsRegistry:
    """Install ``registry`` (or a fresh one) as the process registry."""
    global _ACTIVE
    _ACTIVE = registry if registry is not None else MetricsRegistry()
    return _ACTIVE


def deactivate_metrics() -> Optional[MetricsRegistry]:
    """Return to no-op mode; returns the registry that was active."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = None
    return previous


@contextmanager
def recording(
    registry: Optional[MetricsRegistry] = None,
) -> Iterator[MetricsRegistry]:
    """Activate a metrics registry for the duration of the ``with`` block."""
    global _ACTIVE
    previous = _ACTIVE
    r = registry if registry is not None else MetricsRegistry()
    _ACTIVE = r
    try:
        yield r
    finally:
        _ACTIVE = previous


def metric_inc(name: str, value: float = 1.0, **labels: Any) -> None:
    """Increment a labeled counter (no-op when no registry is active)."""
    r = _ACTIVE
    if r is not None:
        r.inc(name, value, **labels)


def metric_set(name: str, value: float, **labels: Any) -> None:
    """Set a labeled gauge (no-op when no registry is active)."""
    r = _ACTIVE
    if r is not None:
        r.set(name, value, **labels)


def metric_observe(name: str, value: float, **labels: Any) -> None:
    """Observe into a labeled histogram (no-op when no registry is active)."""
    r = _ACTIVE
    if r is not None:
        r.observe(name, value, **labels)


# ---------------------------------------------------------------------------
# OpenMetrics text exposition
# ---------------------------------------------------------------------------


def _escape_label_value(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _escape_help(value: str) -> str:
    return value.replace("\\", "\\\\").replace("\n", "\\n")


def _format_value(value: float) -> str:
    if value != value:  # NaN
        return "NaN"
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _format_labels(labels: Mapping[str, str], extra: str = "") -> str:
    parts = [
        f'{k}="{_escape_label_value(str(v))}"' for k, v in sorted(labels.items())
    ]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


def to_openmetrics(snapshot: Mapping[str, Any]) -> str:
    """Render a :meth:`MetricsRegistry.snapshot` as OpenMetrics text.

    Counter samples get the mandatory ``_total`` suffix; histograms
    expose cumulative ``_bucket`` series plus ``_count``/``_sum``; the
    exposition ends with ``# EOF`` as the format requires.  The output
    round-trips through :func:`parse_openmetrics`.
    """
    lines: List[str] = []
    for name in sorted(snapshot.get("families", {})):
        family = snapshot["families"][name]
        kind = family["kind"]
        lines.append(f"# TYPE {name} {kind}")
        if family.get("unit"):
            lines.append(f"# UNIT {name} {family['unit']}")
        if family.get("help"):
            lines.append(f"# HELP {name} {_escape_help(family['help'])}")
        for entry in family["series"]:
            labels = entry["labels"]
            if kind == "counter":
                lines.append(
                    f"{name}_total{_format_labels(labels)}"
                    f" {_format_value(entry['value'])}"
                )
            elif kind == "gauge":
                lines.append(
                    f"{name}{_format_labels(labels)}"
                    f" {_format_value(entry['value'])}"
                )
            else:  # histogram
                cumulative = 0
                for bound, count in zip(
                    list(entry["bounds"]) + [math.inf],
                    entry["bucket_counts"],
                ):
                    cumulative += count
                    le = 'le="%s"' % _format_value(bound)
                    lines.append(
                        f"{name}_bucket{_format_labels(labels, extra=le)}"
                        f" {cumulative}"
                    )
                lines.append(
                    f"{name}_count{_format_labels(labels)} {entry['count']}"
                )
                lines.append(
                    f"{name}_sum{_format_labels(labels)}"
                    f" {_format_value(entry['sum'])}"
                )
    lines.append("# EOF")
    return "\n".join(lines) + "\n"


_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r" (?P<value>\S+)(?: (?P<timestamp>\S+))?$"
)
_LABEL_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')

_SUFFIXES = {
    "counter": ("_total",),
    "gauge": ("",),
    "histogram": ("_bucket", "_count", "_sum"),
}


def parse_openmetrics(text: str) -> Dict[str, Dict[str, Any]]:
    """Strictly parse OpenMetrics text; raise ``ValueError`` on violations.

    Checks the invariants CI relies on: a single trailing ``# EOF``,
    every sample attributable to a ``# TYPE``-declared family with a
    kind-appropriate suffix, parseable labels and values, and — for
    histograms — cumulative non-decreasing buckets whose ``+Inf`` count
    equals the series ``_count``.  Returns ``{family: {"type": ...,
    "unit": ..., "help": ..., "samples": [(name, labels, value), ...]}}``.
    """
    lines = text.split("\n")
    if lines and lines[-1] == "":
        lines = lines[:-1]
    if not lines or lines[-1] != "# EOF":
        raise ValueError("exposition must end with '# EOF'")
    families: Dict[str, Dict[str, Any]] = {}
    for i, line in enumerate(lines[:-1]):
        if line == "# EOF":
            raise ValueError(f"line {i + 1}: '# EOF' before the end")
        if line.startswith("# TYPE "):
            _, _, rest = line.partition("# TYPE ")
            parts = rest.split(" ")
            if len(parts) != 2:
                raise ValueError(f"line {i + 1}: malformed TYPE line")
            name, kind = parts
            if kind not in _SUFFIXES:
                raise ValueError(f"line {i + 1}: unknown metric type {kind!r}")
            if name in families:
                raise ValueError(f"line {i + 1}: duplicate TYPE for {name!r}")
            families[name] = {"type": kind, "unit": "", "help": "", "samples": []}
            continue
        if line.startswith("# UNIT ") or line.startswith("# HELP "):
            keyword = line[2:6]
            rest = line[7:]
            name, _, value = rest.partition(" ")
            if name not in families:
                raise ValueError(
                    f"line {i + 1}: {keyword} before TYPE for {name!r}"
                )
            families[name][keyword.lower()] = value
            continue
        if line.startswith("#") or not line.strip():
            raise ValueError(f"line {i + 1}: unexpected line {line!r}")
        m = _SAMPLE_RE.match(line)
        if m is None:
            raise ValueError(f"line {i + 1}: unparseable sample {line!r}")
        sample_name = m.group("name")
        family = None
        for fam_name, meta in families.items():
            for suffix in _SUFFIXES[meta["type"]]:
                if sample_name == fam_name + suffix:
                    family = fam_name
                    break
            if family:
                break
        if family is None:
            raise ValueError(
                f"line {i + 1}: sample {sample_name!r} matches no declared"
                " family/suffix"
            )
        labels: Dict[str, str] = {}
        raw_labels = m.group("labels")
        if raw_labels:
            consumed = 0
            for lm in _LABEL_RE.finditer(raw_labels):
                labels[lm.group(1)] = lm.group(2)
                consumed = lm.end()
            leftover = raw_labels[consumed:].strip().strip(",")
            if leftover:
                raise ValueError(
                    f"line {i + 1}: unparseable labels {raw_labels!r}"
                )
        raw_value = m.group("value")
        try:
            value = float(raw_value.replace("+Inf", "inf").replace("-Inf", "-inf"))
        except ValueError:
            raise ValueError(
                f"line {i + 1}: unparseable value {raw_value!r}"
            ) from None
        families[family]["samples"].append((sample_name, labels, value))
    for name, meta in families.items():
        if meta["type"] != "histogram":
            continue
        by_series: Dict[str, Dict[str, Any]] = {}
        for sample_name, labels, value in meta["samples"]:
            key_labels = {k: v for k, v in labels.items() if k != "le"}
            entry = by_series.setdefault(
                canonical_labels(key_labels), {"buckets": [], "count": None}
            )
            if sample_name == f"{name}_bucket":
                entry["buckets"].append((labels.get("le"), value))
            elif sample_name == f"{name}_count":
                entry["count"] = value
        for key, entry in by_series.items():
            if not entry["buckets"]:
                raise ValueError(f"histogram {name!r} series {key} has no buckets")
            les = [le for le, _ in entry["buckets"]]
            if les[-1] != "+Inf":
                raise ValueError(
                    f"histogram {name!r} series {key} lacks the +Inf bucket"
                )
            counts = [v for _, v in entry["buckets"]]
            if any(b > a for b, a in zip(counts, counts[1:])):
                raise ValueError(
                    f"histogram {name!r} series {key} buckets not cumulative"
                )
            if entry["count"] is not None and counts[-1] != entry["count"]:
                raise ValueError(
                    f"histogram {name!r} series {key}: +Inf bucket"
                    f" {counts[-1]} != _count {entry['count']}"
                )
    return families
