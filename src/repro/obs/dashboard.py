"""Self-contained HTML dashboard over a report, a metrics snapshot, a trace.

``atm-repro dashboard`` writes **one** HTML file with zero external
references — no scripts, stylesheets, fonts or images are fetched from
anywhere (CI greps the output for ``http``/``https`` URLs to keep it
that way), so the file can be archived next to ``report.json`` and
opened years later, offline, exactly as rendered.  Charts are inline
SVG generated directly from the structured data:

* per-experiment **execution-time curves** (log-scale modelled seconds
  against fleet size, one polyline per platform, the half-second
  deadline drawn across);
* the **deadline-margin chart**: worst remaining period budget per
  platform per fleet size, read from the ``atm_deadline_margin_seconds``
  histogram family of the metrics snapshot — the knee where a platform
  dips below the zero line is the paper's §6.2 verdict, visible;
* a **span flamegraph** of the trace collector (modelled seconds wide,
  call-stack deep), when a collector is given;
* **counter panels** for every counter/gauge family in the snapshot and
  the collector's flat counters.

Everything degrades gracefully: a report without sweeps still renders
its tables, a snapshot without misses still draws the margin chart, no
collector simply omits the flamegraph.
"""

from __future__ import annotations

import html
import math
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from .collector import Collector

__all__ = ["render_dashboard", "write_dashboard"]

#: Platform-family colours (keyed by name prefix before the ``:``).
FAMILY_COLORS = {
    "cuda": "#2f9e44",
    "ap": "#e8590c",
    "simd": "#1971c2",
    "mimd": "#e03131",
    "vector": "#9c36b5",
}
_FALLBACK_COLOR = "#495057"

#: Shade variants so sibling platforms of one family stay tellable.
_SHADES = ("", "aa", "77")

_CSS = """
body { font-family: sans-serif; margin: 1.5em; background: #fcfcfc;
       color: #212529; }
h1 { font-size: 1.4em; } h2 { font-size: 1.15em; margin-top: 1.6em; }
.meta { color: #666; font-size: 0.9em; }
.panel { background: #fff; border: 1px solid #dee2e6; border-radius: 6px;
         padding: 0.8em 1em; margin: 0.8em 0; }
table { border-collapse: collapse; font-size: 0.85em; }
th, td { border: 1px solid #dee2e6; padding: 0.25em 0.6em; text-align: right; }
th { background: #f1f3f5; } td.l, th.l { text-align: left; }
.miss { color: #e03131; font-weight: bold; }
.ok { color: #2f9e44; }
svg text { font-family: sans-serif; }
.legend span { display: inline-block; margin-right: 1em; font-size: 0.85em; }
.swatch { display: inline-block; width: 0.8em; height: 0.8em;
          border-radius: 2px; margin-right: 0.3em; vertical-align: middle; }
"""


def _esc(value: Any) -> str:
    return html.escape(str(value), quote=True)


def _color_for(platform: str, index: int) -> str:
    family = platform.split(":", 1)[0]
    base = FAMILY_COLORS.get(family, _FALLBACK_COLOR)
    return base + _SHADES[index % len(_SHADES)]


def _fmt_seconds(seconds: float) -> str:
    if seconds == 0:
        return "0"
    if abs(seconds) < 1e-3:
        return f"{seconds * 1e6:.3g}µs"
    if abs(seconds) < 1.0:
        return f"{seconds * 1e3:.3g}ms"
    return f"{seconds:.3g}s"


# ---------------------------------------------------------------------------
# chart primitives (inline SVG, no external anything)
# ---------------------------------------------------------------------------


def _log10(value: float) -> float:
    import math

    return math.log10(value)


def _line_chart(
    series: Mapping[str, Sequence[Tuple[float, float]]],
    *,
    width: int = 640,
    height: int = 300,
    log_y: bool = False,
    y_label: str = "",
    hline: Optional[Tuple[float, str]] = None,
) -> str:
    """One SVG line chart: ``{name: [(x, y), ...]}`` with a legend.

    ``hline`` draws a labeled horizontal rule (the deadline, the zero
    margin).  With ``log_y`` non-positive values are clamped to the
    smallest positive sample.
    """
    pad_l, pad_r, pad_t, pad_b = 64, 16, 14, 34
    plot_w, plot_h = width - pad_l - pad_r, height - pad_t - pad_b
    points = [p for pts in series.values() for p in pts]
    if not points:
        return "<p>(no data)</p>"
    xs = sorted({x for x, _ in points})
    ys = [y for _, y in points]
    if hline is not None:
        ys.append(hline[0])
    if log_y:
        floor = min((y for y in ys if y > 0), default=1e-9)
        ys = [y if y > 0 else floor for y in ys]
        lo, hi = _log10(min(ys)), _log10(max(ys))
    else:
        lo, hi = min(ys), max(ys)
    if hi <= lo:
        hi = lo + 1.0
    x_lo, x_hi = min(xs), max(xs)
    if x_hi <= x_lo:
        x_hi = x_lo + 1.0

    def px(x: float) -> float:
        return pad_l + (x - x_lo) / (x_hi - x_lo) * plot_w

    def py(y: float) -> float:
        if log_y:
            y = _log10(y) if y > 0 else lo
        return pad_t + (hi - y) / (hi - lo) * plot_h

    parts = [
        f'<svg viewBox="0 0 {width} {height}" width="{width}" '
        f'height="{height}" role="img">',
        f'<rect x="{pad_l}" y="{pad_t}" width="{plot_w}" height="{plot_h}"'
        ' fill="#fff" stroke="#ced4da"/>',
    ]
    # y-axis ticks: 4 evenly spaced in the (possibly log) domain.
    for i in range(5):
        frac = i / 4
        domain_y = lo + (hi - lo) * frac
        value = 10 ** domain_y if log_y else domain_y
        y = pad_t + (1 - frac) * plot_h
        parts.append(
            f'<line x1="{pad_l}" y1="{y:.1f}" x2="{pad_l + plot_w}" '
            f'y2="{y:.1f}" stroke="#f1f3f5"/>'
        )
        parts.append(
            f'<text x="{pad_l - 6}" y="{y + 3:.1f}" font-size="10"'
            f' text-anchor="end">{_esc(_fmt_seconds(value))}</text>'
        )
    for x in xs:
        parts.append(
            f'<text x="{px(x):.1f}" y="{height - pad_b + 14}" font-size="10"'
            f' text-anchor="middle">{int(x)}</text>'
        )
    if y_label:
        parts.append(
            f'<text x="4" y="{pad_t - 2}" font-size="10">{_esc(y_label)}</text>'
        )
    if hline is not None:
        y = py(hline[0])
        parts.append(
            f'<line x1="{pad_l}" y1="{y:.1f}" x2="{pad_l + plot_w}" '
            f'y2="{y:.1f}" stroke="#868e96" stroke-dasharray="5,4"/>'
        )
        parts.append(
            f'<text x="{pad_l + plot_w - 4}" y="{y - 4:.1f}" font-size="10"'
            f' text-anchor="end" fill="#868e96">{_esc(hline[1])}</text>'
        )
    family_seen: Dict[str, int] = {}
    legend: List[str] = []
    for name in sorted(series):
        pts = sorted(series[name])
        family = name.split(":", 1)[0]
        color = _color_for(name, family_seen.get(family, 0))
        family_seen[family] = family_seen.get(family, 0) + 1
        coords = " ".join(f"{px(x):.1f},{py(y):.1f}" for x, y in pts)
        parts.append(
            f'<polyline points="{coords}" fill="none" stroke="{color}"'
            f' stroke-width="1.8"><title>{_esc(name)}</title></polyline>'
        )
        for x, y in pts:
            parts.append(
                f'<circle cx="{px(x):.1f}" cy="{py(y):.1f}" r="2.4"'
                f' fill="{color}"><title>{_esc(name)} @ {int(x)}: '
                f"{_esc(_fmt_seconds(y))}</title></circle>"
            )
        legend.append(
            f'<span><span class="swatch" style="background:{color}"></span>'
            f"{_esc(name)}</span>"
        )
    parts.append("</svg>")
    parts.append('<div class="legend">' + "".join(legend) + "</div>")
    return "".join(parts)


def _flamegraph(collector: Collector, *, width: int = 960, max_rects: int = 1500) -> str:
    """A modelled-time flamegraph of the collector's span tree.

    Siblings sharing a name are folded (the trace summary does the
    same), widths are proportional to summed modelled seconds, and each
    rect carries a ``<title>`` tooltip, so hover works with zero script.
    """
    by_parent: Dict[Optional[int], List[Any]] = {}
    for s in collector.spans:
        by_parent.setdefault(s.parent_id, []).append(s)

    row_h, gap = 18, 1

    # Widths use *inclusive* modelled time (self + descendants): harness
    # roots typically carry no modelled seconds of their own, yet their
    # task subtrees hold all of it.
    inclusive: Dict[int, float] = {}

    def _inclusive(s: Any) -> float:
        cached = inclusive.get(s.span_id)
        if cached is None:
            cached = inclusive[s.span_id] = s.modelled_s + sum(
                _inclusive(c) for c in by_parent.get(s.span_id, [])
            )
        return cached

    def fold(siblings: List[Any]) -> List[Tuple[str, float, List[Any]]]:
        groups: Dict[str, List[Any]] = {}
        for s in siblings:
            groups.setdefault(s.name, []).append(s)
        out = []
        for name, group in groups.items():
            modelled = sum(_inclusive(s) for s in group)
            children = [
                c for s in group for c in by_parent.get(s.span_id, [])
            ]
            out.append((name, modelled, children))
        return out

    roots = fold(by_parent.get(None, []))
    total = sum(m for _, m, _ in roots)
    if total <= 0:
        return "<p>(no modelled time in the trace)</p>"

    rects: List[str] = []
    max_depth = 0

    def layout(groups, x0: float, x1: float, depth: int, budget: float) -> None:
        nonlocal max_depth
        if len(rects) >= max_rects:
            return
        max_depth = max(max_depth, depth)
        if budget <= 0:
            return
        x = x0
        for name, modelled, children in sorted(
            groups, key=lambda g: -g[1]
        ):
            w = (x1 - x0) * (modelled / budget)
            if w < 1.0:
                x += w
                continue
            y = depth * (row_h + gap)
            palette = ("#e8590c", "#f08c00", "#fab005", "#ffd43b", "#ffe066")
            color = palette[depth % len(palette)]
            rects.append(
                f'<rect x="{x:.1f}" y="{y}" width="{max(w - 0.5, 0.5):.1f}"'
                f' height="{row_h}" fill="{color}" stroke="#fff"'
                f' stroke-width="0.5"><title>{_esc(name)} — '
                f"{_esc(_fmt_seconds(modelled))} modelled "
                f"({100 * modelled / total:.1f}%)</title></rect>"
            )
            if w > 60:
                rects.append(
                    f'<text x="{x + 3:.1f}" y="{y + row_h - 5}" font-size="10"'
                    f' clip-path="inset(0)">{_esc(name)[: int(w / 6.5)]}</text>'
                )
            if children:
                # The parent's inclusive time is the budget, so a span's
                # self time shows as the unfilled remainder of its rect.
                layout(fold(children), x, x + w, depth + 1, modelled)
            x += w

    layout(roots, 0.0, float(width), 0, total)
    height = (max_depth + 1) * (row_h + gap)
    return (
        f'<svg viewBox="0 0 {width} {height}" width="{width}" '
        f'height="{height}" role="img">' + "".join(rects) + "</svg>"
        f'<p class="meta">{_esc(_fmt_seconds(total))} modelled seconds total; '
        "hover a block for its share.</p>"
    )


# ---------------------------------------------------------------------------
# panels
# ---------------------------------------------------------------------------


def _experiment_curves(report: Mapping[str, Any]) -> str:
    out: List[str] = []
    for exp_id, entry in sorted(report.get("experiments", {}).items()):
        data = entry.get("data", {})
        ns = data.get("ns")
        if not ns:
            continue
        if "series" in data:
            series = {
                name: list(zip(map(float, ns), map(float, ys)))
                for name, ys in data["series"].items()
            }
        elif "seconds" in data:
            series = {
                str(data.get("platform", exp_id)): list(
                    zip(map(float, ns), map(float, data["seconds"]))
                )
            }
        else:
            continue
        title = data.get("title", exp_id)
        out.append(
            f'<div class="panel"><h2>{_esc(exp_id)} — {_esc(title)}</h2>'
            + _line_chart(
                series,
                log_y=True,
                y_label="modelled s (log)",
                hline=(0.5, "0.5 s period"),
            )
            + "</div>"
        )
    return "".join(out)


def _margin_chart(snapshot: Mapping[str, Any]) -> str:
    family = snapshot.get("families", {}).get("atm_deadline_margin_seconds")
    if not family:
        return ""
    worst: Dict[Tuple[str, float], float] = {}
    for entry in family.get("series", []):
        labels = entry["labels"]
        low = entry.get("min")
        if low is None:
            continue
        try:
            key = (labels["platform"], float(labels["n_aircraft"]))
        except (KeyError, ValueError):
            continue
        worst[key] = min(worst.get(key, float("inf")), float(low))
    if not worst:
        return ""
    series: Dict[str, List[Tuple[float, float]]] = {}
    for (platform, n), margin in sorted(worst.items()):
        series.setdefault(platform, []).append((n, margin))
    chart = _line_chart(
        series,
        log_y=False,
        y_label="worst margin s",
        hline=(0.0, "deadline"),
    )
    return (
        '<div class="panel"><h2>Deadline margin vs fleet size</h2>'
        '<p class="meta">Worst remaining period budget per platform, from '
        "the <code>atm_deadline_margin_seconds</code> histograms; below the "
        "dashed line a deadline was missed.</p>" + chart + "</div>"
    )


def _verdict_table(snapshot: Mapping[str, Any]) -> str:
    from ..analysis.deadlines import deadline_verdicts

    verdicts = deadline_verdicts(snapshot)
    if not verdicts:
        return ""
    rows = []
    for platform, v in verdicts.items():
        klass = "ok" if v["never_misses"] else "miss"
        verdict = (
            "never misses"
            if v["never_misses"]
            else f"first miss at n={v['first_miss_n']}"
        )
        rows.append(
            f'<tr><td class="l">{_esc(platform)}</td>'
            f"<td>{v['total_misses']}</td><td>{v['total_periods']}</td>"
            f'<td class="l {klass}">{_esc(verdict)}</td></tr>'
        )
    return (
        '<div class="panel"><h2>Deadline verdicts (from the snapshot)</h2>'
        '<table><tr><th class="l">platform</th><th>misses</th>'
        "<th>periods</th><th class=\"l\">verdict</th></tr>"
        + "".join(rows)
        + "</table></div>"
    )


def _service_latency_panel(snapshot: Mapping[str, Any]) -> str:
    """Service request latency quantiles (docs/service.md).

    Renders the ``atm_service_request_seconds`` histogram family — both
    the server-side series and the load generator's ``endpoint=client``
    series — as a p50/p95/p99 table.  These are wall-clock service
    latencies, never the paper's modelled architecture times.
    """
    family = snapshot.get("families", {}).get("atm_service_request_seconds")
    if not family:
        return ""
    rows = []
    for entry in family.get("series", []):
        if not entry.get("count"):
            continue
        labels = ", ".join(
            f"{k}={v}" for k, v in sorted(entry["labels"].items())
        )
        cells = "".join(
            f"<td>{_fmt_seconds(float(entry[q]))}</td>"
            for q in ("p50", "p95", "p99", "max")
        )
        rows.append(
            f'<tr><td class="l">{_esc(labels)}</td>'
            f"<td>{int(entry['count'])}</td>{cells}</tr>"
        )
    if not rows:
        return ""
    return (
        '<div class="panel"><h2>Service request latency</h2>'
        '<p class="meta">Wall-clock quantiles from the '
        "<code>atm_service_request_seconds</code> histograms "
        "(server-side per outcome; <code>endpoint=client</code> rows are "
        "the load generator's view). Not modelled time.</p>"
        '<table><tr><th class="l">labels</th><th>count</th><th>p50</th>'
        "<th>p95</th><th>p99</th><th>max</th></tr>"
        + "".join(rows)
        + "</table></div>"
    )


def _search_panel(search: Mapping[str, Any]) -> str:
    """Archgym-style best-fitness trajectory of one search result.

    ``search`` is the ``atm-repro search --out`` result document: the
    curve plots best-so-far fitness against evaluation index, with
    budget-rejected candidates visible as flat segments.
    """
    curve = search.get("best_fitness_curve") or []
    spec = search.get("spec", {})
    points = [
        (float(i + 1), float(f))
        for i, f in enumerate(curve)
        if isinstance(f, (int, float)) and math.isfinite(f) and f < 1e29
    ]
    label = (
        f"{spec.get('searcher', '?')} / {spec.get('objective', '?')}"
        f" over {spec.get('space', {}).get('family', '?')}"
    )
    if not points:
        chart = "<p>(no finite full-fidelity evaluations)</p>"
    else:
        chart = _line_chart(
            {label: points},
            log_y=all(f > 0 for _, f in points),
            y_label="best fitness",
        )
    best = search.get("best") or {}
    params = (best.get("point") or {}).get("params", {})
    meta = (
        f"{search.get('evaluated', 0)} evaluated, "
        f"{search.get('rejected', 0)} budget-rejected, "
        f"{search.get('rounds', 0)} round(s)"
    )
    if best:
        meta += (
            f"; best {_esc(best.get('key', '?'))}: "
            + ", ".join(f"{k}={v}" for k, v in sorted(params.items()))
        )
    return (
        '<div class="panel"><h2>Design-space search trajectory</h2>'
        f'<p class="meta">{meta}</p>' + chart + "</div>"
    )


def _counter_panels(
    snapshot: Mapping[str, Any], collector: Optional[Collector]
) -> str:
    out: List[str] = []
    tables: List[str] = []
    for name, family in sorted(snapshot.get("families", {}).items()):
        if family.get("kind") not in ("counter", "gauge"):
            continue
        series = family.get("series", [])
        if not series:
            continue
        rows = []
        for entry in series:
            labels = ", ".join(
                f"{k}={v}" for k, v in sorted(entry["labels"].items())
            )
            value = entry["value"]
            shown = int(value) if float(value).is_integer() else value
            rows.append(
                f'<tr><td class="l">{_esc(labels) or "(none)"}</td>'
                f"<td>{_esc(shown)}</td></tr>"
            )
        tables.append(
            f"<h3>{_esc(name)}</h3>"
            f'<p class="meta">{_esc(family.get("help", ""))}</p>'
            f'<table><tr><th class="l">labels</th><th>value</th></tr>'
            + "".join(rows)
            + "</table>"
        )
    if tables:
        out.append(
            '<div class="panel"><h2>Metric counters</h2>'
            + "".join(tables)
            + "</div>"
        )
    if collector is not None and collector.counters:
        rows = []
        for cname in sorted(collector.counters):
            value = float(collector.counters[cname])
            shown = int(value) if value.is_integer() else value
            rows.append(
                f'<tr><td class="l">{_esc(cname)}</td><td>{shown}</td></tr>'
            )
        out.append(
            '<div class="panel"><h2>Trace counters</h2>'
            '<table><tr><th class="l">counter</th><th>value</th></tr>'
            + "".join(rows)
            + "</table></div>"
        )
    return "".join(out)


# ---------------------------------------------------------------------------
# entry points
# ---------------------------------------------------------------------------


def render_dashboard(
    report: Mapping[str, Any],
    snapshot: Optional[Mapping[str, Any]] = None,
    collector: Optional[Collector] = None,
    search: Optional[Mapping[str, Any]] = None,
) -> str:
    """The dashboard HTML for a report document (see the module docstring).

    ``snapshot`` defaults to the report's embedded deterministic metrics;
    pass a full :meth:`~repro.obs.metrics.MetricsRegistry.snapshot` for
    the operational families too.  ``collector`` adds the flamegraph and
    the flat trace counters.  ``search`` is an ``atm-repro search``
    result document to chart as a best-fitness trajectory panel.
    """
    if snapshot is None:
        snapshot = report.get("metrics", {}) or {}
    title = "ATM reproduction dashboard"
    head = (
        f"<h1>{_esc(title)}</h1>"
        f'<p class="meta">{_esc(report.get("paper", ""))}<br>'
        f'library {_esc(report.get("library_version", "?"))}, '
        f'profile {_esc(report.get("profile", "?"))}, '
        f'seed {_esc(report.get("seed", "?"))}, '
        f'python {_esc(report.get("python", "?"))}</p>'
    )
    body = [
        head,
        _margin_chart(snapshot),
        _verdict_table(snapshot),
        _service_latency_panel(snapshot),
        _experiment_curves(report),
    ]
    if search is not None:
        body.append(_search_panel(search))
    if collector is not None and collector.spans:
        body.append(
            '<div class="panel"><h2>Span flamegraph (modelled time)</h2>'
            + _flamegraph(collector)
            + "</div>"
        )
    body.append(_counter_panels(snapshot, collector))
    return (
        "<!DOCTYPE html><html><head><meta charset=\"utf-8\">"
        f"<title>{_esc(title)}</title><style>{_CSS}</style></head>"
        "<body>" + "".join(body) + "</body></html>"
    )


def write_dashboard(
    path: str,
    report: Mapping[str, Any],
    snapshot: Optional[Mapping[str, Any]] = None,
    collector: Optional[Collector] = None,
    search: Optional[Mapping[str, Any]] = None,
) -> str:
    """Render and write the dashboard; returns ``path``."""
    text = render_dashboard(
        report, snapshot=snapshot, collector=collector, search=search
    )
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(text)
    return path
