"""Human-readable trace summaries: the span tree and coverage figures.

``render_span_tree`` prints wall and modelled time side by side per
span, nested.  ``modelled_coverage`` answers the question the profiler
exists for: *of the modelled seconds charged to task spans, how much is
attributed to finer-grained sub-spans?*  A backend whose cost model is
fully threaded through the tracer scores 1.0.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from .collector import Collector, SpanRecord

__all__ = [
    "MANDATORY_TASK_SPANS",
    "render_span_tree",
    "modelled_coverage",
    "render_counters",
]

#: Span names every backend must emit once per task invocation
#: (asserted by tests/obs/test_backend_spans.py for the whole registry).
MANDATORY_TASK_SPANS = ("task1", "task23")


def _format_seconds(seconds: float) -> str:
    if seconds <= 0:
        return "0"
    if seconds < 1e-3:
        return f"{seconds * 1e6:.1f}us"
    if seconds < 1.0:
        return f"{seconds * 1e3:.3f}ms"
    return f"{seconds:.3f}s"


def render_span_tree(collector: Collector, *, max_spans: int = 400) -> str:
    """Indented span tree with wall and modelled durations.

    Sibling spans sharing a name are folded into one line with a
    ``xN`` multiplier and summed durations, which keeps sweep traces
    (hundreds of identical task invocations) readable.
    """
    by_parent: Dict[Optional[int], List[SpanRecord]] = {}
    for s in collector.spans:
        by_parent.setdefault(s.parent_id, []).append(s)

    lines = [
        f"{'span':<44} {'calls':>6} {'wall':>12} {'modelled':>12}",
        "-" * 78,
    ]
    emitted = 0
    omitted = 0

    def group_children(group: List[SpanRecord]) -> List[SpanRecord]:
        children: List[SpanRecord] = []
        for s in group:
            children.extend(by_parent.get(s.span_id, []))
        return children

    def count_groups(siblings: List[SpanRecord]) -> int:
        """How many tree lines ``siblings`` would render, recursively."""
        groups: Dict[str, List[SpanRecord]] = {}
        for s in siblings:
            groups.setdefault(s.name, []).append(s)
        total = len(groups)
        for group in groups.values():
            total += count_groups(group_children(group))
        return total

    def walk(siblings: List[SpanRecord], depth: int) -> None:
        nonlocal emitted, omitted
        groups: Dict[str, List[SpanRecord]] = {}
        for s in siblings:
            groups.setdefault(s.name, []).append(s)
        for name, group in groups.items():
            children = group_children(group)
            if emitted >= max_spans:
                # This group — and every subtree under it — is dropped;
                # count all of them so the footer reports the real loss
                # (the early-return of the old code silently swallowed
                # sibling subtrees at shallower depths).
                omitted += 1 + count_groups(children)
                continue
            wall = sum(s.wall_dur_s for s in group)
            modelled = sum(s.modelled_s for s in group)
            label = "  " * depth + name
            lines.append(
                f"{label:<44} {len(group):>6} {_format_seconds(wall):>12} "
                f"{_format_seconds(modelled):>12}"
            )
            emitted += 1
            if children:
                walk(children, depth + 1)

    walk(by_parent.get(None, []), 0)
    if omitted:
        lines.append(
            f"... (truncated at {max_spans} lines; {omitted} span groups"
            " omitted)"
        )
    return "\n".join(lines)


def modelled_coverage(collector: Collector, *, cat: str = "task") -> float:
    """Fraction of task-span modelled time attributed to child spans.

    For every span of category ``cat``, sum its direct children's
    modelled seconds (capped at the parent's own) and divide by the
    total modelled seconds of the ``cat`` spans.  Returns 1.0 when
    there are no ``cat`` spans (nothing to attribute).
    """
    tasks = [s for s in collector.spans if s.cat == cat]
    total = sum(s.modelled_s for s in tasks)
    if total <= 0.0:
        return 1.0
    attributed = 0.0
    for t in tasks:
        child_sum = sum(
            c.modelled_s for c in collector.spans if c.parent_id == t.span_id
        )
        attributed += min(child_sum, t.modelled_s)
    return attributed / total


def render_counters(collector: Collector) -> str:
    """Sorted ``name = value`` lines for every counter."""
    if not collector.counters:
        return "(no counters)"
    width = max(len(k) for k in collector.counters)
    lines = []
    for name in sorted(collector.counters):
        # One float() coercion up front: a bool or int from a future
        # caller renders exactly like the equivalent float count.
        value = float(collector.counters[name])
        shown = int(value) if value.is_integer() else value
        lines.append(f"{name.ljust(width)}  {shown}")
    return "\n".join(lines)
