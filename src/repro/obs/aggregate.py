"""Fold raw span traces into per-(platform, category, span) statistics.

A sweep trace holds one span per task invocation — thousands of spans
for a paper-scale run.  The profiling comparisons the paper makes
(which kernel dominates on which card, how the AP's instruction classes
split, where the MIMD model spends its sync waits) need the *aggregate*
shape instead: per platform, per category, per span name — how many
calls, how much wall and modelled time, and how the modelled durations
distribute.  :func:`aggregate_spans` computes exactly that, attributing
every span to the platform of its nearest ``platform``-labeled ancestor
(task spans carry the label themselves; kernel/instruction-class spans
inherit it; harness spans inherit the shard's).

Aggregates are **mergeable**: :meth:`SpanAggregate.merge` folds shard
aggregates into a parent losslessly (counts and sums add, histogram
buckets add), so a ``--jobs N`` sweep aggregates identically to serial.
The determinism boundary is explicit: :meth:`SpanAggregate.to_dict`
with ``deterministic_only=True`` drops wall-clock fields and the
harness/merge categories (whose span *count* legitimately depends on
scheduling — e.g. trace memo hits differ between serial and pool
composition), leaving only modelled quantities, which are byte-identical
for any worker count.  The equivalence tests assert that.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..core.canonical import canonical_json, canonicalize
from .collector import Collector, SpanRecord
from .metrics import MODELLED_SECONDS_BUCKETS, Histogram

__all__ = [
    "NONDETERMINISTIC_CATS",
    "UNATTRIBUTED",
    "SpanStats",
    "SpanAggregate",
    "aggregate_spans",
]

#: Categories whose span population depends on scheduling/caching (how
#: many shards, how traces were obtained, pool merge roots), so they are
#: excluded from the deterministic projection.  ``core`` is here because
#: the functional simulation runs once per fleet size *wherever the
#: scheduler put it* — in the parent on a serial run, in an uncollected
#: worker on a pool run, nowhere at all on a warm trace store.
NONDETERMINISTIC_CATS = frozenset({"harness", "merge", "fault", "core"})

#: Label for spans with no ``platform`` attribute anywhere above them.
UNATTRIBUTED = "(unattributed)"


@dataclass
class SpanStats:
    """Aggregate of every span sharing one (platform, cat, name) key."""

    calls: int = 0
    wall_s: float = 0.0
    modelled_s: float = 0.0
    digest: Histogram = field(
        default_factory=lambda: Histogram(MODELLED_SECONDS_BUCKETS)
    )

    def add(self, span: SpanRecord) -> None:
        self.calls += 1
        self.wall_s += span.wall_dur_s
        self.modelled_s += span.modelled_s
        self.digest.observe(span.modelled_s)

    def merge(self, other: "SpanStats") -> None:
        self.calls += other.calls
        self.wall_s += other.wall_s
        self.modelled_s += other.modelled_s
        self.digest.merge(other.digest)

    def to_dict(self, *, deterministic_only: bool = False) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "calls": self.calls,
            "modelled_s": self.modelled_s,
            "modelled_digest": self.digest.to_dict(),
        }
        if not deterministic_only:
            out["wall_s"] = self.wall_s
        return out


class SpanAggregate:
    """Per-(platform, category, span name) statistics of one trace.

    Build with :func:`aggregate_spans`; fold shard aggregates together
    with :meth:`merge`.  ``coverage`` keeps per-platform
    ``[attributed, total]`` modelled-second pairs for the task spans, so
    modelled-coverage ratios stay exact under merging (a ratio alone
    would not merge).
    """

    def __init__(self) -> None:
        #: (platform, cat, name) -> stats
        self.stats: Dict[Tuple[str, str, str], SpanStats] = {}
        #: platform -> [attributed modelled seconds, total modelled seconds]
        self.coverage: Dict[str, List[float]] = {}

    # -- building -------------------------------------------------------

    def add_collector(self, collector: Collector, *, task_cat: str = "task") -> None:
        by_id: Dict[int, SpanRecord] = {s.span_id: s for s in collector.spans}
        child_modelled: Dict[int, float] = {}
        for s in collector.spans:
            if s.parent_id is not None:
                child_modelled[s.parent_id] = (
                    child_modelled.get(s.parent_id, 0.0) + s.modelled_s
                )
        platform_memo: Dict[int, str] = {}

        def platform_of(span: SpanRecord) -> str:
            cached = platform_memo.get(span.span_id)
            if cached is not None:
                return cached
            chain: List[int] = []
            cur: Optional[SpanRecord] = span
            platform = UNATTRIBUTED
            while cur is not None:
                known = platform_memo.get(cur.span_id)
                if known is not None:
                    platform = known
                    break
                chain.append(cur.span_id)
                p = cur.attrs.get("platform")
                if p is not None:
                    platform = str(p)
                    break
                cur = by_id.get(cur.parent_id) if cur.parent_id is not None else None
            for span_id in chain:
                platform_memo[span_id] = platform
            return platform

        for span in collector.spans:
            platform = platform_of(span)
            key = (platform, span.cat, span.name)
            stats = self.stats.get(key)
            if stats is None:
                stats = self.stats[key] = SpanStats()
            stats.add(span)
            if span.cat == task_cat:
                child_sum = child_modelled.get(span.span_id, 0.0)
                pair = self.coverage.setdefault(platform, [0.0, 0.0])
                pair[0] += min(child_sum, span.modelled_s)
                pair[1] += span.modelled_s

    # -- composition ----------------------------------------------------

    def merge(self, other: "SpanAggregate") -> "SpanAggregate":
        for key, stats in other.stats.items():
            mine = self.stats.get(key)
            if mine is None:
                mine = self.stats[key] = SpanStats()
            mine.merge(stats)
        for platform, (attributed, total) in other.coverage.items():
            pair = self.coverage.setdefault(platform, [0.0, 0.0])
            pair[0] += attributed
            pair[1] += total
        return self

    # -- readouts -------------------------------------------------------

    def platforms(self) -> List[str]:
        return sorted({platform for platform, _, _ in self.stats})

    def modelled_coverage(self, platform: str) -> float:
        """Fraction of ``platform``'s task modelled time in child spans."""
        attributed, total = self.coverage.get(platform, (0.0, 0.0))
        return attributed / total if total > 0.0 else 1.0

    def to_dict(self, *, deterministic_only: bool = False) -> Dict[str, Any]:
        """Sorted, canonical JSON-able form.

        With ``deterministic_only`` the harness/merge categories and all
        wall-clock fields are dropped: what remains is a pure function
        of the measured cells, byte-identical between ``--jobs 1`` and
        ``--jobs N`` (asserted by the aggregation-determinism tests).
        """
        spans: Dict[str, Any] = {}
        for platform, cat, name in sorted(self.stats):
            if deterministic_only and cat in NONDETERMINISTIC_CATS:
                continue
            stats = self.stats[(platform, cat, name)]
            spans.setdefault(platform, {})[f"{cat}:{name}" if cat else name] = (
                stats.to_dict(deterministic_only=deterministic_only)
            )
        coverage = {
            platform: {
                "attributed_modelled_s": pair[0],
                "total_modelled_s": pair[1],
                "coverage": self.modelled_coverage(platform),
            }
            for platform, pair in sorted(self.coverage.items())
        }
        return canonicalize(
            {
                "deterministic_only": deterministic_only,
                "spans": spans,
                "coverage": coverage,
            }
        )

    def to_canonical_json(self, *, deterministic_only: bool = False) -> str:
        return canonical_json(self.to_dict(deterministic_only=deterministic_only))


def aggregate_spans(
    collector: Collector, *, task_cat: str = "task"
) -> SpanAggregate:
    """Aggregate one collector's spans (see the module docstring)."""
    agg = SpanAggregate()
    agg.add_collector(collector, task_cat=task_cat)
    return agg
