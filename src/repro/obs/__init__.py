"""repro.obs — instrumentation, metrics and profiling for the machine models.

A lightweight tracing + metrics layer threaded through every backend
(CUDA, SIMD, AP, MIMD, vector) and the reference oracle:

* :func:`span` — context-manager spans recording *wall* time (what the
  simulator spent) and *modelled* time (architecture seconds the cost
  model attributed), nested into a tree;
* :func:`count` / :func:`event` — monotonic counters and instant events
  (per-instruction-class counts, sync-wait totals, ...);
* :class:`Collector` — the process-global sink, activated with
  :func:`collecting`; when none is active every helper is a no-op whose
  cost is one global read (the benchmarks run in this mode);
* :mod:`repro.obs.metrics` — the labeled **metrics registry**
  (counters, gauges, exact-bucket histograms) behind the deadline SLO
  monitor, with OpenMetrics export (``atm-repro metrics``,
  ``report --metrics-out``) and the same zero-overhead no-op contract;
* :mod:`repro.obs.aggregate` — per-(platform, category, span) statistics
  folded from raw traces, mergeable across pool shards;
* :mod:`repro.obs.dashboard` — the self-contained single-file HTML
  dashboard (``atm-repro dashboard``);
* :mod:`repro.obs.export` — Chrome-trace-format and JSON-lines dumps;
* :mod:`repro.obs.summary` — span-tree rendering and modelled-time
  coverage.

Surface commands: ``atm-repro profile <experiment>``, ``atm-repro
metrics``, ``atm-repro dashboard`` and ``atm-repro report --trace
out.json --metrics-out out.prom``.  Full guide: ``docs/observability.md``.
"""

from .aggregate import SpanAggregate, SpanStats, aggregate_spans
from .collector import (
    NULL_SPAN,
    Collector,
    Span,
    SpanRecord,
    activate,
    collecting,
    count,
    deactivate,
    event,
    get_collector,
    is_active,
    span,
)
from .dashboard import render_dashboard, write_dashboard
from .export import chrome_trace, json_lines, write_chrome_trace, write_json_lines
from .metrics import (
    DECLARATIONS,
    Counter,
    Gauge,
    Histogram,
    MetricDecl,
    MetricsRegistry,
    activate_metrics,
    deactivate_metrics,
    get_registry,
    metric_inc,
    metric_observe,
    metric_set,
    metrics_active,
    parse_openmetrics,
    recording,
    to_openmetrics,
)
from .summary import (
    MANDATORY_TASK_SPANS,
    modelled_coverage,
    render_counters,
    render_span_tree,
)

__all__ = [
    "Collector",
    "Span",
    "SpanRecord",
    "NULL_SPAN",
    "MANDATORY_TASK_SPANS",
    "activate",
    "deactivate",
    "get_collector",
    "is_active",
    "collecting",
    "span",
    "count",
    "event",
    "chrome_trace",
    "json_lines",
    "write_chrome_trace",
    "write_json_lines",
    "render_span_tree",
    "render_counters",
    "modelled_coverage",
    # metrics registry
    "DECLARATIONS",
    "MetricDecl",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "activate_metrics",
    "deactivate_metrics",
    "get_registry",
    "metrics_active",
    "recording",
    "metric_inc",
    "metric_set",
    "metric_observe",
    "to_openmetrics",
    "parse_openmetrics",
    # aggregation + dashboard
    "SpanAggregate",
    "SpanStats",
    "aggregate_spans",
    "render_dashboard",
    "write_dashboard",
]
