"""repro.obs — instrumentation and profiling for the machine models.

A lightweight tracing + metrics layer threaded through every backend
(CUDA, SIMD, AP, MIMD, vector) and the reference oracle:

* :func:`span` — context-manager spans recording *wall* time (what the
  simulator spent) and *modelled* time (architecture seconds the cost
  model attributed), nested into a tree;
* :func:`count` / :func:`event` — monotonic counters and instant events
  (per-instruction-class counts, sync-wait totals, ...);
* :class:`Collector` — the process-global sink, activated with
  :func:`collecting`; when none is active every helper is a no-op whose
  cost is one global read (the benchmarks run in this mode);
* :mod:`repro.obs.export` — Chrome-trace-format and JSON-lines dumps;
* :mod:`repro.obs.summary` — span-tree rendering and modelled-time
  coverage.

Surface commands: ``atm-repro profile <experiment>`` and
``atm-repro report --trace out.json``.  Full guide:
``docs/observability.md``.
"""

from .collector import (
    NULL_SPAN,
    Collector,
    Span,
    SpanRecord,
    activate,
    collecting,
    count,
    deactivate,
    event,
    get_collector,
    is_active,
    span,
)
from .export import chrome_trace, json_lines, write_chrome_trace, write_json_lines
from .summary import (
    MANDATORY_TASK_SPANS,
    modelled_coverage,
    render_counters,
    render_span_tree,
)

__all__ = [
    "Collector",
    "Span",
    "SpanRecord",
    "NULL_SPAN",
    "MANDATORY_TASK_SPANS",
    "activate",
    "deactivate",
    "get_collector",
    "is_active",
    "collecting",
    "span",
    "count",
    "event",
    "chrome_trace",
    "json_lines",
    "write_chrome_trace",
    "write_json_lines",
    "render_span_tree",
    "render_counters",
    "modelled_coverage",
]
