"""Trace exporters: Chrome trace format and JSON lines.

Two output shapes, both documented in ``docs/observability.md``:

* **Chrome trace format** — a dict with a ``traceEvents`` list loadable
  by ``chrome://tracing`` / Perfetto.  Spans become complete (``"X"``)
  events on two timelines: ``tid=1`` is the *wall clock* (what the
  simulator spent) and ``tid=2`` is the *modelled clock* (architecture
  seconds laid end to end per task, preserving nesting).  Counters
  become ``"C"`` events.
* **JSON lines** — one JSON object per line, one line per span/event,
  plus a final ``counters`` record; the machine-friendly form.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional

from .collector import Collector, SpanRecord

__all__ = ["chrome_trace", "json_lines", "write_chrome_trace", "write_json_lines"]

_PID = 1
_WALL_TID = 1
_MODELLED_TID = 2


def _wall_events(spans: List[SpanRecord]) -> List[Dict[str, Any]]:
    events = []
    for s in spans:
        events.append(
            {
                "name": s.name,
                "cat": s.cat or "span",
                "ph": "X",
                "pid": _PID,
                "tid": _WALL_TID,
                "ts": s.wall_start_s * 1e6,
                "dur": s.wall_dur_s * 1e6,
                "args": {"modelled_s": s.modelled_s, **s.attrs},
            }
        )
    return events


def _modelled_events(spans: List[SpanRecord]) -> List[Dict[str, Any]]:
    """Lay modelled seconds on a synthetic timeline, preserving nesting.

    Each root span is placed after the previous root; a child starts at
    its parent's start plus the modelled time of earlier siblings — the
    natural "where did the modelled budget go" picture.
    """
    by_parent: Dict[Optional[int], List[SpanRecord]] = {}
    for s in spans:
        by_parent.setdefault(s.parent_id, []).append(s)

    events: List[Dict[str, Any]] = []

    def emit(s: SpanRecord, start_us: float) -> None:
        events.append(
            {
                "name": s.name,
                "cat": s.cat or "span",
                "ph": "X",
                "pid": _PID,
                "tid": _MODELLED_TID,
                "ts": start_us,
                "dur": s.modelled_s * 1e6,
                "args": {"wall_dur_s": s.wall_dur_s, **s.attrs},
            }
        )
        child_start = start_us
        for child in by_parent.get(s.span_id, []):
            emit(child, child_start)
            child_start += child.modelled_s * 1e6

    cursor = 0.0
    for root in by_parent.get(None, []):
        emit(root, cursor)
        cursor += max(root.modelled_s * 1e6, 0.01)
    return events


def chrome_trace(collector: Collector) -> Dict[str, Any]:
    """The collector's contents in Chrome trace format (a JSON dict)."""
    events: List[Dict[str, Any]] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": _PID,
            "args": {"name": "atm-repro"},
        },
        {
            "name": "thread_name",
            "ph": "M",
            "pid": _PID,
            "tid": _WALL_TID,
            "args": {"name": "wall clock"},
        },
        {
            "name": "thread_name",
            "ph": "M",
            "pid": _PID,
            "tid": _MODELLED_TID,
            "args": {"name": "modelled time"},
        },
    ]
    events.extend(_wall_events(collector.spans))
    events.extend(_modelled_events(collector.spans))
    for e in collector.events:
        events.append(
            {
                "name": e["name"],
                "cat": e.get("cat") or "event",
                "ph": "i",
                "s": "g",
                "pid": _PID,
                "tid": _WALL_TID,
                "ts": e["wall_start_s"] * 1e6,
                "args": dict(e.get("attrs", {})),
            }
        )
    for name, value in sorted(collector.counters.items()):
        events.append(
            {
                "name": name,
                "ph": "C",
                "pid": _PID,
                "tid": _WALL_TID,
                "ts": 0,
                "args": {"value": value},
            }
        )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def json_lines(collector: Collector) -> str:
    """One JSON object per line: spans, instant events, then counters."""
    lines = [json.dumps(s.to_event(), sort_keys=True) for s in collector.spans]
    lines.extend(json.dumps(e, sort_keys=True) for e in collector.events)
    lines.append(
        json.dumps({"type": "counters", "values": collector.counters}, sort_keys=True)
    )
    return "\n".join(lines) + "\n"


def write_chrome_trace(path: str, collector: Collector) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(chrome_trace(collector), fh, indent=1)


def write_json_lines(path: str, collector: Collector) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(json_lines(collector))
