"""Warp-level cost ledger: the execution model behind the GPU simulator.

A kernel "runs" here as a *cost replay*: the functional results come from
the shared :mod:`repro.core` algorithms (bit-identical across backends by
design — DESIGN.md deviation #2), while this ledger charges each warp the
instruction issues and memory transactions the SIMT execution of the same
algorithm performs:

* an instruction executed while *any* lane of a warp is active charges
  the whole warp — this is exactly how divergence costs on real
  hardware (both sides of a divergent branch serialize);
* warp-wide loads/stores are merged into memory transactions using the
  per-compute-capability coalescing rules of
  :func:`repro.cuda.memory.transaction_count`;
* loads whose address is uniform across the warp (the ``drone[p]`` reads
  of the inner loops) are broadcast — one transaction per warp — as the
  texture path / read-only cache services them on every card modelled.

Per-lane activity masks are supplied by the kernels as boolean arrays of
shape ``(padded_threads,)``; the ledger folds them to warp granularity.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from .device import WARP_SIZE, DeviceProperties
from .grid import LaunchConfig
from .memory import transaction_count

__all__ = ["WarpLedger"]


@dataclass
class _Totals:
    issue: float = 0.0
    transactions: float = 0.0
    bytes: float = 0.0


class WarpLedger:
    """Accumulates per-warp issue cycles and memory traffic for a launch."""

    def __init__(self, device: DeviceProperties, config: LaunchConfig) -> None:
        self.device = device
        self.config = config
        self.n_threads = config.n_threads
        self.n_warps = config.n_warps
        #: weighted instruction issues per warp (1.0 == simple FP32 op).
        self.issue = np.zeros(self.n_warps, dtype=np.float64)
        #: global-memory transactions per warp.
        self.transactions = np.zeros(self.n_warps, dtype=np.float64)
        #: global-memory bytes per warp.
        self.mem_bytes = np.zeros(self.n_warps, dtype=np.float64)
        #: DRAM traffic not attributable to one warp: cold streaming of
        #: shared arrays that later accesses hit in cache.
        self.stream_bytes: float = 0.0
        self.stream_transactions: float = 0.0

    # ------------------------------------------------------------------
    # lane-mask plumbing
    # ------------------------------------------------------------------

    def full_mask(self) -> np.ndarray:
        """Lane mask with every useful thread active."""
        mask = np.zeros(self.config.padded_threads, dtype=bool)
        mask[: self.n_threads] = True
        return mask

    def lanes_to_warps(self, lane_mask: Optional[np.ndarray]) -> np.ndarray:
        """Boolean per-warp activity from a per-lane mask (None = all)."""
        if lane_mask is None:
            return np.ones(self.n_warps, dtype=bool)
        lane_mask = np.asarray(lane_mask, dtype=bool)
        if lane_mask.shape[0] == self.n_threads:
            padded = np.zeros(self.config.padded_threads, dtype=bool)
            padded[: self.n_threads] = lane_mask
            lane_mask = padded
        if lane_mask.shape[0] != self.config.padded_threads:
            raise ValueError(
                f"lane mask length {lane_mask.shape[0]} matches neither "
                f"{self.n_threads} nor {self.config.padded_threads}"
            )
        return lane_mask.reshape(self.n_warps, WARP_SIZE).any(axis=1)

    def warp_values(self, per_lane: np.ndarray, reduce: str = "max") -> np.ndarray:
        """Fold a per-lane value array to per-warp (max or sum)."""
        per_lane = np.asarray(per_lane, dtype=np.float64)
        if per_lane.shape[0] == self.n_threads:
            padded = np.zeros(self.config.padded_threads, dtype=np.float64)
            padded[: self.n_threads] = per_lane
            per_lane = padded
        grid = per_lane.reshape(self.n_warps, WARP_SIZE)
        if reduce == "max":
            return grid.max(axis=1)
        if reduce == "sum":
            return grid.sum(axis=1)
        raise ValueError(f"unknown reduction {reduce!r}")

    # ------------------------------------------------------------------
    # charging primitives
    # ------------------------------------------------------------------

    def charge_issue(
        self,
        count: float,
        lane_mask: Optional[np.ndarray] = None,
        *,
        special: bool = False,
    ) -> None:
        """Charge ``count`` instruction issues to warps with active lanes.

        ``special=True`` applies the device's special-function multiplier
        (divisions, square roots, trigonometry).
        """
        if count < 0:
            raise ValueError("negative issue count")
        weight = count * (self.device.special_op_factor if special else 1.0)
        self.issue[self.lanes_to_warps(lane_mask)] += weight

    def charge_issue_per_warp(self, per_warp: np.ndarray, *, special: bool = False) -> None:
        """Charge a precomputed per-warp issue-count vector."""
        per_warp = np.asarray(per_warp, dtype=np.float64)
        if per_warp.shape != (self.n_warps,):
            raise ValueError("per-warp vector has wrong shape")
        if np.any(per_warp < 0):
            raise ValueError("negative issue count")
        factor = self.device.special_op_factor if special else 1.0
        self.issue += per_warp * factor

    def charge_uniform_load(
        self,
        accesses: float = 1.0,
        lane_mask: Optional[np.ndarray] = None,
    ) -> None:
        """Warp-uniform address load: broadcast to all lanes.

        Charges issue slots only: the inner-loop ``drone[p]`` reads are
        the same address for every warp and sequential across iterations,
        so after the cold streaming pass (account it separately with
        :meth:`charge_stream`) they are served from L2 / the texture
        cache on every card modelled.
        """
        warps = self.lanes_to_warps(lane_mask)
        self.issue[warps] += accesses

    def charge_stream(self, n_bytes: float, passes: float = 1.0) -> None:
        """Cold DRAM streaming of a shared array (read once, then cached)."""
        if n_bytes < 0 or passes < 0:
            raise ValueError("negative stream charge")
        total = n_bytes * passes
        self.stream_bytes += total
        self.stream_transactions += total / self.device.mem_segment_bytes

    def charge_gather(
        self,
        index: np.ndarray,
        lane_mask: Optional[np.ndarray] = None,
        *,
        itemsize: int = 8,
        repeats: float = 1.0,
    ) -> None:
        """Warp-wide load/store at per-lane element indices.

        Runs the real coalescing analysis on the index pattern; charge is
        multiplied by ``repeats`` for loops re-issuing the same pattern.
        """
        index = np.asarray(index, dtype=np.int64)
        if index.shape[0] == self.n_threads:
            padded = np.zeros(self.config.padded_threads, dtype=np.int64)
            padded[: self.n_threads] = index
            index = padded
        if index.shape[0] != self.config.padded_threads:
            raise ValueError("index vector has wrong length")

        if lane_mask is None:
            active = self.full_mask()
        else:
            active = np.asarray(lane_mask, dtype=bool)
            if active.shape[0] == self.n_threads:
                padded = np.zeros(self.config.padded_threads, dtype=bool)
                padded[: self.n_threads] = active
                active = padded
            active = active & self.full_mask()

        offsets = (index * itemsize).reshape(self.n_warps, WARP_SIZE)
        lanes = active.reshape(self.n_warps, WARP_SIZE)
        tx = transaction_count(self.device, offsets, lanes, itemsize)
        warps = lanes.any(axis=1)
        self.issue[warps] += repeats
        self.transactions += tx * repeats
        self.mem_bytes += tx * repeats * self.device.mem_segment_bytes

    def charge_contiguous_access(
        self,
        n_columns: int = 1,
        lane_mask: Optional[np.ndarray] = None,
        *,
        itemsize: int = 8,
        repeats: float = 1.0,
    ) -> None:
        """Thread ``i`` touches element ``i`` of ``n_columns`` arrays.

        The canonical "load my own flight record" pattern; fully
        coalesced on every device.
        """
        idx = np.arange(self.config.padded_threads, dtype=np.int64)
        for _ in range(n_columns):
            self.charge_gather(idx, lane_mask, itemsize=itemsize, repeats=repeats)

    def charge_sync(self, count: float = 1.0) -> None:
        """__syncthreads(): a few issue slots for every warp."""
        self.issue += 2.0 * count

    # ------------------------------------------------------------------
    # totals
    # ------------------------------------------------------------------

    def totals(self) -> _Totals:
        return _Totals(
            issue=float(self.issue.sum()),
            transactions=float(self.transactions.sum() + self.stream_transactions),
            bytes=float(self.mem_bytes.sum() + self.stream_bytes),
        )
