"""CUDA backend: the paper's NVIDIA implementation on a simulated card.

Functional results come from the shared :mod:`repro.core` algorithms
(bit-identical with every other backend); the timing comes from the
warp-level kernel cost models in :mod:`repro.cuda.kernels` evaluated
against one of the three device tables.

``fused=True`` (default) models the paper's single CheckCollisionPath
kernel.  ``fused=False`` models the rejected design the paper argues
against in Section 4 — separate detection and resolution kernels with
the flight table copied through the host in between — and exists for the
ablation benchmark.
"""

from __future__ import annotations

from typing import Any, Dict, Union

from ..backends.base import Backend
from ..core.collision import DetectionMode
from ..core.resolution import detect_and_resolve as core_detect_and_resolve
from ..core.tracking import correlate as core_correlate
from ..core.types import FleetState, RadarFrame, TaskTiming, TimingBreakdown
from ..obs import count as obs_count
from ..obs import span as obs_span
from .device import DeviceProperties, get_device
from .grid import PAPER_BLOCK_SIZE
from .kernels.check_collision import charge_check_collision
from .kernels.generate_radar import RadarPhaseTiming, charge_generate_radar
from .kernels.setup_flight import charge_setup_flight
from .kernels.track_drone import charge_track_drone
from .memory import TransferModel

__all__ = ["CudaBackend"]

#: bytes per aircraft of the drone struct moved by the split-kernel
#: design (all 13 persistent fields at 8 bytes).
_DRONE_STRUCT_BYTES = 104


class CudaBackend(Backend):
    """One NVIDIA device running the paper's CUDA ATM program."""

    deterministic_timing = True
    supports_trace_replay = True

    def __init__(
        self,
        device: Union[str, DeviceProperties],
        *,
        block_size: int = PAPER_BLOCK_SIZE,
        fused_collision_kernel: bool = True,
    ) -> None:
        self.device = get_device(device) if isinstance(device, str) else device
        self.block_size = block_size
        self.fused_collision_kernel = fused_collision_kernel
        self.name = self.device.registry_name
        if block_size != PAPER_BLOCK_SIZE:
            self.name += f"@bs{block_size}"
        if not fused_collision_kernel:
            self.name += "+split"

    # ------------------------------------------------------------------
    # Backend protocol
    # ------------------------------------------------------------------

    def _charge_task1(self, task, fleet, frame, stats) -> TaskTiming:
        """Charge the TrackDrone kernel model (``fleet``/``frame`` may be
        live state or recorded trace views — the models are duck-typed)."""
        kt = charge_track_drone(self.device, fleet, frame, stats, self.block_size)
        with obs_span("cuda.kernel.TrackDrone", cat="cuda", **kt.obs_attrs()) as sp:
            sp.add_modelled(kt.seconds)
        obs_count("cuda.kernel_launches")
        obs_count("cuda.issue_total", kt.issue_total)
        obs_count("cuda.bytes_total", kt.bytes_total)
        task.add_modelled(kt.seconds)
        return TaskTiming(
            task="task1",
            platform=self.name,
            n_aircraft=fleet.n,
            seconds=kt.seconds,
            breakdown=kt.breakdown(),
            detail={
                "cuda.kernel.TrackDrone": kt.seconds - kt.launch_seconds,
                "cuda.launch": kt.launch_seconds,
            },
            stats={
                "rounds": stats.rounds_executed,
                "committed": stats.committed,
                "bound": kt.bound,
                "occupancy": kt.occupancy.occupancy_fraction,
                "waves": kt.occupancy.waves,
                "issue_total": kt.issue_total,
                "bytes_total": kt.bytes_total,
            },
        )

    def _charge_task23(self, task, fleet, det, res) -> TaskTiming:
        kt = charge_check_collision(self.device, fleet, det, res, self.block_size)
        seconds = kt.seconds
        breakdown = kt.breakdown()
        detail = {
            "cuda.kernel.CheckCollisionPath": kt.seconds - kt.launch_seconds,
            "cuda.launch": kt.launch_seconds,
        }
        with obs_span(
            "cuda.kernel.CheckCollisionPath", cat="cuda", **kt.obs_attrs()
        ) as sp:
            sp.add_modelled(kt.seconds)
        obs_count("cuda.kernel_launches")
        obs_count("cuda.issue_total", kt.issue_total)
        obs_count("cuda.bytes_total", kt.bytes_total)
        if not self.fused_collision_kernel:
            # Split design: Task 2 and Task 3 in separate kernels with
            # the drone struct round-tripped through the host between
            # them (the overhead the paper's fused kernel avoids).
            extra_transfer = TransferModel(self.device).round_trip_seconds(
                fleet.n * _DRONE_STRUCT_BYTES
            )
            extra_launch = self.device.kernel_launch_s
            seconds += extra_transfer + extra_launch
            breakdown = TimingBreakdown(
                compute=breakdown.compute,
                memory=breakdown.memory,
                transfer=extra_transfer,
                sync=breakdown.sync,
                overhead=breakdown.overhead + extra_launch,
            )
            detail["cuda.transfer.drone_struct"] = extra_transfer
            detail["cuda.launch"] += extra_launch
            with obs_span(
                "cuda.transfer.drone_struct",
                cat="cuda",
                bytes=fleet.n * _DRONE_STRUCT_BYTES,
            ) as sp:
                sp.add_modelled(extra_transfer + extra_launch)
            obs_count("cuda.kernel_launches")
        task.add_modelled(seconds)
        return TaskTiming(
            task="task23",
            platform=self.name,
            n_aircraft=fleet.n,
            seconds=seconds,
            breakdown=breakdown,
            detail=detail,
            stats={
                "conflicts": det.conflicts,
                "critical_conflicts": det.critical_conflicts,
                "resolved": res.resolved,
                "unresolved": res.unresolved,
                "trials": res.trials_evaluated,
                "bound": kt.bound,
                "waves": kt.occupancy.waves,
            },
        )

    def track_and_correlate(self, fleet: FleetState, frame: RadarFrame) -> TaskTiming:
        with self._task_span("task1", fleet.n) as task:
            with obs_span("core.correlate", cat="core"):
                stats = core_correlate(fleet, frame)
            return self._charge_task1(task, fleet, frame, stats)

    def detect_and_resolve(
        self,
        fleet: FleetState,
        mode: DetectionMode = DetectionMode.SIGNED,
    ) -> TaskTiming:
        with self._task_span("task23", fleet.n) as task:
            with obs_span("core.detect_and_resolve", cat="core"):
                det, res = core_detect_and_resolve(fleet, mode)
            return self._charge_task23(task, fleet, det, res)

    def track_timing_from_trace(self, period) -> TaskTiming:
        with self._task_span("task1", period.n_aircraft) as task:
            return self._charge_task1(
                task, period.fleet_view(), period.frame_view(), period.stats
            )

    def collision_timing_from_trace(self, collision) -> TaskTiming:
        with self._task_span("task23", collision.n_aircraft) as task:
            return self._charge_task23(
                task, collision.fleet_view(), collision.det, collision.res
            )

    # ------------------------------------------------------------------
    # extra phases (outside the deadline budget)
    # ------------------------------------------------------------------

    def setup_timing(self, n: int) -> TaskTiming:
        """Modelled one-time SetupFlight cost."""
        kt = charge_setup_flight(self.device, n, self.block_size)
        with obs_span("cuda.kernel.SetupFlight", cat="cuda", **kt.obs_attrs()) as sp:
            sp.add_modelled(kt.seconds)
        return TaskTiming(
            task="setup",
            platform=self.name,
            n_aircraft=n,
            seconds=kt.seconds,
            breakdown=kt.breakdown(),
        )

    def radar_phase_timing(self, n_aircraft: int, n_reports: int) -> RadarPhaseTiming:
        """Modelled GenerateRadarData kernel + host shuffle round trip."""
        return charge_generate_radar(
            self.device, n_aircraft, n_reports, self.block_size
        )

    # ------------------------------------------------------------------
    # description / normalization
    # ------------------------------------------------------------------

    def peak_throughput_ops_per_s(self) -> float:
        return self.device.total_cores * self.device.core_clock_ghz * 1e9

    def describe(self) -> Dict[str, Any]:
        info = super().describe()
        d = self.device
        info.update(
            kind="NVIDIA CUDA device model",
            device=d.name,
            compute_capability=".".join(map(str, d.compute_capability)),
            sm_count=d.sm_count,
            cuda_cores=d.total_cores,
            core_clock_ghz=d.core_clock_ghz,
            mem_bandwidth_gbs=d.mem_bandwidth_gbs,
            block_size=self.block_size,
            fused_collision_kernel=self.fused_collision_kernel,
        )
        return info
