"""Assemble a kernel's modelled execution time from a warp ledger.

Roofline-style model with explicit scheduling waves:

* **compute time** — total weighted warp-instruction issues, spread over
  the device's FP32 lanes at the core clock, rounded up to whole
  scheduling waves (a partially-filled last wave still occupies its SMs
  for a full block's worth of cycles — this is the source of the small
  super-linear "staircase" the paper's near-linear curves show);
* **bandwidth time** — total bytes over peak DRAM bandwidth;
* **latency time** — total transactions times DRAM latency, divided by
  the latency-hiding parallelism (resident warps x memory-level
  parallelism);
* the kernel busy time is the max of the three (overlap assumption), and
  every launch pays the fixed driver overhead.

All quantities are deterministic functions of the ledger and the device
table — running the same input twice gives bit-identical times, which is
the determinism property the paper measures for CUDA.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.types import TimingBreakdown
from .device import WARP_SIZE, DeviceProperties
from .execution import WarpLedger
from .grid import LaunchConfig
from .occupancy import Occupancy, compute_occupancy

__all__ = ["KernelTiming", "kernel_timing"]

#: Assumed outstanding memory requests per warp (memory-level
#: parallelism) when computing latency hiding.
_MLP = 4.0


@dataclass(frozen=True)
class KernelTiming:
    """Modelled execution time of one kernel launch."""

    kernel: str
    device: str
    seconds: float
    compute_seconds: float
    bandwidth_seconds: float
    latency_seconds: float
    launch_seconds: float
    occupancy: Occupancy
    issue_total: float
    transactions_total: float
    bytes_total: float

    @property
    def bound(self) -> str:
        """Which roofline term dominates this launch."""
        terms = {
            "compute": self.compute_seconds,
            "bandwidth": self.bandwidth_seconds,
            "latency": self.latency_seconds,
        }
        return max(terms, key=terms.get)

    def obs_attrs(self) -> dict:
        """Span attributes for the kernel-launch tracing span.

        Everything a profile needs to explain the launch: the roofline
        terms, which one bound it, and the occupancy picture.
        """
        return {
            "device": self.device,
            "bound": self.bound,
            "occupancy": self.occupancy.occupancy_fraction,
            "waves": self.occupancy.waves,
            "blocks_per_sm": self.occupancy.blocks_per_sm,
            "issue_total": self.issue_total,
            "transactions_total": self.transactions_total,
            "bytes_total": self.bytes_total,
            "compute_s": self.compute_seconds,
            "bandwidth_s": self.bandwidth_seconds,
            "latency_s": self.latency_seconds,
            "launch_s": self.launch_seconds,
        }

    def breakdown(self) -> TimingBreakdown:
        """Map the roofline terms onto the shared breakdown format.

        The dominant term is charged as busy time; the launch overhead is
        `overhead`.  Components sum to ``seconds``.
        """
        busy = self.seconds - self.launch_seconds
        if self.bound == "compute":
            return TimingBreakdown(compute=busy, overhead=self.launch_seconds)
        return TimingBreakdown(memory=busy, overhead=self.launch_seconds)


def kernel_timing(
    name: str,
    device: DeviceProperties,
    config: LaunchConfig,
    ledger: WarpLedger,
    *,
    smem_per_block: int = 0,
) -> KernelTiming:
    """Convert accumulated warp costs into seconds on ``device``."""
    occ = compute_occupancy(device, config, smem_per_block=smem_per_block)
    totals = ledger.totals()
    clock_hz = device.core_clock_ghz * 1e9

    # --- compute term, wave by wave --------------------------------------
    # Lane-cycles: each warp instruction occupies 32 lanes for one lane-
    # cycle each.  Blocks are near-uniform, so per-block cycles are the
    # mean; full waves run blocks_per_sm blocks back to back on each SM,
    # the final partial wave runs however many blocks landed on the
    # busiest SM.
    n_blocks = config.n_blocks
    lane_cycles_total = totals.issue * WARP_SIZE
    lane_cycles_per_block = lane_cycles_total / n_blocks
    sm_cycles_per_block = lane_cycles_per_block / device.cores_per_sm

    full_waves, remainder = divmod(n_blocks, occ.concurrent_blocks)
    blocks_on_busiest_sm = full_waves * occ.blocks_per_sm
    if remainder:
        blocks_on_busiest_sm += -(-remainder // device.sm_count)
    compute_seconds = blocks_on_busiest_sm * sm_cycles_per_block / clock_hz

    # --- bandwidth term ---------------------------------------------------
    bandwidth_seconds = totals.bytes / (device.mem_bandwidth_gbs * 1e9)

    # --- latency term -----------------------------------------------------
    resident_warps = occ.warps_per_sm * device.sm_count
    hiding = max(1.0, resident_warps * _MLP)
    latency_seconds = (
        totals.transactions * device.dram_latency_cycles / clock_hz / hiding
    )

    busy = max(compute_seconds, bandwidth_seconds, latency_seconds)
    return KernelTiming(
        kernel=name,
        device=device.key,
        seconds=device.kernel_launch_s + busy,
        compute_seconds=compute_seconds,
        bandwidth_seconds=bandwidth_seconds,
        latency_seconds=latency_seconds,
        launch_seconds=device.kernel_launch_s,
        occupancy=occ,
        issue_total=totals.issue,
        transactions_total=totals.transactions,
        bytes_total=totals.bytes,
    )
