"""Host<->device transfer model and global-memory coalescing analysis.

Transfers
---------
A PCIe copy of ``b`` bytes costs ``latency + b / bandwidth``.  The ATM
program copies the radar array device->host and back every period (the
fourth-reversal shuffle runs on the host — Section 4.1) and the full
drone struct at program start; the fused CheckCollisionPath kernel exists
precisely to avoid extra mid-cycle copies (Section 4).

Coalescing
----------
When a warp issues a load/store, the hardware merges the 32 lane
addresses into memory transactions of ``mem_segment_bytes`` each:

* CC >= 2.0: the transaction count is the number of *distinct* segments
  touched by active lanes (order and alignment within the segment do not
  matter);
* CC 1.x (``strict_coalescing``): coalescing is evaluated per half-warp
  and requires lane k to hit word k of an aligned segment; any deviation
  serializes the half-warp into one transaction per active lane.  This is
  why the 9800 GT pays so much more for the shuffled radar gathers.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .device import WARP_SIZE, DeviceProperties

__all__ = ["TransferModel", "transaction_count"]


@dataclass(frozen=True)
class TransferModel:
    """PCIe copy cost model for one device."""

    device: DeviceProperties

    def copy_seconds(self, n_bytes: int) -> float:
        """Time to copy ``n_bytes`` one way across PCIe."""
        if n_bytes < 0:
            raise ValueError("negative transfer size")
        if n_bytes == 0:
            return 0.0
        return self.device.pcie_latency_s + n_bytes / (
            self.device.pcie_bandwidth_gbs * 1e9
        )

    def round_trip_seconds(self, n_bytes: int) -> float:
        """Device->host + host->device of the same payload."""
        return 2.0 * self.copy_seconds(n_bytes)


def transaction_count(
    device: DeviceProperties,
    byte_offsets: np.ndarray,
    active: np.ndarray,
    itemsize: int,
) -> np.ndarray:
    """Memory transactions per warp for one warp-wide access.

    Parameters
    ----------
    device:
        Coalescing rules come from ``mem_segment_bytes`` and
        ``strict_coalescing``.
    byte_offsets:
        (n_warps, WARP_SIZE) array of byte addresses relative to the
        allocation base (any consistent base works — only segment
        membership matters).
    active:
        (n_warps, WARP_SIZE) bool lane mask.
    itemsize:
        element size in bytes (4 or 8 in this code base).

    Returns
    -------
    (n_warps,) int array of transactions issued by each warp (0 for
    fully-inactive warps).
    """
    if byte_offsets.shape != active.shape or byte_offsets.shape[1] != WARP_SIZE:
        raise ValueError("byte_offsets/active must be (n_warps, 32)")

    seg = device.mem_segment_bytes
    segments = byte_offsets // seg

    if not device.strict_coalescing:
        # Fermi+ rule: distinct 128B segments per warp.  Sorting each
        # row lets us count distinct values among active lanes.
        big = np.where(active, segments, np.int64(np.iinfo(np.int64).max))
        big.sort(axis=1)
        distinct = np.ones(big.shape, dtype=bool)
        distinct[:, 1:] = big[:, 1:] != big[:, :-1]
        lanes_active = active.any(axis=1)
        counts = (distinct & (big != np.iinfo(np.int64).max)).sum(axis=1)
        return np.where(lanes_active, counts, 0).astype(np.int64)

    # CC 1.x rule, per half-warp: perfectly sequential & aligned access
    # coalesces into one transaction; anything else serializes.
    n_warps = byte_offsets.shape[0]
    counts = np.zeros(n_warps, dtype=np.int64)
    half = WARP_SIZE // 2
    for start in (0, half):
        off = byte_offsets[:, start : start + half]
        act = active[:, start : start + half]
        any_active = act.any(axis=1)
        lane = np.arange(half, dtype=np.int64) * itemsize
        base = off[:, :1]
        sequential = ((off - base) == lane[None, :]) | ~act
        aligned = (base[:, 0] % seg) == 0
        coalesced = sequential.all(axis=1) & aligned & any_active
        serial = any_active & ~coalesced
        counts += np.where(coalesced, 1, 0)
        counts += np.where(serial, act.sum(axis=1), 0)
    return counts
