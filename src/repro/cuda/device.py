"""NVIDIA device property tables for the paper's three cards.

The numbers are the published specifications of the physical cards the
paper used (Section 6.1): a GeForce 9800 GT (Tesla G92b, the paper's
"compute capacity 1" Linux research card), a GTX 880M (Kepler GK104 in a
laptop, CC 3.0) and a Titan X Pascal (GP102, CC 6.1, the card donated by
NVIDIA).  The timing model in :mod:`repro.cuda.timing` reads everything
it needs from these tables, so adding a new card is a one-table change.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

__all__ = [
    "DeviceProperties",
    "GEFORCE_9800_GT",
    "GTX_880M",
    "TITAN_X_PASCAL",
    "DEVICES",
    "get_device",
]

#: Threads per warp on every NVIDIA architecture to date.
WARP_SIZE: int = 32


@dataclass(frozen=True)
class DeviceProperties:
    """Static hardware description of one CUDA device.

    Construction validates the table: every count, clock and bandwidth
    must be positive and the resident-thread limits mutually consistent,
    so derived values (``total_cores``, ``max_warps_per_sm``,
    ``peak_gflops``) are guaranteed meaningful instead of merely
    computed.  The design-space search (:mod:`repro.search`) constructs
    thousands of candidate tables, so a bad parameter must fail here,
    loudly, rather than surface as a nonsense cost model downstream.
    """

    #: marketing name, e.g. "GeForce 9800 GT".
    name: str
    #: registry suffix, e.g. "geforce-9800-gt".
    key: str
    #: compute capability (major, minor).
    compute_capability: Tuple[int, int]
    #: number of streaming multiprocessors.
    sm_count: int
    #: CUDA cores (FP32 lanes) per SM.
    cores_per_sm: int
    #: shader/core clock in GHz (the clock CUDA cores execute at).
    core_clock_ghz: float
    #: peak global-memory bandwidth in GB/s.
    mem_bandwidth_gbs: float
    #: approximate DRAM access latency in core cycles.
    dram_latency_cycles: int
    #: hardware limit on resident threads per SM.
    max_threads_per_sm: int
    #: hardware limit on resident blocks per SM.
    max_blocks_per_sm: int
    #: hardware limit on threads per block.
    max_threads_per_block: int
    #: effective host<->device bandwidth of the PCIe link, GB/s.
    pcie_bandwidth_gbs: float
    #: fixed per-transfer latency of the PCIe link, seconds.
    pcie_latency_s: float
    #: fixed kernel launch overhead, seconds.
    kernel_launch_s: float
    #: special-function (sqrt, division, trig) issue-cost multiplier
    #: relative to a simple FP32 op.
    special_op_factor: float
    #: memory-transaction segment size in bytes (coalescing granule).
    mem_segment_bytes: int
    #: L2 cache size in bytes (0 on CC 1.x, which only has small per-SM
    #: texture caches; the timing model falls back to those).
    l2_bytes: int
    #: shared memory per SM in bytes (the resource a tiled kernel
    #: trades occupancy against).
    smem_per_sm_bytes: int
    #: True on CC < 2.0 where coalescing is evaluated per half-warp with
    #: strict in-order rules; misaligned access serializes.
    strict_coalescing: bool

    def __post_init__(self) -> None:
        positive = {
            "sm_count": self.sm_count,
            "cores_per_sm": self.cores_per_sm,
            "core_clock_ghz": self.core_clock_ghz,
            "mem_bandwidth_gbs": self.mem_bandwidth_gbs,
            "dram_latency_cycles": self.dram_latency_cycles,
            "max_threads_per_sm": self.max_threads_per_sm,
            "max_blocks_per_sm": self.max_blocks_per_sm,
            "max_threads_per_block": self.max_threads_per_block,
            "pcie_bandwidth_gbs": self.pcie_bandwidth_gbs,
            "mem_segment_bytes": self.mem_segment_bytes,
            "smem_per_sm_bytes": self.smem_per_sm_bytes,
        }
        for field_name, value in positive.items():
            if not value > 0:
                raise ValueError(
                    f"device {self.name!r}: {field_name} must be positive,"
                    f" got {value!r}"
                )
        non_negative = {
            "pcie_latency_s": self.pcie_latency_s,
            "kernel_launch_s": self.kernel_launch_s,
            "l2_bytes": self.l2_bytes,
        }
        for field_name, value in non_negative.items():
            if value < 0:
                raise ValueError(
                    f"device {self.name!r}: {field_name} must be >= 0,"
                    f" got {value!r}"
                )
        if self.special_op_factor < 1.0:
            raise ValueError(
                f"device {self.name!r}: special_op_factor must be >= 1"
                f" (a special op cannot be cheaper than a simple op),"
                f" got {self.special_op_factor!r}"
            )
        if self.max_threads_per_sm % WARP_SIZE:
            raise ValueError(
                f"device {self.name!r}: max_threads_per_sm"
                f" ({self.max_threads_per_sm}) must be a whole number of"
                f" {WARP_SIZE}-thread warps"
            )
        if self.max_threads_per_block > self.max_threads_per_sm:
            raise ValueError(
                f"device {self.name!r}: max_threads_per_block"
                f" ({self.max_threads_per_block}) exceeds max_threads_per_sm"
                f" ({self.max_threads_per_sm})"
            )

    @property
    def total_cores(self) -> int:
        return self.sm_count * self.cores_per_sm

    @property
    def max_warps_per_sm(self) -> int:
        return self.max_threads_per_sm // WARP_SIZE

    @property
    def peak_gflops(self) -> float:
        """Peak single-precision GFLOP/s (FMA counted as 2 ops)."""
        return self.total_cores * self.core_clock_ghz * 2.0

    @property
    def registry_name(self) -> str:
        return f"cuda:{self.key}"


GEFORCE_9800_GT = DeviceProperties(
    name="GeForce 9800 GT",
    key="geforce-9800-gt",
    compute_capability=(1, 1),
    sm_count=14,
    cores_per_sm=8,
    core_clock_ghz=1.500,
    mem_bandwidth_gbs=57.6,
    dram_latency_cycles=600,
    max_threads_per_sm=768,
    max_blocks_per_sm=8,
    max_threads_per_block=512,
    pcie_bandwidth_gbs=5.0,  # PCIe 2.0 x16, effective
    pcie_latency_s=12e-6,
    kernel_launch_s=12e-6,
    special_op_factor=4.0,
    mem_segment_bytes=64,
    strict_coalescing=True,
    l2_bytes=0,
    smem_per_sm_bytes=16 * 1024,
)

GTX_880M = DeviceProperties(
    name="GTX 880M",
    key="gtx-880m",
    compute_capability=(3, 0),
    sm_count=8,
    cores_per_sm=192,
    core_clock_ghz=0.954,
    mem_bandwidth_gbs=160.0,
    dram_latency_cycles=400,
    max_threads_per_sm=2048,
    max_blocks_per_sm=16,
    max_threads_per_block=1024,
    pcie_bandwidth_gbs=10.0,  # PCIe 3.0 x16, effective (laptop)
    pcie_latency_s=8e-6,
    kernel_launch_s=6e-6,
    special_op_factor=6.0,
    mem_segment_bytes=128,
    strict_coalescing=False,
    l2_bytes=512 * 1024,
    smem_per_sm_bytes=48 * 1024,
)

TITAN_X_PASCAL = DeviceProperties(
    name="Titan X (Pascal)",
    key="titan-x-pascal",
    compute_capability=(6, 1),
    sm_count=28,
    cores_per_sm=128,
    core_clock_ghz=1.417,
    mem_bandwidth_gbs=480.0,
    dram_latency_cycles=350,
    max_threads_per_sm=2048,
    max_blocks_per_sm=32,
    max_threads_per_block=1024,
    pcie_bandwidth_gbs=12.0,  # PCIe 3.0 x16, effective
    pcie_latency_s=6e-6,
    kernel_launch_s=5e-6,
    special_op_factor=4.0,
    mem_segment_bytes=128,
    strict_coalescing=False,
    l2_bytes=3 * 1024 * 1024,
    smem_per_sm_bytes=96 * 1024,
)

DEVICES: Dict[str, DeviceProperties] = {
    d.key: d for d in (GEFORCE_9800_GT, GTX_880M, TITAN_X_PASCAL)
}


def get_device(key: str) -> DeviceProperties:
    """Look up a device by key ("geforce-9800-gt", "gtx-880m", ...)."""
    try:
        return DEVICES[key]
    except KeyError:
        known = ", ".join(sorted(DEVICES))
        raise KeyError(f"unknown CUDA device {key!r}; known devices: {known}") from None
