"""Warp-level NVIDIA GPU execution simulator.

Models the three cards of the paper — GeForce 9800 GT (CC 1.1),
GTX 880M (CC 3.0) and Titan X Pascal (CC 6.1) — with explicit SIMT
semantics: warps, divergence, per-compute-capability memory coalescing,
occupancy waves, PCIe transfers and kernel launch overhead.
"""

from ..backends.registry import register_backend
from .backend import CudaBackend
from .device import (
    DEVICES,
    GEFORCE_9800_GT,
    GTX_880M,
    TITAN_X_PASCAL,
    DeviceProperties,
    get_device,
)
from .execution import WarpLedger
from .grid import PAPER_BLOCK_SIZE, LaunchConfig
from .occupancy import Occupancy, compute_occupancy
from .timing import KernelTiming, kernel_timing

__all__ = [
    "CudaBackend",
    "DEVICES",
    "GEFORCE_9800_GT",
    "GTX_880M",
    "TITAN_X_PASCAL",
    "DeviceProperties",
    "get_device",
    "WarpLedger",
    "PAPER_BLOCK_SIZE",
    "LaunchConfig",
    "Occupancy",
    "compute_occupancy",
    "KernelTiming",
    "kernel_timing",
]


def _register() -> None:
    for key in DEVICES:
        register_backend(f"cuda:{key}", lambda key=key: CudaBackend(key))


_register()
