"""Kernel launch configuration: the paper's block/thread setup rule.

Section 6.1: "If there are 96 aircrafts, then the setup used here is 1
block and 96 threads in that block.  For more aircraft, the limit on
threads per block remains 96 but the blocks increase as the number of
aircrafts increases."  96 threads = 3 warps per block; the last warp of
the last block may be partially populated when N is not a multiple of 32.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from .device import WARP_SIZE, DeviceProperties

__all__ = ["PAPER_BLOCK_SIZE", "LaunchConfig"]

#: The paper's fixed threads-per-block choice (matches the 96 PEs of the
#: ClearSpeed chip the AP implementation used).
PAPER_BLOCK_SIZE: int = 96


@dataclass(frozen=True)
class LaunchConfig:
    """A 1-D kernel launch: ``n_threads`` useful threads in fixed blocks."""

    n_threads: int
    block_size: int = PAPER_BLOCK_SIZE

    def __post_init__(self) -> None:
        if self.n_threads <= 0:
            raise ValueError("kernel needs at least one thread")
        if self.block_size <= 0 or self.block_size % WARP_SIZE:
            raise ValueError(
                f"block size must be a positive multiple of {WARP_SIZE}, "
                f"got {self.block_size}"
            )

    @classmethod
    def for_problem(
        cls, n: int, device: DeviceProperties, block_size: int = PAPER_BLOCK_SIZE
    ) -> "LaunchConfig":
        """Launch config for an N-element problem on a device."""
        if block_size > device.max_threads_per_block:
            raise ValueError(
                f"block size {block_size} exceeds device limit "
                f"{device.max_threads_per_block}"
            )
        return cls(n_threads=n, block_size=block_size)

    @property
    def n_blocks(self) -> int:
        return math.ceil(self.n_threads / self.block_size)

    @property
    def warps_per_block(self) -> int:
        return self.block_size // WARP_SIZE

    @property
    def n_warps(self) -> int:
        """Warps actually carrying at least one useful thread."""
        return math.ceil(self.n_threads / WARP_SIZE)

    @property
    def padded_threads(self) -> int:
        """Thread count rounded up to a whole number of warps."""
        return self.n_warps * WARP_SIZE
