"""Occupancy: how many blocks/warps fit on an SM at once.

The ATM kernels use global memory only ("the program uses global memory
and is not restricted by shared memory size" — Section 5), so occupancy
here is limited by the three hardware ceilings: threads/SM, blocks/SM and
warps/SM.  Register pressure is folded into an optional
``regs_per_thread`` argument for ablation studies.
"""

from __future__ import annotations

from dataclasses import dataclass

from .device import WARP_SIZE, DeviceProperties
from .grid import LaunchConfig

__all__ = ["Occupancy", "compute_occupancy"]


@dataclass(frozen=True)
class Occupancy:
    """Resolved occupancy of one kernel launch on one device."""

    #: blocks resident per SM.
    blocks_per_sm: int
    #: warps resident per SM.
    warps_per_sm: int
    #: blocks the whole device can run concurrently.
    concurrent_blocks: int
    #: number of scheduling waves needed for the launch.
    waves: int
    #: fraction of the device's warp slots occupied (0..1].
    occupancy_fraction: float


def compute_occupancy(
    device: DeviceProperties,
    config: LaunchConfig,
    *,
    regs_per_thread: int = 32,
    regs_per_sm: int = 65536,
    smem_per_block: int = 0,
) -> Occupancy:
    """Resolve how the launch packs onto the device.

    Mirrors the CUDA occupancy calculator: the binding limits are
    threads/SM, blocks/SM, registers and — for tiled kernels —
    shared memory per block (the paper's kernels use none, which is
    what keeps them portable across compute capabilities).
    """
    if regs_per_thread <= 0:
        raise ValueError("registers per thread must be positive")
    if smem_per_block < 0:
        raise ValueError("shared memory per block cannot be negative")
    if smem_per_block > device.smem_per_sm_bytes:
        raise ValueError(
            f"block needs {smem_per_block} B shared memory; the SM has "
            f"{device.smem_per_sm_bytes} B"
        )

    by_threads = device.max_threads_per_sm // config.block_size
    by_blocks = device.max_blocks_per_sm
    by_regs = regs_per_sm // (regs_per_thread * config.block_size)
    limits = [by_threads, by_blocks, by_regs]
    if smem_per_block > 0:
        limits.append(device.smem_per_sm_bytes // smem_per_block)
    blocks_per_sm = max(1, min(limits))

    warps_per_sm = blocks_per_sm * config.warps_per_block
    concurrent = blocks_per_sm * device.sm_count
    waves = -(-config.n_blocks // concurrent)  # ceil division
    fraction = min(
        1.0, warps_per_sm / (device.max_threads_per_sm / WARP_SIZE)
    )
    return Occupancy(
        blocks_per_sm=blocks_per_sm,
        warps_per_sm=warps_per_sm,
        concurrent_blocks=concurrent,
        waves=waves,
        occupancy_fraction=fraction,
    )
