"""Cost model of the ``GenerateRadarData`` kernel plus the host shuffle.

One thread per aircraft computes the expected position, adds the noise
draws and writes its radar report.  The paper then copies the report
array to the host, applies the fourth-reversal shuffle there, and copies
it back — the round trip is charged here because it is part of producing
a frame, even though the whole activity happens *before* each period's
deadline window opens (Section 4.2).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..device import DeviceProperties
from ..execution import WarpLedger
from ..grid import PAPER_BLOCK_SIZE, LaunchConfig
from ..memory import TransferModel
from ..timing import KernelTiming, kernel_timing

__all__ = ["RadarPhaseTiming", "charge_generate_radar"]

#: Noise draws per report (x and y).
RNG_DRAWS = 2
OPS_PER_DRAW = 14

#: expected-position adds, noise scaling, bounds handling.
FIXUP_OPS = 10

#: bytes per radar report moved across PCIe (rx, ry as float64).
REPORT_BYTES = 16


@dataclass(frozen=True)
class RadarPhaseTiming:
    """Kernel + host-shuffle round trip for one radar frame."""

    kernel: KernelTiming
    transfer_seconds: float

    @property
    def seconds(self) -> float:
        return self.kernel.seconds + self.transfer_seconds


def charge_generate_radar(
    device: DeviceProperties,
    n_aircraft: int,
    n_reports: int,
    block_size: int = PAPER_BLOCK_SIZE,
) -> RadarPhaseTiming:
    """Modelled cost of generating and shuffling one radar frame."""
    config = LaunchConfig.for_problem(n_aircraft, device, block_size)
    ledger = WarpLedger(device, config)

    # Load own x, y, dx, dy; compute noise; store rx, ry.
    ledger.charge_contiguous_access(4)
    ledger.charge_issue(RNG_DRAWS * OPS_PER_DRAW + FIXUP_OPS)
    ledger.charge_contiguous_access(2)

    kernel = kernel_timing("GenerateRadarData", device, config, ledger)
    transfers = TransferModel(device).round_trip_seconds(n_reports * REPORT_BYTES)
    return RadarPhaseTiming(kernel=kernel, transfer_seconds=transfers)
