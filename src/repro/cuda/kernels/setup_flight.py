"""Cost model of the ``SetupFlight`` kernel (one thread per aircraft).

Executed once at program start: each thread draws its aircraft's
position, speed, velocity components and altitude with the counter-based
generator and writes its own flight record — a perfectly coalesced,
divergence-free kernel.
"""

from __future__ import annotations

from ..device import DeviceProperties
from ..execution import WarpLedger
from ..grid import PAPER_BLOCK_SIZE, LaunchConfig
from ..timing import KernelTiming, kernel_timing

__all__ = ["charge_setup_flight"]

#: Independent SplitMix64 draws per aircraft (x, y, 2 signs, speed, dx,
#: 2 signs, altitude).
RNG_DRAWS = 9

#: Weighted issue slots per draw: 3 xor-shifts, 2 multiplies, key mixing
#: and the unit-interval conversion.
OPS_PER_DRAW = 14

#: Scale/negate/convert arithmetic around the draws.
FIXUP_OPS = 16

#: Flight-record columns written (x, y, dx, dy, alt, batdx, batdy).
COLUMNS_WRITTEN = 7


def charge_setup_flight(
    device: DeviceProperties,
    n: int,
    block_size: int = PAPER_BLOCK_SIZE,
) -> KernelTiming:
    """Modelled cost of initialising ``n`` aircraft on ``device``."""
    config = LaunchConfig.for_problem(n, device, block_size)
    ledger = WarpLedger(device, config)

    ledger.charge_issue(RNG_DRAWS * OPS_PER_DRAW + FIXUP_OPS)
    ledger.charge_issue(1, special=True)  # |dy| = sqrt(S^2 - dx^2)
    ledger.charge_contiguous_access(COLUMNS_WRITTEN)

    return kernel_timing("SetupFlight", device, config, ledger)
