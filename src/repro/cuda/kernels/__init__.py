"""Cost models of the four kernels of the paper's CUDA program."""

from .check_collision import charge_check_collision
from .generate_radar import RadarPhaseTiming, charge_generate_radar
from .setup_flight import charge_setup_flight
from .track_drone import charge_track_drone

__all__ = [
    "charge_check_collision",
    "RadarPhaseTiming",
    "charge_generate_radar",
    "charge_setup_flight",
    "charge_track_drone",
]
