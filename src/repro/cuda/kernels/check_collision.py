"""Cost model of the fused ``CheckCollisionPath`` kernel (Tasks 2+3).

Thread ``i`` owns aircraft ``i`` and sweeps the whole flight table:
altitude gate first (Algorithm 2, line 3), then the Batcher interval
equations (1)-(6) for pairs inside the 1000 ft band, and — when a
critical conflict is found — the Task-3 manoeuvre: rotate the trial
velocity and *restart the sweep* ("we reset the loop by setting t = 19
... to start checking against all other aircrafts from the beginning
again").

SIMT consequences replayed here:

* a warp executes an iteration's deep path when *any* of its 32 lanes
  passes the altitude gate — the per-warp pass counts are computed
  exactly from the fleet's altitude column;
* a warp keeps sweeping until its *slowest* lane finishes, so its sweep
  count is ``1 + max(attempts in warp)`` with the per-aircraft attempt
  counts taken from the reference resolution run;
* the flight table is streamed from DRAM once per sweep when it exceeds
  the card's cache (the 9800 GT has no L2 — only per-SM texture caches —
  which is what bends its Tasks-2+3 curve quadratic in Fig. 9 while the
  Pascal card stays linear far longer).
"""

from __future__ import annotations

import numpy as np

from ...core import constants as C
from ...core.bands import group_band_pass_counts
from ...core.collision import DetectionStats
from ...core.resolution import ResolutionStats
from ...core.types import FleetState
from ..device import DeviceProperties
from ..execution import WarpLedger
from ..grid import PAPER_BLOCK_SIZE, LaunchConfig
from ..timing import KernelTiming, kernel_timing

__all__ = [
    "charge_check_collision",
    "charge_check_collision_tiled",
    "altitude_pass_counts",
]

#: loop housekeeping + id check + altitude compare per iteration.
ITER_OPS = 6

#: Batcher interval math: gaps, relative velocities, four quotient
#: numerators/denominators, min/max combination, window tests.
INTERVAL_OPS = 22

#: divisions in Eqs. (1)-(4) (special-function units).
INTERVAL_DIVS = 4

#: conflict bookkeeping per critical hit (time_till/colWith updates).
CRITICAL_OPS = 10

#: per-trial manoeuvre: sin/cos rotation + loop reset.
TRIAL_OPS = 8
TRIAL_SPECIALS = 2

#: per-thread prologue/epilogue (flag init, final path commit).
EDGE_OPS = 12

#: flight-table bytes streamed per sweep (x, y, dx, dy, alt as float64).
SWEEP_BYTES_PER_AIRCRAFT = 40

#: aggregate per-SM texture cache modelled for the CC 1.x card (no L2).
_TEXTURE_CACHE_FALLBACK = 128 * 1024


def _in_band_per_aircraft(alt: np.ndarray) -> np.ndarray:
    """Per-aircraft count of others inside the 1000 ft band (sorted scan)."""
    order = np.sort(alt)
    lo = np.searchsorted(order, alt - C.ALTITUDE_SEPARATION_FT, side="left")
    hi = np.searchsorted(order, alt + C.ALTITUDE_SEPARATION_FT, side="right")
    return (hi - lo - 1).astype(np.float64)


def altitude_pass_counts(ledger: WarpLedger, alt: np.ndarray) -> np.ndarray:
    """Per-warp count of sweep iterations entering the deep path.

    Iteration ``p`` of warp ``w`` takes the interval-math path when any
    lane of ``w`` holds an aircraft within 1000 ft of aircraft ``p``.
    Computed exactly from the altitude column via the sorted band-union
    scan of :mod:`repro.core.bands` — ``O(n log n)`` instead of the
    warps x lanes x aircraft boolean tensor, bit-identical counts.
    """
    n = alt.shape[0]
    padded = np.zeros(ledger.config.padded_threads, dtype=np.float64)
    padded[:n] = alt
    lanes = padded.reshape(ledger.n_warps, -1)
    lane_valid = ledger.full_mask().reshape(ledger.n_warps, -1)
    return group_band_pass_counts(lanes, lane_valid, alt, C.ALTITUDE_SEPARATION_FT)


def charge_check_collision(
    device: DeviceProperties,
    fleet: FleetState,
    det: DetectionStats,
    res: ResolutionStats,
    block_size: int = PAPER_BLOCK_SIZE,
) -> KernelTiming:
    """Modelled cost of one fused Task-2+3 kernel launch.

    ``det``/``res`` are the dynamic statistics of the reference run on
    this fleet (they provide trip counts the hardware would discover at
    run time).
    """
    n = fleet.n
    config = LaunchConfig.for_problem(n, device, block_size)
    ledger = WarpLedger(device, config)

    # Per-warp sweep multiplier: 1 base detection sweep + the re-sweeps
    # of the slowest resolving lane.
    attempts = res.attempts if res.attempts.shape[0] == n else np.zeros(n, np.int64)
    sweeps = 1.0 + ledger.warp_values(attempts, "max")

    # Prologue: own record + flag init.
    ledger.charge_contiguous_access(5)  # x, y, dx, dy, alt
    ledger.charge_issue(EDGE_OPS)

    # Sweep body.  Every iteration pays the loop + altitude gate (the
    # alt[p] broadcast is cache-served).  Deep-path (interval-math)
    # charging distinguishes the two sweep generations:
    #
    # * the first detection sweep runs with all lanes live, so a warp
    #   takes the deep path whenever *any* lane is in-band with p;
    # * re-sweeps run with only the still-resolving lanes live (the
    #   paper's loop-reset re-executes per thread), so each attempt adds
    #   deep iterations equal to *that aircraft's* in-band count.
    ledger.charge_issue_per_warp(sweeps * n * ITER_OPS)
    ledger.charge_issue_per_warp(sweeps * n)  # uniform alt[p] load issue

    deep_ops = INTERVAL_OPS + 4  # interval math + the 4 uniform loads
    deep_first = altitude_pass_counts(ledger, fleet.alt).astype(np.float64)
    band = _in_band_per_aircraft(fleet.alt)
    deep_resweep = ledger.warp_values(attempts * band, "sum")
    for deep in (deep_first, deep_resweep):
        ledger.charge_issue_per_warp(deep * deep_ops)
        ledger.charge_issue_per_warp(
            deep * INTERVAL_DIVS * device.special_op_factor
        )

    crit = det.critical_per_aircraft
    if crit is not None and crit.shape[0] == n:
        ledger.charge_issue_per_warp(
            ledger.warp_values(crit, "sum") * CRITICAL_OPS
        )

    # Manoeuvre cost per attempted trial, charged where it happened.
    trial_per_warp = ledger.warp_values(attempts, "sum")
    ledger.charge_issue_per_warp(trial_per_warp * TRIAL_OPS)
    ledger.charge_issue_per_warp(
        trial_per_warp * TRIAL_SPECIALS * device.special_op_factor
    )

    # Epilogue: commit the (possibly new) path and collision flags.
    ledger.charge_contiguous_access(4)  # dx, dy, batdx, batdy
    ledger.charge_contiguous_access(2, itemsize=1)  # col + bookkeeping
    ledger.charge_issue(EDGE_OPS)

    # DRAM traffic: the flight table streams once per sweep generation;
    # when it fits in cache the re-sweeps are cache-resident.
    table_bytes = n * SWEEP_BYTES_PER_AIRCRAFT
    cache = device.l2_bytes if device.l2_bytes > 0 else _TEXTURE_CACHE_FALLBACK
    cold_passes = max(1.0, table_bytes / cache)
    mean_sweeps = 1.0 + (attempts.mean() if n else 0.0)
    ledger.charge_stream(table_bytes, passes=cold_passes * mean_sweeps)

    return kernel_timing("CheckCollisionPath", device, config, ledger)


#: bytes of shared memory per tiled aircraft (x, y, dx, dy, alt).
_TILE_BYTES_PER_AIRCRAFT = SWEEP_BYTES_PER_AIRCRAFT

#: issue cost per tile: cooperative loads + two __syncthreads.
_TILE_LOAD_OPS = 10
_TILE_SYNC_OPS = 4


def charge_check_collision_tiled(
    device: DeviceProperties,
    fleet: FleetState,
    det: DetectionStats,
    res: ResolutionStats,
    block_size: int = PAPER_BLOCK_SIZE,
) -> KernelTiming:
    """The *rejected* design: a shared-memory tiled collision kernel.

    The paper keeps everything in global memory — "the program uses
    global memory and is not restricted by shared memory size, which is
    what makes it compatible on the old and new architecture".  This
    variant models the textbook alternative: each block stages the
    flight table through shared-memory tiles of ``block_size`` aircraft.

    What the model shows (the ablation's point):

    * every block must stream the whole table itself — DRAM traffic is
      ``n_blocks x table`` instead of one cached pass, which is *worse*
      than the global+cache design everywhere the caches work;
    * the tile buffer costs occupancy, squeezing the CC 1.x card's
      16 KiB of shared memory hardest;
    * per-tile cooperative loads and barriers add issue overhead.
    """
    n = fleet.n
    config = LaunchConfig.for_problem(n, device, block_size)
    ledger = WarpLedger(device, config)
    smem_per_block = block_size * _TILE_BYTES_PER_AIRCRAFT

    attempts = res.attempts if res.attempts.shape[0] == n else np.zeros(n, np.int64)
    sweeps = 1.0 + ledger.warp_values(attempts, "max")
    n_tiles = -(-n // block_size)

    # Prologue/epilogue identical to the global-memory kernel.
    ledger.charge_contiguous_access(5)
    ledger.charge_issue(EDGE_OPS)

    # Tile machinery: cooperative load + barriers, every tile, every sweep.
    ledger.charge_issue_per_warp(
        sweeps * n_tiles * (_TILE_LOAD_OPS + _TILE_SYNC_OPS)
    )

    # Sweep body: same compute as the global kernel, but the alt[p]
    # reads now come from shared memory (still one issue each).
    ledger.charge_issue_per_warp(sweeps * n * ITER_OPS)
    ledger.charge_issue_per_warp(sweeps * n)

    deep_ops = INTERVAL_OPS + 4
    deep_first = altitude_pass_counts(ledger, fleet.alt).astype(np.float64)
    band = _in_band_per_aircraft(fleet.alt)
    deep_resweep = ledger.warp_values(attempts * band, "sum")
    for deep in (deep_first, deep_resweep):
        ledger.charge_issue_per_warp(deep * deep_ops)
        ledger.charge_issue_per_warp(deep * INTERVAL_DIVS * device.special_op_factor)

    crit = det.critical_per_aircraft
    if crit is not None and crit.shape[0] == n:
        ledger.charge_issue_per_warp(ledger.warp_values(crit, "sum") * CRITICAL_OPS)
    trial_per_warp = ledger.warp_values(attempts, "sum")
    ledger.charge_issue_per_warp(trial_per_warp * TRIAL_OPS)
    ledger.charge_issue_per_warp(
        trial_per_warp * TRIAL_SPECIALS * device.special_op_factor
    )

    ledger.charge_contiguous_access(4)
    ledger.charge_contiguous_access(2, itemsize=1)
    ledger.charge_issue(EDGE_OPS)

    # DRAM traffic: every block streams the whole table per sweep
    # generation — shared memory cannot be shared *across* blocks.
    table_bytes = n * SWEEP_BYTES_PER_AIRCRAFT
    mean_sweeps = 1.0 + (attempts.mean() if n else 0.0)
    ledger.charge_stream(table_bytes, passes=config.n_blocks * mean_sweeps)

    return kernel_timing(
        "CheckCollisionPathTiled",
        device,
        config,
        ledger,
        smem_per_block=smem_per_block,
    )
