"""Cost model of the ``TrackDrone`` kernel (Task 1, Algorithm 1).

Thread assignment follows the paper: thread ``i`` first initialises
aircraft ``i`` (expected position, ``rMatch`` reset), synchronises, then
"switches to handling one radar point" — scanning all N aircraft for its
radar with the 1x1 nm gate, with up to two retry rounds at doubled gate
sizes for radars still unmatched, and finally the commit scan.

Costs are replayed from the reference execution's dynamic statistics
(:class:`repro.core.tracking.TrackingStats`):

* every executed round scans all N aircraft, but the ``rMatch[p]`` check
  is warp-uniform (every thread looks at the same ``p``), so only the
  ``round_active_planes`` iterations pay the full gate test;
* rounds 2 and 3 only keep warps alive that still contain an unmatched
  radar (``round_radar_ids``) — warps whose radars all matched in round
  1 retire, which is why the retry rounds are nearly free when radar
  noise is small relative to the gate;
* match bookkeeping is charged to the warp containing the radar that
  performed it (``round_candidates_per_radar``);
* the commit phase re-reads each radar's ``rMatchWith`` and scatters the
  committed positions — a genuinely uncoalesced store pattern whose cost
  differs sharply between the CC 1.1 card and the newer ones.
"""

from __future__ import annotations

import numpy as np

from ...core import constants as C
from ...core.tracking import TrackingStats
from ...core.types import FleetState, RadarFrame
from ..device import DeviceProperties
from ..execution import WarpLedger
from ..grid import PAPER_BLOCK_SIZE, LaunchConfig
from ..timing import KernelTiming, kernel_timing

__all__ = ["charge_track_drone"]

#: per-iteration loop housekeeping (index increment, bound check, branch).
LOOP_OPS = 4

#: gate test: two subtractions, two |.|, four compares, two ands.
GATE_OPS = 10

#: state-machine work per candidate hit (loads, compares, flag writes).
BOOKKEEPING_OPS = 8

#: per-thread init phase (expected position, rMatch reset).
INIT_OPS = 8

#: commit-phase per-radar arithmetic.
COMMIT_OPS = 8


def _lane_mask_from_ids(ledger: WarpLedger, ids: np.ndarray) -> np.ndarray:
    mask = np.zeros(ledger.config.padded_threads, dtype=bool)
    mask[ids] = True
    return mask


def charge_track_drone(
    device: DeviceProperties,
    fleet: FleetState,
    frame: RadarFrame,
    stats: TrackingStats,
    block_size: int = PAPER_BLOCK_SIZE,
) -> KernelTiming:
    """Modelled cost of one Task-1 kernel launch.

    ``fleet``/``frame`` must be in their *post-correlation* state and
    ``stats`` the statistics the reference correlation returned for
    exactly this (fleet, frame) pair.
    """
    n = fleet.n
    config = LaunchConfig.for_problem(max(n, frame.n), device, block_size)
    ledger = WarpLedger(device, config)

    aircraft_lanes = np.zeros(config.padded_threads, dtype=bool)
    aircraft_lanes[:n] = True
    radar_lanes = np.zeros(config.padded_threads, dtype=bool)
    radar_lanes[: frame.n] = True

    # --- phase A: per-aircraft init ---------------------------------------
    ledger.charge_contiguous_access(4, aircraft_lanes)  # x, y, dx, dy
    ledger.charge_issue(INIT_OPS, aircraft_lanes)
    ledger.charge_contiguous_access(2, aircraft_lanes)  # expected_x/y stores
    ledger.charge_contiguous_access(1, aircraft_lanes, itemsize=1)  # rMatch
    ledger.charge_sync()

    # Cold streaming of the arrays the scan loops consume.
    ledger.charge_stream(n * (8 + 8 + 1))  # expected_x, expected_y, r_match

    # --- phase B: correlation rounds ---------------------------------------
    for round_no in range(stats.rounds_executed):
        active = _lane_mask_from_ids(ledger, stats.round_radar_ids[round_no])
        # Own radar report for the scan.
        ledger.charge_contiguous_access(2, active)  # rx, ry
        # Full sweep over all aircraft: loop + the warp-uniform
        # rMatch[p] check each iteration.
        ledger.charge_issue(LOOP_OPS * n, active)
        ledger.charge_uniform_load(n, active)
        # Only still-unmatched planes pay the gate test.
        live_planes = stats.round_active_planes[round_no]
        ledger.charge_uniform_load(2 * live_planes, active)  # ex[p], ey[p]
        ledger.charge_issue(GATE_OPS * live_planes, active)
        # Match bookkeeping where the hits happened.
        cand = stats.round_candidates_per_radar[round_no]
        per_lane = np.zeros(config.padded_threads, dtype=np.float64)
        per_lane[: cand.shape[0]] = cand
        ledger.charge_issue_per_warp(
            ledger.warp_values(per_lane, "sum") * BOOKKEEPING_OPS
        )

    # --- phase C: commit ----------------------------------------------------
    ledger.charge_contiguous_access(3, radar_lanes)  # match_with, rx, ry
    ledger.charge_issue(COMMIT_OPS, radar_lanes)

    valid = frame.match_with >= 0
    if np.any(valid):
        idx = np.clip(frame.match_with, 0, n - 1)
        valid_lanes = np.zeros(config.padded_threads, dtype=bool)
        valid_lanes[: frame.n] = valid
        # Read the matched aircraft's state (scattered gather).
        ledger.charge_gather(
            np.pad(idx, (0, config.padded_threads - idx.shape[0])),
            valid_lanes,
            repeats=2,  # r_match[p], matched_radar[p]
        )
        committed = valid.copy()
        planes = frame.match_with[valid]
        committed[valid] = (fleet.r_match[planes] == C.MATCHED_ONCE) & (
            fleet.matched_radar[planes] == np.nonzero(valid)[0]
        )
        commit_lanes = np.zeros(config.padded_threads, dtype=bool)
        commit_lanes[: frame.n] = committed
        if np.any(committed):
            # Scatter the committed positions (x[p], y[p] stores).
            ledger.charge_gather(
                np.pad(idx, (0, config.padded_threads - idx.shape[0])),
                commit_lanes,
                repeats=2,
            )

    # Uncommitted aircraft take their expected position (coalesced).
    ledger.charge_contiguous_access(2, aircraft_lanes)

    return kernel_timing("TrackDrone", device, config, ledger)
