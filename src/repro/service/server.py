"""ATM-as-a-service: the asyncio sweep/scenario server (docs/service.md).

``atm-repro serve`` wraps the batch sweep engine in a long-running
process.  The front-end is plain :func:`asyncio.start_server` speaking
a deliberately small slice of HTTP/1.1 (no framework, stdlib only);
behind it sit four mechanisms, all reusing harness machinery instead of
reimplementing it:

* **Coalescing** — every cell request is keyed by the same SHA-256
  cost-model fingerprint the result cache uses
  (:meth:`~repro.harness.cache.ResultCache.key_for`); requests for a
  cell already being measured await the in-flight future instead of
  queueing a duplicate.
* **Batching** — admitted cells accumulate for one batch window, then
  compatible cells (same seed/periods/mode) dispatch **together**
  through :func:`repro.harness.parallel.measure_cells`, sharing its
  process pool, functional-trace memoization and fault tolerance.
* **Admission control** — before a cell is queued, the
  :class:`~repro.analysis.deadlines.AdmissionController` estimates
  completion time against the request's deadline budget and rejects
  with a structured verdict (HTTP 429) or sheds load outright when the
  queue is full (HTTP 503).  The deadline machinery arbitrates access
  *before* work starts, COOK-style, instead of reporting misses after.
* **Observability** — every request ends in a ``service.request`` span
  (emitted atomically at completion, so interleaved asyncio tasks can
  never misnest the span tree) and the ``atm_service_*`` metric
  families; ``GET /metrics`` exposes the registry as OpenMetrics.
* **Crash safety** — admitted cells are fsynced into a
  :class:`~repro.service.journal.RequestJournal` *before* they enter
  the dispatch queue, so ``atm-repro serve --resume`` replays exactly
  the unfinished remainder after a SIGKILL; SIGTERM/SIGINT trigger a
  graceful drain instead (``/healthz`` → draining, new work → 503 +
  ``Retry-After``, queued cells flush under ``--drain-timeout``).
  See "Crash safety & drain" in docs/service.md.

**Byte identity.**  Responses are encoded by
:func:`repro.service.protocol.payload_bytes` — the report writer's JSON
settings — so a served cell is byte-identical to the same cell's
fragment in batch ``atm-repro report`` output, whichever of the
cache / coalescing / batch-dispatch paths produced it.
"""

from __future__ import annotations

import asyncio
import functools
import json
import signal
import time
from collections import OrderedDict
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Tuple

from ..analysis.deadlines import AdmissionController, AdmissionVerdict
from ..backends.registry import available_backends
from ..core.collision import DetectionMode
from ..harness.faults import FaultPlan
from ..obs import count as obs_count
from ..obs import span as obs_span
from ..obs.metrics import (
    MetricsRegistry,
    activate_metrics,
    deactivate_metrics,
    get_registry,
    metric_inc,
    metric_observe,
    metric_set,
    to_openmetrics,
)
from .journal import RequestJournal
from .protocol import (
    CellRequest,
    ProtocolError,
    parse_cell_request,
    parse_sweep_request,
    payload_bytes,
    sweep_payload_bytes,
)

__all__ = ["ServiceConfig", "SweepService", "run_server"]

_REASON = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}

#: HTTP status for each admission outcome (docs/service.md).
_REJECT_STATUS = {
    "rejected_deadline": 429,
    "rejected_backpressure": 503,
    "rejected_draining": 503,
}


@dataclass(frozen=True)
class ServiceConfig:
    """Tunables of one :class:`SweepService` instance."""

    host: str = "127.0.0.1"
    port: int = 8018
    #: worker processes per batched dispatch (measure_cells jobs).
    jobs: int = 1
    #: result/trace cache directory, or None for in-memory only.
    cache_dir: Optional[str] = None
    #: how long admitted cells accumulate before a batch dispatches.
    batch_window_s: float = 0.05
    #: most distinct cells folded into one dispatch.
    max_batch_cells: int = 64
    #: backpressure bound: queued + in-dispatch cells beyond this reject.
    max_queue_cells: int = 1024
    #: deadline budget for requests that do not send ``deadline_s``.
    default_deadline_s: float = 30.0
    #: admission prior for per-cell service seconds (cold start).
    cell_prior_s: float = 0.05
    #: in-memory measurement LRU (cells, not bytes).
    memory_cells: int = 4096
    #: request-journal path; None derives <cache_dir>/service-journal.jsonl
    #: (no journal at all when cache_dir is also unset).
    journal_path: Optional[str] = None
    #: replay the request journal instead of discarding it.
    resume: bool = False
    #: graceful-shutdown budget: seconds the drain waits for in-flight
    #: cells and requests to flush before the process exits anyway.
    drain_timeout_s: float = 10.0
    #: service-layer fault plan (--inject-faults), or None.
    faults: Optional[FaultPlan] = None


@dataclass
class _PendingCell:
    """One queued cell: its request plus the future coalescers await."""

    request: CellRequest
    key: str
    future: "asyncio.Future[Any]" = field(repr=False)


class SweepService:
    """The service core: admission, coalescing, batching, dispatch.

    Usable without HTTP (the tests drive :meth:`submit_cell` directly);
    :meth:`serve` adds the asyncio front-end.  One instance owns one
    :class:`~repro.obs.metrics.MetricsRegistry` — activated process-wide
    while the service runs, so harness-layer metrics (shards, trace
    tiers, deadline margins) land in the same snapshot as the
    ``atm_service_*`` families.
    """

    def __init__(
        self,
        config: ServiceConfig = ServiceConfig(),
        *,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        self.config = config
        self.registry = registry if registry is not None else MetricsRegistry()
        self.admission = AdmissionController(
            max_queue_cells=config.max_queue_cells,
            default_deadline_s=config.default_deadline_s,
            cell_prior_s=config.cell_prior_s,
            dispatch_overhead_s=config.batch_window_s,
        )
        self.cache = None
        self.traces = None
        if config.cache_dir:
            from ..harness.cache import ResultCache, TraceStore

            self.cache = ResultCache(config.cache_dir)
            self.traces = TraceStore(Path(config.cache_dir) / "traces")
        self.faults = config.faults
        journal_path = config.journal_path
        if journal_path is None and config.cache_dir:
            journal_path = str(Path(config.cache_dir) / "service-journal.jsonl")
        #: write-ahead request journal, or None (no durable location).
        self.journal: Optional[RequestJournal] = None
        if journal_path is not None:
            self.journal = RequestJournal(
                journal_path, resume=config.resume, faults=config.faults
            )
        #: cache fingerprint -> measurement, hot in-process tier.
        self._memory: "OrderedDict[str, Any]" = OrderedDict()
        #: cache fingerprint -> future of the in-flight cell (coalescing).
        self._inflight_cells: Dict[str, "asyncio.Future[Any]"] = {}
        self._queue: "asyncio.Queue[_PendingCell]" = asyncio.Queue()
        #: cells admitted but not yet returned by a dispatch.
        self._pending_cells = 0
        self._pending_cells_peak = 0
        self._inflight_requests = 0
        self._inflight_requests_peak = 0
        self._served = 0
        self._coalesced = 0
        self._rejected = 0
        self._batches = 0
        self._request_seq = 0
        self._replayed_cells = 0
        self._restored_cells = 0
        self._drain_started: Optional[float] = None
        self._drain_seconds = 0.0
        self._started_at = time.monotonic()
        self._dispatch_pool = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="atm-dispatch"
        )
        self._batcher: Optional["asyncio.Task[None]"] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._previous_registry: Optional[MetricsRegistry] = None

    # -- lifecycle ------------------------------------------------------

    async def start(self) -> None:
        """Activate metrics and the batch dispatcher (no sockets yet)."""
        self._previous_registry = get_registry()
        activate_metrics(self.registry)
        # Counters-with-zeros: the drain/replay families must appear in
        # /metrics (and the dashboard counter panels) before any drain
        # or resume happens, so their absence is never ambiguous.
        metric_set("atm_service_drain_seconds", 0.0)
        for kind in ("restored", "replayed", "dropped"):
            metric_inc("atm_service_journal_replayed", 0.0, kind=kind)
        if self._batcher is None:
            self._batcher = asyncio.create_task(self._batch_loop())
        self._replay_journal()

    def _replay_journal(self) -> None:
        """Act on a resumed request journal: restore and re-enqueue.

        ``served`` payloads reload straight into the memory tier;
        ``admitted``-but-unserved cells re-enter the batch dispatcher as
        if their clients were still waiting, so by the time the journal
        settles every admitted fingerprint is served again — with
        byte-identical payloads, because cells are pure functions of
        their request tuple.
        """
        if self.journal is None:
            return
        from ..harness.sweep import PlatformMeasurement

        for key, payload in self.journal.served_items().items():
            try:
                measurement = PlatformMeasurement.from_dict(payload)
            except (KeyError, TypeError, ValueError):
                metric_inc("atm_service_journal_replayed", kind="dropped")
                continue
            self._remember(key, measurement)
            self._restored_cells += 1
            metric_inc("atm_service_journal_replayed", kind="restored")
        loop = asyncio.get_running_loop()
        for key, cell in self.journal.pending().items():
            try:
                request = CellRequest(**cell)
            except TypeError:
                metric_inc("atm_service_journal_replayed", kind="dropped")
                continue
            future: "asyncio.Future[Any]" = loop.create_future()
            # Nobody awaits a replayed cell until its client re-asks;
            # retrieve the result eagerly so a failed dispatch cannot
            # log "exception was never retrieved".
            future.add_done_callback(
                lambda f: None if f.cancelled() else f.exception()
            )
            self._inflight_cells[key] = future
            self._track_cells(+1)
            self._queue.put_nowait(
                _PendingCell(request=request, key=key, future=future)
            )
            self._replayed_cells += 1
            metric_inc("atm_service_journal_replayed", kind="replayed")
        for _ in range(self.journal.dropped_lines):
            metric_inc("atm_service_journal_replayed", kind="dropped")

    async def stop(self) -> None:
        """Stop the dispatcher and restore the previous registry."""
        if self._batcher is not None:
            self._batcher.cancel()
            try:
                await self._batcher
            except asyncio.CancelledError:
                pass
            self._batcher = None
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        # shutdown(wait=True) joins the dispatch thread — off the event
        # loop, bounded by the drain budget, else the loop could hang
        # on a wedged dispatch during close.
        loop = asyncio.get_running_loop()
        try:
            await asyncio.wait_for(
                loop.run_in_executor(
                    None,
                    functools.partial(self._dispatch_pool.shutdown, wait=True),
                ),
                timeout=max(0.1, self.config.drain_timeout_s),
            )
        except asyncio.TimeoutError:
            self._dispatch_pool.shutdown(wait=False)
        if self._previous_registry is not None:
            activate_metrics(self._previous_registry)
        else:
            deactivate_metrics()

    @property
    def draining(self) -> bool:
        """True once a graceful drain has begun."""
        return self.admission.draining

    async def drain(self, timeout_s: Optional[float] = None) -> Dict[str, Any]:
        """Graceful shutdown, phase one: stop admitting, flush, report.

        Flips admission into drain mode (new work → 503 +
        ``Retry-After``; ``/healthz`` → draining) while the listener
        stays up, then waits — bounded by ``timeout_s`` (default
        ``drain_timeout_s``) — for queued cells and in-flight requests
        to finish.  Whatever is still unfinished at the deadline is
        already durable in the request journal (admitted cells are
        journaled *before* they enter the queue), so a follow-up
        ``--resume`` replays exactly the remainder.
        """
        budget = (
            self.config.drain_timeout_s if timeout_s is None else float(timeout_s)
        )
        if self._drain_started is None:
            self._drain_started = time.monotonic()
            self.admission.set_draining(True)
            obs_count("service.drain")
        deadline = self._drain_started + max(0.0, budget)
        while self._pending_cells > 0 or self._inflight_requests > 0:
            if time.monotonic() >= deadline:
                break
            await asyncio.sleep(0.02)
        self._drain_seconds = time.monotonic() - self._drain_started
        metric_set("atm_service_drain_seconds", self._drain_seconds)
        return {
            "drained": self._pending_cells == 0 and self._inflight_requests == 0,
            "drain_seconds": round(self._drain_seconds, 6),
            "pending_cells": self._pending_cells,
            "inflight_requests": self._inflight_requests,
            "journaled_pending": (
                len(self.journal.pending()) if self.journal is not None else 0
            ),
        }

    # -- bookkeeping ----------------------------------------------------

    def _track_requests(self, delta: int) -> None:
        self._inflight_requests += delta
        if self._inflight_requests > self._inflight_requests_peak:
            self._inflight_requests_peak = self._inflight_requests
            metric_set(
                "atm_service_inflight_requests",
                float(self._inflight_requests_peak),
                kind="peak",
            )
        metric_set(
            "atm_service_inflight_requests",
            float(self._inflight_requests),
            kind="current",
        )

    def _track_cells(self, delta: int) -> None:
        self._pending_cells += delta
        if self._pending_cells > self._pending_cells_peak:
            self._pending_cells_peak = self._pending_cells
            metric_set(
                "atm_service_queue_cells",
                float(self._pending_cells_peak),
                kind="peak",
            )
        metric_set(
            "atm_service_queue_cells", float(self._pending_cells), kind="current"
        )

    def _remember(self, key: str, measurement: Any) -> None:
        self._memory[key] = measurement
        self._memory.move_to_end(key)
        while len(self._memory) > self.config.memory_cells:
            self._memory.popitem(last=False)

    def _lookup(self, key: str) -> Optional[Any]:
        """Hot-tier then disk-cache lookup of one finished cell."""
        hit = self._memory.get(key)
        if hit is not None:
            self._memory.move_to_end(key)
            return hit
        if self.cache is not None:
            hit = self.cache.get(key)
            if hit is not None:
                self._remember(key, hit)
                return hit
        return None

    def stats(self) -> Dict[str, Any]:
        """Operational snapshot served at ``GET /stats``."""
        return {
            "uptime_s": round(time.monotonic() - self._started_at, 3),
            "inflight_requests": self._inflight_requests,
            "inflight_requests_peak": self._inflight_requests_peak,
            "pending_cells": self._pending_cells,
            "pending_cells_peak": self._pending_cells_peak,
            "served": self._served,
            "coalesced": self._coalesced,
            "rejected": self._rejected,
            "batches": self._batches,
            "memory_cells": len(self._memory),
            "cell_estimate_s": self.admission.cell_estimate_s,
            "jobs": self.config.jobs,
            "cache_dir": self.config.cache_dir,
            "draining": self.draining,
            "drain_seconds": round(self._drain_seconds, 6),
            "journal": self.journal.stats() if self.journal is not None else None,
            "replayed_cells": self._replayed_cells,
            "restored_cells": self._restored_cells,
        }

    # -- the request core (HTTP-independent) ----------------------------

    async def submit_cell(
        self, request: CellRequest, *, deadline_s: Optional[float] = None
    ) -> Tuple[str, Any]:
        """Resolve one cell request to ``(source, measurement)``.

        ``source`` is ``cache`` (already finished), ``coalesced``
        (attached to an identical in-flight cell) or ``computed``
        (admitted, queued and batch-dispatched).  Raises
        :class:`AdmissionRejected` when the admission controller says
        no, and :class:`asyncio.TimeoutError` when an admitted request
        outlives its own deadline budget.
        """
        key = request.cache_key()
        hit = self._lookup(key)
        if hit is not None:
            return "cache", hit
        inflight = self._inflight_cells.get(key)
        if inflight is not None:
            self._coalesced += 1
            obs_count("service.coalesced")
            budget = (
                self.config.default_deadline_s if deadline_s is None else deadline_s
            )
            measurement = await asyncio.wait_for(
                asyncio.shield(inflight), timeout=budget
            )
            return "coalesced", measurement
        verdict = self.admission.assess(
            1, queue_depth=self._pending_cells, deadline_s=deadline_s
        )
        if not verdict.admitted:
            self._rejected += 1
            raise AdmissionRejected(verdict)
        if self.journal is not None:
            # Durable before queued: an admitted fingerprint survives
            # SIGKILL from this point on (replayed by --resume).
            self.journal.record_admitted(key, request.to_dict())
        future: "asyncio.Future[Any]" = asyncio.get_running_loop().create_future()
        self._inflight_cells[key] = future
        self._track_cells(+1)
        await self._queue.put(_PendingCell(request=request, key=key, future=future))
        try:
            measurement = await asyncio.wait_for(
                asyncio.shield(future), timeout=verdict.deadline_s
            )
        except asyncio.TimeoutError:
            # The cell keeps computing (coalescers may still want it);
            # only this response times out.
            raise
        return "computed", measurement

    async def submit_sweep(
        self, cells: List[CellRequest], *, deadline_s: Optional[float] = None
    ) -> Tuple[str, List[Any]]:
        """Resolve a sweep request to ``(source, measurements)``.

        Admission assesses the whole request at once — only the cells
        that are neither cached nor coalescible count against the
        deadline estimate and the queue bound — so a sweep is admitted
        or rejected atomically, never half-queued.  Every missing cell
        is enqueued *before* anything is awaited, so the whole request
        lands in one batch window and dispatches together.
        """
        keyed = [(cell, cell.cache_key()) for cell in cells]
        missing = {
            key
            for _, key in keyed
            if self._lookup(key) is None and key not in self._inflight_cells
        }
        verdict = self.admission.assess(
            len(missing), queue_depth=self._pending_cells, deadline_s=deadline_s
        )
        if not verdict.admitted:
            self._rejected += 1
            raise AdmissionRejected(verdict)
        # Enqueue first, await second: no suspension point between the
        # lookups above and the queue fills below, so the coalescing map
        # stays consistent.
        ready: Dict[str, Any] = {}
        futures: Dict[str, "asyncio.Future[Any]"] = {}
        for cell, key in keyed:
            if key in ready or key in futures:
                continue
            hit = self._lookup(key)
            if hit is not None:
                ready[key] = hit
                continue
            future = self._inflight_cells.get(key)
            if future is not None:
                self._coalesced += 1
                obs_count("service.coalesced")
            else:
                if self.journal is not None:
                    self.journal.record_admitted(key, cell.to_dict())
                future = asyncio.get_running_loop().create_future()
                self._inflight_cells[key] = future
                self._track_cells(+1)
                self._queue.put_nowait(
                    _PendingCell(request=cell, key=key, future=future)
                )
            futures[key] = future
        if futures:
            ordered = list(futures)
            values = await asyncio.wait_for(
                asyncio.gather(*(asyncio.shield(futures[k]) for k in ordered)),
                timeout=verdict.deadline_s,
            )
            ready.update(zip(ordered, values))
        source = "cache" if not futures else "computed"
        return source, [ready[key] for _, key in keyed]

    # -- batching -------------------------------------------------------

    async def _batch_loop(self) -> None:
        """Collect admitted cells for one window, dispatch, repeat."""
        loop = asyncio.get_running_loop()
        while True:
            batch = [await self._queue.get()]
            window_ends = loop.time() + self.config.batch_window_s
            while len(batch) < self.config.max_batch_cells:
                remaining = window_ends - loop.time()
                if remaining <= 0:
                    break
                try:
                    batch.append(
                        await asyncio.wait_for(self._queue.get(), timeout=remaining)
                    )
                except asyncio.TimeoutError:
                    break
            groups: Dict[Tuple[int, int, str], List[_PendingCell]] = {}
            for item in batch:
                groups.setdefault(item.request.compat_key, []).append(item)
            for group in groups.values():
                started = time.monotonic()
                try:
                    measured = await loop.run_in_executor(
                        self._dispatch_pool,
                        self._measure_batch,
                        [item.request for item in group],
                    )
                except Exception as exc:  # noqa: BLE001 - forwarded to waiters
                    metric_inc("atm_service_batches", outcome="error")
                    for item in group:
                        self._inflight_cells.pop(item.key, None)
                        self._track_cells(-1)
                        if not item.future.done():
                            item.future.set_exception(
                                RuntimeError(f"batch dispatch failed: {exc}")
                            )
                    continue
                elapsed = time.monotonic() - started
                self._batches += 1
                metric_inc("atm_service_batches", outcome="ok")
                metric_observe("atm_service_batch_cells", float(len(group)))
                self.admission.observe_cell_seconds(elapsed, cells=len(group))
                for item in group:
                    measurement = measured[(item.request.platform, item.request.n)]
                    self._remember(item.key, measurement)
                    if self.journal is not None:
                        self.journal.record_served(item.key, measurement)
                    self._inflight_cells.pop(item.key, None)
                    self._track_cells(-1)
                    if not item.future.done():
                        item.future.set_result(measurement)

    def _measure_batch(self, requests: List[CellRequest]) -> Dict[Tuple[str, int], Any]:
        """One compatible batch through the sweep engine (worker thread).

        Platforms requesting the same fleet-size set share a single
        :func:`~repro.harness.parallel.measure_cells` matrix — one
        process-pool dispatch, one functional trace per fleet size —
        and the remainder go per-platform.  Runs on the single-threaded
        dispatch executor, so harness state (ambient options, trace
        memo, metrics) is never touched concurrently.
        """
        from ..harness.parallel import measure_cells, sweep_options

        seed, periods, mode_value = requests[0].compat_key
        mode = DetectionMode(mode_value)
        ns_by_platform: Dict[str, set] = {}
        for request in requests:
            ns_by_platform.setdefault(request.platform, set()).add(request.n)
        matrices: Dict[Tuple[int, ...], List[str]] = {}
        for platform in sorted(ns_by_platform):
            ns = tuple(sorted(ns_by_platform[platform]))
            matrices.setdefault(ns, []).append(platform)
        out: Dict[Tuple[str, int], Any] = {}
        # The fault plan rides the ambient options: its crash/timeout/
        # oserror rates fire inside the pool workers (the harness's
        # retry machinery recovers, keeping payloads byte-identical),
        # while the service-only kinds (reset/stall/corrupt-journal)
        # are realised by the front-end and ignored here.
        with sweep_options(
            jobs=self.config.jobs,
            cache=self.cache if self.cache is not None else False,
            traces=self.traces if self.traces is not None else False,
            faults=self.faults,
        ):
            for ns, platforms in matrices.items():
                with obs_span(
                    "service.dispatch",
                    cat="service",
                    platforms=len(platforms),
                    cells=len(platforms) * len(ns),
                ):
                    names, rows = measure_cells(
                        platforms,
                        ns,
                        seed=seed,
                        periods=periods,
                        mode=mode,
                        jobs=self.config.jobs,
                        cache=self.cache,
                    )
                for name, row in zip(names, rows):
                    for j, n in enumerate(ns):
                        out[(name, n)] = row[j]
        return out

    # -- HTTP front-end -------------------------------------------------

    async def serve(self) -> asyncio.AbstractServer:
        """Bind the listener and return it (``sockets[0]`` has the port)."""
        await self.start()
        self._server = await asyncio.start_server(
            self._handle_client, self.config.host, self.config.port
        )
        return self._server

    @property
    def bound_port(self) -> Optional[int]:
        if self._server is None or not self._server.sockets:
            return None
        return self._server.sockets[0].getsockname()[1]

    async def _handle_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                parsed = await _read_request(reader)
                if parsed is None:
                    break
                method, path, headers, body = parsed
                keep_alive = headers.get("connection", "keep-alive") != "close"
                self._request_seq += 1
                seq = self._request_seq
                if self.faults is not None and path.startswith("/v1/"):
                    # Service-layer chaos (--inject-faults): decisions
                    # are pure functions of (seed, kind, request#), so
                    # a chaos run is exactly replayable.
                    if self.faults.should_inject("stall", f"request#{seq}"):
                        obs_count("service.fault.stall")
                        await asyncio.sleep(self.faults.hang_s)
                    if self.faults.should_inject("reset", f"request#{seq}"):
                        # Drop the connection before any response byte:
                        # the client sees a reset and must retry.
                        obs_count("service.fault.reset")
                        break
                status, payload, ctype, extra = await self._route(
                    method, path, body
                )
                await _write_response(
                    writer, status, payload, ctype, keep_alive, extra
                )
                if not keep_alive:
                    break
        except (
            ConnectionError,
            asyncio.IncompleteReadError,
            asyncio.LimitOverrunError,
        ):
            pass
        except asyncio.CancelledError:
            # Server shutdown cancels open handlers; finishing cleanly
            # keeps asyncio's connection callback from logging it.
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (asyncio.CancelledError, ConnectionError, OSError):
                pass

    async def _route(
        self, method: str, path: str, body: bytes
    ) -> Tuple[int, bytes, str, Dict[str, str]]:
        if path == "/healthz" and method == "GET":
            if self.draining:
                # Load balancers must stop routing here, but probes and
                # the drain itself still get answered on the open port.
                return (
                    503,
                    payload_bytes({"status": "draining"}),
                    "application/json",
                    {"Retry-After": "1"},
                )
            return 200, payload_bytes({"status": "ok"}), "application/json", {}
        if path == "/stats" and method == "GET":
            return 200, payload_bytes(self.stats()), "application/json", {}
        if path == "/v1/platforms" and method == "GET":
            return (
                200,
                payload_bytes({"platforms": list(available_backends())}),
                "application/json",
                {},
            )
        if path == "/metrics" and method == "GET":
            text = to_openmetrics(self.registry.snapshot())
            return (
                200,
                text.encode("utf-8"),
                "application/openmetrics-text; version=1.0.0; charset=utf-8",
                {},
            )
        if path in ("/v1/cell", "/v1/sweep"):
            if method != "POST":
                return (
                    405,
                    payload_bytes({"error": "use POST"}),
                    "application/json",
                    {"Allow": "POST"},
                )
            return await self._handle_measurement(path, body)
        return (
            404,
            payload_bytes({"error": f"unknown path {path}"}),
            "application/json",
            {},
        )

    async def _handle_measurement(
        self, endpoint: str, body: bytes
    ) -> Tuple[int, bytes, str, Dict[str, str]]:
        started = time.monotonic()
        outcome = "error"
        source = "none"
        status = 500
        payload = payload_bytes({"error": "internal error"})
        extra: Dict[str, str] = {}
        self._track_requests(+1)
        try:
            try:
                obj = json.loads(body.decode("utf-8")) if body else {}
            except (UnicodeDecodeError, json.JSONDecodeError) as exc:
                raise ProtocolError(f"body is not valid JSON: {exc}") from exc
            deadline_s = _parse_deadline(obj)
            if endpoint == "/v1/cell":
                request = parse_cell_request(obj)
                source, measurement = await self.submit_cell(
                    request, deadline_s=deadline_s
                )
                payload = payload_bytes(measurement.to_dict())
            else:
                cells = parse_sweep_request(obj)
                source, measurements = await self.submit_sweep(
                    cells, deadline_s=deadline_s
                )
                ns = sorted({c.n for c in cells})
                by_platform: Dict[str, Dict[int, Any]] = {}
                for cell, m in zip(cells, measurements):
                    by_platform.setdefault(cell.platform, {})[cell.n] = m
                payload = sweep_payload_bytes(
                    ns,
                    {
                        platform: [row[n] for n in ns]
                        for platform, row in by_platform.items()
                    },
                )
            status, outcome = 200, "served"
            self._served += 1
            extra = {"X-Atm-Source": source}
        except ProtocolError as exc:
            status, outcome = 400, "bad_request"
            payload = payload_bytes({"error": str(exc)})
        except AdmissionRejected as exc:
            status = _REJECT_STATUS[exc.verdict.outcome]
            outcome = exc.verdict.outcome
            payload = payload_bytes({"error": "rejected", **exc.verdict.to_dict()})
            extra = {"Retry-After": "1"}
        except asyncio.TimeoutError:
            status, outcome = 504, "error"
            payload = payload_bytes(
                {"error": "admitted but not served within deadline_s"}
            )
        except Exception as exc:  # noqa: BLE001 - must answer the client
            status, outcome = 500, "error"
            payload = payload_bytes({"error": f"internal error: {exc}"})
        finally:
            self._track_requests(-1)
            elapsed = time.monotonic() - started
            metric_inc("atm_service_requests", endpoint=endpoint, outcome=outcome)
            metric_observe(
                "atm_service_request_seconds",
                elapsed,
                endpoint=endpoint,
                outcome=outcome,
            )
            # Open/closed atomically: interleaved requests cannot
            # misnest the collector's span stack.
            with obs_span(
                "service.request",
                cat="service",
                endpoint=endpoint,
                outcome=outcome,
                source=source,
                status=status,
                wall_s=elapsed,
            ):
                pass
        return status, payload, "application/json", extra


class AdmissionRejected(Exception):
    """Raised by the submit paths when admission control says no."""

    def __init__(self, verdict: AdmissionVerdict) -> None:
        super().__init__(verdict.outcome)
        self.verdict = verdict


def _parse_deadline(obj: Any) -> Optional[float]:
    if not isinstance(obj, Mapping) or obj.get("deadline_s") is None:
        return None
    value = obj["deadline_s"]
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ProtocolError("field 'deadline_s' must be a number of seconds")
    if not 0 < float(value) <= 3600:
        raise ProtocolError("field 'deadline_s' must be in (0, 3600]")
    return float(value)


# ---------------------------------------------------------------------------
# the HTTP/1.1 slice
# ---------------------------------------------------------------------------

_MAX_BODY = 1 << 20  # 1 MiB of JSON is already an absurd sweep request


async def _read_request(
    reader: asyncio.StreamReader,
) -> Optional[Tuple[str, str, Dict[str, str], bytes]]:
    """One request off the stream; None on a clean EOF between requests."""
    try:
        head = await reader.readuntil(b"\r\n\r\n")
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise
    lines = head.decode("latin-1").split("\r\n")
    parts = lines[0].split(" ")
    if len(parts) != 3:
        raise ConnectionError(f"malformed request line: {lines[0]!r}")
    method, target, _version = parts
    headers: Dict[str, str] = {}
    for line in lines[1:]:
        if not line:
            continue
        name, _, value = line.partition(":")
        headers[name.strip().lower()] = value.strip()
    length = int(headers.get("content-length", "0") or "0")
    if not 0 <= length <= _MAX_BODY:
        raise ConnectionError(f"unacceptable content-length {length}")
    body = await reader.readexactly(length) if length else b""
    path = target.split("?", 1)[0]
    return method.upper(), path, headers, body


async def _write_response(
    writer: asyncio.StreamWriter,
    status: int,
    payload: bytes,
    content_type: str,
    keep_alive: bool,
    extra: Optional[Dict[str, str]] = None,
) -> None:
    head = [
        f"HTTP/1.1 {status} {_REASON.get(status, 'Unknown')}",
        f"Content-Type: {content_type}",
        f"Content-Length: {len(payload)}",
        f"Connection: {'keep-alive' if keep_alive else 'close'}",
    ]
    for name, value in (extra or {}).items():
        head.append(f"{name}: {value}")
    writer.write(("\r\n".join(head) + "\r\n\r\n").encode("latin-1") + payload)
    await writer.drain()


# ---------------------------------------------------------------------------
# process entry point (the CLI's `atm-repro serve`)
# ---------------------------------------------------------------------------


async def _serve_forever(config: ServiceConfig) -> None:
    service = SweepService(config)
    server = await service.serve()
    host, port = server.sockets[0].getsockname()[:2]
    # Test harnesses parse this line to find a --port 0 ephemeral bind.
    print(f"atm-repro serve: listening on http://{host}:{port}", flush=True)
    if service.journal is not None:
        js = service.journal.stats()
        # The chaos harness parses this line after a --resume restart.
        print(
            f"atm-repro serve: journal {js['path']}: "
            f"{service.stats()['restored_cells']} cells restored, "
            f"{service.stats()['replayed_cells']} replayed, "
            f"{js['dropped_lines']} torn lines dropped",
            flush=True,
        )
    loop = asyncio.get_running_loop()
    drain_signal = asyncio.Event()
    installed: List[int] = []
    for signum in (signal.SIGTERM, signal.SIGINT):
        try:
            loop.add_signal_handler(signum, drain_signal.set)
            installed.append(signum)
        except (NotImplementedError, RuntimeError):  # pragma: no cover
            pass  # platforms without loop signal support fall back to ^C
    try:
        async with server:
            serving = asyncio.create_task(server.serve_forever())
            draining = asyncio.create_task(drain_signal.wait())
            done, _pending = await asyncio.wait(
                {serving, draining}, return_when=asyncio.FIRST_COMPLETED
            )
            if draining in done:
                # Graceful drain: listener stays open (healthz answers
                # 503 draining, new work is rejected with Retry-After)
                # while queued and in-flight work flushes.
                print("atm-repro serve: draining", flush=True)
                summary = await service.drain(config.drain_timeout_s)
                state = "drained" if summary["drained"] else "drain timeout"
                print(
                    f"atm-repro serve: {state} in "
                    f"{summary['drain_seconds']:.2f} s "
                    f"({summary['journaled_pending']} unfinished cells"
                    " left journaled)",
                    flush=True,
                )
            for task in (serving, draining):
                task.cancel()
                try:
                    await task
                except (asyncio.CancelledError, Exception):  # noqa: BLE001
                    pass
    finally:
        for signum in installed:
            loop.remove_signal_handler(signum)
        await service.stop()


def run_server(config: ServiceConfig) -> int:
    """Run the service until interrupted; returns a process exit code.

    SIGTERM and SIGINT both trigger the graceful drain: ``/healthz``
    flips to draining, new work is rejected with 503 + ``Retry-After``,
    queued cells flush under ``drain_timeout_s``, and whatever remains
    is already durable in the request journal for ``--resume``.
    """
    try:
        asyncio.run(_serve_forever(config))
    except KeyboardInterrupt:
        print("atm-repro serve: shutting down", flush=True)
    return 0
