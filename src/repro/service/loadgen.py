"""Closed-loop load generator for the sweep service (docs/service.md).

``atm-repro loadtest`` drives a running ``atm-repro serve`` with a
fixed number of **closed-loop** workers: each worker keeps exactly one
request in flight, sending the next only after the previous response
fully arrives, so ``concurrency`` workers put at most ``concurrency``
requests in flight — a load model whose offered rate adapts to the
service instead of overrunning it (open-loop arrival processes hide
collapse behind client-side queueing).

Every response is timed **wall-clock** (request write to last body
byte) and recorded into a client-side
:class:`~repro.obs.metrics.MetricsRegistry` under the same
``atm_service_requests`` / ``atm_service_request_seconds`` families the
server records, labeled ``endpoint=client`` so the two sides never
merge into one series.  The summary's p50/p99 are read back from that
histogram — the numbers are *measured service latencies*, never the
paper's modelled architecture times (see EXPERIMENTS.md, "Service
load-test disclosure").

**Resilience.**  The client survives an unreliable server the way the
sweep engine survives unreliable workers: every request runs under a
per-attempt timeout and a bounded retry loop driven by the harness
:class:`~repro.harness.faults.RetryPolicy`, with capped exponential
backoff whose jitter is a **deterministic** seeded SHA-256 draw (two
runs of the same chaos plan retry on the same schedule).  Transport
failures (timeouts, resets) also feed a shared half-open circuit
breaker, and every terminal failure lands in the summary's
``errors``/``rejections`` taxonomy so a chaos run is diagnosable from
the report alone (docs/service.md, "Crash safety & drain").
"""

from __future__ import annotations

import asyncio
import json
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..harness.faults import RetryPolicy
from ..obs.metrics import MetricsRegistry, to_openmetrics

__all__ = ["LoadgenOptions", "run_loadgen", "render_summary"]

#: Retry taxonomy reasons, zero-initialised in the client registry so a
#: clean run still exposes the full ``atm_service_retries`` family.
RETRY_REASONS = (
    "timeout",
    "reset",
    "rejected_backpressure",
    "rejected_draining",
    "circuit_open",
)

#: Default request mix: small cells on the deterministic platforms, so
#: a smoke burst is dominated by service mechanics, not cost models.
DEFAULT_MIX: Tuple[Dict[str, Any], ...] = (
    {"platform": "ap:staran", "n": 96, "periods": 2},
    {"platform": "cuda:titan-x-pascal", "n": 96, "periods": 2},
    {"platform": "simd:clearspeed-csx600", "n": 96, "periods": 2},
    {"platform": "vector:xeon-phi-7250", "n": 192, "periods": 2},
    {"platform": "cuda:gtx-880m", "n": 192, "periods": 2},
)

_OUTCOME_BY_STATUS = {
    200: "served",
    400: "bad_request",
    429: "rejected_deadline",
    503: "rejected_backpressure",
}


@dataclass(frozen=True)
class LoadgenOptions:
    """One load-test run's shape."""

    host: str = "127.0.0.1"
    port: int = 8018
    #: closed-loop workers == maximum client-side in-flight requests.
    concurrency: int = 100
    #: total requests to send across all workers.
    requests: int = 1000
    #: request bodies cycled round-robin (default: DEFAULT_MIX).
    mix: Tuple[Dict[str, Any], ...] = DEFAULT_MIX
    #: per-request deadline budget forwarded to admission control.
    deadline_s: Optional[float] = None
    #: optional airfield seed override applied to every mix entry.
    seed: Optional[int] = None
    #: wall-clock cap per attempt (connect + exchange), seconds.
    timeout_s: float = 30.0
    #: attempts per logical request (1 = no retries).
    max_attempts: int = 3
    #: base of the capped exponential retry backoff, seconds.
    backoff_s: float = 0.05
    #: backoff ceiling (also caps an honored Retry-After), seconds.
    backoff_cap_s: float = 1.0
    #: seed of the deterministic backoff jitter draw.
    jitter_seed: int = 0
    #: consecutive transport failures that open the circuit breaker.
    breaker_threshold: int = 5
    #: seconds the open breaker waits before one half-open probe.
    breaker_cooldown_s: float = 0.25


async def _http_request(
    reader: asyncio.StreamReader,
    writer: asyncio.StreamWriter,
    method: str,
    path: str,
    body: bytes = b"",
) -> Tuple[int, Dict[str, str], bytes]:
    """One keep-alive HTTP/1.1 exchange on an open connection."""
    head = (
        f"{method} {path} HTTP/1.1\r\n"
        f"Host: atm-repro\r\n"
        f"Content-Type: application/json\r\n"
        f"Content-Length: {len(body)}\r\n"
        f"Connection: keep-alive\r\n\r\n"
    )
    writer.write(head.encode("latin-1") + body)
    await writer.drain()
    status_line = await reader.readline()
    parts = status_line.decode("latin-1").split(" ", 2)
    if len(parts) < 2 or not parts[0].startswith("HTTP/1."):
        raise ConnectionError(f"malformed status line {status_line!r}")
    status = int(parts[1])
    headers: Dict[str, str] = {}
    while True:
        line = await reader.readline()
        if line in (b"\r\n", b"\n", b""):
            break
        name, _, value = line.decode("latin-1").partition(":")
        headers[name.strip().lower()] = value.strip()
    length = int(headers.get("content-length", "0") or "0")
    payload = await reader.readexactly(length) if length else b""
    return status, headers, payload


@dataclass
class _SharedState:
    """Counters the workers update; folded into the summary at the end."""

    sent: int = 0
    outcomes: Dict[str, int] = field(default_factory=dict)
    sources: Dict[str, int] = field(default_factory=dict)
    #: terminal failures by taxonomy (timeout|reset|circuit_open).
    errors: Dict[str, int] = field(default_factory=dict)
    retries: int = 0
    rejection_sample: Optional[Dict[str, Any]] = None


class _CircuitBreaker:
    """Half-open circuit breaker shared by every worker.

    ``breaker_threshold`` consecutive **transport** failures (timeouts,
    resets — never explicit 4xx/5xx verdicts, which prove the server is
    alive) open the circuit; after ``breaker_cooldown_s`` one half-open
    probe is let through, and its outcome closes or re-opens it.
    """

    def __init__(self, threshold: int, cooldown_s: float) -> None:
        self.threshold = max(1, int(threshold))
        self.cooldown_s = float(cooldown_s)
        self.state = "closed"
        self.failures = 0
        self.opens = 0
        self._opened_at = 0.0

    def allow(self) -> bool:
        """May a request go out right now? (may move open → half-open)"""
        if self.state == "closed":
            return True
        if self.state == "open":
            if time.monotonic() - self._opened_at >= self.cooldown_s:
                self.state = "half-open"
                return True
            return False
        # half-open: exactly one probe is already in flight.
        return False

    def record_success(self) -> None:
        self.state = "closed"
        self.failures = 0

    def record_failure(self) -> None:
        self.failures += 1
        if self.state == "half-open" or self.failures >= self.threshold:
            self.state = "open"
            self.opens += 1
            self.failures = 0
            self._opened_at = time.monotonic()


def _outcome_for(status: int, payload: bytes) -> str:
    """Map one response to the taxonomy, splitting 503's two meanings."""
    if status == 503:
        try:
            body = json.loads(payload.decode("utf-8"))
        except (ValueError, UnicodeDecodeError):
            body = {}
        if isinstance(body, dict) and body.get("outcome") == "rejected_draining":
            return "rejected_draining"
        return "rejected_backpressure"
    return _OUTCOME_BY_STATUS.get(status, "error")


async def _worker(
    options: LoadgenOptions,
    state: _SharedState,
    registry: MetricsRegistry,
    next_index: "asyncio.Queue[int]",
    breaker: _CircuitBreaker,
) -> None:
    policy = RetryPolicy(
        max_attempts=max(1, options.max_attempts),
        backoff_s=options.backoff_s,
        timeout_s=options.timeout_s,
    )
    reader = writer = None

    async def _drop_connection() -> None:
        nonlocal reader, writer
        if writer is not None:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass
        reader = writer = None

    def _retry(attempt: int, index: int, reason: str, floor_s: float = 0.0) -> float:
        """Account one retry; returns the jittered backoff to sleep."""
        state.retries += 1
        registry.inc("atm_service_retries", endpoint="client", reason=reason)
        delay = policy.jittered_backoff_for(
            attempt,
            seed=options.jitter_seed,
            key=f"req{index}",
            cap_s=options.backoff_cap_s,
        )
        return max(delay, min(floor_s, options.backoff_cap_s))

    try:
        while True:
            try:
                index = next_index.get_nowait()
            except asyncio.QueueEmpty:
                return
            body_obj = dict(options.mix[index % len(options.mix)])
            if options.seed is not None:
                body_obj["seed"] = options.seed
            if options.deadline_s is not None:
                body_obj["deadline_s"] = options.deadline_s
            body = json.dumps(body_obj).encode("utf-8")

            for attempt in range(policy.max_attempts):
                last = attempt + 1 >= policy.max_attempts
                if not breaker.allow():
                    if last:
                        state.errors["circuit_open"] = (
                            state.errors.get("circuit_open", 0) + 1
                        )
                        state.outcomes["error"] = (
                            state.outcomes.get("error", 0) + 1
                        )
                        break
                    await asyncio.sleep(
                        _retry(
                            attempt,
                            index,
                            "circuit_open",
                            floor_s=breaker.cooldown_s,
                        )
                    )
                    continue
                started = time.monotonic()
                try:
                    if writer is None:
                        reader, writer = await asyncio.wait_for(
                            asyncio.open_connection(options.host, options.port),
                            timeout=options.timeout_s,
                        )
                    status, headers, payload = await asyncio.wait_for(
                        _http_request(reader, writer, "POST", "/v1/cell", body),
                        timeout=options.timeout_s,
                    )
                except asyncio.TimeoutError:
                    reason = "timeout"
                except (ConnectionError, OSError, asyncio.IncompleteReadError):
                    reason = "reset"
                else:
                    elapsed = time.monotonic() - started
                    outcome = _outcome_for(status, payload)
                    breaker.record_success()
                    retryable = status == 503
                    if retryable and not last:
                        # Honor a bounded Retry-After as the backoff
                        # floor; draining/backpressure both clear soon.
                        try:
                            floor = float(headers.get("retry-after", "0"))
                        except ValueError:
                            floor = 0.0
                        await asyncio.sleep(
                            _retry(attempt, index, outcome, floor_s=floor)
                        )
                        continue
                    state.sent += 1
                    state.outcomes[outcome] = state.outcomes.get(outcome, 0) + 1
                    source = headers.get("x-atm-source")
                    if source:
                        state.sources[source] = state.sources.get(source, 0) + 1
                    if (
                        outcome.startswith("rejected")
                        and state.rejection_sample is None
                    ):
                        try:
                            state.rejection_sample = json.loads(
                                payload.decode("utf-8")
                            )
                        except (ValueError, UnicodeDecodeError):
                            pass
                    registry.inc(
                        "atm_service_requests", endpoint="client", outcome=outcome
                    )
                    registry.observe(
                        "atm_service_request_seconds",
                        elapsed,
                        endpoint="client",
                        outcome=outcome,
                    )
                    break
                # Transport failure: the connection is poisoned (a late
                # response would desync keep-alive framing) — drop it,
                # tell the breaker, back off, retry.
                await _drop_connection()
                breaker.record_failure()
                if last:
                    state.errors[reason] = state.errors.get(reason, 0) + 1
                    state.outcomes["error"] = state.outcomes.get("error", 0) + 1
                    break
                await asyncio.sleep(_retry(attempt, index, reason))
    finally:
        await _drop_connection()


async def _run(options: LoadgenOptions, registry: MetricsRegistry) -> Dict[str, Any]:
    state = _SharedState()
    breaker = _CircuitBreaker(options.breaker_threshold, options.breaker_cooldown_s)
    # Counters-with-zeros: the full retry taxonomy is present in the
    # exposition even when a clean run never retries.
    for reason in RETRY_REASONS:
        registry.inc("atm_service_retries", 0.0, endpoint="client", reason=reason)
    next_index: "asyncio.Queue[int]" = asyncio.Queue()
    for i in range(options.requests):
        next_index.put_nowait(i)
    started = time.monotonic()
    workers = [
        asyncio.create_task(_worker(options, state, registry, next_index, breaker))
        for _ in range(min(options.concurrency, options.requests))
    ]
    await asyncio.gather(*workers)
    wall_s = time.monotonic() - started

    server_stats: Optional[Dict[str, Any]] = None
    try:
        reader, writer = await asyncio.open_connection(options.host, options.port)
        _status, _headers, payload = await _http_request(
            reader, writer, "GET", "/stats"
        )
        server_stats = json.loads(payload.decode("utf-8"))
        writer.close()
        await writer.wait_closed()
    except (ConnectionError, OSError, ValueError):
        pass

    latency = _latency_readout(registry)
    return {
        "requests": options.requests,
        "concurrency": options.concurrency,
        "wall_s": round(wall_s, 6),
        "throughput_rps": round(state.sent / wall_s, 3) if wall_s > 0 else None,
        "sent": state.sent,
        "outcomes": dict(sorted(state.outcomes.items())),
        "sources": dict(sorted(state.sources.items())),
        # Diagnosability taxonomy (docs/service.md): terminal rejections
        # split by verdict, terminal transport failures by kind.
        "rejections": {
            outcome: count
            for outcome, count in sorted(state.outcomes.items())
            if outcome.startswith("rejected")
        },
        "errors": dict(sorted(state.errors.items())),
        "retries": state.retries,
        "breaker_opens": breaker.opens,
        "rejection_sample": state.rejection_sample,
        "latency": latency,
        "server_stats": server_stats,
    }


def _latency_readout(registry: MetricsRegistry) -> Dict[str, Any]:
    """p50/p95/p99 over every client-side latency series, merged."""
    merged = None
    for instrument in registry.series("atm_service_request_seconds").values():
        if merged is None:
            from ..obs.metrics import Histogram

            merged = Histogram(instrument.bounds)
        merged.merge(instrument)
    if merged is None or merged.count == 0:
        return {"count": 0}
    return {
        "count": merged.count,
        "p50_s": merged.quantile(0.50),
        "p95_s": merged.quantile(0.95),
        "p99_s": merged.quantile(0.99),
        "min_s": merged.min,
        "max_s": merged.max,
        "mean_s": merged.sum / merged.count,
    }


def run_loadgen(
    options: LoadgenOptions = LoadgenOptions(),
    *,
    registry: Optional[MetricsRegistry] = None,
    metrics_out: Optional[str] = None,
) -> Dict[str, Any]:
    """Run one closed-loop burst; returns the structured summary.

    ``registry`` receives the client-side ``endpoint=client`` series
    (a fresh one is used when omitted); ``metrics_out`` additionally
    writes its full OpenMetrics exposition to a file, which the CI
    service job uploads as the load-test artifact.
    """
    registry = registry if registry is not None else MetricsRegistry()
    summary = asyncio.run(_run(options, registry))
    if metrics_out:
        with open(metrics_out, "w", encoding="utf-8") as fh:
            fh.write(to_openmetrics(registry.snapshot()))
    return summary


def render_summary(summary: Dict[str, Any]) -> str:
    """Human-readable load-test summary (the CLI's stdout)."""
    lines = [
        f"loadtest: {summary['sent']}/{summary['requests']} requests answered "
        f"in {summary['wall_s']:.2f} s "
        f"({summary['throughput_rps']} req/s, "
        f"concurrency {summary['concurrency']})",
        f"outcomes: {summary['outcomes']}",
        f"sources:  {summary['sources']}",
    ]
    if summary.get("retries") or summary.get("errors"):
        lines.append(
            f"resilience: {summary.get('retries', 0)} retries, "
            f"errors {summary.get('errors', {})}, "
            f"breaker opened {summary.get('breaker_opens', 0)}x"
        )
    if summary.get("rejections"):
        lines.append(f"rejections: {summary['rejections']}")
    latency = summary.get("latency", {})
    if latency.get("count"):
        lines.append(
            "latency (wall-clock, client-side): "
            f"p50 {latency['p50_s'] * 1e3:.2f} ms, "
            f"p95 {latency['p95_s'] * 1e3:.2f} ms, "
            f"p99 {latency['p99_s'] * 1e3:.2f} ms, "
            f"max {latency['max_s'] * 1e3:.2f} ms"
        )
    stats = summary.get("server_stats")
    if stats:
        lines.append(
            f"server: peak in-flight {stats['inflight_requests_peak']}, "
            f"{stats['batches']} batches, {stats['coalesced']} coalesced, "
            f"cell estimate {stats['cell_estimate_s'] * 1e3:.2f} ms"
        )
    if summary.get("rejection_sample"):
        lines.append(
            "rejection verdict sample: "
            + json.dumps(summary["rejection_sample"], sort_keys=True)
        )
    return "\n".join(lines)
