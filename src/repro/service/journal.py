"""Durable request journal for the sweep service (docs/service.md).

The batch harness survives SIGKILL because every finished cell is
checkpointed in a :class:`~repro.harness.faults.SweepJournal`.  The
service needs the same guarantee one layer up: **no admitted request is
ever lost**, even when the process dies mid-burst.  The
:class:`RequestJournal` gives the server a write-ahead log with the
same line-digest/torn-line discipline as the sweep journal (shared
helpers in :mod:`repro.harness.faults`):

* ``admitted`` lines are appended — flushed and fsynced — *before* an
  admitted cell enters the dispatch queue, so the admission decision is
  durable before any client could observe it.
* ``served`` lines carry the full measurement payload once the cell
  finishes, digest-verified exactly like a sweep-journal line.

On ``atm-repro serve --resume`` the journal is replayed: ``served``
measurements are restored straight into the in-process memory tier, and
``admitted``-but-never-``served`` cells are re-enqueued through the
normal batch dispatcher.  Because every measurement cell is a pure
function of ``(platform, n, seed, periods, mode)``, a replayed cell
produces **byte-identical** response payloads to the uninterrupted run
— the chaos suite (``tests/service/test_chaos.py``) SIGKILLs a live
server mid-burst and proves it.

Torn lines (SIGKILL mid-append, or an injected ``corrupt-journal``
bit-flip) are detected by the per-line digest and dropped — counted,
never half-read.  A dropped ``admitted`` line is safe: its client never
got an acknowledgement, and re-requesting recomputes the same bytes.
"""

from __future__ import annotations

from pathlib import Path
from typing import TYPE_CHECKING, Any, Dict, Optional, Union

from ..harness.faults import (
    FaultPlan,
    append_journal_line,
    decode_journal_line,
    encode_journal_line,
    fault_span,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..harness.sweep import PlatformMeasurement

__all__ = ["RequestJournal"]


class RequestJournal:
    """Write-ahead journal of admitted and served service cells.

    One JSON line per event, each carrying its own content digest::

        {"event": "admitted", "key": <cache fingerprint>,
         "cell": {"platform": ..., "n": ..., ...}, "sha256": ...}
        {"event": "served", "key": <cache fingerprint>,
         "measurement": {...}, "sha256": ...}

    ``key`` is the same :meth:`~repro.harness.cache.ResultCache.key_for`
    fingerprint the coalescing map and the result cache use, so a
    journal line can never resurrect a cell whose cost model changed
    between runs — the fingerprint embeds the backend ``describe()``
    and the library version.

    ``resume=False`` (a fresh run) discards any previous journal;
    ``resume=True`` loads it, exposing restored measurements via
    :meth:`lookup` and the unfinished remainder via :meth:`pending`.
    """

    def __init__(
        self,
        path: Union[str, Path],
        *,
        resume: bool = False,
        faults: Optional[FaultPlan] = None,
    ) -> None:
        self.path = Path(path)
        self.resume = bool(resume)
        self.faults = faults
        #: torn / corrupt lines dropped while loading.
        self.dropped_lines = 0
        #: admit/served lines appended this run.
        self.recorded = 0
        #: appends this run (the corrupt-journal injection key).
        self._append_seq = 0
        #: key -> validated cell dict, in admission order.
        self._admitted: Dict[str, Dict[str, Any]] = {}
        #: key -> measurement payload dict.
        self._served: Dict[str, Dict[str, Any]] = {}
        if self.resume:
            self._load()
        elif self.path.exists():
            self.path.unlink()

    # -- loading --------------------------------------------------------

    def _load(self) -> None:
        try:
            text = self.path.read_text(encoding="utf-8")
        except FileNotFoundError:
            return
        except OSError:
            fault_span("io-error", "io_errors", path=str(self.path))
            return
        for line in text.splitlines():
            if not line.strip():
                continue
            record = decode_journal_line(line)
            if record is None or "key" not in record:
                self._drop_line()
                continue
            key = record["key"]
            event = record.get("event")
            if event == "admitted" and isinstance(record.get("cell"), dict):
                self._admitted.setdefault(key, record["cell"])
            elif event == "served" and isinstance(record.get("measurement"), dict):
                self._served[key] = record["measurement"]
            else:
                self._drop_line()

    def _drop_line(self) -> None:
        # A torn tail from SIGKILL mid-append, injected corruption, or
        # on-disk rot: drop the line, keep the rest — and say so.
        self.dropped_lines += 1
        fault_span("journal-torn-line", "journal_dropped", path=str(self.path))

    # -- appending ------------------------------------------------------

    def _append(self, record: Dict[str, Any]) -> None:
        append_journal_line(self.path, encode_journal_line(record))
        self.recorded += 1
        self._append_seq += 1
        if self.faults is not None and self.faults.should_inject(
            "corrupt-journal", f"append#{self._append_seq}"
        ):
            self.faults.corrupt(self.path)

    def record_admitted(self, key: str, cell: Dict[str, Any]) -> None:
        """Durably record one admitted cell **before** it is enqueued."""
        if key in self._admitted or key in self._served:
            return
        self._admitted[key] = dict(cell)
        self._append({"event": "admitted", "key": key, "cell": dict(cell)})

    def record_served(self, key: str, measurement: "PlatformMeasurement") -> None:
        """Durably record one finished cell's full payload."""
        if key in self._served:
            return
        payload = measurement.to_dict()
        self._served[key] = payload
        self._append({"event": "served", "key": key, "measurement": payload})

    # -- replay ---------------------------------------------------------

    def lookup(self, key: str) -> Optional["PlatformMeasurement"]:
        """The journaled measurement under ``key``, or None."""
        payload = self._served.get(key)
        if payload is None:
            return None
        from ..harness.sweep import PlatformMeasurement

        return PlatformMeasurement.from_dict(payload)

    def served_items(self) -> Dict[str, Dict[str, Any]]:
        """Every served ``key -> measurement payload`` (loaded + new)."""
        return dict(self._served)

    def pending(self) -> Dict[str, Dict[str, Any]]:
        """Admitted-but-unserved ``key -> cell dict``, admission order."""
        return {
            key: dict(cell)
            for key, cell in self._admitted.items()
            if key not in self._served
        }

    def __len__(self) -> int:
        return len(self._admitted) + len(self._served)

    def stats(self) -> Dict[str, Any]:
        return {
            "path": str(self.path),
            "admitted": len(self._admitted),
            "served": len(self._served),
            "pending": len(self.pending()),
            "recorded": self.recorded,
            "dropped_lines": self.dropped_lines,
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<RequestJournal {str(self.path)!r} admitted={len(self._admitted)} "
            f"served={len(self._served)} pending={len(self.pending())}>"
        )
