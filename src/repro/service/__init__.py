"""ATM-as-a-service: the long-running sweep/scenario server.

The service layer turns the batch harness into a process that serves
measurement requests over HTTP — coalescing identical in-flight
requests on the cache fingerprints, batching compatible cells into
shared process-pool dispatches, and running the deadline machinery as
*admission control* (docs/service.md; architecture context in
docs/architecture.md).

Entry points: ``atm-repro serve`` / :func:`repro.service.run_server`
for the server, ``atm-repro loadtest`` / :func:`repro.service.run_loadgen`
for the closed-loop load generator.
"""

from .journal import RequestJournal
from .loadgen import LoadgenOptions, render_summary, run_loadgen
from .protocol import (
    CellRequest,
    ProtocolError,
    parse_cell_request,
    parse_sweep_request,
    payload_bytes,
    sweep_payload_bytes,
)
from .server import ServiceConfig, SweepService, run_server

__all__ = [
    "CellRequest",
    "LoadgenOptions",
    "ProtocolError",
    "RequestJournal",
    "ServiceConfig",
    "SweepService",
    "parse_cell_request",
    "parse_sweep_request",
    "payload_bytes",
    "render_summary",
    "run_loadgen",
    "run_server",
    "sweep_payload_bytes",
]
