"""Request/response schema of the sweep service (docs/service.md).

One wire contract anchors everything here: **a served cell's payload is
byte-identical to the same cell in batch ``atm-repro report`` output.**
The report writer serializes with ``json.dumps(..., indent=2,
sort_keys=True)``; :func:`payload_bytes` uses exactly the same settings
over exactly the same dict (:meth:`PlatformMeasurement.to_dict`), so a
client diffing a served response against the corresponding
``report.json`` fragment sees zero bytes of difference — whichever of
the coalescing / cache / batch-dispatch paths produced it.

Requests are validated here, *before* admission control: a malformed
request must never consume queue budget.  Validation failures raise
:class:`ProtocolError` with a message safe to echo to the client.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Tuple

from ..backends.registry import available_backends, resolve_backend
from ..core.collision import DetectionMode

__all__ = [
    "ProtocolError",
    "CellRequest",
    "parse_cell_request",
    "parse_sweep_request",
    "payload_bytes",
    "sweep_payload_bytes",
]

#: Hard cap on fleet size accepted over the wire; larger requests are
#: protocol errors, not admission rejections (they would never fit a
#: service-scale deadline budget anyway).
MAX_SERVED_N = 100_000

#: Hard cap on tracking periods per request.
MAX_SERVED_PERIODS = 64


class ProtocolError(ValueError):
    """A request that fails schema validation (HTTP 400)."""


@dataclass(frozen=True)
class CellRequest:
    """One validated measurement-cell request.

    Identity is by value, so two requests for the same cell are the
    same dict key — the coalescing map and the batch deduplication both
    rely on that.
    """

    platform: str
    n: int
    seed: int = 2018
    periods: int = 3
    mode: str = DetectionMode.SIGNED.value

    @property
    def detection_mode(self) -> DetectionMode:
        return DetectionMode(self.mode)

    @property
    def compat_key(self) -> Tuple[int, int, str]:
        """Requests sharing this key may share one batched dispatch."""
        return (self.seed, self.periods, self.mode)

    def cache_key(self) -> str:
        """The cell's result-cache fingerprint (coalescing identity).

        Same key scheme as the batch harness
        (:meth:`repro.harness.cache.ResultCache.key_for`), so a cell
        served by the service warms the same cache entries ``atm-repro
        report --cache-dir`` reads, and vice versa.
        """
        from ..harness.cache import ResultCache

        return ResultCache.key_for(
            resolve_backend(self.platform),
            n=self.n,
            seed=self.seed,
            periods=self.periods,
            mode=self.detection_mode,
        )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "platform": self.platform,
            "n": self.n,
            "seed": self.seed,
            "periods": self.periods,
            "mode": self.mode,
        }


def _require_int(obj: Mapping[str, Any], field: str, default: Any, lo: int, hi: int) -> int:
    value = obj.get(field, default)
    if value is None:
        raise ProtocolError(f"missing required field {field!r}")
    if isinstance(value, bool) or not isinstance(value, int):
        raise ProtocolError(f"field {field!r} must be an integer, got {value!r}")
    if not lo <= value <= hi:
        raise ProtocolError(f"field {field!r} must be in [{lo}, {hi}], got {value}")
    return value


def _validated_platform(value: Any) -> str:
    if not isinstance(value, str) or not value:
        raise ProtocolError("field 'platform' must be a registry name string")
    if value not in available_backends():
        raise ProtocolError(
            f"unknown platform {value!r}; see GET /v1/platforms"
        )
    return value


def _validated_mode(value: Any) -> str:
    if value is None:
        return DetectionMode.SIGNED.value
    try:
        return DetectionMode(value).value
    except ValueError:
        valid = sorted(m.value for m in DetectionMode)
        raise ProtocolError(f"field 'mode' must be one of {valid}, got {value!r}")


def _common_params(obj: Mapping[str, Any]) -> Dict[str, Any]:
    return {
        "seed": _require_int(obj, "seed", 2018, 0, 2**32 - 1),
        "periods": _require_int(obj, "periods", 3, 1, MAX_SERVED_PERIODS),
        "mode": _validated_mode(obj.get("mode")),
    }


def parse_cell_request(obj: Any) -> CellRequest:
    """Validate one ``POST /v1/cell`` body into a :class:`CellRequest`."""
    if not isinstance(obj, Mapping):
        raise ProtocolError("request body must be a JSON object")
    return CellRequest(
        platform=_validated_platform(obj.get("platform")),
        n=_require_int(obj, "n", None, 1, MAX_SERVED_N),
        **_common_params(obj),
    )


def parse_sweep_request(obj: Any) -> List[CellRequest]:
    """Validate one ``POST /v1/sweep`` body into its cell requests.

    A sweep is the cross product of ``platforms`` × ``ns`` under shared
    ``seed``/``periods``/``mode`` — the same matrix shape the batch
    harness measures, so the whole request lands in one compatible
    batch.
    """
    if not isinstance(obj, Mapping):
        raise ProtocolError("request body must be a JSON object")
    platforms = obj.get("platforms")
    ns = obj.get("ns")
    if not isinstance(platforms, list) or not platforms:
        raise ProtocolError("field 'platforms' must be a non-empty list")
    if not isinstance(ns, list) or not ns:
        raise ProtocolError("field 'ns' must be a non-empty list")
    if len(platforms) * len(ns) > 4096:
        raise ProtocolError("sweep too large: platforms x ns must be <= 4096")
    common = _common_params(obj)
    cells = []
    for platform in platforms:
        name = _validated_platform(platform)
        for n in ns:
            if isinstance(n, bool) or not isinstance(n, int) or not 1 <= n <= MAX_SERVED_N:
                raise ProtocolError(
                    f"every entry of 'ns' must be an integer in [1, {MAX_SERVED_N}],"
                    f" got {n!r}"
                )
            cells.append(CellRequest(platform=name, n=n, **common))
    return cells


def payload_bytes(data: Any) -> bytes:
    """The canonical response encoding: the report writer's, exactly.

    ``json.dumps(..., indent=2, sort_keys=True)`` mirrors
    :func:`repro.harness.report.write_report`, so any fragment of a
    ``report.json`` re-encoded with the same settings is byte-equal to
    the served payload of the same data.
    """
    return json.dumps(data, indent=2, sort_keys=True).encode("utf-8")


def sweep_payload_bytes(ns: List[int], measurements: Mapping[str, List[Any]]) -> bytes:
    """Encode a sweep response in :class:`~repro.harness.sweep.SweepData` shape."""
    return payload_bytes(
        {
            "ns": [int(n) for n in ns],
            "measurements": {
                platform: [m.to_dict() for m in rows]
                for platform, rows in measurements.items()
            },
        }
    )
