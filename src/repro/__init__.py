"""repro — Air Traffic Management on simulated parallel architectures.

A from-scratch reproduction of *"Performance Comparison of NVIDIA
accelerators with SIMD, Associative, and Multi-core Processors for Air
Traffic Management"* (Shaker, Sharma, Baker, Yuan; ICPP 2018 Companion).

The library contains:

* :mod:`repro.core` — the ATM simulation and the three compute-intensive
  tasks (tracking & correlation, Batcher collision detection, collision
  resolution) with the hard-deadline major cycle;
* :mod:`repro.cuda` — a warp-level NVIDIA GPU execution simulator with
  property tables for the paper's three cards;
* :mod:`repro.simd` — a traditional-SIMD machine model (ClearSpeed
  CSX600);
* :mod:`repro.ap` — an associative-processor model (STARAN);
* :mod:`repro.mimd` — a 16-core shared-memory multi-core model (Xeon);
* :mod:`repro.analysis` — MATLAB-style curve fitting and deadline
  analysis;
* :mod:`repro.harness` — experiment generators for every figure in the
  paper's evaluation.

Quickstart::

    from repro import Simulation
    sim = Simulation(n_aircraft=960, backend="cuda:titan-x-pascal")
    print(sim.run(major_cycles=2).summary())
"""

from .backends import (
    Backend,
    ReferenceBackend,
    all_platform_names,
    available_backends,
    resolve_backend,
)
from .core import (
    DetectionMode,
    FleetState,
    RadarFrame,
    ScheduleResult,
    Simulation,
    TaskTiming,
    setup_flight,
)

__version__ = "1.1.0"

__all__ = [
    "Backend",
    "ReferenceBackend",
    "all_platform_names",
    "available_backends",
    "resolve_backend",
    "DetectionMode",
    "FleetState",
    "RadarFrame",
    "ScheduleResult",
    "Simulation",
    "TaskTiming",
    "setup_flight",
    "__version__",
]
