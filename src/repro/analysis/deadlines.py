"""Deadline analysis over schedule results (the paper's §6.2 claims).

Besides the :class:`DeadlineReport` tables, this module is the **SLO
monitor** of the metrics layer (docs/observability.md): every measured
cell and every scheduled period funnels through
:func:`record_cell_metrics` / :func:`record_schedule_metrics`, which
record the remaining period budget into the
``atm_deadline_margin_seconds`` histogram and the miss/period counters
— always, including explicit zeros, so the paper's never-miss claim is
a readable fact of the snapshot rather than an absence of data.
:func:`deadline_verdicts` reconstructs the §6.2 miss/no-miss table from
a snapshot alone.

The same margin arithmetic also runs *before* work is accepted: the
:class:`AdmissionController` turns the deadline machinery into
admission control for the sweep service (docs/service.md).  Instead of
judging a period after its tasks ran, it judges a request before any
cell is dispatched — estimated completion time against the request's
deadline budget — and rejects with a structured
:class:`AdmissionVerdict` whenever the margin is negative or the queue
is full, mirroring COOK-style arbitrated access: uncontrolled sharing
breaks deadline guarantees, arbitrated admission preserves them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Sequence

import numpy as np

from ..core import constants as C
from ..core.scheduler import ScheduleResult
from ..obs import event as obs_event
from ..obs import is_active as obs_is_active
from ..obs.metrics import metric_inc, metric_observe, metrics_active

__all__ = [
    "DeadlineRow",
    "DeadlineReport",
    "AdmissionVerdict",
    "AdmissionController",
    "record_cell_metrics",
    "record_schedule_metrics",
    "deadline_verdicts",
]


# ---------------------------------------------------------------------------
# the SLO monitor: margins and misses as first-class metrics
# ---------------------------------------------------------------------------


def _record_margin(
    margin_s: float,
    *,
    platform: str,
    n_aircraft: int,
    period: str,
    source: str,
    missed: bool,
    events: bool,
) -> None:
    metric_observe(
        "atm_deadline_margin_seconds",
        margin_s,
        platform=platform,
        n_aircraft=n_aircraft,
        period=period,
        source=source,
    )
    if missed and events:
        obs_event(
            "deadline.miss",
            cat="slo",
            platform=platform,
            n_aircraft=n_aircraft,
            period=period,
            source=source,
            margin_s=margin_s,
        )


def record_cell_metrics(
    platform: str,
    n_aircraft: int,
    task1_seconds: Sequence[float],
    task23_s: float,
    *,
    source: str = "sweep",
    events: bool = True,
) -> None:
    """Record deadline metrics for one measured sweep cell.

    The cell's tracking periods each budget Task 1 alone against the
    half-second deadline; the final period is the collision period of
    the major cycle, budgeting Task 1 plus the fused Task 2+3.  Margins
    (and the miss/period counters, recorded even when zero) are pure
    functions of the modelled timings, so the deterministic snapshot is
    byte-identical no matter which execution path produced the
    measurement.  ``events=False`` suppresses the ``deadline.miss``
    trace events (used when adopting a pool worker's trace, which
    already carries them).
    """
    if not metrics_active() and not obs_is_active():
        return
    misses = 0
    periods = 0
    for t1 in task1_seconds[:-1]:
        margin = C.PERIOD_SECONDS - float(t1)
        missed = margin < 0.0
        misses += missed
        periods += 1
        _record_margin(
            margin,
            platform=platform,
            n_aircraft=n_aircraft,
            period="tracking",
            source=source,
            missed=missed,
            events=events,
        )
    if task1_seconds:
        margin = C.PERIOD_SECONDS - (float(task1_seconds[-1]) + float(task23_s))
        missed = margin < 0.0
        misses += missed
        periods += 1
        _record_margin(
            margin,
            platform=platform,
            n_aircraft=n_aircraft,
            period="collision",
            source=source,
            missed=missed,
            events=events,
        )
    metric_inc(
        "atm_deadline_misses",
        float(misses),
        platform=platform,
        n_aircraft=n_aircraft,
        source=source,
    )
    metric_inc(
        "atm_deadline_periods",
        float(periods),
        platform=platform,
        n_aircraft=n_aircraft,
        source=source,
    )


def record_schedule_metrics(
    result: ScheduleResult, *, source: str = "schedule", events: bool = True
) -> None:
    """Record deadline metrics for every period of a schedule run.

    Works for any result exposing ``platform``/``n_aircraft`` and a
    ``periods`` list of records with ``time_used`` / ``deadline_missed``
    — the extended-task-set scheduler included (its periods carry a
    ``tasks``/``skipped`` breakdown instead of ``task23`` fields, so the
    collision-period test duck-types over both record shapes).
    """
    if not metrics_active() and not obs_is_active():
        return
    misses = 0
    for p in result.periods:
        margin = C.PERIOD_SECONDS - float(p.time_used)
        missed = bool(p.deadline_missed)
        misses += missed
        collision_period = (
            getattr(p, "task23", None) is not None
            or bool(getattr(p, "task23_skipped", False))
            or any(
                getattr(t, "task", "") == "task23"
                for t in getattr(p, "tasks", ())
            )
            or "task23" in getattr(p, "skipped", ())
        )
        _record_margin(
            margin,
            platform=result.platform,
            n_aircraft=result.n_aircraft,
            period="collision" if collision_period else "tracking",
            source=source,
            missed=missed,
            events=events,
        )
    metric_inc(
        "atm_deadline_misses",
        float(misses),
        platform=result.platform,
        n_aircraft=result.n_aircraft,
        source=source,
    )
    metric_inc(
        "atm_deadline_periods",
        float(len(result.periods)),
        platform=result.platform,
        n_aircraft=result.n_aircraft,
        source=source,
    )


def deadline_verdicts(snapshot: Mapping[str, Any]) -> Dict[str, Dict[str, Any]]:
    """The §6.2 miss/no-miss table, reconstructed from a metrics snapshot.

    Reads only the ``atm_deadline_misses`` / ``atm_deadline_periods``
    families of a :meth:`~repro.obs.metrics.MetricsRegistry.snapshot`.
    Returns per platform: total misses, total periods, per-fleet-size
    miss counts, the smallest fleet size with a miss (or None), and the
    paper's verdict flag ``never_misses``.
    """
    families = snapshot.get("families", {})
    verdicts: Dict[str, Dict[str, Any]] = {}
    for family, field_name in (
        ("atm_deadline_misses", "misses"),
        ("atm_deadline_periods", "periods"),
    ):
        for entry in families.get(family, {}).get("series", []):
            labels = entry["labels"]
            platform = labels["platform"]
            n = int(labels["n_aircraft"])
            v = verdicts.setdefault(
                platform, {"misses_by_n": {}, "periods_by_n": {}}
            )
            by_n = v[f"{field_name}_by_n"]
            by_n[n] = by_n.get(n, 0) + int(entry["value"])
    out: Dict[str, Dict[str, Any]] = {}
    for platform, v in sorted(verdicts.items()):
        missing_ns = sorted(n for n, m in v["misses_by_n"].items() if m > 0)
        out[platform] = {
            "total_misses": sum(v["misses_by_n"].values()),
            "total_periods": sum(v["periods_by_n"].values()),
            "misses_by_n": dict(sorted(v["misses_by_n"].items())),
            "first_miss_n": missing_ns[0] if missing_ns else None,
            "never_misses": not missing_ns,
        }
    return out


# ---------------------------------------------------------------------------
# admission control: the deadline machinery run *before* work is accepted
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class AdmissionVerdict:
    """One admission decision, in the vocabulary of the deadline tables.

    ``margin_s`` is the estimated slack between the request's deadline
    budget and the controller's completion estimate — the admission-time
    analogue of the per-period deadline margin — and is negative exactly
    when the request is rejected for deadline reasons.  Rejected
    requests carry this verdict back to the client as the response
    body, so a 429/503 is never an opaque failure.
    """

    admitted: bool
    #: "admitted" | "rejected_deadline" | "rejected_backpressure"
    #: | "rejected_draining"
    outcome: str
    #: cells the request would add to the dispatch queue.
    cells: int
    #: cells already queued when the decision was made.
    queue_depth: int
    #: the request's wall-clock budget, seconds.
    deadline_s: float
    #: estimated seconds until this request would complete.
    estimated_s: float
    #: deadline_s - estimated_s (negative = cannot be served in budget).
    margin_s: float
    #: per-cell service-time estimate the prediction used, seconds.
    cell_estimate_s: float

    def to_dict(self) -> Dict[str, Any]:
        return {
            "admitted": self.admitted,
            "outcome": self.outcome,
            "cells": int(self.cells),
            "queue_depth": int(self.queue_depth),
            "deadline_s": float(self.deadline_s),
            "estimated_s": float(self.estimated_s),
            "margin_s": float(self.margin_s),
            "cell_estimate_s": float(self.cell_estimate_s),
        }


class AdmissionController:
    """Deadline-margin admission control for the sweep service.

    The controller models the service as a single batch-dispatch queue:
    a request for ``cells`` new measurement cells, arriving with
    ``queue_depth`` cells already waiting, is estimated to complete in
    ``dispatch_overhead_s + (queue_depth + cells) * cell_estimate_s``
    seconds, where ``cell_estimate_s`` is an exponentially-weighted
    moving average of observed per-cell service time (seeded with a
    prior so a cold service is not blindly optimistic).  The request is
    **rejected with a deadline verdict** when that estimate exceeds its
    deadline budget, and **rejected for backpressure** when admitting
    its cells would exceed ``max_queue_cells`` — the two rejection
    modes the service maps to HTTP 429 and 503 (docs/service.md).
    During graceful shutdown (:meth:`set_draining`) any request adding
    new cells is **rejected as draining** instead — also 503, with a
    ``Retry-After`` pointing clients at the replacement instance.

    Every decision records the ``atm_service_admission_margin_seconds``
    histogram (by outcome) plus an ``admission.reject`` obs event on
    rejection, so the arbitration itself is observable the same way the
    after-the-fact deadline verdicts are.
    """

    def __init__(
        self,
        *,
        max_queue_cells: int = 1024,
        default_deadline_s: float = 30.0,
        cell_prior_s: float = 0.05,
        dispatch_overhead_s: float = 0.05,
        ewma_alpha: float = 0.2,
    ) -> None:
        if max_queue_cells < 1:
            raise ValueError("max_queue_cells must be >= 1")
        if default_deadline_s <= 0:
            raise ValueError("default_deadline_s must be positive")
        if not 0.0 < ewma_alpha <= 1.0:
            raise ValueError("ewma_alpha must be in (0, 1]")
        self.max_queue_cells = int(max_queue_cells)
        self.default_deadline_s = float(default_deadline_s)
        self.dispatch_overhead_s = float(dispatch_overhead_s)
        self.ewma_alpha = float(ewma_alpha)
        self._cell_estimate_s = float(cell_prior_s)
        self._observed_cells = 0
        self._draining = False

    @property
    def cell_estimate_s(self) -> float:
        """Current per-cell service-time estimate, seconds."""
        return self._cell_estimate_s

    @property
    def draining(self) -> bool:
        """True while the service is shutting down gracefully."""
        return self._draining

    def set_draining(self, draining: bool = True) -> None:
        """Enter (or leave) drain mode: new work is rejected with a
        ``rejected_draining`` verdict (HTTP 503 + ``Retry-After``), but
        zero-cell requests — fully cached or coalescible — still pass,
        so in-flight work keeps its coalescers until the flush ends.
        """
        self._draining = bool(draining)

    def observe_cell_seconds(self, seconds: float, cells: int = 1) -> None:
        """Fold an observed dispatch (``cells`` served in ``seconds``) in."""
        if cells < 1 or seconds < 0:
            return
        per_cell = float(seconds) / float(cells)
        self._cell_estimate_s += self.ewma_alpha * (
            per_cell - self._cell_estimate_s
        )
        self._observed_cells += int(cells)

    def estimate_s(self, cells: int, queue_depth: int) -> float:
        """Predicted completion time of a ``cells``-cell request."""
        return self.dispatch_overhead_s + (
            max(0, int(queue_depth)) + max(0, int(cells))
        ) * self._cell_estimate_s

    def assess(
        self,
        cells: int,
        *,
        queue_depth: int,
        deadline_s: Optional[float] = None,
    ) -> AdmissionVerdict:
        """Admit or reject one request; records metrics either way.

        ``cells`` counts only the cells the request would *add* — cells
        served by the result cache or coalesced onto an in-flight
        request cost nothing and should be excluded by the caller.
        A request adding zero cells is always admitted (it cannot miss
        its own deadline by queueing nothing).
        """
        cells = max(0, int(cells))
        queue_depth = max(0, int(queue_depth))
        budget = self.default_deadline_s if deadline_s is None else float(deadline_s)
        estimated = self.estimate_s(cells, queue_depth) if cells else 0.0
        margin = budget - estimated
        if cells and self._draining:
            outcome = "rejected_draining"
        elif cells and queue_depth + cells > self.max_queue_cells:
            outcome = "rejected_backpressure"
        elif cells and margin < 0.0:
            outcome = "rejected_deadline"
        else:
            outcome = "admitted"
        verdict = AdmissionVerdict(
            admitted=outcome == "admitted",
            outcome=outcome,
            cells=cells,
            queue_depth=queue_depth,
            deadline_s=budget,
            estimated_s=estimated,
            margin_s=margin,
            cell_estimate_s=self._cell_estimate_s,
        )
        metric_observe(
            "atm_service_admission_margin_seconds", margin, outcome=outcome
        )
        if not verdict.admitted:
            obs_event(
                "admission.reject",
                cat="slo",
                outcome=outcome,
                cells=cells,
                queue_depth=queue_depth,
                margin_s=margin,
            )
        return verdict


@dataclass(frozen=True)
class DeadlineRow:
    """Deadline behaviour of one platform at one fleet size."""

    platform: str
    n_aircraft: int
    periods: int
    missed: int
    skipped: int
    miss_rate: float
    worst_period_ms: float
    mean_utilization: float

    @property
    def never_misses(self) -> bool:
        return self.missed == 0

    @classmethod
    def from_schedule(cls, result: ScheduleResult) -> "DeadlineRow":
        return cls(
            platform=result.platform,
            n_aircraft=result.n_aircraft,
            periods=result.total_periods,
            missed=result.missed_deadlines,
            skipped=result.skipped_tasks,
            miss_rate=result.miss_rate,
            worst_period_ms=result.worst_period_seconds * 1e3,
            mean_utilization=result.mean_utilization,
        )


@dataclass
class DeadlineReport:
    """All deadline rows of one experiment, with the paper's verdicts."""

    rows: List[DeadlineRow]

    def by_platform(self) -> Dict[str, List[DeadlineRow]]:
        out: Dict[str, List[DeadlineRow]] = {}
        for row in self.rows:
            out.setdefault(row.platform, []).append(row)
        return out

    def platforms_never_missing(self) -> List[str]:
        """Platforms with zero misses at every tested fleet size."""
        return sorted(
            p
            for p, rows in self.by_platform().items()
            if all(r.never_misses for r in rows)
        )

    def platforms_missing(self) -> List[str]:
        return sorted(
            p
            for p, rows in self.by_platform().items()
            if any(not r.never_misses for r in rows)
        )

    def first_miss_n(self, platform: str) -> int | None:
        """Smallest tested fleet size at which ``platform`` missed."""
        sizes = [
            r.n_aircraft
            for r in self.by_platform().get(platform, [])
            if not r.never_misses
        ]
        return min(sizes) if sizes else None

    def headroom(self, platform: str) -> float:
        """Smallest remaining period slack across rows, in ms.

        Positive: the platform never came within this many ms of the
        deadline; negative: it blew past it.
        """
        rows = self.by_platform().get(platform, [])
        if not rows:
            raise KeyError(f"no rows for platform {platform!r}")
        budget_ms = C.PERIOD_SECONDS * 1e3
        return min(budget_ms - r.worst_period_ms for r in rows)

    def summary_lines(self) -> List[str]:
        lines = []
        for platform, rows in sorted(self.by_platform().items()):
            missed = sum(r.missed for r in rows)
            total = sum(r.periods for r in rows)
            worst = max(r.worst_period_ms for r in rows)
            lines.append(
                f"{platform}: {missed}/{total} deadlines missed, "
                f"worst period {worst:.2f} ms (budget "
                f"{C.PERIOD_SECONDS * 1e3:.0f} ms)"
            )
        return lines
