"""Deadline analysis over schedule results (the paper's §6.2 claims)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

from ..core import constants as C
from ..core.scheduler import ScheduleResult

__all__ = ["DeadlineRow", "DeadlineReport"]


@dataclass(frozen=True)
class DeadlineRow:
    """Deadline behaviour of one platform at one fleet size."""

    platform: str
    n_aircraft: int
    periods: int
    missed: int
    skipped: int
    miss_rate: float
    worst_period_ms: float
    mean_utilization: float

    @property
    def never_misses(self) -> bool:
        return self.missed == 0

    @classmethod
    def from_schedule(cls, result: ScheduleResult) -> "DeadlineRow":
        return cls(
            platform=result.platform,
            n_aircraft=result.n_aircraft,
            periods=result.total_periods,
            missed=result.missed_deadlines,
            skipped=result.skipped_tasks,
            miss_rate=result.miss_rate,
            worst_period_ms=result.worst_period_seconds * 1e3,
            mean_utilization=result.mean_utilization,
        )


@dataclass
class DeadlineReport:
    """All deadline rows of one experiment, with the paper's verdicts."""

    rows: List[DeadlineRow]

    def by_platform(self) -> Dict[str, List[DeadlineRow]]:
        out: Dict[str, List[DeadlineRow]] = {}
        for row in self.rows:
            out.setdefault(row.platform, []).append(row)
        return out

    def platforms_never_missing(self) -> List[str]:
        """Platforms with zero misses at every tested fleet size."""
        return sorted(
            p
            for p, rows in self.by_platform().items()
            if all(r.never_misses for r in rows)
        )

    def platforms_missing(self) -> List[str]:
        return sorted(
            p
            for p, rows in self.by_platform().items()
            if any(not r.never_misses for r in rows)
        )

    def first_miss_n(self, platform: str) -> int | None:
        """Smallest tested fleet size at which ``platform`` missed."""
        sizes = [
            r.n_aircraft
            for r in self.by_platform().get(platform, [])
            if not r.never_misses
        ]
        return min(sizes) if sizes else None

    def headroom(self, platform: str) -> float:
        """Smallest remaining period slack across rows, in ms.

        Positive: the platform never came within this many ms of the
        deadline; negative: it blew past it.
        """
        rows = self.by_platform().get(platform, [])
        if not rows:
            raise KeyError(f"no rows for platform {platform!r}")
        budget_ms = C.PERIOD_SECONDS * 1e3
        return min(budget_ms - r.worst_period_ms for r in rows)

    def summary_lines(self) -> List[str]:
        lines = []
        for platform, rows in sorted(self.by_platform().items()):
            missed = sum(r.missed for r in rows)
            total = sum(r.periods for r in rows)
            worst = max(r.worst_period_ms for r in rows)
            lines.append(
                f"{platform}: {missed}/{total} deadlines missed, "
                f"worst period {worst:.2f} ms (budget "
                f"{C.PERIOD_SECONDS * 1e3:.0f} ms)"
            )
        return lines
