"""Crossover analysis: where one platform's curve overtakes another's.

The reproduction target for the paper's figures includes "where
crossovers fall" — e.g. the fleet size at which a GPU's launch-overhead
regime ends and it pulls ahead of the ClearSpeed chip.  This module
locates those points by piecewise-linear interpolation between measured
sweep points.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

__all__ = ["Crossover", "find_crossovers", "pairwise_crossovers"]


@dataclass(frozen=True)
class Crossover:
    """One sign change between two timing curves."""

    #: interpolated fleet size where the curves meet.
    n_aircraft: float
    #: label of the series that is faster *after* the crossover.
    faster_after: str
    #: interpolated time at the meeting point, seconds.
    seconds: float


def find_crossovers(
    ns: Sequence[float],
    label_a: str,
    ys_a: Sequence[float],
    label_b: str,
    ys_b: Sequence[float],
) -> List[Crossover]:
    """All points where curve a and curve b trade places.

    Exact ties at a sample point count as a crossover only if the sign
    actually changes across it.
    """
    ns = np.asarray(ns, dtype=np.float64)
    a = np.asarray(ys_a, dtype=np.float64)
    b = np.asarray(ys_b, dtype=np.float64)
    if not (ns.shape == a.shape == b.shape):
        raise ValueError("ns, ys_a and ys_b must have equal length")
    if ns.shape[0] < 2:
        return []

    diff = a - b
    out: List[Crossover] = []
    for k in range(diff.shape[0] - 1):
        d0, d1 = diff[k], diff[k + 1]
        if d0 == 0.0 and d1 == 0.0:
            continue
        if d0 * d1 < 0.0 or (d0 == 0.0 and k > 0 and diff[k - 1] * d1 < 0.0):
            # Linear interpolation of the zero of diff on [ns_k, ns_k+1].
            t = d0 / (d0 - d1)
            x = float(ns[k] + t * (ns[k + 1] - ns[k]))
            y = float(a[k] + t * (a[k + 1] - a[k]))
            out.append(
                Crossover(
                    n_aircraft=x,
                    faster_after=label_a if d1 < 0 else label_b,
                    seconds=y,
                )
            )
    return out


def pairwise_crossovers(
    ns: Sequence[float], series: Dict[str, Sequence[float]]
) -> List[Crossover]:
    """Crossovers between every pair of series, sorted by fleet size."""
    labels = list(series)
    found: List[Crossover] = []
    for i, la in enumerate(labels):
        for lb in labels[i + 1 :]:
            found.extend(find_crossovers(ns, la, series[la], lb, series[lb]))
    return sorted(found, key=lambda c: c.n_aircraft)
