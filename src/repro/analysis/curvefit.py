"""Polynomial curve fitting with MATLAB's goodness-of-fit statistics.

The paper judges its timing curves with the MATLAB Curve Fitting
Toolbox's four "goodness of fit" numbers [3]:

* **SSE** — sum of squared residuals;
* **R-square** — 1 - SSE/SST;
* **Adjusted R-square** — R-square penalised by model degrees of
  freedom: ``1 - (1 - R^2) * (n - 1) / (n - p)`` with p coefficients;
* **RMSE** — ``sqrt(SSE / (n - p))``.

and argues: a fit is "SIMD-like" when the best model is linear, or
quadratic with a quadratic coefficient so small that the quadratic term
contributes little over the measured domain.  :func:`assess_linearity`
encodes exactly that argument.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

__all__ = [
    "FitResult",
    "LinearityVerdict",
    "polynomial_fit",
    "assess_linearity",
    "growth_exponent",
]


@dataclass(frozen=True)
class FitResult:
    """One least-squares polynomial fit and its goodness of fit."""

    #: polynomial degree.
    degree: int
    #: coefficients, highest power first (numpy.polyfit convention).
    coefficients: tuple
    sse: float
    r_squared: float
    adj_r_squared: float
    rmse: float
    n_points: int

    def predict(self, x) -> np.ndarray:
        """Evaluate the fitted polynomial."""
        return np.polyval(np.asarray(self.coefficients), np.asarray(x, dtype=np.float64))

    @property
    def leading_coefficient(self) -> float:
        return float(self.coefficients[0])

    def describe(self) -> str:
        terms = []
        deg = self.degree
        for i, c in enumerate(self.coefficients):
            p = deg - i
            if p == 0:
                terms.append(f"{c:.3e}")
            elif p == 1:
                terms.append(f"{c:.3e}*x")
            else:
                terms.append(f"{c:.3e}*x^{p}")
        poly = " + ".join(terms)
        return (
            f"degree {self.degree}: y = {poly}  "
            f"[SSE={self.sse:.3e}, R^2={self.r_squared:.5f}, "
            f"adjR^2={self.adj_r_squared:.5f}, RMSE={self.rmse:.3e}]"
        )


def polynomial_fit(x: Sequence[float], y: Sequence[float], degree: int) -> FitResult:
    """Least-squares polynomial fit with MATLAB-style GOF statistics."""
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    if x.shape != y.shape or x.ndim != 1:
        raise ValueError("x and y must be 1-D arrays of equal length")
    n = x.shape[0]
    p = degree + 1  # number of coefficients
    if degree < 0:
        raise ValueError("degree must be non-negative")
    if n < p + 1:
        raise ValueError(
            f"need at least {p + 1} points for a degree-{degree} fit with "
            f"meaningful GOF, got {n}"
        )

    coeffs = np.polyfit(x, y, degree)
    resid = y - np.polyval(coeffs, x)
    sse = float(resid @ resid)
    sst = float(np.sum((y - y.mean()) ** 2))
    # Constant data has no variance to explain: SST is pure rounding
    # noise there, so compare it against the data's magnitude rather
    # than exact zero.
    degenerate = sst <= 1e-24 * max(1.0, float(np.max(np.abs(y))) ** 2) * n
    r2 = 1.0 - sse / sst if not degenerate else 1.0
    dof = n - p
    adj = 1.0 - (1.0 - r2) * (n - 1) / dof if dof > 0 else float("nan")
    rmse = float(np.sqrt(sse / dof)) if dof > 0 else float("nan")
    return FitResult(
        degree=degree,
        coefficients=tuple(float(c) for c in coeffs),
        sse=sse,
        r_squared=r2,
        adj_r_squared=adj,
        rmse=rmse,
        n_points=n,
    )


@dataclass(frozen=True)
class LinearityVerdict:
    """The paper's linear-vs-quadratic judgement for one timing curve."""

    linear: FitResult
    quadratic: FitResult
    #: fraction of the quadratic fit's value at the domain edge that the
    #: quadratic *term* contributes.
    quadratic_share: float
    #: log-log growth exponent over the measured domain (1.0 = linear,
    #: 2.0 = quadratic).
    growth_exponent: float
    #: "linear", "near-linear", "quadratic", or "superquadratic".
    verdict: str

    @property
    def is_simd_like(self) -> bool:
        """At most a small-coefficient quadratic — the behaviours the
        paper groups as SIMD-like (its Fig. 9 card is explicitly
        "quadratic (low coefficient)" and still in that group)."""
        return self.verdict in ("linear", "near-linear", "quadratic")

    def describe(self) -> str:
        return (
            f"verdict: {self.verdict} "
            f"(growth exponent {self.growth_exponent:.2f}; quadratic term "
            f"contributes {self.quadratic_share:.1%} at the domain edge; "
            f"linear adjR^2={self.linear.adj_r_squared:.5f}, "
            f"quadratic adjR^2={self.quadratic.adj_r_squared:.5f})"
        )


def growth_exponent(x: Sequence[float], y: Sequence[float]) -> float:
    """Log-log regression slope: the empirical growth order of y(x).

    1.0 means the curve grows linearly over the measured domain, 2.0
    quadratically; constant-dominated curves read below 1.
    """
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    if np.any(x <= 0) or np.any(y <= 0):
        raise ValueError("growth exponent needs positive x and y")
    return float(np.polyfit(np.log(x), np.log(y), 1)[0])


def assess_linearity(
    x: Sequence[float],
    y: Sequence[float],
    *,
    linear_exponent: float = 1.10,
    near_linear_exponent: float = 1.70,
    quadratic_exponent: float = 2.10,
    near_linear_share: float = 0.35,
    linear_r2: float = 0.995,
    adj_r2_margin: float = 1e-3,
) -> LinearityVerdict:
    """Fit degree 1 and 2 and apply the paper's model-selection argument.

    The primary classifier is the empirical growth order over the
    measured domain (the log-log slope), which is what the eye — and the
    paper's prose — actually judges:

    * **linear** — growth exponent <= ``linear_exponent``, or the
      quadratic fit does not improve adjusted R-square by more than
      ``adj_r2_margin``, or the linear fit alone explains essentially
      all variance (adjusted R-square >= ``linear_r2``);
    * **near-linear** — exponent <= ``near_linear_exponent``, or the
      quadratic term contributes less than ``near_linear_share`` of the
      fitted value at the domain edge ("a very small quadratic
      coefficient compared to the linear coefficient");
    * **quadratic** — exponent <= ``quadratic_exponent`` (the paper's
      Fig. 9 case: a genuine quadratic with a small coefficient);
    * **superquadratic** — everything steeper (the multi-core blow-up
      the paper describes as "rapidly, possibly exponentially").
    """
    lin = polynomial_fit(x, y, 1)
    quad = polynomial_fit(x, y, 2)
    exponent = growth_exponent(x, y)

    x_edge = float(np.max(np.asarray(x, dtype=np.float64)))
    a2, a1, a0 = quad.coefficients
    quad_term = abs(a2) * x_edge**2
    total = abs(a2) * x_edge**2 + abs(a1) * x_edge + abs(a0)
    share = quad_term / total if total > 0 else 0.0

    if (
        exponent <= linear_exponent
        or quad.adj_r_squared - lin.adj_r_squared <= adj_r2_margin
        or lin.adj_r_squared >= linear_r2
    ):
        verdict = "linear"
    elif exponent <= near_linear_exponent or share < near_linear_share:
        verdict = "near-linear"
    elif exponent <= quadratic_exponent:
        verdict = "quadratic"
    else:
        verdict = "superquadratic"
    return LinearityVerdict(
        linear=lin,
        quadratic=quad,
        quadratic_share=share,
        growth_exponent=exponent,
        verdict=verdict,
    )
