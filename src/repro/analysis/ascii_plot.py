"""ASCII charts: render the paper's figures in a terminal.

A minimal log-y scatter/line chart good enough to *see* the shape claims
— which curve is linear, who crosses whom, where the deadline sits —
without any plotting dependency.
"""

from __future__ import annotations

import math
from typing import Dict, Optional, Sequence

__all__ = ["ascii_chart"]

#: plot symbols assigned to series in insertion order.
_SYMBOLS = "ox+*#@%&"


def _log_position(value: float, lo: float, hi: float, steps: int) -> int:
    """Row index (0 = bottom) of ``value`` on a log scale of ``steps``."""
    if value <= 0:
        return 0
    span = math.log10(hi) - math.log10(lo)
    if span <= 0:
        return 0
    frac = (math.log10(value) - math.log10(lo)) / span
    return max(0, min(steps - 1, int(round(frac * (steps - 1)))))


def ascii_chart(
    xs: Sequence[float],
    series: Dict[str, Sequence[float]],
    *,
    height: int = 14,
    title: str = "",
    y_label: str = "seconds (log)",
    hline: Optional[float] = None,
    hline_label: str = "",
) -> str:
    """Render ``{label: ys}`` against ``xs`` as a log-y ASCII chart.

    ``hline`` draws a horizontal reference (e.g. the 0.5 s deadline)
    when it falls inside the plotted range.  Column ``k`` of the canvas
    is data point ``k`` — the x axis is ordinal, which suits the paper's
    fleet-size sweeps.
    """
    if height < 4:
        raise ValueError("chart height must be at least 4")
    if not series:
        raise ValueError("nothing to plot")
    for label, ys in series.items():
        if len(ys) != len(xs):
            raise ValueError(f"series {label!r} length mismatch")
        if any(y <= 0 for y in ys):
            raise ValueError(f"log chart needs positive values ({label!r})")

    values = [y for ys in series.values() for y in ys]
    lo, hi = min(values), max(values)
    if hline is not None:
        lo, hi = min(lo, hline), max(hi, hline)
    if hi <= lo:
        hi = lo * 10.0

    n_cols = len(xs)
    col_width = 6
    canvas = [[" "] * (n_cols * col_width) for _ in range(height)]

    if hline is not None:
        row = height - 1 - _log_position(hline, lo, hi, height)
        for c in range(n_cols * col_width):
            canvas[row][c] = "-"

    for (label, ys), symbol in zip(series.items(), _SYMBOLS):
        for k, y in enumerate(ys):
            row = height - 1 - _log_position(y, lo, hi, height)
            canvas[row][k * col_width + col_width // 2] = symbol

    lines = []
    if title:
        lines.append(title)
    for r, row_cells in enumerate(canvas):
        if r == 0:
            margin = f"{hi:9.3g} |"
        elif r == height - 1:
            margin = f"{lo:9.3g} |"
        else:
            margin = " " * 9 + " |"
        lines.append(margin + "".join(row_cells))
    axis = " " * 9 + " +" + "-" * (n_cols * col_width)
    lines.append(axis)
    ticks = " " * 11 + "".join(str(x).center(col_width)[:col_width] for x in xs)
    lines.append(ticks + "  (aircraft)")
    legend = ", ".join(
        f"{symbol}={label}" for (label, _), symbol in zip(series.items(), _SYMBOLS)
    )
    lines.append(f"{y_label}; {legend}")
    if hline is not None and hline_label:
        lines.append(f"---- {hline_label}")
    return "\n".join(lines)
