"""Plain-text rendering of tables and timing series for the harness."""

from __future__ import annotations

from typing import Iterable, List, Sequence

__all__ = ["render_table", "render_series", "format_seconds"]


def format_seconds(seconds: float) -> str:
    """Human scale: ns / us / ms / s with three significant digits."""
    if seconds < 0:
        raise ValueError("negative time")
    if seconds == 0:
        return "0 s"
    if seconds < 1e-6:
        return f"{seconds * 1e9:.3g} ns"
    if seconds < 1e-3:
        return f"{seconds * 1e6:.3g} us"
    if seconds < 1.0:
        return f"{seconds * 1e3:.3g} ms"
    return f"{seconds:.3g} s"


def render_table(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Fixed-width ASCII table with a header separator."""
    str_rows: List[List[str]] = [[str(h) for h in headers]]
    for row in rows:
        cells = [str(c) for c in row]
        if len(cells) != len(headers):
            raise ValueError(
                f"row has {len(cells)} cells, expected {len(headers)}"
            )
        str_rows.append(cells)

    widths = [max(len(r[i]) for r in str_rows) for i in range(len(headers))]

    def fmt(cells: List[str]) -> str:
        return "  ".join(c.ljust(w) for c, w in zip(cells, widths)).rstrip()

    lines = [fmt(str_rows[0]), "  ".join("-" * w for w in widths)]
    lines.extend(fmt(r) for r in str_rows[1:])
    return "\n".join(lines)


def render_series(
    title: str,
    ns: Sequence[int],
    series: dict,
) -> str:
    """Render {label: [seconds...]} against a shared fleet-size axis."""
    for label, ys in series.items():
        if len(ys) != len(ns):
            raise ValueError(
                f"series {label!r} has {len(ys)} points for {len(ns)} sizes"
            )
    headers = ["aircraft"] + list(series)
    rows = []
    for i, n in enumerate(ns):
        rows.append([n] + [format_seconds(series[label][i]) for label in series])
    return f"{title}\n{render_table(headers, rows)}"
