"""Analysis tools: curve fitting (the MATLAB replacement), deadline
reports and the throughput normalization of the paper's future work."""

from .ascii_plot import ascii_chart
from .crossover import Crossover, find_crossovers, pairwise_crossovers
from .curvefit import (
    FitResult,
    LinearityVerdict,
    assess_linearity,
    growth_exponent,
    polynomial_fit,
)
from .deadlines import DeadlineReport, DeadlineRow
from .normalize import NormalizedSeries, efficiency_ranking, normalize_times
from .tables import format_seconds, render_series, render_table

__all__ = [
    "ascii_chart",
    "Crossover",
    "find_crossovers",
    "pairwise_crossovers",
    "FitResult",
    "LinearityVerdict",
    "assess_linearity",
    "growth_exponent",
    "polynomial_fit",
    "DeadlineReport",
    "DeadlineRow",
    "NormalizedSeries",
    "efficiency_ranking",
    "normalize_times",
    "format_seconds",
    "render_series",
    "render_table",
]
