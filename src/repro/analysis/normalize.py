"""Throughput-normalized comparison (the paper's §7.2 future work).

The paper concedes that raw running-time comparison is unfair — "the
clock cycle times and the size of these different systems vary widely" —
and proposes normalising each system's curve by its maximum throughput
capacity, so the graphs compare *efficiency* rather than transistor
counts.  This module implements that proposal.

Normalised time of platform P at fleet size n:

    t_norm(P, n) = t(P, n) * peak(P) / peak(reference)

i.e. the time P *would* take were it scaled (up or down) to the
reference platform's peak useful-operation throughput.  A platform whose
normalised curve is lowest extracts the most ATM work per unit of peak
capability.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

__all__ = ["NormalizedSeries", "normalize_times", "efficiency_ranking"]


@dataclass(frozen=True)
class NormalizedSeries:
    """One platform's throughput-normalized timing curve."""

    platform: str
    peak_ops_per_s: float
    ns: tuple
    raw_seconds: tuple
    normalized_seconds: tuple


def normalize_times(
    platform: str,
    ns: Sequence[int],
    seconds: Sequence[float],
    peak_ops_per_s: float,
    reference_peak_ops_per_s: float,
) -> NormalizedSeries:
    """Scale one platform's curve to the reference peak throughput."""
    if peak_ops_per_s <= 0 or reference_peak_ops_per_s <= 0:
        raise ValueError("peak throughputs must be positive")
    if len(ns) != len(seconds):
        raise ValueError("ns and seconds must have equal length")
    factor = peak_ops_per_s / reference_peak_ops_per_s
    return NormalizedSeries(
        platform=platform,
        peak_ops_per_s=peak_ops_per_s,
        ns=tuple(ns),
        raw_seconds=tuple(seconds),
        normalized_seconds=tuple(s * factor for s in seconds),
    )


def efficiency_ranking(series: Sequence[NormalizedSeries]) -> List[str]:
    """Platforms ordered from most to least efficient.

    Ranking key: mean normalized time over the common fleet sizes (lower
    is better).
    """
    if not series:
        return []
    common = set(series[0].ns)
    for s in series[1:]:
        common &= set(s.ns)
    if not common:
        raise ValueError("series share no common fleet sizes")

    def mean_norm(s: NormalizedSeries) -> float:
        pairs = [t for n, t in zip(s.ns, s.normalized_seconds) if n in common]
        return sum(pairs) / len(pairs)

    return [s.platform for s in sorted(series, key=mean_norm)]
