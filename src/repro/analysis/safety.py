"""Safety metrics: does collision resolution actually keep aircraft apart?

The paper evaluates Task 3 by its *cost*; an ATM operator evaluates it
by its *outcome*.  This module measures the outcome: the standard
separation minima — 3 nm horizontally unless 1000 ft vertically — applied
to actual fleet states over time.  A pair violating both is a **loss of
separation** (LoS), the event the whole system exists to prevent.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

import numpy as np

from ..core import constants as C
from ..core.types import FleetState

__all__ = ["SeparationSnapshot", "SafetyLog", "separation_snapshot"]

#: Horizontal separation minimum, nm (the collision band of Eqs. 1-4).
HORIZONTAL_MINIMUM_NM: float = C.COLLISION_BAND_TOTAL_NM

#: Vertical separation minimum, feet.
VERTICAL_MINIMUM_FT: float = C.ALTITUDE_SEPARATION_FT


@dataclass(frozen=True)
class SeparationSnapshot:
    """Pairwise separation state of one instant."""

    #: number of aircraft.
    n_aircraft: int
    #: unordered pairs inside both minima right now (losses of separation).
    losses: int
    #: smallest horizontal distance among vertically-unseparated pairs,
    #: nm; infinity when no such pair exists.
    min_horizontal_nm: float
    #: unordered pairs within 2x the horizontal minimum (proximity load).
    near_pairs: int


def separation_snapshot(fleet: FleetState, *, chunk: int = 512) -> SeparationSnapshot:
    """Measure the fleet's current separation state (no mutation)."""
    n = fleet.n
    losses = 0
    near = 0
    min_h = np.inf
    for lo in range(0, n, chunk):
        hi = min(lo + chunk, n)
        dx = fleet.x[None, :] - fleet.x[lo:hi, None]
        dy = fleet.y[None, :] - fleet.y[lo:hi, None]
        dist = np.hypot(dx, dy)
        dalt = np.abs(fleet.alt[None, :] - fleet.alt[lo:hi, None])
        vertical_unseparated = dalt < VERTICAL_MINIMUM_FT
        # Upper triangle only: j > i.
        cols = np.arange(n)[None, :]
        rows = np.arange(lo, hi)[:, None]
        upper = cols > rows
        candidates = vertical_unseparated & upper
        if np.any(candidates):
            d = dist[candidates]
            min_h = min(min_h, float(d.min()))
            losses += int(np.count_nonzero(d < HORIZONTAL_MINIMUM_NM))
            near += int(np.count_nonzero(d < 2 * HORIZONTAL_MINIMUM_NM))
    return SeparationSnapshot(
        n_aircraft=n,
        losses=losses,
        min_horizontal_nm=min_h,
        near_pairs=near,
    )


@dataclass
class SafetyLog:
    """Separation snapshots over a run, with summary statistics."""

    snapshots: List[SeparationSnapshot] = field(default_factory=list)

    def record(self, fleet: FleetState) -> SeparationSnapshot:
        snap = separation_snapshot(fleet)
        self.snapshots.append(snap)
        return snap

    @property
    def total_loss_events(self) -> int:
        """Sum of per-snapshot LoS pair counts (pair-periods in LoS)."""
        return sum(s.losses for s in self.snapshots)

    @property
    def worst_min_horizontal_nm(self) -> float:
        return min((s.min_horizontal_nm for s in self.snapshots), default=np.inf)

    @property
    def peak_losses(self) -> int:
        return max((s.losses for s in self.snapshots), default=0)

    def summary(self) -> dict:
        return {
            "snapshots": len(self.snapshots),
            "total_loss_events": self.total_loss_events,
            "peak_losses": self.peak_losses,
            "worst_min_horizontal_nm": self.worst_min_horizontal_nm,
        }
