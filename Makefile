# Developer entry points.  Everything runs from a plain checkout with
# `pip install -e .[dev]` (or PYTHONPATH=src, which these targets set).

PYTHON ?= python
PYTEST  = PYTHONPATH=src $(PYTHON) -m pytest

.PHONY: test test-parallel test-faults test-service test-service-chaos test-search docs-check bench bench-smoke bench-large bench-large-smoke profile report dashboard serve all

## the tier-1 suite (unit + integration + property tests)
test:
	$(PYTEST) -x -q

## the sweep-engine determinism/cache/differential suite under a
## real worker pool (ATM_REPRO_TEST_JOBS raises the pool width)
test-parallel:
	ATM_REPRO_TEST_JOBS=4 $(PYTEST) -q tests/harness tests/integration

## the chaos suite: worker kills, timeouts, store corruption, resume
## (docs/robustness.md); asserts byte-identity against fault-free runs
test-faults:
	ATM_REPRO_TEST_JOBS=4 $(PYTEST) -q tests/harness/test_faults.py

## the service suite: wire protocol, admission control, byte-identity
## over real HTTP, and the 1000-in-flight load-test (docs/service.md)
test-service:
	$(PYTEST) -q tests/service

## the live-server chaos suite: SIGKILL + --resume byte-identity,
## SIGTERM drain under load, --inject-faults vs the retrying load
## generator (docs/service.md, "Crash safety & drain")
test-service-chaos:
	$(PYTEST) -q tests/service/test_chaos.py tests/service/test_drain.py tests/service/test_journal.py

## the design-space search wall: differential fixed points, searcher
## determinism properties, budget metrics, CLI byte-identity
## (docs/search.md)
test-search:
	$(PYTEST) -q tests/search

## execute the documentation's code blocks (pytest marker: docs)
docs-check:
	$(PYTEST) -m docs tests/docs -q

## regenerate every figure/table benchmark and assert shape claims
bench:
	$(PYTEST) benchmarks/ --benchmark-only

## CI gate for the trace engine: writes BENCH_trace_engine.json and
## fails when the replay speedup regresses >25% vs the committed baseline
bench-smoke:
	PYTHONPATH=src $(PYTHON) -m repro.harness.cli bench \
		--out BENCH_trace_engine.json \
		--baseline benchmarks/baselines/bench_smoke.json

## the committed continental-scale record: brute-vs-pruned calibration
## plus the five-platform deadline table at n=10^6 (docs/performance.md,
## "Large-n regime"); takes a few minutes
bench-large:
	PYTHONPATH=src $(PYTHON) benchmarks/bench_large_n.py \
		--out BENCH_large_n.json

## CI gate for the large-n path: the n=10^5 profile twice, asserting the
## deterministic wall-free tables are byte-identical
bench-large-smoke:
	PYTHONPATH=src $(PYTHON) benchmarks/bench_large_n.py --n 100000 \
		--out /tmp/bench_large_a.json --table-out /tmp/bench_large_table_a.json
	PYTHONPATH=src $(PYTHON) benchmarks/bench_large_n.py --n 100000 \
		--out /tmp/bench_large_b.json --table-out /tmp/bench_large_table_b.json
	cmp /tmp/bench_large_table_a.json /tmp/bench_large_table_b.json

## example profile: span tree for fig4 on the Titan X
profile:
	PYTHONPATH=src $(PYTHON) -m repro.harness.cli profile fig4 \
		--backend cuda:titan-x-pascal

## the full quick-profile reproduction report
report:
	PYTHONPATH=src $(PYTHON) -m repro.harness.cli report --out report.json

## the self-contained HTML dashboard (curves, deadline margins,
## flamegraph, counters) — one offline file, no external references
dashboard:
	PYTHONPATH=src $(PYTHON) -m repro.harness.cli dashboard --out dashboard.html

## the ATM-as-a-service sweep server on the default port, sharing the
## batch harness's result cache (docs/service.md)
serve:
	PYTHONPATH=src $(PYTHON) -m repro.harness.cli serve --port 8018 \
		--jobs 4 --cache-dir .atm-repro-cache

all: test docs-check
