"""Budget-constraint accounting, asserted from the metrics snapshot alone.

The ISSUE 7 contract: ``atm_search_rejected`` is a counters-with-zeros
family — a dashboard reading only ``MetricsRegistry.snapshot()`` must be
able to distinguish "no area rejections happened" from "area rejections
were never measured".  Every assertion here therefore goes through the
snapshot dict, never through evaluator internals.
"""

from __future__ import annotations

from repro.obs.metrics import recording
from repro.search.evaluate import CandidateEvaluator
from repro.search.runner import SearchSpec, run_search
from repro.search.space import Budget, space_for


def _series(snapshot, family):
    """{frozen label items -> value} for one family in a snapshot."""
    fam = snapshot["families"][family]
    return {
        tuple(sorted(s["labels"].items())): s["value"] for s in fam["series"]
    }


def _value(snapshot, family, **labels):
    return _series(snapshot, family)[tuple(sorted(labels.items()))]


class TestZeroInitialization:
    def test_fresh_evaluator_emits_zeroed_counters(self):
        with recording() as registry:
            CandidateEvaluator(space_for("simd"), searcher="random")
            snap = registry.snapshot()
        assert (
            _value(snap, "atm_search_rejected", searcher="random", constraint="area")
            == 0.0
        )
        assert (
            _value(snap, "atm_search_rejected", searcher="random", constraint="power")
            == 0.0
        )
        for outcome in ("evaluated", "rejected", "memoized"):
            assert (
                _value(
                    snap,
                    "atm_search_evaluations",
                    searcher="random",
                    outcome=outcome,
                )
                == 0.0
            )


class TestRejectionAccounting:
    def test_area_budget_rejections_visible_in_snapshot(self):
        # 9 mm^2 is below even the smallest SIMD candidate, so every
        # distinct candidate is rejected on area and none on power.
        spec = SearchSpec(
            space=space_for("simd", budget=Budget(area_mm2=9.0)),
            searcher="random",
            seed=2018,
            max_evaluations=5,
            ns=(96,),
            periods=2,
            compare_paper=False,
        )
        with recording() as registry:
            result = run_search(spec)
            snap = registry.snapshot()

        area = _value(
            snap, "atm_search_rejected", searcher="random", constraint="area"
        )
        power = _value(
            snap, "atm_search_rejected", searcher="random", constraint="power"
        )
        evaluated = _value(
            snap, "atm_search_evaluations", searcher="random", outcome="evaluated"
        )
        rejected = _value(
            snap, "atm_search_evaluations", searcher="random", outcome="rejected"
        )
        assert area > 0.0
        assert power == 0.0  # present-but-zero, not absent
        assert evaluated == 0.0
        assert rejected == area
        assert result["evaluated"] == 0
        assert result["rejected"] == int(rejected)
        assert result["best"] is None

    def test_both_constraints_counted_independently(self):
        space = space_for("cuda", budget=Budget(area_mm2=20.0, power_w=5.0))
        big = space.point(sm_count=28, cores_per_sm=192)
        with recording() as registry:
            ev = CandidateEvaluator(space, ns=(96,), periods=2, searcher="genetic")
            out = ev.evaluate(big)
            snap = registry.snapshot()
        assert out.rejected == ("area", "power")
        assert (
            _value(snap, "atm_search_rejected", searcher="genetic", constraint="area")
            == 1.0
        )
        assert (
            _value(snap, "atm_search_rejected", searcher="genetic", constraint="power")
            == 1.0
        )

    def test_unconstrained_search_rejects_nothing(self):
        spec = SearchSpec(
            space=space_for("ap"),
            searcher="random",
            seed=7,
            max_evaluations=4,
            ns=(96,),
            periods=2,
            compare_paper=False,
        )
        with recording() as registry:
            run_search(spec)
            snap = registry.snapshot()
        series = _series(snap, "atm_search_rejected")
        assert series  # zero-initialized, so the family exists...
        assert all(v == 0.0 for v in series.values())  # ...and is all zeros


class TestSearchMetricFamilies:
    def test_rounds_and_best_fitness_recorded(self):
        spec = SearchSpec(
            space=space_for("simd"),
            searcher="genetic",
            seed=2018,
            max_evaluations=4,
            ns=(96,),
            periods=2,
            compare_paper=False,
        )
        with recording() as registry:
            run_search(spec)
            snap = registry.snapshot()
        rounds = _series(snap, "atm_search_rounds")
        assert rounds[(("searcher", "genetic"),)] >= 1.0
        fitness = _series(snap, "atm_search_best_fitness")
        key = (("objective", "modelled_time"), ("searcher", "genetic"))
        assert fitness[key] > 0.0
