"""Unit tests for the design-space layer (spaces, points, budgets)."""

from __future__ import annotations

import random

import pytest

from repro.backends.registry import resolve_backend
from repro.core.canonical import canonical_json
from repro.harness.cache import ResultCache
from repro.search.space import (
    FAMILIES,
    Budget,
    DesignPoint,
    DesignSpace,
    Parameter,
    backend_from_spec,
    paper_points,
    space_for,
)


class TestParameter:
    def test_range_builds_inclusive_grid(self):
        p = Parameter.range("n_pes", 96, 480, 96)
        assert p.values == (96, 192, 288, 384, 480)

    def test_range_keeps_float_grids(self):
        p = Parameter.range("clock", 0.5, 1.5, 0.5)
        assert p.values == (0.5, 1.0, 1.5)

    def test_empty_grid_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            Parameter("x", ())

    def test_duplicate_values_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            Parameter("x", (1, 1))

    def test_bad_step_rejected(self):
        with pytest.raises(ValueError, match="step"):
            Parameter.range("x", 0, 10, 0)

    def test_dict_round_trip(self):
        p = Parameter("sm_count", (2, 4, 8))
        assert Parameter.from_dict(p.to_dict()) == p

    def test_from_dict_accepts_range_form(self):
        p = Parameter.from_dict({"name": "x", "lo": 1, "hi": 3, "step": 1})
        assert p.values == (1, 2, 3)


class TestBudget:
    def test_violations(self):
        b = Budget(area_mm2=100.0, power_w=50.0)
        assert b.violations(99.0, 49.0) == []
        assert b.violations(101.0, 49.0) == ["area"]
        assert b.violations(101.0, 51.0) == ["area", "power"]

    def test_unconstrained_never_violates(self):
        assert Budget().violations(1e9, 1e9) == []

    def test_tech_node_scaling(self):
        b = Budget(tech_nm=32.0)
        assert b.area_scale == pytest.approx(4.0)
        assert b.power_scale == pytest.approx(2.0)

    def test_bad_values_rejected(self):
        with pytest.raises(ValueError, match="tech_nm"):
            Budget(tech_nm=0)
        with pytest.raises(ValueError, match="area_mm2"):
            Budget(area_mm2=-1)

    def test_dict_round_trip(self):
        b = Budget(area_mm2=120.0, power_w=80.0, tech_nm=28.0)
        assert Budget.from_dict(b.to_dict()) == b


class TestDesignPoint:
    def test_unknown_family_rejected(self):
        with pytest.raises(KeyError, match="family"):
            DesignPoint(family="tpu", base="v1")

    def test_unknown_base_rejected(self):
        with pytest.raises(KeyError, match="base"):
            DesignPoint(family="cuda", base="rtx-5090")

    def test_unknown_parameter_rejected(self):
        with pytest.raises(KeyError, match="searchable"):
            DesignPoint(
                family="cuda", base="titan-x-pascal", params=(("l2_bytes", 1),)
            )

    def test_duplicate_parameter_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            DesignPoint(
                family="cuda",
                base="titan-x-pascal",
                params=(("sm_count", 2), ("sm_count", 4)),
            )

    def test_base_valued_param_shares_key_with_unspecified(self):
        bare = DesignPoint(family="cuda", base="titan-x-pascal")
        pinned = DesignPoint(
            family="cuda", base="titan-x-pascal", params=(("sm_count", 28),)
        )
        assert bare.key == pinned.key
        assert pinned.overrides() == {}

    def test_paper_point_builds_the_named_config_itself(self):
        for pt in paper_points():
            cfg = pt.build_config()
            assert cfg.key == pt.base  # the registered table, not a copy
            backend = pt.build()
            seed_backend = resolve_backend(f"{pt.family}:{pt.base}")
            assert backend.name == seed_backend.name

    def test_override_changes_key_name_and_config(self):
        pt = DesignPoint(
            family="simd", base="clearspeed-csx600", params=(("n_pes", 192),)
        )
        cfg = pt.build_config()
        assert cfg.key == pt.key != "clearspeed-csx600"
        assert cfg.n_pes == 192
        assert cfg.network.n_pes == 192  # the coupled ring resized too

    def test_spec_round_trips_through_resolver(self):
        pt = DesignPoint(
            family="mimd", base="xeon-16", params=(("n_cores", 32), ("ipc", 2.0))
        )
        via_registry = resolve_backend(pt.spec())
        direct = pt.build()
        assert canonical_json(via_registry.describe()) == canonical_json(
            direct.describe()
        )

    def test_backend_from_spec_rejects_garbage(self):
        with pytest.raises(ValueError, match="not a search spec"):
            backend_from_spec("cuda:titan-x-pascal")
        with pytest.raises(ValueError, match="malformed"):
            backend_from_spec("search:{not json")

    def test_area_power_positive_and_monotone(self):
        small = DesignPoint(
            family="cuda", base="titan-x-pascal", params=(("sm_count", 2),)
        )
        large = DesignPoint(
            family="cuda", base="titan-x-pascal", params=(("sm_count", 28),)
        )
        assert 0 < small.area_mm2() < large.area_mm2()
        assert 0 < small.power_w() < large.power_w()

    def test_tech_node_scales_estimates(self):
        pt = DesignPoint(family="ap", base="staran")
        old_node = Budget(tech_nm=32.0)
        assert pt.area_mm2(old_node) == pytest.approx(4.0 * pt.area_mm2())
        assert pt.power_w(old_node) == pytest.approx(2.0 * pt.power_w())


class TestDesignSpace:
    def test_every_family_has_a_default_space(self):
        for family in FAMILIES:
            space = space_for(family)
            assert space.size > 1
            space.base_point().build()
            for p in space.parameters:
                assert len(p.values) >= 2

    def test_point_validates_grid_membership(self):
        space = space_for("cuda")
        with pytest.raises(ValueError, match="off the grid"):
            space.point(sm_count=3)
        with pytest.raises(KeyError, match="does not search"):
            space.point(pcie_bandwidth_gbs=1.0)

    def test_random_point_is_seed_deterministic(self):
        space = space_for("vector")
        a = [space.random_point(random.Random(7)) for _ in range(5)]
        b = [space.random_point(random.Random(7)) for _ in range(5)]
        assert a != [space.random_point(random.Random(8)) for _ in range(5)]
        assert a == b

    def test_mutate_always_moves_and_stays_on_grid(self):
        space = space_for("simd")
        rng = random.Random(11)
        pt = space.base_point()
        for _ in range(20):
            nxt = space.mutate(pt, rng)
            assert nxt != pt
            for name, value in nxt.params:
                grid = next(p for p in space.parameters if p.name == name)
                assert value in grid.values
            pt = nxt

    def test_mutate_forces_a_movable_parameter_past_singletons(self):
        # the forced parameter is drawn among grids with >1 value, so a
        # singleton grid can never absorb the guaranteed move.
        space = DesignSpace(
            family="mimd",
            base=space_for("mimd").base,
            parameters=(
                Parameter("n_cores", (16,)),
                Parameter("ipc", (0.5, 1.0, 2.0)),
            ),
        )
        rng = random.Random(5)
        pt = space.point(n_cores=16, ipc=1.0)
        for _ in range(20):
            assert space.mutate(pt, rng) != pt

    def test_mutate_all_singleton_grids_is_identity(self):
        # degenerate case documented on mutate(): a space whose grids
        # are all singletons has a single point — nothing can move.
        space = DesignSpace(
            family="mimd",
            base=space_for("mimd").base,
            parameters=(
                Parameter("n_cores", (16,)),
                Parameter("ipc", (1.0,)),
            ),
        )
        pt = space.point(n_cores=16, ipc=1.0)
        assert space.mutate(pt, random.Random(5)) == pt

    def test_crossover_takes_fields_from_parents(self):
        space = space_for("mimd")
        rng = random.Random(3)
        a = space.point(n_cores=4, clock_hz=1.2e9, ipc=0.5)
        b = space.point(n_cores=64, clock_hz=3.2e9, ipc=2.0)
        child = space.crossover(a, b, rng)
        choices = {dict(a.params)[k] for k, _ in child.params} | {
            dict(b.params)[k] for k, _ in child.params
        }
        for name, value in child.params:
            assert value in (dict(a.params)[name], dict(b.params)[name])
        assert choices  # sanity: parents actually differed

    def test_duplicate_parameters_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            DesignSpace(
                family="ap",
                base="staran",
                parameters=(
                    Parameter("clock_hz", (1e6,)),
                    Parameter("clock_hz", (2e6,)),
                ),
            )

    def test_dict_round_trip(self):
        space = space_for("cuda", budget=Budget(area_mm2=100.0))
        again = DesignSpace.from_dict(space.to_dict())
        assert again == space

    def test_check_budget_names_violated_constraints(self):
        space = space_for("cuda", budget=Budget(area_mm2=30.0, power_w=10.0))
        big = space.point(sm_count=28, cores_per_sm=192)
        assert space.check_budget(big) == ["area", "power"]


class TestFingerprintSensitivity:
    """Mutating any searchable parameter must change the cache key."""

    @pytest.mark.parametrize("family", FAMILIES)
    def test_every_searchable_parameter_moves_the_fingerprint(self, family):
        space = space_for(family)
        base_backend = space.base_point().build()
        base_key = ResultCache.key_for(
            base_backend, n=96, seed=2018, periods=3, mode="signed"
        )
        for p in space.parameters:
            base_value = getattr(
                space.base_point().build_config(), p.name
            )
            alternates = [v for v in p.values if v != base_value]
            assert alternates, f"{family}.{p.name} grid has no alternate value"
            mutated = space.point(**{p.name: alternates[0]})
            mutated_key = ResultCache.key_for(
                mutated.build(), n=96, seed=2018, periods=3, mode="signed"
            )
            assert mutated_key != base_key, (
                f"cache key insensitive to {family}.{p.name}"
            )
