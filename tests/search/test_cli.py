"""End-to-end tests for ``atm-repro search`` and ``dashboard --search``."""

from __future__ import annotations

import json

import pytest

from repro.harness.cli import build_parser, main


def _search_args(tmp_path, out_name, *extra):
    return [
        "search",
        "--family",
        "simd",
        "--searcher",
        "genetic",
        "--max-evaluations",
        "4",
        "--ns",
        "96",
        "--periods",
        "2",
        "--no-compare-paper",
        "--out",
        str(tmp_path / out_name),
        *extra,
    ]


class TestParser:
    def test_search_subcommand_exists(self):
        args = build_parser().parse_args(["search"])
        assert args.command == "search"
        assert args.family == "cuda"
        assert args.searcher == "genetic"
        assert args.max_evaluations == 24

    def test_search_rejects_unknown_searcher(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["search", "--searcher", "gradient"])

    def test_help_epilog_documents_search(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["--help"])
        assert exc.value.code == 0
        out = capsys.readouterr().out
        assert "search" in out and "docs/search.md" in out


class TestSearchCommand:
    def test_double_run_is_byte_identical(self, tmp_path, capsys):
        assert main(_search_args(tmp_path, "a.json")) == 0
        assert main(_search_args(tmp_path, "b.json")) == 0
        capsys.readouterr()
        a = (tmp_path / "a.json").read_bytes()
        b = (tmp_path / "b.json").read_bytes()
        assert a == b
        doc = json.loads(a)
        assert doc["kind"] == "atm-search-result"
        assert doc["best"] is not None

    def test_json_flag_prints_result_doc(self, tmp_path, capsys):
        assert main(_search_args(tmp_path, "out.json", "--json")) == 0
        stdout = capsys.readouterr().out
        payload = stdout[stdout.index("{") :]
        doc = json.loads(payload.splitlines()[0])
        assert doc == json.loads((tmp_path / "out.json").read_text())

    def test_table_output_names_best_point(self, tmp_path, capsys):
        assert main(_search_args(tmp_path, "out.json")) == 0
        out = capsys.readouterr().out
        assert "genetic" in out
        assert "best" in out

    def test_spec_file_round_trip(self, tmp_path, capsys):
        # flags-run and spec-file-run of the same SearchSpec agree
        assert main(_search_args(tmp_path, "flags.json")) == 0
        flags_doc = json.loads((tmp_path / "flags.json").read_text())
        spec_path = tmp_path / "spec.json"
        spec_path.write_text(json.dumps(flags_doc["spec"]))
        assert (
            main(
                [
                    "search",
                    "--spec",
                    str(spec_path),
                    "--out",
                    str(tmp_path / "fromspec.json"),
                ]
            )
            == 0
        )
        capsys.readouterr()
        assert (tmp_path / "fromspec.json").read_bytes() == (
            tmp_path / "flags.json"
        ).read_bytes()

    def test_metrics_out_writes_search_families(self, tmp_path, capsys):
        metrics = tmp_path / "metrics.txt"
        assert (
            main(_search_args(tmp_path, "out.json", "--metrics-out", str(metrics)))
            == 0
        )
        capsys.readouterr()
        text = metrics.read_text()
        assert "atm_search_evaluations" in text
        assert "atm_search_rejected" in text

    def test_resume_requires_cache_dir(self, tmp_path, capsys):
        assert main(_search_args(tmp_path, "out.json", "--resume")) == 2
        assert "--cache-dir" in capsys.readouterr().err

    def test_resume_via_cache_dir_is_byte_identical(self, tmp_path, capsys):
        cache_dir = str(tmp_path / "cache")
        first = _search_args(tmp_path, "a.json", "--cache-dir", cache_dir)
        assert main(first) == 0
        second = _search_args(
            tmp_path, "b.json", "--cache-dir", cache_dir, "--resume"
        )
        assert main(second) == 0
        capsys.readouterr()
        assert (tmp_path / "a.json").read_bytes() == (
            tmp_path / "b.json"
        ).read_bytes()
        assert (tmp_path / "cache" / "journal.jsonl").exists()


class TestDashboardSearchPanel:
    def test_dashboard_embeds_search_trajectory(self, tmp_path, capsys):
        assert main(_search_args(tmp_path, "search.json")) == 0
        html_path = tmp_path / "dash.html"
        assert (
            main(
                [
                    "dashboard",
                    "--out",
                    str(html_path),
                    "--only",
                    "fig4",
                    "--search",
                    str(tmp_path / "search.json"),
                ]
            )
            == 0
        )
        capsys.readouterr()
        html = html_path.read_text()
        assert "Design-space search trajectory" in html
        assert "http" not in html  # self-contained, no external fetches
