"""Searcher determinism, memoization, fidelity and the GA acceptance run.

The hypothesis properties pin the reproducibility contract: a search
result is a pure function of its :class:`~repro.search.runner.SearchSpec`
— the same seed and spec produce byte-identical trajectories whether
candidate sweeps run inline, sharded over a process pool, or resumed
from the checkpoint journal.
"""

from __future__ import annotations

import dataclasses
import json
import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.canonical import canonical_json
from repro.harness.faults import SweepJournal
from repro.search.evaluate import REJECTED_FITNESS, CandidateEvaluator
from repro.search.runner import SearchSpec, run_search
from repro.search.searchers import SEARCHERS
from repro.search.space import Budget, space_for


def _spec(searcher: str, seed: int = 2018, **kw) -> SearchSpec:
    kw.setdefault("max_evaluations", 6)
    kw.setdefault("ns", (96,))
    kw.setdefault("periods", 2)
    kw.setdefault("compare_paper", False)
    return SearchSpec(
        space=kw.pop("space", space_for("simd")),
        searcher=searcher,
        seed=seed,
        **kw,
    )


class TestDeterminism:
    @settings(max_examples=8, deadline=None)
    @given(
        searcher=st.sampled_from(sorted(SEARCHERS)),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    def test_same_seed_same_bytes(self, searcher, seed):
        spec = _spec(searcher, seed=seed)
        assert canonical_json(run_search(spec)) == canonical_json(run_search(spec))

    @settings(max_examples=4, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**31 - 1))
    def test_jobs_do_not_change_the_trajectory(self, seed):
        spec = _spec("genetic", seed=seed, ns=(96, 480))
        inline = run_search(spec, jobs=1)
        pooled = run_search(spec, jobs=2)
        assert canonical_json(inline) == canonical_json(pooled)

    def test_different_seeds_explore_differently(self):
        results = {
            canonical_json(run_search(_spec("random", seed=s))) for s in range(4)
        }
        assert len(results) > 1

    def test_resume_from_journal_is_byte_identical(self, tmp_path):
        spec = _spec("genetic", ns=(96, 480), max_evaluations=8)
        path = tmp_path / "journal.jsonl"
        first_journal = SweepJournal(path)
        baseline = run_search(spec, journal=first_journal)
        assert first_journal.recorded > 0  # cells actually checkpointed

        resumed_journal = SweepJournal(path, resume=True)
        resumed = run_search(spec, journal=resumed_journal)
        assert resumed_journal.stats()["resumed_cells"] > 0
        assert canonical_json(resumed) == canonical_json(baseline)


class TestEvaluator:
    def test_memoizes_repeat_requests(self):
        space = space_for("simd")
        ev = CandidateEvaluator(space, ns=(96,), periods=2)
        first = ev.evaluate(space.base_point())
        again = ev.evaluate(space.base_point())
        assert again is first
        assert len(ev.trajectory) == 1

    def test_rejected_candidates_never_sweep(self):
        space = space_for("simd", budget=Budget(area_mm2=1.0))
        ev = CandidateEvaluator(space, ns=(96,), periods=2)
        out = ev.evaluate(space.base_point())
        assert out.rejected == ("area",)
        assert out.fitness == REJECTED_FITNESS
        assert out.modelled_time_s is None and out.worst_margin_s is None

    def test_unknown_objective_rejected(self):
        with pytest.raises(KeyError, match="objective"):
            CandidateEvaluator(space_for("simd"), objective="accuracy")

    def test_pareto_front_is_mutually_non_dominated(self):
        spec = _spec("random", ns=(96,), max_evaluations=8, objective="time_area")
        result = run_search(spec)
        front = result["pareto"]
        assert front
        for a in front:
            for b in front:
                if a is b:
                    continue
                dominates = (
                    a["modelled_time_s"] <= b["modelled_time_s"]
                    and a["area_mm2"] <= b["area_mm2"]
                    and (
                        a["modelled_time_s"] < b["modelled_time_s"]
                        or a["area_mm2"] < b["area_mm2"]
                    )
                )
                assert not dominates


class TestSearcherShapes:
    def test_halving_best_is_full_fidelity(self):
        spec = _spec("halving", ns=(96, 480, 960), max_evaluations=12)
        result = run_search(spec)
        assert result["best"] is not None
        assert tuple(result["best"]["ns"]) == (96, 480, 960)
        assert result["rounds"] >= 2  # actually climbed the rung ladder
        # rung evaluations at partial fidelity exist in the trajectory
        assert any(len(ev["ns"]) < 3 for ev in result["trajectory"])

    def test_curve_is_monotone_nonincreasing(self):
        for searcher in sorted(SEARCHERS):
            result = run_search(_spec(searcher, max_evaluations=8))
            curve = [
                f for f in result["best_fitness_curve"] if f != REJECTED_FITNESS
            ]
            assert curve == sorted(curve, reverse=True)

    def test_curve_is_finite_and_result_is_strict_json(self):
        # entries before the first full-fidelity evaluation carry the
        # finite REJECTED_FITNESS sentinel, never math.inf: Infinity is
        # not a JSON token and breaks strict parsers of --out/--json.
        for searcher in sorted(SEARCHERS):
            result = run_search(_spec(searcher, max_evaluations=8))
            assert all(math.isfinite(f) for f in result["best_fitness_curve"])
            text = canonical_json(result)
            json.loads(
                text,
                parse_constant=lambda token: pytest.fail(
                    f"non-strict JSON token {token!r} in search result"
                ),
            )

    def test_ga_seed_population_includes_base_point(self):
        spec = _spec("genetic")
        result = run_search(spec)
        first = result["trajectory"][0]
        assert first["point"]["params"] == {}

    def test_random_terminates_on_exhausted_grid(self):
        # a 2-point space cannot absorb a 10-evaluation budget; the
        # idle guard must end the loop instead of spinning.
        space = dataclasses.replace(
            space_for("simd"),
            parameters=(space_for("simd").parameters[0].__class__("n_pes", (96, 192)),),
        )
        result = run_search(_spec("random", space=space, max_evaluations=10))
        assert result["evaluated"] <= 2

    def test_genetic_terminates_on_exhausted_grid(self):
        # memo hits are free, so once a 2-point grid is exhausted
        # `spent` stops moving; the idle-generation guard must end the
        # loop instead of breeding memo-hit children forever.
        space = dataclasses.replace(
            space_for("simd"),
            parameters=(space_for("simd").parameters[0].__class__("n_pes", (96, 192)),),
        )
        result = run_search(_spec("genetic", space=space, max_evaluations=10))
        assert result["evaluated"] <= 2


class TestAcceptance:
    def test_ga_dominates_a_paper_device_on_time_and_area(self):
        """ISSUE 7 acceptance: a budgeted GA smoke search finds a config
        dominating at least one paper device on (modelled-time, area)."""
        space = space_for("cuda", budget=Budget(area_mm2=50.0, power_w=100.0))
        spec = SearchSpec(
            space=space,
            searcher="genetic",
            seed=2018,
            max_evaluations=12,
            ns=(96, 480),
        )
        result = run_search(spec)
        assert any(result["dominates_paper"].values()), result["dominates_paper"]
        # and the run is byte-reproducible from its seed
        assert canonical_json(run_search(spec)) == canonical_json(result)
