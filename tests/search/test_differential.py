"""Differential wall: the paper configs are byte-exact fixed points.

The searchers mutate device parameters that every cost model and cache
fingerprint depends on, so parameterization must not move a single bit
of the seed evaluation path.  These tests express the seven paper
configurations as :class:`~repro.search.space.DesignPoint` specs and
pin, against the registry-name path the report uses:

* identical ``describe()`` payloads and backend names,
* identical cost-model fingerprints and cache keys,
* byte-identical sweep output (``SweepData.to_canonical_json``),
  inline and through the process pool.
"""

from __future__ import annotations

import pytest

from repro.backends.registry import resolve_backend
from repro.core.canonical import canonical_json
from repro.harness.cache import ResultCache
from repro.harness.sweep import measure_platform, sweep
from repro.search.space import PAPER_POINTS, paper_points

SEED_NAMES = [f"{family}:{base}" for family, base in PAPER_POINTS]
NS = (96, 480)


@pytest.mark.parametrize("point", paper_points(), ids=SEED_NAMES)
class TestPerConfigIdentity:
    def test_describe_and_name_identical(self, point):
        seed = resolve_backend(f"{point.family}:{point.base}")
        searched = resolve_backend(point.spec())
        assert searched.name == seed.name
        assert canonical_json(searched.describe()) == canonical_json(
            seed.describe()
        )

    def test_fingerprint_and_cache_key_identical(self, point):
        seed = resolve_backend(f"{point.family}:{point.base}")
        searched = resolve_backend(point.spec())
        assert searched.fingerprint() == seed.fingerprint()
        for n in NS:
            assert ResultCache.key_for(
                searched, n=n, seed=2018, periods=3, mode="signed"
            ) == ResultCache.key_for(
                seed, n=n, seed=2018, periods=3, mode="signed"
            )

    def test_single_cell_measurement_identical(self, point):
        via_name = measure_platform(f"{point.family}:{point.base}", 96, periods=2)
        via_spec = measure_platform(point.spec(), 96, periods=2)
        assert canonical_json(via_spec.to_dict()) == canonical_json(
            via_name.to_dict()
        )


class TestSweepBytes:
    def test_sweep_bytes_identical_to_seed_path(self):
        specs = [pt.spec() for pt in paper_points()]
        seed_data = sweep(SEED_NAMES, NS, periods=2)
        spec_data = sweep(specs, NS, periods=2)
        assert spec_data.to_canonical_json() == seed_data.to_canonical_json()

    def test_pooled_sweep_bytes_identical_to_seed_path(self):
        # Design-point specs are plain strings, so the pool shards them
        # exactly like registry names; merged bytes must not move.
        specs = [pt.spec() for pt in paper_points()]
        seed_data = sweep(SEED_NAMES, NS, periods=2, jobs=1)
        spec_data = sweep(specs, NS, periods=2, jobs=2)
        assert spec_data.to_canonical_json() == seed_data.to_canonical_json()

    def test_cache_round_trip_crosses_paths(self, tmp_path):
        # A cell cached under the seed name must be served to the
        # design-point spec (and vice versa): the keys are the same.
        cache = ResultCache(tmp_path / "cache")
        point = paper_points()[0]
        first = measure_platform(SEED_NAMES[0], 96, periods=2, cache=cache)
        assert cache.stats()["stores"] == 1
        second = measure_platform(point.spec(), 96, periods=2, cache=cache)
        assert cache.stats()["hits"] == 1
        assert canonical_json(first.to_dict()) == canonical_json(second.to_dict())
