"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import constants as C
from repro.core.radar import generate_radar_frame
from repro.core.setup import setup_flight
from repro.core.types import FleetState

SEED = 2018


@pytest.fixture
def seed() -> int:
    return SEED


@pytest.fixture
def small_fleet() -> FleetState:
    """A 64-aircraft fleet, freshly initialised."""
    return setup_flight(64, SEED)


@pytest.fixture
def medium_fleet() -> FleetState:
    """A 192-aircraft fleet (spans two 96-thread blocks / PE stripes)."""
    return setup_flight(192, SEED)


@pytest.fixture
def radar_for():
    """Factory: a radar frame for a fleet at a given period."""

    def _make(fleet: FleetState, period: int = 0, **kwargs):
        return generate_radar_frame(fleet, SEED, period, **kwargs)

    return _make


def make_two_aircraft(
    x0=0.0, y0=0.0, dx0=0.01, dy0=0.0,
    x1=10.0, y1=0.0, dx1=-0.01, dy1=0.0,
    alt0=10_000.0, alt1=10_000.0,
) -> FleetState:
    """Hand-built two-aircraft fleet for crafted collision scenarios."""
    fleet = FleetState.empty(2)
    fleet.x[:] = [x0, x1]
    fleet.y[:] = [y0, y1]
    fleet.dx[:] = [dx0, dx1]
    fleet.dy[:] = [dy0, dy1]
    fleet.alt[:] = [alt0, alt1]
    fleet.batdx[:] = fleet.dx
    fleet.batdy[:] = fleet.dy
    return fleet


def place_grid_fleet(n: int, spacing_nm: float = 8.0) -> FleetState:
    """A fleet parked on a well-separated grid, all flying east slowly.

    Useful for tracking tests: expected positions are far apart, so each
    radar can only ever gate with its own aircraft.
    """
    side = int(np.ceil(np.sqrt(n)))
    if (side - 1) * spacing_nm > C.AIRFIELD_SIZE_NM:
        raise ValueError("grid does not fit the airfield")
    fleet = FleetState.empty(n)
    idx = np.arange(n)
    fleet.x[:] = -C.GRID_HALF_NM + spacing_nm / 2 + (idx % side) * spacing_nm
    fleet.y[:] = -C.GRID_HALF_NM + spacing_nm / 2 + (idx // side) * spacing_nm
    fleet.dx[:] = 0.01
    fleet.dy[:] = 0.0
    # Separate altitudes so the grid fleet is collision-free too.
    fleet.alt[:] = 1000.0 + (idx % 30) * 1200.0
    fleet.batdx[:] = fleet.dx
    fleet.batdy[:] = fleet.dy
    return fleet
