"""Unit tests for the multi-core work-queue discrete-event simulation."""

import numpy as np
import pytest

from repro.mimd.events import WorkChunk, simulate_work_queue


def run(chunks, cores=4, pop=0.0, sigma=0.0, seed=0):
    return simulate_work_queue(
        cores,
        chunks,
        pop_cost_s=pop,
        jitter_sigma=sigma,
        rng=np.random.default_rng(seed),
    )


class TestWorkChunk:
    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            WorkChunk(-1.0)
        with pytest.raises(ValueError):
            WorkChunk(1.0, -1.0)


class TestQueueSimulation:
    def test_empty_run(self):
        result = run([])
        assert result.makespan_s == 0.0
        assert result.n_chunks == 0

    def test_perfect_scaling_without_contention(self):
        chunks = [WorkChunk(1.0) for _ in range(8)]
        result = run(chunks, cores=4)
        assert result.makespan_s == pytest.approx(2.0)
        assert result.parallel_efficiency == pytest.approx(1.0)

    def test_makespan_bounds(self):
        rng = np.random.default_rng(7)
        chunks = [WorkChunk(float(w)) for w in rng.uniform(0.1, 1.0, 50)]
        total = sum(c.compute_s for c in chunks)
        result = run(chunks, cores=8)
        assert result.makespan_s >= total / 8 - 1e-12
        assert result.makespan_s <= total  # never worse than serial
        assert result.makespan_s >= max(c.compute_s for c in chunks)

    def test_single_core_is_serial(self):
        chunks = [WorkChunk(0.5) for _ in range(6)]
        result = run(chunks, cores=1)
        assert result.makespan_s == pytest.approx(3.0)

    def test_sync_serializes(self):
        """Chunks whose cost is all interconnect time cannot scale."""
        chunks = [WorkChunk(0.0, 1.0) for _ in range(8)]
        result = run(chunks, cores=8)
        assert result.makespan_s == pytest.approx(8.0)
        assert result.sync_busy_s == pytest.approx(8.0)

    def test_compute_overlaps_sync_of_others(self):
        # One big compute chunk + many sync chunks: total time is the
        # max of the two resources, not the sum.
        chunks = [WorkChunk(4.0, 0.0)] + [WorkChunk(0.0, 0.5) for _ in range(6)]
        result = run(chunks, cores=4)
        assert result.makespan_s == pytest.approx(4.0)

    def test_queue_pop_serializes_at_scale(self):
        chunks = [WorkChunk(0.0, 0.0) for _ in range(1000)]
        result = run(chunks, cores=16, pop=0.001)
        assert result.makespan_s == pytest.approx(1.0, rel=0.05)

    def test_jitter_changes_makespan(self):
        chunks = [WorkChunk(1.0) for _ in range(16)]
        a = run(chunks, cores=4, sigma=0.3, seed=1)
        b = run(chunks, cores=4, sigma=0.3, seed=2)
        assert a.makespan_s != b.makespan_s

    def test_zero_jitter_is_deterministic(self):
        chunks = [WorkChunk(1.0) for _ in range(16)]
        a = run(chunks, cores=4, seed=1)
        b = run(chunks, cores=4, seed=2)
        assert a.makespan_s == b.makespan_s

    def test_validation(self):
        with pytest.raises(ValueError):
            run([WorkChunk(1.0)], cores=0)
        with pytest.raises(ValueError):
            simulate_work_queue(
                2, [], pop_cost_s=-1.0, jitter_sigma=0.0,
                rng=np.random.default_rng(0),
            )
        with pytest.raises(ValueError):
            simulate_work_queue(
                2, [], pop_cost_s=0.0, jitter_sigma=-0.1,
                rng=np.random.default_rng(0),
            )

    def test_core_finish_times(self):
        chunks = [WorkChunk(1.0) for _ in range(4)]
        result = run(chunks, cores=2)
        assert len(result.core_finish_s) == 2
        assert max(result.core_finish_s) == result.makespan_s
