"""Unit tests for the MIMD chunk builders."""

import numpy as np
import pytest

from repro.core import constants as C
from repro.core.radar import generate_radar_frame
from repro.core.resolution import detect_and_resolve
from repro.core.setup import setup_flight
from repro.core.tracking import correlate
from repro.mimd.tasks import in_band_counts, task1_chunks, task23_chunks
from repro.mimd.xeon import XEON_16


class TestInBandCounts:
    def test_matches_bruteforce(self):
        rng = np.random.default_rng(5)
        alt = rng.uniform(1000, 40000, 200)
        counts = in_band_counts(alt)
        brute = np.array(
            [
                np.count_nonzero(
                    (np.abs(alt - alt[i]) < C.ALTITUDE_SEPARATION_FT)
                )
                - 1
                for i in range(200)
            ]
        )
        assert np.array_equal(counts, brute)

    def test_all_same_altitude(self):
        counts = in_band_counts(np.full(10, 5000.0))
        assert np.all(counts == 9)

    def test_all_far_apart(self):
        counts = in_band_counts(np.arange(10) * 5000.0)
        assert np.all(counts == 0)

    def test_single_aircraft(self):
        assert in_band_counts(np.array([10_000.0])).tolist() == [0]


class TestTask1Chunks:
    def test_one_chunk_per_active_radar(self):
        fleet = setup_flight(100, 2018)
        frame = generate_radar_frame(fleet, 2018, 0)
        stats = correlate(fleet, frame)
        chunks = task1_chunks(XEON_16, fleet.n, stats)
        expected = sum(ids.shape[0] for ids in stats.round_radar_ids)
        assert len(chunks) == expected

    def test_chunks_have_positive_cost(self):
        fleet = setup_flight(64, 2018)
        frame = generate_radar_frame(fleet, 2018, 0)
        stats = correlate(fleet, frame)
        for c in task1_chunks(XEON_16, fleet.n, stats):
            assert c.compute_s > 0
            assert c.sync_s > 0  # at least the read-lock scan traffic


class TestTask23Chunks:
    def test_detection_plus_trial_chunks(self):
        fleet = setup_flight(150, 2018)
        det, res = detect_and_resolve(fleet)
        chunks = task23_chunks(XEON_16, fleet.alt, det, res)
        assert len(chunks) == fleet.n + res.trials_evaluated

    def test_sync_grows_with_band_density(self):
        """A same-altitude fleet generates far more lock traffic."""
        fleet = setup_flight(100, 2018)
        det, res = detect_and_resolve(fleet)
        spread = sum(
            c.sync_s for c in task23_chunks(XEON_16, fleet.alt, det, res)[:100]
        )
        dense_alt = np.full(100, 10_000.0)
        dense = sum(
            c.sync_s for c in task23_chunks(XEON_16, dense_alt, det, res)[:100]
        )
        assert dense > spread
