"""Unit tests for the multi-core MIMD backend."""

import numpy as np
import pytest

from repro.backends.reference import ReferenceBackend
from repro.core import constants as C
from repro.core.radar import generate_radar_frame
from repro.core.setup import setup_flight
from repro.mimd.backend import MimdBackend
from repro.mimd.xeon import XEON_8, XEON_16


class TestConfig:
    def test_by_key(self):
        assert MimdBackend("xeon-16").config is XEON_16
        assert MimdBackend("xeon-8").config is XEON_8
        with pytest.raises(KeyError):
            MimdBackend("xeon-128")

    def test_flagged_nondeterministic(self):
        assert MimdBackend().deterministic_timing is False


class TestEquivalence:
    def test_matches_reference(self):
        """Asynchronous *timing*, identical *results* — the algorithms
        are the same; only the machine differs."""
        ref_fleet = setup_flight(140, 2018)
        mimd_fleet = setup_flight(140, 2018)
        ref, mimd = ReferenceBackend(), MimdBackend()
        for period in range(2):
            ref.track_and_correlate(
                ref_fleet, generate_radar_frame(ref_fleet, 2018, period)
            )
            mimd.track_and_correlate(
                mimd_fleet, generate_radar_frame(mimd_fleet, 2018, period)
            )
        ref.detect_and_resolve(ref_fleet)
        mimd.detect_and_resolve(mimd_fleet)
        assert ref_fleet.state_equal(mimd_fleet)


class TestTimingProperties:
    def test_repeated_calls_vary(self):
        """The paper's §6.2 contrast: MIMD timing is not repeatable."""
        backend = MimdBackend(seed=2018)
        times = []
        for _ in range(3):
            fleet = setup_flight(96, 2018)
            frame = generate_radar_frame(fleet, 2018, 0)
            times.append(backend.track_and_correlate(fleet, frame).seconds)
        assert len(set(times)) > 1

    def test_experiment_reproducible_with_seed(self):
        def experiment():
            backend = MimdBackend(seed=99)
            fleet = setup_flight(96, 2018)
            frame = generate_radar_frame(fleet, 2018, 0)
            t1 = backend.track_and_correlate(fleet, frame).seconds
            t23 = backend.detect_and_resolve(fleet).seconds
            return t1, t23

        assert experiment() == experiment()

    def test_more_cores_help_when_compute_bound(self):
        """With identical per-op costs and no jitter, doubling the cores
        cannot hurt — and helps while compute dominates."""
        import dataclasses

        base = dataclasses.replace(XEON_16, jitter_sigma=0.0, read_lock_s=0.0,
                                   lock_op_s=0.0, queue_pop_s=0.0)
        half = dataclasses.replace(base, name="half", key="half", n_cores=8)
        t16 = (
            MimdBackend(base, seed=1)
            .detect_and_resolve(setup_flight(192, 2018))
            .seconds
        )
        t8 = (
            MimdBackend(half, seed=1)
            .detect_and_resolve(setup_flight(192, 2018))
            .seconds
        )
        assert t16 < t8

    def test_misses_deadline_at_scale(self):
        """The paper's headline MIMD failure: the collision tasks blow
        the half-second budget well inside the tested range."""
        backend = MimdBackend(seed=2018)
        fleet = setup_flight(2880, 2018)
        t23 = backend.detect_and_resolve(fleet)
        assert t23.seconds > C.PERIOD_SECONDS

    def test_meets_deadline_at_small_scale(self):
        backend = MimdBackend(seed=2018)
        fleet = setup_flight(480, 2018)
        frame = generate_radar_frame(fleet, 2018, 0)
        t1 = backend.track_and_correlate(fleet, frame)
        t23 = backend.detect_and_resolve(fleet)
        assert t1.seconds + t23.seconds < C.PERIOD_SECONDS

    def test_superlinear_growth(self):
        backend = MimdBackend(seed=2018)
        t = {}
        for n in (480, 1920):
            fleet = setup_flight(n, 2018)
            t[n] = backend.detect_and_resolve(fleet).seconds
        assert t[1920] / t[480] > 6.0  # much worse than the 4x of linear

    def test_stats_exposed(self):
        backend = MimdBackend(seed=2018)
        fleet = setup_flight(96, 2018)
        t = backend.detect_and_resolve(fleet)
        assert t.stats["chunks"] > 0
        assert 0 < t.stats["parallel_efficiency"] <= 1.0

    def test_breakdown_components_sum(self):
        backend = MimdBackend(seed=2018)
        fleet = setup_flight(96, 2018)
        frame = generate_radar_frame(fleet, 2018, 0)
        t = backend.track_and_correlate(fleet, frame)
        assert t.breakdown.total == pytest.approx(t.seconds)

    def test_describe_and_peak(self):
        b = MimdBackend()
        assert b.describe()["n_cores"] == 16
        assert b.peak_throughput_ops_per_s() == pytest.approx(16 * 2.4e9)
