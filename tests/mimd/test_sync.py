"""Unit tests for serialized resources."""

import pytest

from repro.mimd.sync import SerializedResource


class TestSerializedResource:
    def test_idle_resource_serves_immediately(self):
        r = SerializedResource()
        assert r.acquire(5.0, 1.0) == 6.0
        assert r.total_wait == 0.0

    def test_busy_resource_queues(self):
        r = SerializedResource()
        r.acquire(0.0, 2.0)  # busy until 2.0
        done = r.acquire(1.0, 1.0)  # arrives at 1, waits 1
        assert done == 3.0
        assert r.total_wait == 1.0

    def test_fifo_accumulation(self):
        r = SerializedResource()
        for _ in range(10):
            r.acquire(0.0, 1.0)
        assert r.free_at == 10.0
        assert r.total_busy == 10.0
        assert r.requests == 10

    def test_gap_resets_queueing(self):
        r = SerializedResource()
        r.acquire(0.0, 1.0)
        done = r.acquire(100.0, 1.0)
        assert done == 101.0
        assert r.total_wait == 0.0

    def test_mean_wait(self):
        r = SerializedResource()
        assert r.mean_wait == 0.0
        r.acquire(0.0, 2.0)
        r.acquire(0.0, 2.0)
        assert r.mean_wait == pytest.approx(1.0)

    def test_negative_hold_rejected(self):
        with pytest.raises(ValueError):
            SerializedResource().acquire(0.0, -1.0)
