"""Cross-backend differential suite: results must match, times may not.

The backend-equivalence tests assert whole-fleet bit-equality after a
scheduled major cycle.  This suite is the *differential* complement: it
pins the two externally-meaningful decision outputs of the ATM tasks —

* **Task 1**: which radar report each aircraft correlated with (and the
  report-side view of the same assignment), and
* **Task 2**: the set of anticipated collision pairs (who conflicts
  with whom, and the per-aircraft flag),

and checks every machine model against the reference oracle for the
same seeded fleet, across several fleet sizes and seeds.  The modelled
*timings* of the platforms legitimately differ by orders of magnitude —
that is the paper's whole point — so they are deliberately not
compared here; only results are.
"""

import numpy as np
import pytest

from repro.backends.registry import all_platform_names, resolve_backend
from repro.core import constants as C
from repro.core.collision import DetectionMode
from repro.core.radar import generate_radar_frame
from repro.core.setup import setup_flight

#: the paper's five machine models + the extension's wide-vector model.
PLATFORMS = all_platform_names() + ["vector:xeon-phi-7250"]

CASES = [(96, 2018), (101, 2018), (192, 7), (480, 99)]


def _run_tasks(platform, n, seed, mode=DetectionMode.SIGNED):
    """One tracking period plus one collision pass on a fresh fleet."""
    backend = resolve_backend(platform)
    fleet = setup_flight(n, seed)
    frame = generate_radar_frame(fleet, seed, 0)
    backend.track_and_correlate(fleet, frame)
    correlation = {
        "matched_radar": fleet.matched_radar.copy(),
        "r_match": fleet.r_match.copy(),
        "match_with": frame.match_with.copy(),
    }
    backend.detect_and_resolve(fleet, mode=mode)
    return fleet, correlation


def _collision_pairs(fleet):
    """The anticipated-conflict pair set implied by the fleet columns."""
    pairs = set()
    for i in np.nonzero(fleet.col_with != C.NO_MATCH)[0]:
        j = int(fleet.col_with[i])
        pairs.add((min(int(i), j), max(int(i), j)))
    return pairs


@pytest.mark.parametrize("n,seed", CASES, ids=lambda v: str(v))
@pytest.mark.parametrize("platform", PLATFORMS)
class TestDifferential:
    def test_task1_correlation_assignments_match_reference(self, platform, n, seed):
        _, ref = _run_tasks("reference", n, seed)
        _, got = _run_tasks(platform, n, seed)
        for field in ("matched_radar", "r_match", "match_with"):
            assert np.array_equal(got[field], ref[field]), (platform, field)

    def test_task2_collision_pair_sets_match_reference(self, platform, n, seed):
        ref_fleet, _ = _run_tasks("reference", n, seed)
        fleet, _ = _run_tasks(platform, n, seed)
        assert _collision_pairs(fleet) == _collision_pairs(ref_fleet), platform
        assert np.array_equal(fleet.col, ref_fleet.col), platform
        assert np.array_equal(fleet.col_with, ref_fleet.col_with), platform


class TestDifferentialDetails:
    """Cross-cutting checks that don't need the full parametrization."""

    @pytest.mark.parametrize("platform", PLATFORMS)
    def test_paper_abs_detection_mode_also_agrees(self, platform):
        ref_fleet, _ = _run_tasks("reference", 192, 2018, mode=DetectionMode.PAPER_ABS)
        fleet, _ = _run_tasks(platform, 192, 2018, mode=DetectionMode.PAPER_ABS)
        assert _collision_pairs(fleet) == _collision_pairs(ref_fleet), platform

    def test_timings_do_differ_across_platforms(self):
        """Guard against the suite silently comparing one platform with
        itself: the *modelled times* of distinct machines must differ
        even while their results are identical."""
        times = set()
        for platform in PLATFORMS:
            backend = resolve_backend(platform)
            fleet = setup_flight(192, 2018)
            frame = generate_radar_frame(fleet, 2018, 0)
            times.add(round(backend.track_and_correlate(fleet, frame).seconds, 12))
        assert len(times) == len(PLATFORMS)

    def test_correlation_is_nontrivial(self):
        """The assignments being compared must actually contain matches."""
        _, ref = _run_tasks("reference", 192, 2018)
        assert int((ref["matched_radar"] != C.NO_MATCH).sum()) > 0

    def test_collisions_are_nontrivial_somewhere(self):
        """At least one differential case must exercise a non-empty
        collision pair set, or the pair-set comparison proves nothing."""
        nonempty = 0
        for n, seed in CASES:
            fleet, _ = _run_tasks("reference", n, seed)
            nonempty += bool(_collision_pairs(fleet))
        assert nonempty > 0
