"""Integration: long simulation runs stay physically sane."""

import numpy as np
import pytest

from repro.core import constants as C
from repro.core.simulation import Simulation


class TestLongRuns:
    def test_four_major_cycles_stay_in_bounds(self):
        sim = Simulation(256, seed=2018)
        sim.run(major_cycles=4)
        sim.fleet.validate()

    def test_speeds_drift_free_over_time(self):
        """Resolution rotates velocities but never changes speeds, and
        tracking never touches them — speeds are conserved quantities."""
        sim = Simulation(256, seed=2018)
        before = np.sort(sim.fleet.speeds_knots())
        sim.run(major_cycles=4)
        after = np.sort(sim.fleet.speeds_knots())
        assert np.allclose(before, after)

    def test_tracking_keeps_fleet_close_to_truth(self):
        """Over many periods the committed positions follow the flight
        paths: per-period displacement is bounded by max speed."""
        sim = Simulation(128, seed=2018)
        prev = sim.positions()
        max_step = (
            C.SPEED_MAX_KNOTS / C.PERIODS_PER_HOUR
            + 2 * C.RADAR_NOISE_MAX_NM
        )
        for _ in range(8):
            sim.step_period()
            pos = sim.positions()
            step = np.hypot(*(pos - prev).T)
            # Wrapped aircraft teleport across the field; ignore them.
            moved_normally = step < C.AIRFIELD_SIZE_NM
            assert np.all(step[moved_normally] <= max_step + 1e-9)
            prev = pos

    def test_resolution_reduces_critical_conflicts(self):
        from repro.core.collision import detect

        sim = Simulation(512, seed=2018)
        probe = sim.fleet.copy()
        before = detect(probe).flagged_aircraft
        sim.run_collision_tasks()
        probe2 = sim.fleet.copy()
        after = detect(probe2).flagged_aircraft
        assert after <= before

    def test_radar_dropout_simulation_runs(self):
        sim = Simulation(128, seed=2018, radar_dropout=0.2)
        result = sim.run(major_cycles=1)
        assert result.total_periods == 16
        sim.fleet.validate()

    def test_paper_abs_mode_end_to_end(self):
        from repro.core.collision import DetectionMode

        sim = Simulation(128, seed=2018, mode=DetectionMode.PAPER_ABS)
        result = sim.run(major_cycles=1)
        assert result.total_periods == 16
