"""Golden regression tests for the deterministic timing models.

The deterministic backends promise bit-identical modelled times for
identical inputs — so those times are also *stable across commits*
unless a cost model changes.  These snapshots pin the models at the
values used to produce EXPERIMENTS.md.

If you deliberately recalibrate a model (see the "Calibration
disclosures" section of EXPERIMENTS.md), update the snapshot *and* the
affected EXPERIMENTS.md numbers together.
"""

import pytest

from repro.backends.registry import resolve_backend
from repro.core.radar import generate_radar_frame
from repro.core.setup import setup_flight

#: (task1_seconds, task23_seconds) at n = 960, seed 2018, period 0.
GOLDEN = {
    "cuda:geforce-9800-gt": (0.0001474912, 0.0014210704000000001),
    "cuda:gtx-880m": (2.3753039832285112e-05, 0.000209840321453529),
    "cuda:titan-x-pascal": (1.3964220183486238e-05, 9.822537050105857e-05),
    "ap:staran": (0.0031801, 0.047039),
    "simd:clearspeed-csx600": (0.001013456, 0.007678056),
    "vector:xeon-phi-7250": (3.994159663865546e-05, 3.8743159138655465e-05),
}


@pytest.mark.parametrize("platform", sorted(GOLDEN))
def test_golden_modelled_times(platform):
    backend = resolve_backend(platform)
    fleet = setup_flight(960, 2018)
    frame = generate_radar_frame(fleet, 2018, 0)
    t1 = backend.track_and_correlate(fleet, frame).seconds
    t23 = backend.detect_and_resolve(fleet).seconds
    expected_t1, expected_t23 = GOLDEN[platform]
    assert t1 == pytest.approx(expected_t1, rel=1e-9), "task1 model drifted"
    assert t23 == pytest.approx(expected_t23, rel=1e-9), "task2+3 model drifted"


def test_golden_fleet_checksum():
    """The airfield itself is part of the contract: same seed, same sky."""
    fleet = setup_flight(960, 2018)
    assert float(fleet.x.sum()) == pytest.approx(568.5722394786221, rel=1e-12)
    assert float(fleet.alt.sum()) == pytest.approx(19141909.76293423, rel=1e-12)
