"""Integration: every architecture backend computes identical ATM results.

This is the repository's central correctness property (DESIGN.md §5):
the algorithms are shared, the machines differ only in *timing*, so the
flight table must evolve bit-identically on every platform.
"""

import numpy as np
import pytest

from repro.backends.registry import all_platform_names, resolve_backend
from repro.core.scheduler import run_schedule
from repro.core.setup import setup_flight

ALL_PLATFORMS = all_platform_names() + ["reference"]


def evolve(backend_name, n=128, cycles=1, seed=2018):
    backend = resolve_backend(backend_name)
    fleet = setup_flight(n, seed)
    result = run_schedule(backend, fleet, major_cycles=cycles, seed=seed)
    return fleet, result


class TestEquivalence:
    @pytest.mark.parametrize("platform", all_platform_names())
    def test_platform_matches_reference_over_major_cycle(self, platform):
        ref_fleet, _ = evolve("reference")
        fleet, _ = evolve(platform)
        assert fleet.state_equal(ref_fleet), platform

    def test_equivalence_persists_over_two_cycles(self):
        ref_fleet, _ = evolve("reference", cycles=2)
        gpu_fleet, _ = evolve("cuda:geforce-9800-gt", cycles=2)
        mimd_fleet, _ = evolve("mimd:xeon-16", cycles=2)
        assert gpu_fleet.state_equal(ref_fleet)
        assert mimd_fleet.state_equal(ref_fleet)

    def test_equivalence_with_odd_fleet_size(self):
        """Non-multiple-of-96 sizes exercise partial warps/stripes."""
        ref_fleet, _ = evolve("reference", n=101)
        for platform in ("cuda:gtx-880m", "simd:clearspeed-csx600", "ap:staran"):
            fleet, _ = evolve(platform, n=101)
            assert fleet.state_equal(ref_fleet), platform


class TestPaperHeadlines:
    """The §6.2 claims, asserted end-to-end at a moderate fleet size."""

    def test_nvidia_never_misses_and_beats_everyone(self):
        n = 960
        results = {}
        for platform in all_platform_names():
            _, result = evolve(platform, n=n)
            results[platform] = result

        nvidia = [p for p in results if p.startswith("cuda:")]
        others = [p for p in results if not p.startswith("cuda:")]

        for p in nvidia:
            assert results[p].missed_deadlines == 0, p

        # Every NVIDIA device outruns every non-NVIDIA platform on both
        # task curves (paper: "much faster than all the AP, ClearSpeed,
        # and Xeon implementations").
        for p in nvidia:
            t1_nv = results[p].task1_times().mean()
            t23_nv = results[p].task23_times().mean()
            for q in others:
                assert t1_nv < results[q].task1_times().mean(), (p, q)
                assert t23_nv < results[q].task23_times().mean(), (p, q)

    def test_deterministic_platforms_repeat_exactly(self):
        for platform in (
            "cuda:titan-x-pascal",
            "simd:clearspeed-csx600",
            "ap:staran",
        ):
            _, a = evolve(platform, n=192)
            _, b = evolve(platform, n=192)
            assert np.array_equal(a.task1_times(), b.task1_times()), platform

    def test_mimd_misses_deadlines_at_scale(self):
        _, result = evolve("mimd:xeon-16", n=2880)
        assert result.missed_deadlines > 0

    def test_ap_and_simd_hold_deadlines_at_scale(self):
        for platform in ("ap:staran", "simd:clearspeed-csx600"):
            _, result = evolve(platform, n=2880)
            assert result.missed_deadlines == 0, platform
