"""Unit tests for text table rendering."""

import pytest

from repro.analysis.tables import format_seconds, render_series, render_table


class TestFormatSeconds:
    def test_scales(self):
        assert format_seconds(0.0) == "0 s"
        assert format_seconds(5e-9) == "5 ns"
        assert format_seconds(5e-6) == "5 us"
        assert format_seconds(5e-3) == "5 ms"
        assert format_seconds(5.0) == "5 s"

    def test_three_significant_digits(self):
        assert format_seconds(1.23456e-3) == "1.23 ms"

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            format_seconds(-1.0)


class TestRenderTable:
    def test_alignment(self):
        out = render_table(["a", "long_header"], [[1, 2], [333, 4]])
        lines = out.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("a")
        assert "long_header" in lines[0]
        assert set(lines[1]) <= {"-", " "}

    def test_cell_count_validation(self):
        with pytest.raises(ValueError):
            render_table(["a", "b"], [[1]])

    def test_empty_rows(self):
        out = render_table(["x"], [])
        assert "x" in out


class TestRenderSeries:
    def test_contains_all_labels(self):
        out = render_series("T", [96, 192], {"p1": [1e-3, 2e-3], "p2": [3e-3, 4e-3]})
        assert "T" in out
        assert "p1" in out and "p2" in out
        assert "1 ms" in out and "4 ms" in out

    def test_length_validation(self):
        with pytest.raises(ValueError):
            render_series("T", [96, 192], {"p": [1e-3]})
