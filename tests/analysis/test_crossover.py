"""Unit tests for crossover analysis."""

import pytest

from repro.analysis.crossover import Crossover, find_crossovers, pairwise_crossovers


class TestFindCrossovers:
    def test_single_crossing(self):
        ns = [100, 200, 300]
        a = [1.0, 2.0, 3.0]  # linear, slower at scale
        b = [2.0, 2.0, 2.0]  # flat
        out = find_crossovers(ns, "a", a, "b", b)
        assert len(out) == 1
        assert out[0].n_aircraft == pytest.approx(200.0)
        assert out[0].faster_after == "b"
        assert out[0].seconds == pytest.approx(2.0)

    def test_no_crossing(self):
        out = find_crossovers([1, 2, 3], "a", [1, 2, 3], "b", [4, 5, 6])
        assert out == []

    def test_interpolated_position(self):
        # a: 1 -> 3, b: 2 -> 2 over [0, 100]: crossing at x = 50.
        out = find_crossovers([0, 100], "a", [1.0, 3.0], "b", [2.0, 2.0])
        assert out[0].n_aircraft == pytest.approx(50.0)

    def test_multiple_crossings(self):
        ns = [0, 1, 2, 3]
        a = [0.0, 2.0, 0.0, 2.0]
        b = [1.0, 1.0, 1.0, 1.0]
        out = find_crossovers(ns, "a", a, "b", b)
        assert len(out) == 3
        winners = [c.faster_after for c in out]
        assert winners == ["b", "a", "b"]

    def test_identical_series(self):
        out = find_crossovers([1, 2], "a", [1.0, 1.0], "b", [1.0, 1.0])
        assert out == []

    def test_length_validation(self):
        with pytest.raises(ValueError):
            find_crossovers([1, 2], "a", [1.0], "b", [1.0, 2.0])

    def test_single_point(self):
        assert find_crossovers([1], "a", [1.0], "b", [2.0]) == []


class TestPairwise:
    def test_sorted_by_fleet_size(self):
        ns = [0, 100]
        series = {
            "slow_flat": [3.0, 3.0],
            "fast_then_slow": [1.0, 5.0],
            "very_flat": [4.0, 4.0],
        }
        out = pairwise_crossovers(ns, series)
        positions = [c.n_aircraft for c in out]
        assert positions == sorted(positions)
        assert len(out) == 2  # fast_then_slow crosses both flats

    def test_real_sweep_has_gpu_vs_simd_crossover(self):
        """The launch-overhead regime: at n=96 the 9800 GT and the
        ClearSpeed chip are neck and neck on Tasks 2+3; by n>=480 the
        GPU has pulled away for good."""
        from repro.harness.sweep import sweep

        data = sweep(
            ["cuda:geforce-9800-gt", "simd:clearspeed-csx600"],
            ns=(96, 480, 960),
            periods=1,
        )
        series = {
            p: data.task23_series(p) for p in data.platforms()
        }
        out = pairwise_crossovers(data.ns, series)
        for c in out:
            assert c.faster_after == "cuda:geforce-9800-gt"
