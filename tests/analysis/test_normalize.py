"""Unit tests for throughput normalization (§7.2 future work)."""

import pytest

from repro.analysis.normalize import (
    efficiency_ranking,
    normalize_times,
)


class TestNormalizeTimes:
    def test_scaling_formula(self):
        s = normalize_times("fast", [96, 192], [1.0, 2.0], 4e12, 2e12)
        # A platform with 2x the reference peak gets its time doubled.
        assert s.normalized_seconds == (2.0, 4.0)
        assert s.raw_seconds == (1.0, 2.0)

    def test_reference_platform_unchanged(self):
        s = normalize_times("ref", [96], [1.0], 1e9, 1e9)
        assert s.normalized_seconds == (1.0,)

    def test_validation(self):
        with pytest.raises(ValueError):
            normalize_times("x", [96], [1.0], 0.0, 1e9)
        with pytest.raises(ValueError):
            normalize_times("x", [96], [1.0], 1e9, -1.0)
        with pytest.raises(ValueError):
            normalize_times("x", [96, 192], [1.0], 1e9, 1e9)


class TestEfficiencyRanking:
    def test_orders_by_normalized_mean(self):
        # "big" is faster raw but burns 100x the peak throughput.
        big = normalize_times("big", [96, 192], [0.1, 0.2], 1e14, 1e12)
        small = normalize_times("small", [96, 192], [1.0, 2.0], 1e12, 1e12)
        assert efficiency_ranking([big, small]) == ["small", "big"]

    def test_empty(self):
        assert efficiency_ranking([]) == []

    def test_disjoint_sizes_rejected(self):
        a = normalize_times("a", [96], [1.0], 1e9, 1e9)
        b = normalize_times("b", [192], [1.0], 1e9, 1e9)
        with pytest.raises(ValueError):
            efficiency_ranking([a, b])

    def test_partial_overlap_uses_common_sizes(self):
        a = normalize_times("a", [96, 192], [1.0, 100.0], 1e9, 1e9)
        b = normalize_times("b", [96, 384], [2.0, 0.001], 1e9, 1e9)
        # Common size is 96 only: a (1.0) beats b (2.0).
        assert efficiency_ranking([a, b]) == ["a", "b"]
