"""Unit tests for deadline reports."""

import pytest

from repro.analysis.deadlines import DeadlineReport, DeadlineRow
from repro.core import constants as C


def row(platform, n, missed, worst_ms=10.0, periods=16, skipped=0):
    return DeadlineRow(
        platform=platform,
        n_aircraft=n,
        periods=periods,
        missed=missed,
        skipped=skipped,
        miss_rate=missed / periods,
        worst_period_ms=worst_ms,
        mean_utilization=0.1,
    )


@pytest.fixture
def report():
    return DeadlineReport(
        rows=[
            row("gpu", 96, 0),
            row("gpu", 960, 0),
            row("xeon", 96, 0),
            row("xeon", 960, 3, worst_ms=800.0),
        ]
    )


class TestDeadlineReport:
    def test_never_missing(self, report):
        assert report.platforms_never_missing() == ["gpu"]

    def test_missing(self, report):
        assert report.platforms_missing() == ["xeon"]

    def test_first_miss_n(self, report):
        assert report.first_miss_n("xeon") == 960
        assert report.first_miss_n("gpu") is None

    def test_headroom(self, report):
        budget_ms = C.PERIOD_SECONDS * 1e3
        assert report.headroom("gpu") == pytest.approx(budget_ms - 10.0)
        assert report.headroom("xeon") < 0

    def test_headroom_unknown_platform(self, report):
        with pytest.raises(KeyError):
            report.headroom("cray")

    def test_summary_lines(self, report):
        lines = report.summary_lines()
        assert any("gpu" in ln and "0/32" in ln for ln in lines)
        assert any("xeon" in ln and "3/32" in ln for ln in lines)

    def test_by_platform_grouping(self, report):
        groups = report.by_platform()
        assert set(groups) == {"gpu", "xeon"}
        assert len(groups["gpu"]) == 2


class TestFromSchedule:
    def test_round_trip(self):
        from repro.backends.reference import ReferenceBackend
        from repro.core.scheduler import run_schedule
        from repro.core.setup import setup_flight

        result = run_schedule(ReferenceBackend(), setup_flight(32, 1))
        r = DeadlineRow.from_schedule(result)
        assert r.platform == "reference"
        assert r.periods == 16
        assert r.never_misses
