"""Unit tests for the ASCII chart renderer."""

import pytest

from repro.analysis.ascii_plot import ascii_chart


class TestAsciiChart:
    def test_contains_symbols_and_legend(self):
        out = ascii_chart([96, 192], {"a": [1e-3, 2e-3], "b": [1e-2, 2e-2]})
        assert "o=a" in out and "x=b" in out
        assert "o" in out and "x" in out

    def test_axis_labels(self):
        out = ascii_chart([96, 192], {"a": [1.0, 10.0]})
        assert "(aircraft)" in out
        assert "96" in out and "192" in out

    def test_log_ordering(self):
        """The larger value renders on a higher row."""
        out = ascii_chart([1, 2], {"a": [1e-6, 1e-1]}, height=10)
        lines = out.splitlines()
        rows = [i for i, ln in enumerate(lines) if "o" in ln and "|" in ln]
        first, second = rows[0], rows[-1]
        # Column of the second point is to the right and above (smaller
        # row index) ... the 1e-1 point appears before the 1e-6 point.
        assert lines[first].index("o") > lines[second].index("o") or first < second

    def test_hline_rendered(self):
        out = ascii_chart(
            [1, 2], {"a": [0.1, 0.2]}, hline=0.5, hline_label="deadline"
        )
        assert "----" in out
        assert "deadline" in out

    def test_title(self):
        out = ascii_chart([1], {"a": [1.0]}, title="hello")
        assert out.splitlines()[0] == "hello"

    def test_validation(self):
        with pytest.raises(ValueError):
            ascii_chart([1, 2], {})
        with pytest.raises(ValueError):
            ascii_chart([1, 2], {"a": [1.0]})
        with pytest.raises(ValueError):
            ascii_chart([1], {"a": [0.0]})
        with pytest.raises(ValueError):
            ascii_chart([1], {"a": [1.0]}, height=2)

    def test_constant_series(self):
        out = ascii_chart([1, 2, 3], {"a": [5.0, 5.0, 5.0]})
        assert "o" in out

    def test_many_series_get_distinct_symbols(self):
        series = {f"s{i}": [float(i + 1)] for i in range(6)}
        out = ascii_chart([1], series)
        for sym in "ox+*#@":
            assert sym in out
