"""Unit tests for curve fitting and the goodness-of-fit statistics."""

import numpy as np
import pytest

from repro.analysis.curvefit import (
    assess_linearity,
    growth_exponent,
    polynomial_fit,
)


class TestPolynomialFit:
    def test_exact_linear(self):
        x = np.arange(1, 11, dtype=float)
        y = 3.0 * x + 2.0
        fit = polynomial_fit(x, y, 1)
        assert fit.coefficients[0] == pytest.approx(3.0)
        assert fit.coefficients[1] == pytest.approx(2.0)
        assert fit.sse == pytest.approx(0.0, abs=1e-18)
        assert fit.r_squared == pytest.approx(1.0)
        assert fit.rmse == pytest.approx(0.0, abs=1e-9)

    def test_exact_quadratic(self):
        x = np.arange(1, 11, dtype=float)
        y = 0.5 * x**2 - x + 4
        fit = polynomial_fit(x, y, 2)
        assert fit.coefficients[0] == pytest.approx(0.5)
        assert fit.r_squared == pytest.approx(1.0)

    def test_r_squared_identity(self):
        rng = np.random.default_rng(1)
        x = np.linspace(1, 10, 20)
        y = 2 * x + rng.normal(0, 0.5, 20)
        fit = polynomial_fit(x, y, 1)
        sst = float(np.sum((y - y.mean()) ** 2))
        assert fit.r_squared == pytest.approx(1 - fit.sse / sst)

    def test_adjusted_r_squared_formula(self):
        rng = np.random.default_rng(2)
        x = np.linspace(1, 10, 15)
        y = x + rng.normal(0, 0.3, 15)
        fit = polynomial_fit(x, y, 2)
        n, p = 15, 3
        expected = 1 - (1 - fit.r_squared) * (n - 1) / (n - p)
        assert fit.adj_r_squared == pytest.approx(expected)

    def test_rmse_formula(self):
        rng = np.random.default_rng(3)
        x = np.linspace(1, 10, 12)
        y = x + rng.normal(0, 0.2, 12)
        fit = polynomial_fit(x, y, 1)
        assert fit.rmse == pytest.approx(np.sqrt(fit.sse / (12 - 2)))

    def test_predict(self):
        fit = polynomial_fit([1.0, 2.0, 3.0, 4.0], [2.0, 4.0, 6.0, 8.0], 1)
        assert fit.predict(10.0) == pytest.approx(20.0)

    def test_needs_enough_points(self):
        with pytest.raises(ValueError):
            polynomial_fit([1.0, 2.0], [1.0, 2.0], 1)
        with pytest.raises(ValueError):
            polynomial_fit([1, 2, 3], [1, 2, 3], 2)

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            polynomial_fit([1, 2, 3], [1, 2], 1)

    def test_negative_degree(self):
        with pytest.raises(ValueError):
            polynomial_fit([1, 2, 3], [1, 2, 3], -1)

    def test_describe_contains_gof(self):
        fit = polynomial_fit(np.arange(1.0, 9.0), np.arange(1.0, 9.0) * 2, 1)
        text = fit.describe()
        assert "SSE" in text and "adjR^2" in text and "RMSE" in text


class TestGrowthExponent:
    def test_exact_power_laws(self):
        x = np.array([96, 192, 384, 768, 1536], dtype=float)
        assert growth_exponent(x, 5 * x) == pytest.approx(1.0)
        assert growth_exponent(x, 2 * x**2) == pytest.approx(2.0)
        assert growth_exponent(x, 7 * np.sqrt(x)) == pytest.approx(0.5)

    def test_constant_reads_zero(self):
        x = np.array([10.0, 100.0, 1000.0])
        assert growth_exponent(x, np.full(3, 4.0)) == pytest.approx(0.0)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            growth_exponent([0.0, 1.0], [1.0, 2.0])
        with pytest.raises(ValueError):
            growth_exponent([1.0, 2.0], [0.0, 2.0])


class TestAssessLinearity:
    X = np.array([96, 480, 960, 1920, 3840], dtype=float)

    def test_pure_linear(self):
        v = assess_linearity(self.X, 2e-6 * self.X + 1e-4)
        assert v.verdict == "linear"
        assert v.is_simd_like

    def test_pure_quadratic(self):
        v = assess_linearity(self.X, 1e-9 * self.X**2)
        assert v.verdict == "quadratic"
        assert v.is_simd_like  # "quadratic with small coefficient" counts

    def test_cubic_is_superquadratic(self):
        v = assess_linearity(self.X, 1e-12 * self.X**3)
        assert v.verdict == "superquadratic"
        assert not v.is_simd_like

    def test_overhead_dominated_is_linear(self):
        # Constant + small linear term: sub-linear growth exponent.
        v = assess_linearity(self.X, 1e-5 + 1e-9 * self.X)
        assert v.verdict == "linear"

    def test_mild_quadratic_is_near_linear(self):
        # Linear with a small quadratic bend (the paper's Fig. 8 shape).
        y = 1e-6 * self.X + 4e-11 * self.X**2
        v = assess_linearity(self.X, y)
        assert v.verdict in ("linear", "near-linear")

    def test_exponent_recorded(self):
        v = assess_linearity(self.X, 2.0 * self.X)
        assert v.growth_exponent == pytest.approx(1.0)

    def test_describe(self):
        v = assess_linearity(self.X, 2.0 * self.X)
        assert "verdict" in v.describe()
