"""Unit tests for the separation-minima safety metrics."""

import numpy as np
import pytest

from repro.analysis.safety import (
    HORIZONTAL_MINIMUM_NM,
    VERTICAL_MINIMUM_FT,
    SafetyLog,
    separation_snapshot,
)
from repro.core.types import FleetState


def fleet_at(points_alt):
    f = FleetState.empty(len(points_alt))
    for i, (x, y, alt) in enumerate(points_alt):
        f.x[i], f.y[i], f.alt[i] = x, y, alt
    return f


class TestSeparationSnapshot:
    def test_well_separated(self):
        f = fleet_at([(0, 0, 10_000), (50, 0, 10_000), (0, 50, 10_000)])
        snap = separation_snapshot(f)
        assert snap.losses == 0
        assert snap.min_horizontal_nm == pytest.approx(50.0)
        assert snap.near_pairs == 0

    def test_loss_of_separation(self):
        f = fleet_at([(0, 0, 10_000), (2.0, 0, 10_500)])
        snap = separation_snapshot(f)
        assert snap.losses == 1
        assert snap.min_horizontal_nm == pytest.approx(2.0)

    def test_vertical_separation_prevents_loss(self):
        f = fleet_at([(0, 0, 10_000), (1.0, 0, 12_000)])
        snap = separation_snapshot(f)
        assert snap.losses == 0
        assert snap.min_horizontal_nm == np.inf  # no vertically-close pair

    def test_boundaries(self):
        # Exactly at the horizontal minimum: not a loss (strict <).
        f = fleet_at([(0, 0, 10_000), (HORIZONTAL_MINIMUM_NM, 0, 10_000)])
        assert separation_snapshot(f).losses == 0
        # Exactly at the vertical minimum: vertically separated.
        f = fleet_at([(0, 0, 10_000), (0.1, 0, 10_000 + VERTICAL_MINIMUM_FT)])
        assert separation_snapshot(f).losses == 0

    def test_near_pairs(self):
        f = fleet_at([(0, 0, 10_000), (4.0, 0, 10_000)])  # 4 nm < 2x minimum
        snap = separation_snapshot(f)
        assert snap.losses == 0
        assert snap.near_pairs == 1

    def test_pairs_counted_once(self):
        f = fleet_at([(0, 0, 10_000), (1, 0, 10_000), (0, 1, 10_000)])
        snap = separation_snapshot(f)
        assert snap.losses == 3  # the three unordered pairs

    def test_chunking_invariance(self):
        from repro.core.setup import setup_flight

        f = setup_flight(300, 2018)
        a = separation_snapshot(f, chunk=512)
        b = separation_snapshot(f, chunk=7)
        assert a == b

    def test_single_aircraft(self):
        f = fleet_at([(0, 0, 10_000)])
        snap = separation_snapshot(f)
        assert snap.losses == 0
        assert snap.min_horizontal_nm == np.inf


class TestSafetyLog:
    def test_accumulates(self):
        log = SafetyLog()
        f = fleet_at([(0, 0, 10_000), (1.0, 0, 10_000)])
        log.record(f)
        f.x[1] = 50.0
        log.record(f)
        assert log.total_loss_events == 1
        assert log.peak_losses == 1
        assert log.worst_min_horizontal_nm == pytest.approx(1.0)
        assert log.summary()["snapshots"] == 2

    def test_empty_log(self):
        log = SafetyLog()
        assert log.total_loss_events == 0
        assert log.peak_losses == 0
        assert log.worst_min_horizontal_nm == np.inf


class TestResolutionAblation:
    def test_resolution_reduces_exposure(self):
        """The headline safety result: Task 3 strictly reduces losses of
        separation on the evolving random airfield (deterministic run)."""
        from repro.harness.figures import ablation_resolution

        table = ablation_resolution(n=480, major_cycles=4)
        by_config = {r[0]: r for r in table.rows}
        on_losses = by_config["resolution ON"][3]
        off_losses = by_config["resolution OFF"][3]
        assert on_losses < off_losses
        # Worst separation can only improve (or stay) with resolution.
        assert float(by_config["resolution ON"][5]) >= float(
            by_config["resolution OFF"][5]
        )
