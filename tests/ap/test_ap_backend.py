"""Unit tests for the STARAN AP backend: linearity and equivalence."""

import numpy as np
import pytest

from repro.ap.backend import ApBackend
from repro.ap.staran import STARAN, STARAN_1972
from repro.ap.tasks import charge_task1, charge_task23
from repro.backends.reference import ReferenceBackend
from repro.core.radar import generate_radar_frame
from repro.core.setup import setup_flight
from repro.core.tracking import correlate


class TestConfig:
    def test_registry_names(self):
        assert STARAN.registry_name == "ap:staran"
        assert ApBackend("staran-1972").config is STARAN_1972
        with pytest.raises(KeyError):
            ApBackend("staran-2030")

    def test_1972_hardware_is_slower(self):
        f1 = setup_flight(192, 2018)
        f2 = setup_flight(192, 2018)
        t_new = ApBackend(STARAN).detect_and_resolve(f1).seconds
        t_old = ApBackend(STARAN_1972).detect_and_resolve(f2).seconds
        assert t_old > t_new


class TestEquivalence:
    def test_matches_reference(self):
        ref_fleet = setup_flight(130, 2018)
        ap_fleet = setup_flight(130, 2018)
        ref, ap = ReferenceBackend(), ApBackend()
        for period in range(2):
            ref.track_and_correlate(
                ref_fleet, generate_radar_frame(ref_fleet, 2018, period)
            )
            ap.track_and_correlate(
                ap_fleet, generate_radar_frame(ap_fleet, 2018, period)
            )
        ref.detect_and_resolve(ref_fleet)
        ap.detect_and_resolve(ap_fleet)
        assert ref_fleet.state_equal(ap_fleet)


class TestLinearity:
    def test_task1_cycles_linear_in_reports(self):
        """The AP's headline property: per-report cost is a constant."""
        per_report = []
        for n in (100, 400, 1600):
            fleet = setup_flight(n, 2018)
            frame = generate_radar_frame(fleet, 2018, 0)
            stats = correlate(fleet, frame)
            ap = charge_task1(STARAN, n, stats)
            iterations = sum(ids.shape[0] for ids in stats.round_radar_ids)
            per_report.append(ap.cycles / iterations)
        # Constant per-iteration cost (edges contribute O(1) total).
        assert per_report[0] == pytest.approx(per_report[2], rel=0.05)

    def test_task23_cycles_linear_in_steps(self):
        from repro.core.resolution import detect_and_resolve

        per_step = []
        for n in (100, 400, 1600):
            fleet = setup_flight(n, 2018)
            det, res = detect_and_resolve(fleet)
            ap = charge_task23(STARAN, n, det, res)
            steps = n + res.trials_evaluated
            per_step.append(ap.cycles / steps)
        assert per_step[0] == pytest.approx(per_step[2], rel=0.1)

    def test_timing_deterministic(self):
        times = []
        for _ in range(2):
            fleet = setup_flight(96, 2018)
            b = ApBackend()
            frame = generate_radar_frame(fleet, 2018, 0)
            times.append(
                (
                    b.track_and_correlate(fleet, frame).seconds,
                    b.detect_and_resolve(fleet).seconds,
                )
            )
        assert times[0] == times[1]

    def test_meets_deadline_in_tested_range(self):
        from repro.core import constants as C

        fleet = setup_flight(3840, 2018)
        b = ApBackend()
        frame = generate_radar_frame(fleet, 2018, 0)
        t1 = b.track_and_correlate(fleet, frame).seconds
        t23 = b.detect_and_resolve(fleet).seconds
        assert t1 + t23 < C.PERIOD_SECONDS


class TestExtras:
    def test_modules_reported(self):
        fleet = setup_flight(600, 2018)
        b = ApBackend()
        t = b.detect_and_resolve(fleet)
        assert t.stats["modules"] == 3  # ceil(600/256)

    def test_setup_timing(self):
        assert ApBackend().setup_timing(960).seconds > 0

    def test_describe_and_peak(self):
        b = ApBackend()
        assert "associative" in b.describe()["kind"]
        assert b.peak_throughput_ops_per_s() > 0
