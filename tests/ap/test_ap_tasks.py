"""Direct unit tests for the associative task cost replays."""

import copy

import pytest

from repro.ap.staran import STARAN
from repro.ap.tasks import charge_setup, charge_task1, charge_task23
from repro.core.radar import generate_radar_frame
from repro.core.resolution import detect_and_resolve
from repro.core.setup import setup_flight
from repro.core.tracking import correlate


def tracked(n, seed=2018):
    fleet = setup_flight(n, seed)
    frame = generate_radar_frame(fleet, seed, 0)
    return fleet, correlate(fleet, frame)


class TestChargeTask1:
    def test_constant_cost_per_report(self):
        """The AP's defining property, asserted at the cycle level."""
        per_iter = []
        for n in (64, 256, 1024):
            fleet, stats = tracked(n)
            ap = charge_task1(STARAN, n, stats)
            iters = sum(len(i) for i in stats.round_radar_ids)
            per_iter.append(ap.cycles / iters)
        assert per_iter[0] == pytest.approx(per_iter[-1], rel=0.05)

    def test_counters(self):
        fleet, stats = tracked(96)
        ap = charge_task1(STARAN, 96, stats)
        # One associative search per radar iteration.
        iters = sum(len(i) for i in stats.round_radar_ids)
        assert ap.searches == iters
        assert ap.broadcasts >= 2 * iters


class TestChargeTask23:
    def test_step_count(self):
        fleet = setup_flight(128, 2018)
        det, res = detect_and_resolve(fleet)
        ap = charge_task23(STARAN, 128, det, res)
        # One global extremum per detection step and per trial.
        assert ap.extrema == 128 + res.trials_evaluated

    def test_trials_linear(self):
        fleet = setup_flight(128, 2018)
        det, res = detect_and_resolve(fleet)
        base = charge_task23(STARAN, 128, det, res).cycles
        res2 = copy.deepcopy(res)
        res2.trials_evaluated += 128  # double the work roughly
        more = charge_task23(STARAN, 128, det, res2).cycles
        per_trial = (more - base) / 128
        assert per_trial > 0
        # Adding the same amount again costs exactly the same (linear).
        res3 = copy.deepcopy(res2)
        res3.trials_evaluated += 128
        even_more = charge_task23(STARAN, 128, det, res3).cycles
        assert even_more - more == pytest.approx(more - base)


class TestChargeSetup:
    def test_constant_in_fleet_size(self):
        """Fully parallel initialisation: one record per PE."""
        a = charge_setup(STARAN, 96).cycles
        b = charge_setup(STARAN, 9600).cycles
        assert a == b
