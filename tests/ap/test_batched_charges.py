"""Closed-form batching equivalence for the AP charge loops.

The Task-1/2/3 charge functions batch each loop body into one call per
primitive (``_gate_step(ap, times=k)``).  Because every STARAN cost
constant is an integer-valued float, the batched products must be *bit
identical* to the per-iteration accumulation — these tests pin that down
against a literal Python loop, counters and dict key order included.
"""

import pytest

from repro.ap.primitives import AssociativeArray
from repro.ap.tasks import _batcher_step, _gate_step


def ledger_state(ap: AssociativeArray) -> tuple:
    """Everything a batched charge must reproduce exactly — including
    the *insertion order* of the per-class dicts, which repro.obs
    exports in iteration order."""
    return (
        ap.cycles,
        ap.searches,
        ap.broadcasts,
        ap.extrema,
        list(ap.class_cycles.items()),
        list(ap.class_counts.items()),
    )


@pytest.mark.parametrize("times", [1, 2, 7, 96])
class TestBatchedEqualsLooped:
    def test_search(self, times):
        batched = AssociativeArray(96)
        batched.search(4, times=times)
        looped = AssociativeArray(96)
        for _ in range(times):
            looped.search(4)
        assert ledger_state(batched) == ledger_state(looped)

    def test_gate_step(self, times):
        batched = AssociativeArray(96)
        _gate_step(batched, times=times)
        looped = AssociativeArray(96)
        for _ in range(times):
            _gate_step(looped)
        assert ledger_state(batched) == ledger_state(looped)

    def test_batcher_step(self, times):
        batched = AssociativeArray(96)
        _batcher_step(batched, times=times)
        looped = AssociativeArray(96)
        for _ in range(times):
            _batcher_step(looped)
        assert ledger_state(batched) == ledger_state(looped)


class TestZeroAndNegative:
    def test_zero_count_batches_touch_nothing(self):
        """An empty batch must not even create per-class dict keys — a
        loop that runs zero times never would have."""
        ap = AssociativeArray(96)
        ap.search(4, times=0)
        _gate_step(ap, times=0)
        _batcher_step(ap, times=0)
        assert ledger_state(ap) == ledger_state(AssociativeArray(96))
        assert ap.class_cycles == {}

    def test_negative_search_count_rejected(self):
        with pytest.raises(ValueError):
            AssociativeArray(96).search(4, times=-1)
