"""Unit tests for the associative-processor primitives."""

import pytest

from repro.ap.primitives import AssociativeArray, StaranCosts


class TestSizing:
    def test_one_module_up_to_256(self):
        assert AssociativeArray(1).n_modules == 1
        assert AssociativeArray(256).n_modules == 1
        assert AssociativeArray(257).n_modules == 2

    def test_fleet_sized_pes(self):
        ap = AssociativeArray(1000)
        assert ap.n_pes == 1024
        assert ap.n_pes >= ap.n_records

    def test_validation(self):
        with pytest.raises(ValueError):
            AssociativeArray(0)
        with pytest.raises(ValueError):
            AssociativeArray(10, pes_per_module=0)


class TestConstantTime:
    """The defining property: primitive costs do not depend on the
    number of records (this is the hardware the STARAN provides)."""

    @pytest.mark.parametrize("op", [
        "broadcast_words",
        "search",
        "any_responder",
        "pick_one",
        "global_extremum",
        "mask_op",
    ])
    def test_cost_independent_of_fleet(self, op):
        small = AssociativeArray(10)
        huge = AssociativeArray(100_000)
        getattr(small, op)()
        getattr(huge, op)()
        assert small.cycles == huge.cycles > 0

    def test_counters(self):
        ap = AssociativeArray(100)
        ap.search()
        ap.broadcast_words(2)
        ap.global_extremum()
        assert ap.searches == 1
        assert ap.broadcasts == 2
        assert ap.extrema == 1

    def test_multiply_costs_more_than_alu(self):
        a, b = AssociativeArray(10), AssociativeArray(10)
        a.alu(1)
        b.multiply(1)
        assert b.cycles > a.cycles

    def test_seconds(self):
        ap = AssociativeArray(10)
        ap.scalar(40)
        assert ap.seconds(40e6) == pytest.approx(1e-6)
        with pytest.raises(ValueError):
            ap.seconds(-1)


class TestCosts:
    def test_default_table(self):
        c = StaranCosts()
        assert c.field_mul > c.field_alu
        assert c.any_responder < c.global_extremum
