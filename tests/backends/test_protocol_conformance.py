"""Protocol conformance: every registered backend honours the contract.

These tests run against *every* name in the registry — including any
backend added later — so a new machine model cannot ship half-wired.
"""

import numpy as np
import pytest

from repro.backends.base import Backend
from repro.backends.registry import available_backends, resolve_backend
from repro.core.radar import generate_radar_frame
from repro.core.setup import setup_flight

ALL_BACKENDS = available_backends()


def run_tasks(backend, n=96, seed=2018):
    fleet = setup_flight(n, seed)
    frame = generate_radar_frame(fleet, seed, 0)
    t1 = backend.track_and_correlate(fleet, frame)
    t23 = backend.detect_and_resolve(fleet)
    return fleet, t1, t23


@pytest.mark.parametrize("name", ALL_BACKENDS)
class TestEveryBackend:
    def test_is_backend_with_matching_name(self, name):
        backend = resolve_backend(name)
        assert isinstance(backend, Backend)
        assert backend.name == name

    def test_task_timings_well_formed(self, name):
        backend = resolve_backend(name)
        _, t1, t23 = run_tasks(backend)
        assert t1.task == "task1" and t23.task == "task23"
        assert t1.platform == name and t23.platform == name
        assert t1.n_aircraft == t23.n_aircraft == 96
        assert 0 < t1.seconds < 10.0
        assert 0 < t23.seconds < 10.0

    def test_breakdown_consistent(self, name):
        backend = resolve_backend(name)
        _, t1, t23 = run_tasks(backend)
        for t in (t1, t23):
            assert t.breakdown.total == pytest.approx(t.seconds, rel=1e-6)
            for component in (
                t.breakdown.compute,
                t.breakdown.memory,
                t.breakdown.transfer,
                t.breakdown.sync,
                t.breakdown.overhead,
            ):
                assert component >= -1e-12

    def test_functional_result_matches_reference(self, name):
        backend = resolve_backend(name)
        fleet, _, _ = run_tasks(backend)
        ref_fleet, _, _ = run_tasks(resolve_backend("reference"))
        assert fleet.state_equal(ref_fleet), name

    def test_determinism_flag_is_honest(self, name):
        backend = resolve_backend(name)
        # Two fresh instances, identical inputs.
        a = run_tasks(resolve_backend(name))[2].seconds
        b = run_tasks(resolve_backend(name))[2].seconds
        if backend.deterministic_timing:
            assert a == b, f"{name} claims determinism but varied"
        # Nondeterministic backends get fresh seeds per instance with the
        # same default — identical, so only check the flagged direction
        # on repeated calls of ONE instance:
        if not backend.deterministic_timing:
            inst = resolve_backend(name)
            times = set()
            for _ in range(3):
                fleet = setup_flight(96, 2018)
                times.add(inst.detect_and_resolve(fleet).seconds)
            assert len(times) > 1, f"{name} claims nondeterminism but repeated"

    def test_describe_contract(self, name):
        backend = resolve_backend(name)
        info = backend.describe()
        assert info["name"] == name
        assert "deterministic_timing" in info
        assert "kind" in info or name == "reference"
        # every platform reports its peak (0.0 is the reference sentinel)
        assert info["peak_throughput_ops_per_s"] == backend.peak_throughput_ops_per_s()

    def test_peak_throughput_nonnegative(self, name):
        assert resolve_backend(name).peak_throughput_ops_per_s() >= 0.0

    def test_validates_after_tasks(self, name):
        fleet, _, _ = run_tasks(resolve_backend(name))
        fleet.validate()
