"""Unit tests for the backend registry."""

import pytest

from repro.backends.base import Backend
from repro.backends.reference import ReferenceBackend
from repro.backends.registry import (
    all_platform_names,
    available_backends,
    register_backend,
    resolve_backend,
)


class TestResolution:
    def test_none_is_reference(self):
        assert isinstance(resolve_backend(None), ReferenceBackend)

    def test_instance_passthrough(self):
        b = ReferenceBackend()
        assert resolve_backend(b) is b

    def test_by_name(self):
        assert resolve_backend("reference").name == "reference"
        assert resolve_backend("cuda:gtx-880m").name == "cuda:gtx-880m"

    def test_unknown_name_lists_known(self):
        with pytest.raises(KeyError, match="known backends"):
            resolve_backend("quantum:annealer")

    def test_bad_type(self):
        with pytest.raises(TypeError):
            resolve_backend(42)


class TestRegistry:
    def test_all_ten_platforms_registered(self):
        names = available_backends()
        assert "reference" in names
        assert "cuda:titan-x-pascal" in names
        assert "simd:clearspeed-csx600" in names
        assert "ap:staran" in names
        assert "mimd:xeon-16" in names
        assert len(names) >= 10

    def test_paper_platforms_resolve(self):
        for name in all_platform_names():
            backend = resolve_backend(name)
            assert isinstance(backend, Backend)
            assert backend.name == name

    def test_paper_platform_list_has_six(self):
        # The six series of Figs. 4 and 6.
        assert len(all_platform_names()) == 6

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError):
            register_backend("reference", ReferenceBackend)

    def test_factories_return_fresh_instances(self):
        a = resolve_backend("mimd:xeon-16")
        b = resolve_backend("mimd:xeon-16")
        assert a is not b


class TestReferenceBackend:
    def test_timing_model(self):
        from repro.core.radar import generate_radar_frame
        from repro.core.setup import setup_flight

        fleet = setup_flight(64, 2018)
        ref = ReferenceBackend()
        frame = generate_radar_frame(fleet, 2018, 0)
        t1 = ref.track_and_correlate(fleet, frame)
        t23 = ref.detect_and_resolve(fleet)
        assert t1.seconds > 0 and t23.seconds > 0
        assert t1.task == "task1" and t23.task == "task23"
        assert t1.stats["committed"] >= 0
        assert t23.stats["trials"] >= 0

    def test_peak_throughput_zero(self):
        assert ReferenceBackend().peak_throughput_ops_per_s() == 0.0
